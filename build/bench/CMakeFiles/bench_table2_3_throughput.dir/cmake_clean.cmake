file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_3_throughput.dir/bench_table2_3_throughput.cpp.o"
  "CMakeFiles/bench_table2_3_throughput.dir/bench_table2_3_throughput.cpp.o.d"
  "bench_table2_3_throughput"
  "bench_table2_3_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_3_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
