file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_spitzer.dir/bench_fig4_spitzer.cpp.o"
  "CMakeFiles/bench_fig4_spitzer.dir/bench_fig4_spitzer.cpp.o.d"
  "bench_fig4_spitzer"
  "bench_fig4_spitzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_spitzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
