# Empty compiler generated dependencies file for bench_fig4_spitzer.
# This may be replaced when dependencies are built.
