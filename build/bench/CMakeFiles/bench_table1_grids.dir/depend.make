# Empty dependencies file for bench_table1_grids.
# This may be replaced when dependencies are built.
