file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_fugaku.dir/bench_table6_fugaku.cpp.o"
  "CMakeFiles/bench_table6_fugaku.dir/bench_table6_fugaku.cpp.o.d"
  "bench_table6_fugaku"
  "bench_table6_fugaku.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_fugaku.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
