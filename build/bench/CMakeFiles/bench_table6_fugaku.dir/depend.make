# Empty dependencies file for bench_table6_fugaku.
# This may be replaced when dependencies are built.
