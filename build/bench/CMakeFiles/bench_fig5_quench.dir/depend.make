# Empty dependencies file for bench_fig5_quench.
# This may be replaced when dependencies are built.
