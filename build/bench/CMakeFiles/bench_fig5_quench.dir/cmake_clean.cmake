file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_quench.dir/bench_fig5_quench.cpp.o"
  "CMakeFiles/bench_fig5_quench.dir/bench_fig5_quench.cpp.o.d"
  "bench_fig5_quench"
  "bench_fig5_quench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_quench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
