# Empty dependencies file for bench_fig1_3_meshes.
# This may be replaced when dependencies are built.
