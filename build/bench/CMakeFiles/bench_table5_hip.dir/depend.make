# Empty dependencies file for bench_table5_hip.
# This may be replaced when dependencies are built.
