file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_hip.dir/bench_table5_hip.cpp.o"
  "CMakeFiles/bench_table5_hip.dir/bench_table5_hip.cpp.o.d"
  "bench_table5_hip"
  "bench_table5_hip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_hip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
