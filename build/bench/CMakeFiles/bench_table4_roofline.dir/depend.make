# Empty dependencies file for bench_table4_roofline.
# This may be replaced when dependencies are built.
