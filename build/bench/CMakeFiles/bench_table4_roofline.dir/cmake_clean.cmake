file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_roofline.dir/bench_table4_roofline.cpp.o"
  "CMakeFiles/bench_table4_roofline.dir/bench_table4_roofline.cpp.o.d"
  "bench_table4_roofline"
  "bench_table4_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
