# Empty dependencies file for landau_tests.
# This may be replaced when dependencies are built.
