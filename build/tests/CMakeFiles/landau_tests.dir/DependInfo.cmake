
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_band_device.cpp" "tests/CMakeFiles/landau_tests.dir/test_band_device.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_band_device.cpp.o.d"
  "/root/repo/tests/test_csr.cpp" "tests/CMakeFiles/landau_tests.dir/test_csr.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_csr.cpp.o.d"
  "/root/repo/tests/test_cuda_sim.cpp" "tests/CMakeFiles/landau_tests.dir/test_cuda_sim.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_cuda_sim.cpp.o.d"
  "/root/repo/tests/test_dofmap.cpp" "tests/CMakeFiles/landau_tests.dir/test_dofmap.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_dofmap.cpp.o.d"
  "/root/repo/tests/test_fespace.cpp" "tests/CMakeFiles/landau_tests.dir/test_fespace.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_fespace.cpp.o.d"
  "/root/repo/tests/test_forest.cpp" "tests/CMakeFiles/landau_tests.dir/test_forest.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_forest.cpp.o.d"
  "/root/repo/tests/test_forest_fuzz.cpp" "tests/CMakeFiles/landau_tests.dir/test_forest_fuzz.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_forest_fuzz.cpp.o.d"
  "/root/repo/tests/test_gmres.cpp" "tests/CMakeFiles/landau_tests.dir/test_gmres.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_gmres.cpp.o.d"
  "/root/repo/tests/test_ip_data.cpp" "tests/CMakeFiles/landau_tests.dir/test_ip_data.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_ip_data.cpp.o.d"
  "/root/repo/tests/test_kernels.cpp" "tests/CMakeFiles/landau_tests.dir/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_kernels.cpp.o.d"
  "/root/repo/tests/test_kokkos_sim.cpp" "tests/CMakeFiles/landau_tests.dir/test_kokkos_sim.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_kokkos_sim.cpp.o.d"
  "/root/repo/tests/test_lagrange.cpp" "tests/CMakeFiles/landau_tests.dir/test_lagrange.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_lagrange.cpp.o.d"
  "/root/repo/tests/test_landau3d.cpp" "tests/CMakeFiles/landau_tests.dir/test_landau3d.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_landau3d.cpp.o.d"
  "/root/repo/tests/test_landau_tensor.cpp" "tests/CMakeFiles/landau_tests.dir/test_landau_tensor.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_landau_tensor.cpp.o.d"
  "/root/repo/tests/test_multigrid.cpp" "tests/CMakeFiles/landau_tests.dir/test_multigrid.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_multigrid.cpp.o.d"
  "/root/repo/tests/test_operator.cpp" "tests/CMakeFiles/landau_tests.dir/test_operator.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_operator.cpp.o.d"
  "/root/repo/tests/test_options.cpp" "tests/CMakeFiles/landau_tests.dir/test_options.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_options.cpp.o.d"
  "/root/repo/tests/test_quadrature.cpp" "tests/CMakeFiles/landau_tests.dir/test_quadrature.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_quadrature.cpp.o.d"
  "/root/repo/tests/test_quench.cpp" "tests/CMakeFiles/landau_tests.dir/test_quench.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_quench.cpp.o.d"
  "/root/repo/tests/test_rcm_band.cpp" "tests/CMakeFiles/landau_tests.dir/test_rcm_band.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_rcm_band.cpp.o.d"
  "/root/repo/tests/test_refine.cpp" "tests/CMakeFiles/landau_tests.dir/test_refine.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_refine.cpp.o.d"
  "/root/repo/tests/test_schedule_sim.cpp" "tests/CMakeFiles/landau_tests.dir/test_schedule_sim.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_schedule_sim.cpp.o.d"
  "/root/repo/tests/test_special_math.cpp" "tests/CMakeFiles/landau_tests.dir/test_special_math.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_special_math.cpp.o.d"
  "/root/repo/tests/test_species.cpp" "tests/CMakeFiles/landau_tests.dir/test_species.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_species.cpp.o.d"
  "/root/repo/tests/test_spitzer.cpp" "tests/CMakeFiles/landau_tests.dir/test_spitzer.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_spitzer.cpp.o.d"
  "/root/repo/tests/test_stream.cpp" "tests/CMakeFiles/landau_tests.dir/test_stream.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_stream.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/landau_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_transfer.cpp" "tests/CMakeFiles/landau_tests.dir/test_transfer.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_transfer.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/landau_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_vec_dense.cpp" "tests/CMakeFiles/landau_tests.dir/test_vec_dense.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_vec_dense.cpp.o.d"
  "/root/repo/tests/test_vtk.cpp" "tests/CMakeFiles/landau_tests.dir/test_vtk.cpp.o" "gcc" "tests/CMakeFiles/landau_tests.dir/test_vtk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/landau.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
