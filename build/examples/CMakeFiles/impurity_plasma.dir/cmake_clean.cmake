file(REMOVE_RECURSE
  "CMakeFiles/impurity_plasma.dir/impurity_plasma.cpp.o"
  "CMakeFiles/impurity_plasma.dir/impurity_plasma.cpp.o.d"
  "impurity_plasma"
  "impurity_plasma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impurity_plasma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
