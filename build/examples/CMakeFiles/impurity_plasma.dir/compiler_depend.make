# Empty compiler generated dependencies file for impurity_plasma.
# This may be replaced when dependencies are built.
