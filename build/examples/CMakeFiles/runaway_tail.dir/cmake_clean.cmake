file(REMOVE_RECURSE
  "CMakeFiles/runaway_tail.dir/runaway_tail.cpp.o"
  "CMakeFiles/runaway_tail.dir/runaway_tail.cpp.o.d"
  "runaway_tail"
  "runaway_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runaway_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
