# Empty dependencies file for runaway_tail.
# This may be replaced when dependencies are built.
