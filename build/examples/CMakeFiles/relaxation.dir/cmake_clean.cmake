file(REMOVE_RECURSE
  "CMakeFiles/relaxation.dir/relaxation.cpp.o"
  "CMakeFiles/relaxation.dir/relaxation.cpp.o.d"
  "relaxation"
  "relaxation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relaxation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
