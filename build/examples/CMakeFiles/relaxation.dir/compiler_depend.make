# Empty compiler generated dependencies file for relaxation.
# This may be replaced when dependencies are built.
