file(REMOVE_RECURSE
  "CMakeFiles/thermal_quench.dir/thermal_quench.cpp.o"
  "CMakeFiles/thermal_quench.dir/thermal_quench.cpp.o.d"
  "thermal_quench"
  "thermal_quench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_quench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
