# Empty compiler generated dependencies file for thermal_quench.
# This may be replaced when dependencies are built.
