# Empty compiler generated dependencies file for spitzer_resistivity.
# This may be replaced when dependencies are built.
