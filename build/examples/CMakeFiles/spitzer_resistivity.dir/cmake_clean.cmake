file(REMOVE_RECURSE
  "CMakeFiles/spitzer_resistivity.dir/spitzer_resistivity.cpp.o"
  "CMakeFiles/spitzer_resistivity.dir/spitzer_resistivity.cpp.o.d"
  "spitzer_resistivity"
  "spitzer_resistivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spitzer_resistivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
