file(REMOVE_RECURSE
  "CMakeFiles/collision_harness.dir/collision_harness.cpp.o"
  "CMakeFiles/collision_harness.dir/collision_harness.cpp.o.d"
  "collision_harness"
  "collision_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collision_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
