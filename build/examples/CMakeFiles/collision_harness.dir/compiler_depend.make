# Empty compiler generated dependencies file for collision_harness.
# This may be replaced when dependencies are built.
