file(REMOVE_RECURSE
  "liblandau.a"
)
