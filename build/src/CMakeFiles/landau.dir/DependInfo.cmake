
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advection.cpp" "src/CMakeFiles/landau.dir/core/advection.cpp.o" "gcc" "src/CMakeFiles/landau.dir/core/advection.cpp.o.d"
  "/root/repo/src/core/ip_data.cpp" "src/CMakeFiles/landau.dir/core/ip_data.cpp.o" "gcc" "src/CMakeFiles/landau.dir/core/ip_data.cpp.o.d"
  "/root/repo/src/core/jacobian.cpp" "src/CMakeFiles/landau.dir/core/jacobian.cpp.o" "gcc" "src/CMakeFiles/landau.dir/core/jacobian.cpp.o.d"
  "/root/repo/src/core/kernel_cpu.cpp" "src/CMakeFiles/landau.dir/core/kernel_cpu.cpp.o" "gcc" "src/CMakeFiles/landau.dir/core/kernel_cpu.cpp.o.d"
  "/root/repo/src/core/kernel_cuda.cpp" "src/CMakeFiles/landau.dir/core/kernel_cuda.cpp.o" "gcc" "src/CMakeFiles/landau.dir/core/kernel_cuda.cpp.o.d"
  "/root/repo/src/core/kernel_kokkos.cpp" "src/CMakeFiles/landau.dir/core/kernel_kokkos.cpp.o" "gcc" "src/CMakeFiles/landau.dir/core/kernel_kokkos.cpp.o.d"
  "/root/repo/src/core/landau_tensor.cpp" "src/CMakeFiles/landau.dir/core/landau_tensor.cpp.o" "gcc" "src/CMakeFiles/landau.dir/core/landau_tensor.cpp.o.d"
  "/root/repo/src/core/multigrid.cpp" "src/CMakeFiles/landau.dir/core/multigrid.cpp.o" "gcc" "src/CMakeFiles/landau.dir/core/multigrid.cpp.o.d"
  "/root/repo/src/core/operator.cpp" "src/CMakeFiles/landau.dir/core/operator.cpp.o" "gcc" "src/CMakeFiles/landau.dir/core/operator.cpp.o.d"
  "/root/repo/src/core/species.cpp" "src/CMakeFiles/landau.dir/core/species.cpp.o" "gcc" "src/CMakeFiles/landau.dir/core/species.cpp.o.d"
  "/root/repo/src/exec/schedule_sim.cpp" "src/CMakeFiles/landau.dir/exec/schedule_sim.cpp.o" "gcc" "src/CMakeFiles/landau.dir/exec/schedule_sim.cpp.o.d"
  "/root/repo/src/exec/stream.cpp" "src/CMakeFiles/landau.dir/exec/stream.cpp.o" "gcc" "src/CMakeFiles/landau.dir/exec/stream.cpp.o.d"
  "/root/repo/src/exec/thread_pool.cpp" "src/CMakeFiles/landau.dir/exec/thread_pool.cpp.o" "gcc" "src/CMakeFiles/landau.dir/exec/thread_pool.cpp.o.d"
  "/root/repo/src/fem/dofmap.cpp" "src/CMakeFiles/landau.dir/fem/dofmap.cpp.o" "gcc" "src/CMakeFiles/landau.dir/fem/dofmap.cpp.o.d"
  "/root/repo/src/fem/fespace.cpp" "src/CMakeFiles/landau.dir/fem/fespace.cpp.o" "gcc" "src/CMakeFiles/landau.dir/fem/fespace.cpp.o.d"
  "/root/repo/src/fem/lagrange.cpp" "src/CMakeFiles/landau.dir/fem/lagrange.cpp.o" "gcc" "src/CMakeFiles/landau.dir/fem/lagrange.cpp.o.d"
  "/root/repo/src/fem/quadrature.cpp" "src/CMakeFiles/landau.dir/fem/quadrature.cpp.o" "gcc" "src/CMakeFiles/landau.dir/fem/quadrature.cpp.o.d"
  "/root/repo/src/fem/tabulation.cpp" "src/CMakeFiles/landau.dir/fem/tabulation.cpp.o" "gcc" "src/CMakeFiles/landau.dir/fem/tabulation.cpp.o.d"
  "/root/repo/src/fem/transfer.cpp" "src/CMakeFiles/landau.dir/fem/transfer.cpp.o" "gcc" "src/CMakeFiles/landau.dir/fem/transfer.cpp.o.d"
  "/root/repo/src/la/band.cpp" "src/CMakeFiles/landau.dir/la/band.cpp.o" "gcc" "src/CMakeFiles/landau.dir/la/band.cpp.o.d"
  "/root/repo/src/la/band_device.cpp" "src/CMakeFiles/landau.dir/la/band_device.cpp.o" "gcc" "src/CMakeFiles/landau.dir/la/band_device.cpp.o.d"
  "/root/repo/src/la/csr.cpp" "src/CMakeFiles/landau.dir/la/csr.cpp.o" "gcc" "src/CMakeFiles/landau.dir/la/csr.cpp.o.d"
  "/root/repo/src/la/dense.cpp" "src/CMakeFiles/landau.dir/la/dense.cpp.o" "gcc" "src/CMakeFiles/landau.dir/la/dense.cpp.o.d"
  "/root/repo/src/la/gmres.cpp" "src/CMakeFiles/landau.dir/la/gmres.cpp.o" "gcc" "src/CMakeFiles/landau.dir/la/gmres.cpp.o.d"
  "/root/repo/src/la/rcm.cpp" "src/CMakeFiles/landau.dir/la/rcm.cpp.o" "gcc" "src/CMakeFiles/landau.dir/la/rcm.cpp.o.d"
  "/root/repo/src/la/vec.cpp" "src/CMakeFiles/landau.dir/la/vec.cpp.o" "gcc" "src/CMakeFiles/landau.dir/la/vec.cpp.o.d"
  "/root/repo/src/landau3d/operator3d.cpp" "src/CMakeFiles/landau.dir/landau3d/operator3d.cpp.o" "gcc" "src/CMakeFiles/landau.dir/landau3d/operator3d.cpp.o.d"
  "/root/repo/src/landau3d/space3d.cpp" "src/CMakeFiles/landau.dir/landau3d/space3d.cpp.o" "gcc" "src/CMakeFiles/landau.dir/landau3d/space3d.cpp.o.d"
  "/root/repo/src/mesh/forest.cpp" "src/CMakeFiles/landau.dir/mesh/forest.cpp.o" "gcc" "src/CMakeFiles/landau.dir/mesh/forest.cpp.o.d"
  "/root/repo/src/mesh/refine.cpp" "src/CMakeFiles/landau.dir/mesh/refine.cpp.o" "gcc" "src/CMakeFiles/landau.dir/mesh/refine.cpp.o.d"
  "/root/repo/src/quench/model.cpp" "src/CMakeFiles/landau.dir/quench/model.cpp.o" "gcc" "src/CMakeFiles/landau.dir/quench/model.cpp.o.d"
  "/root/repo/src/quench/source.cpp" "src/CMakeFiles/landau.dir/quench/source.cpp.o" "gcc" "src/CMakeFiles/landau.dir/quench/source.cpp.o.d"
  "/root/repo/src/quench/spitzer.cpp" "src/CMakeFiles/landau.dir/quench/spitzer.cpp.o" "gcc" "src/CMakeFiles/landau.dir/quench/spitzer.cpp.o.d"
  "/root/repo/src/solver/implicit.cpp" "src/CMakeFiles/landau.dir/solver/implicit.cpp.o" "gcc" "src/CMakeFiles/landau.dir/solver/implicit.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/landau.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/landau.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/options.cpp" "src/CMakeFiles/landau.dir/util/options.cpp.o" "gcc" "src/CMakeFiles/landau.dir/util/options.cpp.o.d"
  "/root/repo/src/util/profiler.cpp" "src/CMakeFiles/landau.dir/util/profiler.cpp.o" "gcc" "src/CMakeFiles/landau.dir/util/profiler.cpp.o.d"
  "/root/repo/src/util/special_math.cpp" "src/CMakeFiles/landau.dir/util/special_math.cpp.o" "gcc" "src/CMakeFiles/landau.dir/util/special_math.cpp.o.d"
  "/root/repo/src/util/table_writer.cpp" "src/CMakeFiles/landau.dir/util/table_writer.cpp.o" "gcc" "src/CMakeFiles/landau.dir/util/table_writer.cpp.o.d"
  "/root/repo/src/util/vtk.cpp" "src/CMakeFiles/landau.dir/util/vtk.cpp.o" "gcc" "src/CMakeFiles/landau.dir/util/vtk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
