# Empty compiler generated dependencies file for landau.
# This may be replaced when dependencies are built.
