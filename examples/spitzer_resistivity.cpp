// Spitzer resistivity verification (paper §IV-B / Fig. 4): evolve an
// electron-ion plasma under a small fixed E_z until the current reaches a
// quasi-equilibrium and compare eta = E/J with the Spitzer formula.
//
//   ./spitzer_resistivity [-z 1] [-e_field 2e-3] [-dt 1.0] [-max_steps 80]

#include <cstdio>

#include "quench/model.h"
#include "quench/spitzer.h"
#include "util/options.h"
#include "util/table_writer.h"

using namespace landau;
using namespace landau::quench;

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const double z = opts.get<double>("z", 1.0, "ion effective charge Z");
  const double e_z = opts.get<double>("e_field", 2e-3, "applied E_z (normalized)");
  const double dt = opts.get<double>("dt", 1.0, "time step");
  const int max_steps = opts.get<int>("max_steps", 80, "step budget");
  const double ion_mass =
      opts.get<double>("ion_mass", 400.0, "ion mass override (m_e; 0 = physical)");

  auto species = SpeciesSet::electron_ion(z);
  if (ion_mass > 0) species[1].mass = ion_mass;

  LandauOptions lopts = LandauOptions::from_options(opts);
  lopts.cells_per_thermal = opts.get<double>("landau_cells_per_thermal", 0.9, "");
  lopts.max_levels = opts.get<int>("landau_max_levels", 5, "");
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  LandauOperator op(species, lopts);
  std::printf("Z = %g plasma: %zu cells, %zu dofs/species\n", z, op.forest().n_leaves(),
              op.n_dofs_per_species());

  const auto res = measure_resistivity(op, e_z, dt, max_steps);
  const double eta_sp = spitzer_eta(z);

  TableWriter table("Spitzer resistivity verification (normalized units)");
  table.header({"Z", "eta = E/J", "eta_Spitzer", "ratio", "steps", "steady", "rejects"});
  table.add_row().cell(z, 1).cell(res.eta, 6).cell(eta_sp, 6).cell(res.eta / eta_sp, 4)
      .cell(res.steps).cell(res.converged ? "yes" : "no")
      .cell(static_cast<long long>(res.rejections));
  std::printf("%s", table.str().c_str());
  if (res.stagnated_steps > 0)
    std::printf("note: %ld accepted step(s) stagnated at the quasi-Newton floor\n",
                res.stagnated_steps);
  return 0;
}
