// Anisotropic-Maxwellian relaxation: the classic collision-operator demo.
//
// An electron distribution with different parallel and perpendicular
// temperatures isotropizes under self-collisions while the total energy
// stays constant. Writes a CSV time series of T_par, T_perp and entropy.
//
//   ./relaxation [-nsteps 20] [-dt 0.25] [-csv relaxation.csv]

#include <cmath>
#include <cstdio>

#include "core/operator.h"
#include "solver/step_controller.h"
#include "util/options.h"
#include "util/special_math.h"
#include "util/table_writer.h"

using namespace landau;

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const int nsteps = opts.get<int>("nsteps", 20, "number of implicit steps");
  const double dt = opts.get<double>("dt", 0.25, "time step");
  const double th_perp = opts.get<double>("theta_perp", 0.5, "initial perpendicular theta");
  const double th_par = opts.get<double>("theta_par", 1.2, "initial parallel theta");
  const std::string csv = opts.get<std::string>("csv", "", "optional CSV output path");
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  SpeciesSet electron(
      {{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0}});
  LandauOptions lopts = LandauOptions::from_options(opts);
  lopts.max_levels = opts.get<int>("landau_max_levels", 3, "");
  LandauOperator op(electron, lopts);

  la::Vec f = op.project([&](int, double r, double z) {
    return 1.0 / (std::pow(kPi, 1.5) * th_perp * std::sqrt(th_par)) *
           std::exp(-r * r / th_perp - z * z / th_par);
  });

  auto temps = [&](const la::Vec& state) {
    auto b = op.block(state, 0);
    const double n = op.space().moment(b, [](double, double) { return 1.0; });
    const double tp = op.space().moment(b, [](double r, double) { return r * r; }) / n / 2.0;
    const double tz = op.space().moment(b, [](double, double z) { return z * z; }) / n;
    return std::pair<double, double>{tz, tp}; // parallel, perpendicular (per dof)
  };

  TableWriter table("anisotropic relaxation (normalized theta per degree of freedom)");
  table.header({"t", "theta_par", "theta_perp", "anisotropy", "energy"});
  // The controller wraps the implicit step with reject/retry recovery; with a
  // fixed target dt (growth = 1) it only intervenes when a step fails.
  ImplicitIntegrator integrator(op);
  StepControllerOptions copts;
  copts.dt_initial = dt;
  copts.dt_min = dt * 1e-3;
  copts.growth = 1.0;
  StepController controller(integrator, copts);
  double t = 0.0;
  for (int s = 0; s <= nsteps; ++s) {
    const auto [tz, tp] = temps(f);
    table.add_row().cell(t, 3).cell(tz, 6).cell(tp, 6).cell(tz / tp, 4).cell(
        op.moments(f, 0).energy, 9);
    if (s < nsteps) t += controller.advance(f).dt;
  }
  std::printf("%s", table.str().c_str());
  if (!csv.empty()) {
    table.write_csv(csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
