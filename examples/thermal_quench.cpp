// The full thermal quench scenario (paper §IV-C / Fig. 5): quasi-equilibrium
// current under E = 0.5 E_c, then cold-plasma injection with Spitzer E = eta J
// feedback. Prints and optionally writes the four Fig. 5 profiles
// (n_e, J, E, T_e) as a time series.
//
//   ./thermal_quench [-dt 0.5] [-max_steps 60] [-injected 3] [-csv quench.csv]
//
// Robustness knobs: the run goes through the failure-recovering step
// controller (-dt_min, -max_retries, -backoff), can checkpoint every N
// accepted steps and resume mid-scenario (-checkpoint quench.ckpt
// -checkpoint_interval 10 -resume), and accepts an injected fault spec for
// drills (-fault "throw@factor@step=5", also via LANDAU_FAULT_SPEC).
//
// Telemetry: -landau_trace trace.json writes a Chrome/Perfetto span trace of
// the whole run (kernel launches, solver phases) and prints the self-time
// tree; -landau_step_log steps.ndjson appends one JSON record per accepted
// step (dt, Newton/GMRES iterations, rejections, n_e, J, E, T_e). The same
// switches exist as LANDAU_TRACE / LANDAU_STEP_LOG environment variables for
// binaries without option plumbing.

#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "quench/model.h"
#include "util/options.h"
#include "util/robustness.h"
#include "util/table_writer.h"

using namespace landau;
using namespace landau::quench;

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);

  QuenchOptions qopts;
  qopts.dt = opts.get<double>("dt", 0.5, "time step (collision times)");
  qopts.max_steps = opts.get<int>("max_steps", 60, "total steps");
  qopts.e_initial_over_ec = opts.get<double>("e0_over_ec", 0.5, "initial E / E_c");
  qopts.te_ev = opts.get<double>("te_ev", 3000.0, "reference T_e in eV (sets E_c)");
  qopts.source.total_injected = opts.get<double>("injected", 3.0, "injected density / n0");
  qopts.source.t_start = opts.get<double>("pulse_start", 0.5, "pulse start after switchover");
  qopts.source.duration = opts.get<double>("pulse_duration", 8.0, "pulse duration");
  qopts.source.cold_temperature = opts.get<double>("cold_t", 0.05, "injected T / T_e0");
  const std::string csv = opts.get<std::string>("csv", "", "optional CSV output path");
  const double ion_mass = opts.get<double>("ion_mass", 200.0, "ion mass (m_e units)");
  qopts.controller.dt_min = opts.get<double>("dt_min", qopts.controller.dt_min,
                                             "smallest dt the controller may retry at");
  qopts.controller.backoff =
      opts.get<double>("backoff", qopts.controller.backoff, "dt multiplier on a rejected step");
  qopts.controller.max_retries =
      opts.get<int>("max_retries", qopts.controller.max_retries, "retries before giving up");
  qopts.checkpoint_path = opts.get<std::string>("checkpoint", "", "checkpoint file path");
  qopts.checkpoint_interval =
      opts.get<int>("checkpoint_interval", 10, "accepted steps between checkpoints");
  qopts.resume = opts.get<bool>("resume", false, "resume from -checkpoint if it exists");
  robustness().paranoid =
      opts.get<bool>("paranoid", false, "finite-value audits at the operator boundary");
  const std::string fault =
      opts.get<std::string>("fault", "", "fault-injection spec (see util/robustness.h)");
  if (!fault.empty()) FaultInjector::instance().configure(fault);
  const std::string trace_path = opts.get<std::string>(
      "landau_trace", "", "write a Chrome/Perfetto trace of the run to this path");
  const std::string step_log_path = opts.get<std::string>(
      "landau_step_log", "", "append one NDJSON record per accepted step to this path");
  if (!trace_path.empty()) {
    obs::Tracer::instance().set_path(trace_path); // written at exit + self-time report
    obs::Tracer::instance().enable();
  }
  if (!step_log_path.empty()) obs::StepLog::instance().set_path(step_log_path);

  auto species = SpeciesSet::electron_deuterium();
  if (ion_mass > 0) species[1].mass = ion_mass;
  LandauOptions lopts = LandauOptions::from_options(opts);
  lopts.cells_per_thermal = opts.get<double>("landau_cells_per_thermal", 0.8, "");
  lopts.max_levels = opts.get<int>("landau_max_levels", 4, "");
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  LandauOperator op(species, lopts);
  std::printf("thermal quench: %zu cells, %zu dofs/species\n", op.forest().n_leaves(),
              op.n_dofs_per_species());

  QuenchModel model(op, qopts);
  const auto result = model.run();

  TableWriter table("thermal quench profiles (normalized; cf. paper Fig. 5)");
  table.header({"t", "n_e", "J", "E", "T_e", "tail_frac", "phase", "newton", "dt", "rej"});
  for (const auto& s : result.history)
    table.add_row().cell(s.t, 2).cell(s.n_e, 5).cell(s.j_z, 6).cell(s.e_z, 6).cell(s.t_e, 5)
        .cell(s.runaway_fraction, 6).cell(s.quench_phase ? "quench" : "spitzer")
        .cell(s.newton_iterations).cell(s.dt, 3).cell(s.rejections);
  std::printf("%s", table.str().c_str());
  std::printf("switchover at step %d; injected mass %.4f\n", result.switchover_step,
              result.mass_injected);
  if (result.resumed) std::printf("resumed from checkpoint %s\n", qopts.checkpoint_path.c_str());
  if (result.total_rejections > 0 || result.stagnated_steps > 0)
    std::printf("controller: %ld rejected attempt(s), %ld stagnated step(s)\n",
                result.total_rejections, result.stagnated_steps);
  if (!csv.empty()) {
    table.write_csv(csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
