// Runaway-seed dynamics on a tail-refined mesh (§IV): a bulk Maxwellian plus
// a warm beam ("bump on tail") under a parallel electric field. The beam
// sits in the weakly collisional tail: with a strong enough field it keeps
// accelerating (friction falls with energy) while the bulk barely drifts —
// the seed-runaway mechanism the quench model feeds.
//
//   ./runaway_tail [-e_field 0.02] [-beam_v 2.2] [-nsteps 20] [-dt 0.5]

#include <cmath>
#include <cstdio>

#include "core/operator.h"
#include "solver/implicit.h"
#include "util/options.h"
#include "util/special_math.h"
#include "util/table_writer.h"

using namespace landau;

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const double e_z = opts.get<double>("e_field", 0.02, "applied E_z (normalized)");
  const double beam_v = opts.get<double>("beam_v", 2.2, "beam parallel velocity (v0)");
  const double beam_n = opts.get<double>("beam_n", 0.05, "beam density / n0");
  const double beam_t = opts.get<double>("beam_t", 0.1, "beam temperature / T_e");
  const int nsteps = opts.get<int>("nsteps", 20, "steps");
  const double dt = opts.get<double>("dt", 0.5, "time step");
  const std::string csv = opts.get<std::string>("csv", "", "optional CSV output");

  SpeciesSet electron(
      {{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0}});
  LandauOptions lopts = LandauOptions::from_options(opts);
  lopts.radius = opts.get<double>("landau_radius", 6.0, "");
  lopts.max_levels = opts.get<int>("landau_max_levels", 4, "");
  // Refine a strip along -z where the (negatively charged) beam accelerates.
  lopts.tail_zones.push_back({-lopts.radius, -beam_v + 1.0, 1.5, 0.4});
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  LandauOperator op(electron, lopts);
  std::printf("tail-refined mesh: %zu cells, %zu dofs\n", op.forest().n_leaves(),
              op.n_dofs_per_species());

  // Bulk + beam drifting toward -z (electrons accelerate against E).
  la::Vec f = op.project([&](int, double r, double z) {
    const double bulk = maxwellian_rz(r, z, 1.0, kPi / 4.0);
    const double beam = maxwellian_rz(r, z, beam_n, (kPi / 4.0) * beam_t, -beam_v);
    return bulk + beam;
  });

  auto beam_speed = [&](const la::Vec& state) {
    // Mean parallel velocity of the tail population (|v| > beam_v - 0.7).
    const double vc = beam_v - 0.7;
    auto b = op.block(state, 0);
    const double n = op.space().moment(
        b, [&](double r, double z) { return r * r + z * z > vc * vc ? 1.0 : 0.0; });
    const double pz = op.space().moment(
        b, [&](double r, double z) { return r * r + z * z > vc * vc ? z : 0.0; });
    return n > 0 ? pz / n : 0.0;
  };

  TableWriter table("bump-on-tail under E_z (normalized)");
  table.header({"t", "bulk drift", "tail <v_z>", "tail n", "total n"});
  NewtonOptions newton;
  newton.rtol = 1e-6;
  ImplicitIntegrator integrator(op, newton);
  double t = 0.0;
  for (int s = 0; s <= nsteps; ++s) {
    auto b = op.block(f, 0);
    const double n = op.space().moment(b, [](double, double) { return 1.0; });
    const double uz = op.space().moment(b, [](double, double z) { return z; }) / n;
    const double vc = beam_v - 0.7;
    const double tail_n = op.space().moment(
        b, [&](double r, double z) { return r * r + z * z > vc * vc ? 1.0 : 0.0; });
    table.add_row().cell(t, 2).cell(uz, 5).cell(beam_speed(f), 4).cell(tail_n, 5).cell(n, 7);
    if (s < nsteps) {
      integrator.step(f, dt, e_z);
      t += dt;
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nExpected: the tail population's |<v_z>| grows (runaway acceleration)\n"
              "while the bulk drift stays small (collisional friction); density exact.\n");
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
