// The throughput harness of §V (the paper's PETSc ex2 analog): many
// independent instances of the collision problem — one per configuration-
// space vertex in a real application — advance concurrently, each on its own
// asynchronous stream over the shared worker pool (the flat-MPI + MPS
// dispatch analog). Reports aggregate throughput in Newton iterations per
// second, the paper's figure of merit.
//
//   ./collision_harness [-processes 4] [-steps 3] [-workers 2] [-species 2]

#include <atomic>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/operator.h"
#include "exec/stream.h"
#include "solver/implicit.h"
#include "util/options.h"
#include "util/profiler.h"

using namespace landau;

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const int processes = opts.get<int>("processes", 4, "independent problem instances");
  const int steps = opts.get<int>("steps", 3, "implicit steps per instance");
  const double dt = opts.get<double>("dt", 0.5, "time step");
  const int workers = opts.get<int>("workers", 2, "shared pool workers (the 'GPU')");
  const int n_species = opts.get<int>("species", 2, "2 = e/D, 10 = e/D/8W");
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  SpeciesSet species =
      n_species >= 10 ? SpeciesSet::tungsten_plasma() : SpeciesSet::electron_deuterium();
  species[1].mass = 100.0;
  if (n_species >= 10)
    for (int s = 2; s < species.size(); ++s) species[s].mass = 1600.0;

  LandauOptions lopts = LandauOptions::from_options(opts);
  lopts.cells_per_thermal = opts.get<double>("landau_cells_per_thermal", 0.5, "");
  lopts.max_levels = opts.get<int>("landau_max_levels", 5, "");
  lopts.n_workers = 0; // instances share the harness pool below instead

  // One shared pool plays the device; each "process" is a stream of steps.
  exec::ThreadPool pool(static_cast<unsigned>(workers));

  struct Instance {
    std::unique_ptr<LandauOperator> op;
    std::unique_ptr<ImplicitIntegrator> integrator;
    la::Vec f;
  };
  std::vector<Instance> instances(static_cast<std::size_t>(processes));
  NewtonOptions newton;
  newton.rtol = 1e-6;
  newton.max_iterations = 10;
  for (auto& inst : instances) {
    inst.op = std::make_unique<LandauOperator>(species, lopts);
    inst.integrator = std::make_unique<ImplicitIntegrator>(*inst.op, newton);
    inst.f = inst.op->maxwellian_state({});
    // Amortized setup (first CPU assembly + RCM analysis, §III-F).
    inst.integrator->step(inst.f, dt);
  }
  std::printf("harness: %d instances x %d steps, %zu cells each, %d species, %d workers\n",
              processes, steps, instances[0].op->forest().n_leaves(), species.size(), workers);

  std::atomic<long> iterations{0};
  Stopwatch watch;
  {
    std::vector<std::unique_ptr<exec::Stream>> streams;
    for (int p = 0; p < processes; ++p) streams.push_back(std::make_unique<exec::Stream>(pool));
    for (int p = 0; p < processes; ++p) {
      auto& inst = instances[static_cast<std::size_t>(p)];
      for (int s = 0; s < steps; ++s)
        streams[static_cast<std::size_t>(p)]->enqueue([&inst, &iterations, dt] {
          const auto stats = inst.integrator->step(inst.f, dt);
          iterations.fetch_add(stats.newton_iterations);
        });
    }
    for (auto& s : streams) s->synchronize();
  }
  const double wall = watch.seconds();
  std::printf("total Newton iterations: %ld in %.3f s -> throughput %.1f it/s\n",
              iterations.load(), wall, static_cast<double>(iterations.load()) / wall);
  std::printf("(the paper's Table II measures this quantity across a Summit node;\n"
              " on a multi-core host, raise -workers and -processes to see scaling)\n");
  return 0;
}
