// The paper's production-like impurity plasma (§V): electrons, deuterium and
// eight tungsten charge states. Reports the single-grid vs multi-grid cost
// trade-off of §III-H (Table I's quantities) and takes implicit steps on the
// configured problem.
//
//   ./impurity_plasma [-nsteps 2] [-dt 0.5] [-full_mass false]

#include <cmath>
#include <cstdio>

#include "core/multigrid.h"
#include "core/operator.h"
#include "fem/fespace.h"
#include "mesh/refine.h"
#include "solver/implicit.h"
#include "util/options.h"
#include "util/table_writer.h"

using namespace landau;

namespace {

/// Mesh statistics for a set of species clusters sharing one grid.
struct GridCost {
  std::size_t cells = 0, ips = 0, equations = 0;
};

GridCost grid_cost(const std::vector<double>& vths, int n_species_on_grid, double cpt,
                   int max_levels) {
  mesh::VelocityMeshSpec spec;
  spec.radius = 5.0;
  spec.thermal_speeds = vths;
  spec.cells_per_thermal = cpt;
  spec.max_levels = max_levels;
  auto forest = mesh::build_velocity_mesh(spec);
  fem::FESpace fes(forest, 3);
  GridCost c;
  c.cells = forest.n_leaves();
  c.ips = fes.n_ips();
  c.equations = fes.n_dofs() * static_cast<std::size_t>(n_species_on_grid);
  return c;
}

} // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const int nsteps = opts.get<int>("nsteps", 2, "implicit steps to take");
  const double dt = opts.get<double>("dt", 0.5, "time step");
  const bool full_mass = opts.get<bool>("full_mass", false,
                                        "use physical W/D masses (much larger mesh)");
  const double cpt = opts.get<double>("cells_per_thermal", 0.7, "AMR resolution target");
  const int max_levels = opts.get<int>("max_levels", full_mass ? 14 : 6, "AMR depth cap");
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  auto species = SpeciesSet::tungsten_plasma();
  if (!full_mass) {
    // Compress the mass hierarchy so the demo runs quickly while keeping the
    // three-cluster thermal-speed structure (e >> D > W).
    species[1].mass = 100.0;
    for (int s = 2; s < species.size(); ++s) species[s].mass = 1600.0;
  }

  // --- §III-H cost analysis: 1 grid vs 3 grids vs 10 grids ----------------
  std::vector<double> all_vth;
  for (const auto& sp : species) all_vth.push_back(sp.thermal_speed());

  const auto one = grid_cost(all_vth, species.size(), cpt, max_levels);
  // A per-cluster grid is scaled to its own thermal speed, so each is the
  // unit single-species problem (the paper's 20-cell grid).
  const auto unit = grid_cost({std::sqrt(kPi) / 2.0}, 1, cpt, max_levels);
  TableWriter table("cost vs number of grids (10-species impurity plasma, cf. Table I)");
  table.header({"#grids", "N int. points", "Landau tensors (N^2)", "n equations"});
  auto tensors = [](std::size_t n) { return static_cast<long long>(n) * static_cast<long long>(n); };
  // 1 grid: all species share the wide-range mesh.
  table.add_row().cell(1).cell(static_cast<long long>(one.ips)).cell(tensors(one.ips)).cell(
      static_cast<long long>(one.equations));
  // 3 grids: clusters e | D | 8xW; equations shrink dramatically.
  const std::size_t ips3 = 3 * unit.ips;
  const std::size_t eq3 = 10 * unit.equations;
  table.add_row().cell(3).cell(static_cast<long long>(ips3)).cell(tensors(ips3)).cell(
      static_cast<long long>(eq3));
  // 10 grids: one per species; tensor work explodes, equations unchanged.
  const std::size_t ips10 = 10 * unit.ips;
  table.add_row().cell(10).cell(static_cast<long long>(ips10)).cell(tensors(ips10)).cell(
      static_cast<long long>(eq3));
  std::printf("%s\n", table.str().c_str());

  // --- solve on the shared grid -------------------------------------------
  LandauOptions lopts = LandauOptions::from_options(opts);
  lopts.cells_per_thermal = cpt;
  lopts.max_levels = max_levels;
  LandauOperator op(species, lopts);
  std::printf("single-grid operator: %zu cells, %zu dofs/species, %d species\n",
              op.forest().n_leaves(), op.n_dofs_per_species(), op.n_species());

  NewtonOptions newton;
  newton.rtol = 1e-6;
  newton.max_iterations = 20;
  la::Vec f = op.maxwellian_state();
  ImplicitIntegrator integrator(op, newton);
  for (int s = 0; s < nsteps; ++s) {
    const auto stats = integrator.step(f, dt);
    std::printf("step %d: %d Newton iterations, |G| = %.3e\n", s + 1, stats.newton_iterations,
                stats.residual_norm);
  }
  std::printf("band solver: %zu blocks (one per species), bandwidth %zu\n",
              integrator.band_blocks(), integrator.band_bandwidth());

  // --- the same plasma on per-cluster grids (§III-H, real operator) --------
  MultiGridLandauOperator mg(species, lopts);
  std::printf("\nmulti-grid operator: %d grids, %zu total IPs, %zu equations"
              " (single grid: %zu equations)\n",
              mg.n_grids(), mg.n_ips_total(), mg.n_total(), op.n_total());
  la::Vec fg = mg.maxwellian_state();
  ImplicitIntegrator mg_integrator(mg, newton);
  for (int s = 0; s < nsteps; ++s) {
    const auto stats = mg_integrator.step(fg, dt);
    std::printf("multi-grid step %d: %d Newton iterations, |G| = %.3e\n", s + 1,
                stats.newton_iterations, stats.residual_norm);
  }
  return 0;
}
