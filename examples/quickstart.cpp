// Quickstart: the 60-second tour of the library.
//
// Builds a two-species (electron/deuterium) plasma on an adaptively refined
// velocity mesh, takes a few fully implicit steps of the Landau collision
// operator, and prints the conserved moments — demonstrating that density,
// momentum and energy are preserved to solver tolerance.
//
//   ./quickstart [-landau_backend cpu|cuda|kokkos] [-nsteps 5] [-dt 0.5]

#include <cstdio>

#include "core/operator.h"
#include "util/vtk.h"
#include "solver/implicit.h"
#include "util/options.h"

using namespace landau;

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);

  const int nsteps = opts.get<int>("nsteps", 5, "number of implicit steps");
  const double dt = opts.get<double>("dt", 0.5, "time step (electron collision times)");

  // Species: electrons and (mass-reduced for this demo) deuterium.
  auto species = SpeciesSet::electron_deuterium();
  species[1].mass = opts.get<double>("ion_mass", 100.0, "ion mass (m_e units)");

  LandauOptions lopts = LandauOptions::from_options(opts);
  lopts.cells_per_thermal = opts.get<double>("landau_cells_per_thermal", 0.8, "");
  lopts.max_levels = opts.get<int>("landau_max_levels", 4, "");

  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  LandauOperator op(species, lopts);
  std::printf("mesh: %zu cells, %zu dofs/species, %d species, backend %s\n",
              op.forest().n_leaves(), op.n_dofs_per_species(), op.n_species(),
              backend_name(op.options().backend));

  // Start slightly out of equilibrium: drifting electrons.
  const double drifts[2] = {0.3, 0.0};
  la::Vec f = op.maxwellian_state(drifts);

  ImplicitIntegrator integrator(op);
  auto report = [&](int step) {
    const auto me = op.moments(f, 0);
    const auto mi = op.moments(f, 1);
    std::printf("step %2d  n_e=%.12f  P_z=%+.12e  E=%.12f  T_e=%.6f\n", step, me.density,
                me.momentum_z + mi.momentum_z, me.energy + mi.energy,
                op.electron_temperature(f));
  };
  report(0);
  for (int s = 1; s <= nsteps; ++s) {
    const auto stats = integrator.step(f, dt);
    if (!stats.converged) std::printf("  (Newton did not fully converge)\n");
    report(s);
  }
  std::printf("total Newton iterations: %ld\n", integrator.total_newton_iterations());

  const std::string vtk = opts.get<std::string>("vtk", "", "write final electron f to VTK file");
  if (!vtk.empty()) {
    la::Vec fe(std::vector<double>(op.block(f, 0).begin(), op.block(f, 0).end()));
    write_vtk(vtk, op.space(), fe, "f_e");
    std::printf("wrote %s\n", vtk.c_str());
  }
  return 0;
}
