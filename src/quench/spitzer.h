#pragma once
// Spitzer resistivity (eq. 12) in the solver's normalized units, plus the
// Connor-Hastie critical field used to scale the quench model's E (§IV).
//
// Physical form (parallel resistivity):
//   eta = (4 sqrt(2 pi) / 3) Z e^2 sqrt(m_e) ln(Lambda)
//         / ((4 pi eps0)^2 (k T_e)^{3/2}) * F(Z),
//   F(Z) = (1 + 1.198 Z + 0.222 Z^2) / (1 + 2.966 Z + 0.753 Z^2).
//
// Normalized with E in t0 e E/(m_e v0) units and J in n0 e v0 units (so that
// eta_norm = E_norm / J_norm), substituting t0 and v0 = sqrt(8 kT_e/pi m_e):
//   eta_norm(T=T_e0, Z) = (4/3) sqrt(2 pi) / (2 pi) * (8/pi)^{3/2} * Z F(Z)
// and eta_norm scales as (T/T_e0)^{-3/2}.

namespace landau::quench {

/// The Z-dependence factor F(Z) of eq. (12).
double spitzer_f(double z);

/// Normalized Spitzer resistivity at electron temperature t_rel = T/T_e0.
double spitzer_eta(double z, double t_rel = 1.0);

/// Connor-Hastie critical field in normalized units:
/// E_c = n e^3 ln(Lambda) / (4 pi eps0^2 m_e c^2)  =>  2 n_rel v0^2/c^2,
/// which needs the physical reference temperature (v0^2/c^2 = (8/pi) kT_e/m_e c^2).
double critical_field(double te_ev, double n_rel = 1.0);

/// Dreicer field (Dreicer 1959): the field at which even thermal electrons
/// run away, E_D = n e^3 ln(Lambda) / (4 pi eps0^2 k T) = E_c * (m_e c^2 / kT).
/// t_rel is the local T_e relative to the reference te_ev.
double dreicer_field(double te_ev, double n_rel = 1.0, double t_rel = 1.0);

} // namespace landau::quench
