#pragma once
// The cold-plasma injection source of the thermal quench model (§IV-C):
// a quasi-neutral pulse of cold electrons and ions with a sinusoidal time
// envelope, normalized so the total injected electron density is a chosen
// multiple of the initial density (the paper injects 5x).

#include "core/operator.h"
#include "la/vec.h"

namespace landau::quench {

struct SourceSpec {
  double total_injected = 5.0;   // electron density injected / n0
  double t_start = 0.0;          // pulse start (t0 units)
  double duration = 1.0;         // pulse length
  double cold_temperature = 0.01; // injected plasma T / T_e0
};

/// Time-dependent cold source: shape(t) * per-species cold Maxwellians.
class ColdPulseSource {
public:
  ColdPulseSource(const LandauOperator& op, SourceSpec spec);

  /// sin^2 envelope integrating to `total_injected` over the pulse.
  double rate(double t) const;

  /// Full-state df/dt source vector at time t (zero outside the pulse).
  /// Returns true if the source is active (nonzero).
  bool evaluate(double t, la::Vec* out) const;

  const SourceSpec& spec() const { return spec_; }

private:
  const LandauOperator& op_;
  SourceSpec spec_;
  la::Vec shape_; // per-unit-rate nodal source (cold Maxwellians, all species)
};

} // namespace landau::quench
