#pragma once
// The Vlasov-Maxwell-Landau thermal quench model (§IV-C), end to end:
//
//  1. Spitzer phase: evolve under a fixed small E_z until the current
//     reaches quasi-equilibrium (the resistivity verification setup, §IV-B).
//  2. Quench phase: switch to E <- eta_Spitzer(T_e, Z) * J, inject a pulse
//     of cold plasma; the temperature collapses, eta rises, E rises, fast
//     electrons accelerate — the seed-runaway dynamics of Fig. 5.
//
// The driver records the normalized profiles n_e, J, E, T_e each step
// (Fig. 5's four panels).

#include <vector>

#include "core/operator.h"
#include "quench/source.h"
#include "solver/implicit.h"

namespace landau::quench {

struct QuenchOptions {
  double dt = 0.25;               // step, electron collision times
  int max_steps = 200;
  double e_initial_over_ec = 0.5; // E0 = 0.5 E_c (the paper's experiment)
  double te_ev = 1000.0;          // physical reference temperature for E_c
  double equilibrium_tol = 2e-3;  // relative dJ/J per step for switchover
  int min_equilibrium_steps = 3;
  SourceSpec source;              // injected after switchover
  double tail_speed = 2.5;        // |v| (v0 units) above which electrons count
                                  // toward the seed-runaway diagnostic
  NewtonOptions newton;
  LinearSolverKind linear = LinearSolverKind::BandLU;
};

/// One recorded time point (all normalized; Fig. 5 quantities).
struct QuenchSample {
  double t = 0;
  double n_e = 0;
  double j_z = 0;
  double e_z = 0;
  double t_e = 0;
  double runaway_fraction = 0; // electron fraction above the tail threshold
  int newton_iterations = 0;
  bool quench_phase = false;
};

struct QuenchResult {
  std::vector<QuenchSample> history;
  double mass_injected = 0.0; // electron density added by the source
  int switchover_step = -1;   // first quench-phase step
};

class QuenchModel {
public:
  QuenchModel(LandauOperator& op, QuenchOptions opts);

  /// Run the full scenario; f is the evolving state (starts Maxwellian).
  QuenchResult run();

  /// Access the state after run().
  const la::Vec& state() const { return f_; }

private:
  LandauOperator& op_;
  QuenchOptions opts_;
  ImplicitIntegrator integrator_;
  la::Vec f_;
};

/// The §IV-B resistivity measurement: evolve under fixed e_z until J is
/// quasi-steady and return eta = E/J (used for Fig. 4).
struct ResistivityResult {
  double eta = 0;
  double j_z = 0;
  int steps = 0;
  bool converged = false;
};
ResistivityResult measure_resistivity(LandauOperator& op, double e_z, double dt, int max_steps,
                                      double tol = 1e-3,
                                      LinearSolverKind linear = LinearSolverKind::BandLU,
                                      NewtonOptions newton = {});

} // namespace landau::quench
