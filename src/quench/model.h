#pragma once
// The Vlasov-Maxwell-Landau thermal quench model (§IV-C), end to end:
//
//  1. Spitzer phase: evolve under a fixed small E_z until the current
//     reaches quasi-equilibrium (the resistivity verification setup, §IV-B).
//  2. Quench phase: switch to E <- eta_Spitzer(T_e, Z) * J, inject a pulse
//     of cold plasma; the temperature collapses, eta rises, E rises, fast
//     electrons accelerate — the seed-runaway dynamics of Fig. 5.
//
// The driver records the normalized profiles n_e, J, E, T_e each step
// (Fig. 5's four panels).
//
// Time advance goes through the failure-recovering StepController: a step
// that diverges, stagnates, produces NaNs, or throws from the linear solver
// is rolled back and retried at a smaller dt (growing back once the
// transient passes), so the scenario completes through the violent collapse.
// With `checkpoint_path`/`checkpoint_interval` set, the full run state —
// distribution, time, dt, controller state, phase flags and the recorded
// history — is checkpointed every N accepted steps (torn-write safe), and a
// run with `resume = true` continues mid-scenario, including across the
// Spitzer→quench switchover, reproducing the uninterrupted history.

#include <string>
#include <vector>

#include "core/operator.h"
#include "quench/source.h"
#include "solver/implicit.h"
#include "solver/step_controller.h"

namespace landau::quench {

struct QuenchOptions {
  double dt = 0.25;               // initial step, electron collision times
  int max_steps = 200;            // accepted steps (retries don't count)
  double e_initial_over_ec = 0.5; // E0 = 0.5 E_c (the paper's experiment)
  double te_ev = 1000.0;          // physical reference temperature for E_c
  double equilibrium_tol = 2e-3;  // relative dJ/J per step for switchover
  int min_equilibrium_steps = 3;
  SourceSpec source;              // injected after switchover
  double tail_speed = 2.5;        // |v| (v0 units) above which electrons count
                                  // toward the seed-runaway diagnostic
  NewtonOptions newton;
  LinearSolverKind linear = LinearSolverKind::BandLU;

  /// Reject/retry + adaptive-dt knobs. dt_initial/dt_max are derived from
  /// `dt` unless set explicitly (dt_initial <= 0 means "use dt").
  StepControllerOptions controller{.dt_initial = 0.0};

  /// Checkpoint/restart: with a nonempty path and interval > 0, the run
  /// state is saved every `checkpoint_interval` accepted steps. With
  /// `resume` set, run() loads `checkpoint_path` (if it exists) and
  /// continues mid-scenario instead of starting fresh.
  std::string checkpoint_path;
  int checkpoint_interval = 0;
  bool resume = false;
};

/// One recorded time point (all normalized; Fig. 5 quantities).
struct QuenchSample {
  double t = 0;
  double n_e = 0;
  double j_z = 0;
  double e_z = 0;
  double t_e = 0;
  double runaway_fraction = 0; // electron fraction above the tail threshold
  int newton_iterations = 0;
  bool quench_phase = false;
  double dt = 0;        // dt the accepted step used (0 for the initial sample)
  int rejections = 0;   // rejected attempts before this step was accepted
};

struct QuenchResult {
  std::vector<QuenchSample> history;
  double mass_injected = 0.0; // electron density added by the source
  int switchover_step = -1;   // first quench-phase step
  long total_rejections = 0;  // step-controller rejects over the whole run
  long stagnated_steps = 0;   // accepted steps whose Newton never met |G| tol
  bool resumed = false;       // run() continued from a checkpoint
};

class QuenchModel {
public:
  QuenchModel(LandauOperator& op, QuenchOptions opts);

  /// Run the full scenario; f is the evolving state (starts Maxwellian, or
  /// restored from the checkpoint when resuming).
  QuenchResult run();

  /// Access the state after run().
  const la::Vec& state() const { return f_; }

  const StepController& controller() const { return controller_; }

private:
  /// Persisted mid-run loop state (everything run() keeps between steps
  /// besides f_, the controller, and the history).
  struct LoopState {
    std::int64_t next_step = 0;
    double t = 0.0;
    double e_z = 0.0;
    double prev_j = 0.0;
    double quench_t0 = 0.0;
    std::int64_t steady_count = 0;
    std::int64_t quench_phase = 0;
  };

  void save_checkpoint(const QuenchResult& result, const LoopState& ls) const;
  bool load_checkpoint(QuenchResult& result, LoopState& ls);

  LandauOperator& op_;
  QuenchOptions opts_;
  ImplicitIntegrator integrator_;
  StepController controller_;
  la::Vec f_;
};

/// The §IV-B resistivity measurement: evolve under fixed e_z until J is
/// quasi-steady and return eta = E/J (used for Fig. 4). Runs through the
/// step controller, so failed steps are retried instead of being silently
/// recorded; rejection/stagnation totals are surfaced in the result.
struct ResistivityResult {
  double eta = 0;
  double j_z = 0;
  int steps = 0;
  bool converged = false;
  long rejections = 0;      // controller rejects over the measurement
  long stagnated_steps = 0; // accepted-but-stagnated steps
};
ResistivityResult measure_resistivity(LandauOperator& op, double e_z, double dt, int max_steps,
                                      double tol = 1e-3,
                                      LinearSolverKind linear = LinearSolverKind::BandLU,
                                      NewtonOptions newton = {});

} // namespace landau::quench
