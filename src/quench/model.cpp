#include "quench/model.h"

#include <cmath>

#include "obs/metrics.h"
#include "quench/spitzer.h"
#include "util/checkpoint.h"
#include "util/logging.h"
#include "util/profiler.h"

namespace landau::quench {

namespace {

StepControllerOptions resolve_controller(const QuenchOptions& opts) {
  StepControllerOptions c = opts.controller;
  if (c.dt_initial <= 0.0) c.dt_initial = opts.dt;
  c.dt_min = std::min(c.dt_min, c.dt_initial);
  return c;
}

} // namespace

QuenchModel::QuenchModel(LandauOperator& op, QuenchOptions opts)
    : op_(op), opts_(opts), integrator_(op, opts.newton, opts.linear),
      controller_(integrator_, resolve_controller(opts)), f_(op.maxwellian_state()) {}

void QuenchModel::save_checkpoint(const QuenchResult& result, const LoopState& ls) const {
  util::CheckpointWriter w;
  w.put_i64(ls.next_step);
  w.put_f64(ls.t);
  w.put_f64(ls.e_z);
  w.put_f64(ls.prev_j);
  w.put_f64(ls.quench_t0);
  w.put_i64(ls.steady_count);
  w.put_i64(ls.quench_phase);
  w.put_f64(result.mass_injected);
  w.put_i64(result.switchover_step);
  w.put_i64(result.total_rejections);
  w.put_i64(result.stagnated_steps);
  const auto cs = controller_.save_state();
  w.put_f64(cs.dt);
  w.put_i64(cs.easy_count);
  w.put_i64(cs.accepted);
  w.put_i64(cs.rejected);
  w.put_vec(f_.span());
  w.put_i64(static_cast<std::int64_t>(result.history.size()));
  for (const auto& s : result.history) {
    w.put_f64(s.t);
    w.put_f64(s.n_e);
    w.put_f64(s.j_z);
    w.put_f64(s.e_z);
    w.put_f64(s.t_e);
    w.put_f64(s.runaway_fraction);
    w.put_i64(s.newton_iterations);
    w.put_i64(s.quench_phase ? 1 : 0);
    w.put_f64(s.dt);
    w.put_i64(s.rejections);
  }
  w.save(opts_.checkpoint_path);
  static obs::Counter& ckpt_writes =
      obs::MetricsRegistry::instance().counter("quench.checkpoint.writes");
  ckpt_writes.inc();
  LANDAU_DEBUG("quench: checkpointed step " << ls.next_step << " to '" << opts_.checkpoint_path
                                            << "' (" << w.payload_bytes() << " bytes)");
}

bool QuenchModel::load_checkpoint(QuenchResult& result, LoopState& ls) {
  if (opts_.checkpoint_path.empty() || !util::checkpoint_exists(opts_.checkpoint_path))
    return false;
  util::CheckpointReader r(opts_.checkpoint_path);
  ls.next_step = r.get_i64();
  ls.t = r.get_f64();
  ls.e_z = r.get_f64();
  ls.prev_j = r.get_f64();
  ls.quench_t0 = r.get_f64();
  ls.steady_count = r.get_i64();
  ls.quench_phase = r.get_i64();
  result.mass_injected = r.get_f64();
  result.switchover_step = static_cast<int>(r.get_i64());
  result.total_rejections = r.get_i64();
  result.stagnated_steps = r.get_i64();
  StepController::PersistedState cs;
  cs.dt = r.get_f64();
  cs.easy_count = r.get_i64();
  cs.accepted = r.get_i64();
  cs.rejected = r.get_i64();
  controller_.restore_state(cs);
  la::Vec f = r.get_vec();
  LANDAU_ASSERT(f.size() == op_.n_total(),
                "checkpoint state size " << f.size() << " does not match operator ("
                                         << op_.n_total() << " dofs)");
  f_ = std::move(f);
  const auto n_hist = r.get_i64();
  result.history.clear();
  result.history.reserve(static_cast<std::size_t>(n_hist));
  for (std::int64_t i = 0; i < n_hist; ++i) {
    QuenchSample s;
    s.t = r.get_f64();
    s.n_e = r.get_f64();
    s.j_z = r.get_f64();
    s.e_z = r.get_f64();
    s.t_e = r.get_f64();
    s.runaway_fraction = r.get_f64();
    s.newton_iterations = static_cast<int>(r.get_i64());
    s.quench_phase = r.get_i64() != 0;
    s.dt = r.get_f64();
    s.rejections = static_cast<int>(r.get_i64());
    result.history.push_back(s);
  }
  LANDAU_ASSERT(r.exhausted(), "checkpoint has trailing bytes (schema mismatch)");
  result.resumed = true;
  LANDAU_INFO("quench: resumed from '" << opts_.checkpoint_path << "' at step " << ls.next_step
                                       << ", t = " << ls.t << ", dt = " << cs.dt
                                       << (ls.quench_phase ? " (quench phase)"
                                                           : " (spitzer phase)"));
  return true;
}

QuenchResult QuenchModel::run() {
  ScopedEvent ev("quench:run");
  QuenchResult result;
  const double z_eff = op_.species().z_eff();
  const double e_c = critical_field(opts_.te_ev, 1.0);

  ColdPulseSource source(op_, opts_.source);
  la::Vec src(op_.n_total());

  LoopState ls;
  ls.e_z = opts_.e_initial_over_ec * e_c;

  auto record = [&](const AdvanceStats* adv) {
    QuenchSample s;
    s.t = ls.t;
    s.n_e = op_.electron_density(f_);
    s.j_z = op_.current_z(f_);
    s.e_z = ls.e_z;
    s.t_e = op_.electron_temperature(f_);
    // Seed-runaway diagnostic: electron density beyond the tail threshold.
    const double vc2 = opts_.tail_speed * opts_.tail_speed;
    const double tail = op_.space().moment(
        op_.block(f_, 0), [&](double r, double z) { return r * r + z * z > vc2 ? 1.0 : 0.0; });
    s.runaway_fraction = s.n_e > 0 ? tail / s.n_e : 0.0;
    s.quench_phase = ls.quench_phase != 0;
    if (adv) {
      s.newton_iterations = adv->step.newton_iterations;
      s.dt = adv->dt;
      s.rejections = adv->rejections;
    }
    result.history.push_back(s);

    // NDJSON step log: one self-contained record per accepted step (plus the
    // initial state with step = 0 and no solver work). Inactive = one flag
    // test.
    auto& log = obs::StepLog::instance();
    if (log.active()) {
      auto& reg = obs::MetricsRegistry::instance();
      obs::JsonValue rec = obs::JsonValue::object();
      rec.set("kind", "quench");
      rec.set("step", static_cast<long long>(result.history.size() - 1));
      rec.set("t", s.t);
      rec.set("dt", s.dt);
      rec.set("newton_iterations", s.newton_iterations);
      rec.set("gmres_iterations_total",
              static_cast<long long>(reg.counter("solver.gmres.iterations").value()));
      rec.set("rejections", s.rejections);
      rec.set("n_e", s.n_e);
      rec.set("j_z", s.j_z);
      rec.set("e_z", s.e_z);
      rec.set("t_e", s.t_e);
      rec.set("runaway_fraction", s.runaway_fraction);
      rec.set("phase", s.quench_phase ? "quench" : "spitzer");
      rec.set("checkpoint_writes",
              static_cast<long long>(reg.counter("quench.checkpoint.writes").value()));
      log.write(rec);
    }
  };

  const bool checkpointing = !opts_.checkpoint_path.empty() && opts_.checkpoint_interval > 0;
  if (!(opts_.resume && load_checkpoint(result, ls))) record(nullptr);

  int accepted_since_checkpoint = 0;
  for (int step = static_cast<int>(ls.next_step); step < opts_.max_steps; ++step) {
    const la::Vec* src_ptr = nullptr;
    if (ls.quench_phase != 0) {
      // E follows Spitzer resistivity at the current temperature (E <- eta J),
      // the feedback loop of §IV-C.
      const double t_e = std::max(op_.electron_temperature(f_), 1e-3);
      ls.e_z = spitzer_eta(z_eff, t_e) * op_.current_z(f_);
      if (source.evaluate(ls.t - ls.quench_t0, &src)) src_ptr = &src;
    }

    // One accepted step (the controller retries internally; a persistent
    // failure throws rather than letting the scenario march on poisoned).
    const AdvanceStats adv = controller_.advance(f_, ls.e_z, src_ptr);
    if (src_ptr) result.mass_injected += adv.dt * source.rate(ls.t - ls.quench_t0);
    ls.t += adv.dt;
    result.total_rejections += adv.rejections;
    if (adv.step.stagnated && !adv.step.converged) ++result.stagnated_steps;
    record(&adv);

    const double j = result.history.back().j_z;
    if (ls.quench_phase == 0) {
      // Quasi-equilibrium current detection.
      const double dj = std::abs(j - ls.prev_j) / std::max(std::abs(j), 1e-12);
      ls.steady_count = (dj < opts_.equilibrium_tol) ? ls.steady_count + 1 : 0;
      ls.prev_j = j;
      if (ls.steady_count >= opts_.min_equilibrium_steps) {
        ls.quench_phase = 1;
        ls.quench_t0 = ls.t;
        result.switchover_step = step + 1;
        LANDAU_INFO("quench: switchover at t = " << ls.t << ", J = " << j);
      }
    }

    if (checkpointing && ++accepted_since_checkpoint >= opts_.checkpoint_interval) {
      ls.next_step = step + 1;
      save_checkpoint(result, ls);
      accepted_since_checkpoint = 0;
    }
  }
  if (result.total_rejections > 0 || result.stagnated_steps > 0)
    LANDAU_INFO("quench: completed with " << result.total_rejections << " rejected attempt(s), "
                                          << result.stagnated_steps << " stagnated step(s)");
  return result;
}

ResistivityResult measure_resistivity(LandauOperator& op, double e_z, double dt, int max_steps,
                                      double tol, LinearSolverKind linear, NewtonOptions newton) {
  ScopedEvent ev("quench:resistivity");
  ImplicitIntegrator integrator(op, newton, linear);
  StepControllerOptions copts;
  copts.dt_initial = dt;
  copts.dt_min = std::min(copts.dt_min, dt * 1e-3);
  copts.growth = 1.0; // fixed-dt measurement: recover from failures, don't adapt upward
  StepController controller(integrator, copts);
  la::Vec f = op.maxwellian_state();
  ResistivityResult result;
  double prev_j = 0.0;
  for (int step = 0; step < max_steps; ++step) {
    const AdvanceStats adv = controller.advance(f, e_z);
    ++result.steps;
    result.rejections += adv.rejections;
    if (adv.step.stagnated && !adv.step.converged) ++result.stagnated_steps;
    const double j = op.current_z(f);
    const double dj = std::abs(j - prev_j) / std::max(std::abs(j), 1e-300);
    auto& log = obs::StepLog::instance();
    if (log.active()) {
      obs::JsonValue rec = obs::JsonValue::object();
      rec.set("kind", "resistivity");
      rec.set("step", step);
      rec.set("dt", adv.dt);
      rec.set("newton_iterations", adv.step.newton_iterations);
      rec.set("rejections", adv.rejections);
      rec.set("j_z", j);
      rec.set("e_z", e_z);
      log.write(rec);
    }
    prev_j = j;
    if (step > 1 && dj < tol) {
      result.converged = true;
      break;
    }
  }
  result.j_z = prev_j;
  result.eta = prev_j != 0.0 ? e_z / prev_j : 0.0;
  if (result.rejections > 0 || result.stagnated_steps > 0)
    LANDAU_WARN("resistivity: " << result.rejections << " rejected attempt(s), "
                                << result.stagnated_steps << " stagnated step(s)");
  return result;
}

} // namespace landau::quench
