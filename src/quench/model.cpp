#include "quench/model.h"

#include <cmath>

#include "quench/spitzer.h"
#include "util/logging.h"
#include "util/profiler.h"

namespace landau::quench {

QuenchModel::QuenchModel(LandauOperator& op, QuenchOptions opts)
    : op_(op), opts_(opts), integrator_(op, opts.newton, opts.linear),
      f_(op.maxwellian_state()) {}

QuenchResult QuenchModel::run() {
  ScopedEvent ev("quench:run");
  QuenchResult result;
  const double z_eff = op_.species().z_eff();
  const double e_c = critical_field(opts_.te_ev, 1.0);
  double e_z = opts_.e_initial_over_ec * e_c;

  ColdPulseSource source(op_, opts_.source);
  la::Vec src(op_.n_total());

  bool quench_phase = false;
  double prev_j = 0.0;
  int steady_count = 0;
  double t = 0.0;

  auto record = [&](int newton_its) {
    QuenchSample s;
    s.t = t;
    s.n_e = op_.electron_density(f_);
    s.j_z = op_.current_z(f_);
    s.e_z = e_z;
    s.t_e = op_.electron_temperature(f_);
    // Seed-runaway diagnostic: electron density beyond the tail threshold.
    const double vc2 = opts_.tail_speed * opts_.tail_speed;
    const double tail = op_.space().moment(
        op_.block(f_, 0), [&](double r, double z) { return r * r + z * z > vc2 ? 1.0 : 0.0; });
    s.runaway_fraction = s.n_e > 0 ? tail / s.n_e : 0.0;
    s.newton_iterations = newton_its;
    s.quench_phase = quench_phase;
    result.history.push_back(s);
  };
  record(0);

  double quench_t0 = 0.0;
  for (int step = 0; step < opts_.max_steps; ++step) {
    const la::Vec* src_ptr = nullptr;
    if (quench_phase) {
      // E follows Spitzer resistivity at the current temperature (E <- eta J),
      // the feedback loop of §IV-C.
      const double t_e = std::max(op_.electron_temperature(f_), 1e-3);
      e_z = spitzer_eta(z_eff, t_e) * op_.current_z(f_);
      if (source.evaluate(t - quench_t0, &src)) {
        src_ptr = &src;
        result.mass_injected += opts_.dt * source.rate(t - quench_t0);
      }
    }

    const auto stats = integrator_.step(f_, opts_.dt, e_z, src_ptr);
    t += opts_.dt;
    record(stats.newton_iterations);

    const double j = result.history.back().j_z;
    if (!quench_phase) {
      // Quasi-equilibrium current detection.
      const double dj = std::abs(j - prev_j) / std::max(std::abs(j), 1e-12);
      steady_count = (dj < opts_.equilibrium_tol) ? steady_count + 1 : 0;
      prev_j = j;
      if (steady_count >= opts_.min_equilibrium_steps) {
        quench_phase = true;
        quench_t0 = t;
        result.switchover_step = step + 1;
        LANDAU_INFO("quench: switchover at t = " << t << ", J = " << j);
      }
    }
  }
  return result;
}

ResistivityResult measure_resistivity(LandauOperator& op, double e_z, double dt, int max_steps,
                                      double tol, LinearSolverKind linear, NewtonOptions newton) {
  ScopedEvent ev("quench:resistivity");
  ImplicitIntegrator integrator(op, newton, linear);
  la::Vec f = op.maxwellian_state();
  ResistivityResult result;
  double prev_j = 0.0;
  for (int step = 0; step < max_steps; ++step) {
    integrator.step(f, dt, e_z);
    ++result.steps;
    const double j = op.current_z(f);
    const double dj = std::abs(j - prev_j) / std::max(std::abs(j), 1e-300);
    prev_j = j;
    if (step > 1 && dj < tol) {
      result.converged = true;
      break;
    }
  }
  result.j_z = prev_j;
  result.eta = prev_j != 0.0 ? e_z / prev_j : 0.0;
  return result;
}

} // namespace landau::quench
