#include "quench/spitzer.h"

#include <cmath>

#include "util/special_math.h"

namespace landau::quench {

double spitzer_f(double z) {
  return (1.0 + 1.198 * z + 0.222 * z * z) / (1.0 + 2.966 * z + 0.753 * z * z);
}

double spitzer_eta(double z, double t_rel) {
  const double c0 = (4.0 / 3.0) * std::sqrt(2.0 * kPi) / (2.0 * kPi) * std::pow(8.0 / kPi, 1.5);
  return c0 * z * spitzer_f(z) * std::pow(t_rel, -1.5);
}

namespace {
constexpr double kMec2Ev = 510998.95;
}

double critical_field(double te_ev, double n_rel) {
  const double v02_over_c2 = (8.0 / kPi) * te_ev / kMec2Ev;
  return 2.0 * n_rel * v02_over_c2;
}

double dreicer_field(double te_ev, double n_rel, double t_rel) {
  return critical_field(te_ev, n_rel) * kMec2Ev / (te_ev * t_rel);
}

} // namespace landau::quench
