#include "quench/source.h"

#include <algorithm>
#include <cmath>

#include "util/special_math.h"

namespace landau::quench {

ColdPulseSource::ColdPulseSource(const LandauOperator& op, SourceSpec spec)
    : op_(op), spec_(spec) {
  // Quasi-neutral injection: every species receives a cold Maxwellian scaled
  // so the charge injected sums to zero and electrons receive unit density
  // per unit rate. Ion densities follow their equilibrium fractions.
  const auto& sp = op.species();
  double ion_charge = 0.0;
  for (int s = 1; s < sp.size(); ++s) ion_charge += sp[s].density * sp[s].charge;

  // The injected Maxwellian must be resolvable on the grid: clamp its width
  // to a couple of cells of the finest refinement (an unresolvable source
  // would alias and lose mass).
  double hmin = 1e30;
  for (const auto& lf : op.forest().leaves()) hmin = std::min(hmin, lf.box.dx());
  const double theta_floor = sqr(1.5 * hmin);

  shape_ = op.project([&](int s, double r, double z) {
    const double theta =
        std::max((kPi / 4.0) * spec_.cold_temperature / sp[s].mass, theta_floor);
    double n;
    if (s == 0) {
      n = 1.0; // unit electron density per unit rate
    } else {
      // Share the neutralizing ion density in proportion to equilibrium.
      n = ion_charge != 0.0 ? sp[s].density * sp[s].charge / ion_charge / sp[s].charge : 0.0;
    }
    return maxwellian_rz(r, z, n, theta);
  });

  // Renormalize each species block by its *discrete* density so injection is
  // exactly quasi-neutral and the mass accounting is exact on any mesh.
  for (int s = 0; s < sp.size(); ++s) {
    double target = s == 0 ? 1.0
                           : (ion_charge != 0.0 ? sp[s].density / ion_charge : 0.0);
    la::Vec blockvec(std::vector<double>(op.block(shape_, s).begin(), op.block(shape_, s).end()));
    const double discrete = op.space().moment(blockvec.span(), [](double, double) { return 1.0; });
    const double scale = (discrete != 0.0 && target != 0.0) ? target / discrete : 0.0;
    for (auto& v : op.block(shape_, s)) v *= scale;
  }
}

double ColdPulseSource::rate(double t) const {
  if (t < spec_.t_start || t > spec_.t_start + spec_.duration) return 0.0;
  const double x = (t - spec_.t_start) / spec_.duration;
  // sin^2 envelope: integral over the pulse = duration / 2.
  const double shape = std::sin(kPi * x);
  return spec_.total_injected * 2.0 / spec_.duration * shape * shape;
}

bool ColdPulseSource::evaluate(double t, la::Vec* out) const {
  const double a = rate(t);
  *out = shape_;
  out->scale(a);
  return a != 0.0;
}

} // namespace landau::quench
