#include "util/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/error.h"

namespace landau::util {

namespace {

constexpr char kMagic[4] = {'L', 'N', 'D', 'C'};

std::uint64_t fnv1a64(const unsigned char* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

template <class T> void append_raw(std::vector<unsigned char>& buf, const T& v) {
  const auto* p = reinterpret_cast<const unsigned char*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <class T> T read_raw(const unsigned char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

} // namespace

void CheckpointWriter::put_f64(double v) {
  buf_.push_back('d');
  append_raw(buf_, v);
}

void CheckpointWriter::put_i64(std::int64_t v) {
  buf_.push_back('i');
  append_raw(buf_, v);
}

void CheckpointWriter::put_vec(std::span<const double> v) {
  buf_.push_back('v');
  append_raw(buf_, static_cast<std::uint64_t>(v.size()));
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  buf_.insert(buf_.end(), p, p + v.size() * sizeof(double));
}

void CheckpointWriter::save(const std::string& path) const {
  std::vector<unsigned char> header;
  header.insert(header.end(), kMagic, kMagic + 4);
  append_raw(header, kCheckpointVersion);
  append_raw(header, static_cast<std::uint64_t>(buf_.size()));
  append_raw(header, fnv1a64(buf_.data(), buf_.size()));

  const std::string tmp = path + ".tmp";
  std::FILE* fp = std::fopen(tmp.c_str(), "wb");
  if (!fp) LANDAU_THROW("checkpoint: cannot open '" << tmp << "' for writing");
  const bool ok = std::fwrite(header.data(), 1, header.size(), fp) == header.size() &&
                  (buf_.empty() || std::fwrite(buf_.data(), 1, buf_.size(), fp) == buf_.size());
  const bool closed = std::fclose(fp) == 0;
  if (!ok || !closed) {
    std::remove(tmp.c_str());
    LANDAU_THROW("checkpoint: short write to '" << tmp << "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    LANDAU_THROW("checkpoint: rename '" << tmp << "' -> '" << path << "' failed: "
                                        << ec.message());
  }
}

CheckpointReader::CheckpointReader(const std::string& path) : path_(path) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (!fp) LANDAU_THROW("checkpoint: cannot open '" << path << "'");
  unsigned char header[4 + 4 + 8 + 8];
  if (std::fread(header, 1, sizeof(header), fp) != sizeof(header)) {
    std::fclose(fp);
    LANDAU_THROW("checkpoint '" << path << "': truncated header");
  }
  if (std::memcmp(header, kMagic, 4) != 0) {
    std::fclose(fp);
    LANDAU_THROW("checkpoint '" << path << "': bad magic (not a checkpoint file)");
  }
  const auto version = read_raw<std::uint32_t>(header + 4);
  if (version != kCheckpointVersion) {
    std::fclose(fp);
    LANDAU_THROW("checkpoint '" << path << "': version " << version << ", expected "
                                << kCheckpointVersion);
  }
  const auto payload = read_raw<std::uint64_t>(header + 8);
  const auto checksum = read_raw<std::uint64_t>(header + 16);
  buf_.resize(payload);
  const bool ok = buf_.empty() || std::fread(buf_.data(), 1, buf_.size(), fp) == buf_.size();
  std::fclose(fp);
  if (!ok) LANDAU_THROW("checkpoint '" << path << "': truncated payload");
  if (fnv1a64(buf_.data(), buf_.size()) != checksum)
    LANDAU_THROW("checkpoint '" << path << "': checksum mismatch (corrupt or torn write)");
}

void CheckpointReader::need(std::size_t bytes, const char* what) {
  if (pos_ + bytes > buf_.size())
    LANDAU_THROW("checkpoint '" << path_ << "': payload exhausted reading " << what);
}

double CheckpointReader::get_f64() {
  need(1 + sizeof(double), "double");
  if (buf_[pos_] != 'd')
    LANDAU_THROW("checkpoint '" << path_ << "': expected double, found tag '"
                                << static_cast<char>(buf_[pos_]) << "'");
  const double v = read_raw<double>(buf_.data() + pos_ + 1);
  pos_ += 1 + sizeof(double);
  return v;
}

std::int64_t CheckpointReader::get_i64() {
  need(1 + sizeof(std::int64_t), "int64");
  if (buf_[pos_] != 'i')
    LANDAU_THROW("checkpoint '" << path_ << "': expected int64, found tag '"
                                << static_cast<char>(buf_[pos_]) << "'");
  const auto v = read_raw<std::int64_t>(buf_.data() + pos_ + 1);
  pos_ += 1 + sizeof(std::int64_t);
  return v;
}

la::Vec CheckpointReader::get_vec() {
  need(1 + sizeof(std::uint64_t), "vector header");
  if (buf_[pos_] != 'v')
    LANDAU_THROW("checkpoint '" << path_ << "': expected vector, found tag '"
                                << static_cast<char>(buf_[pos_]) << "'");
  const auto n = read_raw<std::uint64_t>(buf_.data() + pos_ + 1);
  pos_ += 1 + sizeof(std::uint64_t);
  need(n * sizeof(double), "vector data");
  la::Vec v(n);
  std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(double));
  pos_ += n * sizeof(double);
  return v;
}

bool checkpoint_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec) && !ec;
}

} // namespace landau::util
