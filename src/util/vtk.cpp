#include "util/vtk.h"

#include <fstream>

#include "util/error.h"

namespace landau {
namespace {

std::ofstream open_vtk(const std::string& path, std::size_t n_points) {
  std::ofstream f(path);
  if (!f) LANDAU_THROW("cannot open VTK output file '" << path << "'");
  f << "# vtk DataFile Version 3.0\nlandau-cusim velocity-space output\nASCII\n"
    << "DATASET UNSTRUCTURED_GRID\nPOINTS " << n_points << " double\n";
  return f;
}

} // namespace

void write_vtk(const std::string& path, const fem::FESpace& fes, const la::Vec& field,
               const std::string& field_name) {
  LANDAU_ASSERT(field.size() == fes.n_dofs(), "field size mismatch");
  const auto& dm = fes.dofmap();
  const int k = fes.order();

  // Points: every node (constrained ones included; their values come from
  // the closure so the surface is continuous).
  std::vector<double> nodal(dm.n_nodes());
  dm.expand(field.span(), nodal);

  auto f = open_vtk(path, dm.n_nodes());
  for (std::size_t n = 0; n < dm.n_nodes(); ++n) {
    const auto p = dm.position(static_cast<std::int32_t>(n));
    f << p[0] << " " << p[1] << " 0\n";
  }

  // Cells: each Qk element as k x k linear quads over its node lattice.
  const std::size_t n_quads = fes.n_cells() * static_cast<std::size_t>(k) * static_cast<std::size_t>(k);
  f << "CELLS " << n_quads << " " << 5 * n_quads << "\n";
  const int n1 = k + 1;
  for (std::size_t c = 0; c < fes.n_cells(); ++c) {
    const auto nodes = dm.cell_nodes(c);
    for (int j = 0; j < k; ++j)
      for (int i = 0; i < k; ++i) {
        const int a = j * n1 + i;
        f << "4 " << nodes[static_cast<std::size_t>(a)] << " "
          << nodes[static_cast<std::size_t>(a + 1)] << " "
          << nodes[static_cast<std::size_t>(a + n1 + 1)] << " "
          << nodes[static_cast<std::size_t>(a + n1)] << "\n";
      }
  }
  f << "CELL_TYPES " << n_quads << "\n";
  for (std::size_t q = 0; q < n_quads; ++q) f << "9\n"; // VTK_QUAD

  f << "POINT_DATA " << dm.n_nodes() << "\nSCALARS " << field_name
    << " double 1\nLOOKUP_TABLE default\n";
  for (std::size_t n = 0; n < dm.n_nodes(); ++n) f << nodal[n] << "\n";
}

void write_vtk_mesh(const std::string& path, const fem::FESpace& fes) {
  const auto& forest = fes.forest();
  auto f = open_vtk(path, 4 * forest.n_leaves());
  for (const auto& lf : forest.leaves()) {
    f << lf.box.x0 << " " << lf.box.y0 << " 0\n" << lf.box.x1 << " " << lf.box.y0 << " 0\n"
      << lf.box.x1 << " " << lf.box.y1 << " 0\n" << lf.box.x0 << " " << lf.box.y1 << " 0\n";
  }
  f << "CELLS " << forest.n_leaves() << " " << 5 * forest.n_leaves() << "\n";
  for (std::size_t c = 0; c < forest.n_leaves(); ++c)
    f << "4 " << 4 * c << " " << 4 * c + 1 << " " << 4 * c + 2 << " " << 4 * c + 3 << "\n";
  f << "CELL_TYPES " << forest.n_leaves() << "\n";
  for (std::size_t c = 0; c < forest.n_leaves(); ++c) f << "9\n";
  f << "CELL_DATA " << forest.n_leaves() << "\nSCALARS level int 1\nLOOKUP_TABLE default\n";
  for (const auto& lf : forest.leaves()) f << lf.level << "\n";
}

} // namespace landau
