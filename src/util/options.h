#pragma once
// PETSc-style options database. Options are "-name value" pairs parsed from the
// command line (or set programmatically); components query them with typed
// getters that supply defaults and register a help string, so every example
// and benchmark supports -help.
//
//   Options opts;
//   opts.parse(argc, argv);
//   int nsteps = opts.get<int>("ts_max_steps", 100, "number of time steps");

#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"

namespace landau {

/// A typed key/value options database with self-documenting getters.
class Options {
public:
  Options() = default;

  /// Parse "-key value" and bare "-flag" arguments. Unrecognized positional
  /// arguments throw; "-help" sets the help flag queryable via help_requested().
  void parse(int argc, const char* const* argv);

  /// Set an option programmatically (stored as string, like a CLI value).
  void set(const std::string& name, const std::string& value);
  template <class T> void set(const std::string& name, const T& value) {
    std::ostringstream os;
    os << value;
    set(name, os.str());
  }

  bool has(const std::string& name) const { return values_.count(name) > 0; }
  bool help_requested() const { return help_; }

  /// Typed getter with default; records (name, default, help) for -help output.
  template <class T>
  T get(const std::string& name, const T& default_value, const std::string& help = "") {
    document(name, to_string(default_value), help);
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    return from_string<T>(name, it->second);
  }

  /// Getter for options that must be present.
  template <class T> T require(const std::string& name, const std::string& help = "") {
    document(name, "<required>", help);
    auto it = values_.find(name);
    if (it == values_.end()) LANDAU_THROW("missing required option -" << name);
    return from_string<T>(name, it->second);
  }

  /// Comma-separated list getter, e.g. -masses 1,2,183.
  template <class T>
  std::vector<T> get_list(const std::string& name, const std::vector<T>& default_value,
                          const std::string& help = "") {
    document(name, "<list>", help);
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    std::vector<T> out;
    std::istringstream is(it->second);
    std::string tok;
    while (std::getline(is, tok, ',')) out.push_back(from_string<T>(name, tok));
    return out;
  }

  /// Render registered options as a help string.
  std::string help_text() const;

  /// Global database used by examples/benches (components may also take a
  /// local Options for isolation in tests).
  static Options& global();

private:
  void document(const std::string& name, const std::string& def, const std::string& help);

  template <class T> static std::string to_string(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  template <class T> static T from_string(const std::string& name, const std::string& s) {
    std::istringstream is(s);
    T v;
    is >> v;
    if (is.fail()) LANDAU_THROW("option -" << name << ": cannot parse value '" << s << "'");
    return v;
  }

  std::map<std::string, std::string> values_;
  std::map<std::string, std::pair<std::string, std::string>> docs_; // name -> (default, help)
  bool help_ = false;
};

template <> inline bool Options::from_string<bool>(const std::string& name, const std::string& s) {
  if (s == "1" || s == "true" || s == "yes" || s == "") return true;
  if (s == "0" || s == "false" || s == "no") return false;
  LANDAU_THROW("option -" << name << ": cannot parse bool '" << s << "'");
}

template <>
inline std::string Options::from_string<std::string>(const std::string&, const std::string& s) {
  return s;
}

} // namespace landau
