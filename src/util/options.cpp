#include "util/options.h"

namespace landau {

void Options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() < 2 || arg[0] != '-')
      LANDAU_THROW("unexpected positional argument '" << arg << "'");
    std::string name = arg.substr(1);
    if (name == "help" || name == "-help") {
      help_ = true;
      continue;
    }
    // A value follows unless the next token is another option or we are at
    // the end; bare flags are stored with an empty value (bool getter -> true).
    if (i + 1 < argc) {
      std::string next = argv[i + 1];
      const bool next_is_option =
          next.size() > 1 && next[0] == '-' && !(std::isdigit(next[1]) || next[1] == '.');
      if (!next_is_option) {
        values_[name] = next;
        ++i;
        continue;
      }
    }
    values_[name] = "";
  }
}

void Options::set(const std::string& name, const std::string& value) { values_[name] = value; }

void Options::document(const std::string& name, const std::string& def, const std::string& help) {
  auto it = docs_.find(name);
  if (it == docs_.end()) docs_[name] = {def, help};
}

std::string Options::help_text() const {
  std::ostringstream os;
  os << "Options:\n";
  for (const auto& [name, doc] : docs_) {
    os << "  -" << name << " (default: " << doc.first << ")";
    if (!doc.second.empty()) os << "  " << doc.second;
    os << "\n";
  }
  return os.str();
}

Options& Options::global() {
  static Options opts;
  return opts;
}

} // namespace landau
