#pragma once
// Robustness hooks shared by the solver and quench layers:
//
//  * RobustnessOptions — runtime switches for the defensive checks whose cost
//    is not negligible. `paranoid` turns on finite-value audits at the
//    operator boundary (packed IP data, assembled collision matrix, Newton
//    matrix); the cheap guards (residual-norm finiteness, state scan in the
//    step controller) are always on.
//
//  * FaultInjector — a deterministic fault hook the time integrator and the
//    linear-solve paths consult, compiled in always and disabled unless armed
//    (the disarmed fast path is a single branch on an empty spec list).
//    Arming happens programmatically (tests) or via the LANDAU_FAULT_SPEC
//    environment variable (examples, CI). Grammar — comma-separated entries:
//
//        kind[@site]@step=N
//
//    with kind one of
//        newton_diverge   the Newton iteration diverges (state perturbed,
//                         converged = false)
//        stagnate         the Newton update stalls (state untouched,
//                         stagnated = true)
//        nan              a NaN appears at `site` (rhs | state)
//        throw            landau::Error thrown at `site` (factor | solve)
//    an optional site restricting where the fault fires, and N the 0-based
//    *attempt* index: every ImplicitIntegrator::step() call — including the
//    step controller's retries — advances the counter by one, so a retried
//    step sees a fresh index and a one-shot fault does not re-fire. Each
//    entry fires at most once. Examples:
//
//        newton_diverge@step=7
//        nan@rhs@step=12
//        throw@factor@step=3,throw@factor@step=4

#include <string>
#include <vector>

namespace landau {

struct RobustnessOptions {
  /// Audit finite-ness of the packed IP data, the assembled collision matrix
  /// and the Newton matrix with LANDAU_ASSERT (O(nnz) scans per Newton
  /// iteration; off by default, the controller's cheap guards stay on).
  bool paranoid = false;

  /// Enable the device memory-model checker (exec/check.h) for every
  /// instrumented kernel launch; equivalent to LANDAU_CHECK_DEVICE=1.
  bool check_device = false;
};

/// Global robustness switches (mirrors the Options database pattern: examples
/// set it from the command line, tests set it directly).
RobustnessOptions& robustness();

enum class FaultKind { NewtonDiverge, Stagnate, Nan, Throw };

const char* fault_kind_name(FaultKind k);

/// Deterministic fault-injection hook (see file comment for the grammar).
class FaultInjector {
public:
  /// Global instance; on first use arms itself from LANDAU_FAULT_SPEC if set.
  static FaultInjector& instance();

  /// Parse and arm a spec (replacing any armed faults); "" disarms. Throws
  /// landau::Error on a grammar violation. Resets the attempt counter.
  void configure(const std::string& spec);

  /// Disarm all faults and reset counters.
  void clear();

  /// Fast disarmed check — the only cost on the clean path.
  bool armed() const { return !specs_.empty(); }

  /// Called by ImplicitIntegrator at the top of every step() attempt.
  void begin_attempt() { ++attempt_; }
  long attempt() const { return attempt_; }

  /// True exactly once per matching armed entry: kind matches, the entry's
  /// site is empty or equals `site`, and the entry's step equals the current
  /// attempt index.
  bool fire(FaultKind kind, const char* site = "");

  /// Faults fired since the last configure()/clear() (test bookkeeping).
  long fired_count() const { return fired_; }

private:
  FaultInjector();

  struct Spec {
    FaultKind kind = FaultKind::Throw;
    std::string site; // empty = any site
    long step = 0;    // 0-based attempt index
    bool fired = false;
  };
  std::vector<Spec> specs_;
  long attempt_ = -1; // becomes 0 at the first begin_attempt()
  long fired_ = 0;
};

} // namespace landau
