#pragma once
// Legacy-VTK output of the adaptive velocity mesh and nodal distribution
// functions — the artifact behind the paper's Fig. 1/3 visualizations
// (they note "visualization artifacts from linear interpolation in Visit";
// we export each Qk cell subdivided into k x k linear quads, which is the
// same first-order view). Files load in ParaView/VisIt.

#include <string>

#include "fem/fespace.h"
#include "la/vec.h"

namespace landau {

/// Write the mesh and one scalar field (free-dof vector) as an unstructured
/// grid of linear quads (each Qk cell split into k^2 subquads, nodal values
/// at the Qk nodes).
void write_vtk(const std::string& path, const fem::FESpace& fes, const la::Vec& field,
               const std::string& field_name = "f");

/// Write only the mesh (cell outlines with refinement level as cell data).
void write_vtk_mesh(const std::string& path, const fem::FESpace& fes);

} // namespace landau
