#include "util/table_writer.h"

#include <algorithm>

namespace landau {

void TableWriter::row(std::vector<std::string> cells) {
  if (!header_.empty())
    LANDAU_ASSERT(cells.size() == header_.size(),
                  "row width " << cells.size() << " != header width " << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::str() const {
  std::vector<std::size_t> widths;
  auto account = [&](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  if (!header_.empty()) account(header_);
  for (const auto& r : rows_) account(r);

  std::ostringstream os;
  if (!caption_.empty()) os << caption_ << "\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      os << (i ? "  " : "") << std::setw(static_cast<int>(widths[i])) << cells[i];
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i ? 2 : 0);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TableWriter::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) LANDAU_THROW("cannot open CSV output file '" << path << "'");
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) f << (i ? "," : "") << cells[i];
    f << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

} // namespace landau
