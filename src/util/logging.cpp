#include "util/logging.h"

namespace landau {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel lvl, const std::string& msg) {
  static const char* names[] = {"ERROR", "WARN", "INFO", "DEBUG"};
  std::lock_guard<std::mutex> lock(mutex_);
  std::cerr << "[landau:" << names[static_cast<int>(lvl)] << "] " << msg << "\n";
}

} // namespace landau
