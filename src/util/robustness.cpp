#include "util/robustness.h"

#include <cstdlib>

#include "util/error.h"
#include "util/logging.h"

namespace landau {

RobustnessOptions& robustness() {
  static RobustnessOptions opts;
  return opts;
}

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::NewtonDiverge: return "newton_diverge";
    case FaultKind::Stagnate: return "stagnate";
    case FaultKind::Nan: return "nan";
    case FaultKind::Throw: return "throw";
  }
  return "?";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector inj;
  return inj;
}

FaultInjector::FaultInjector() {
  if (const char* env = std::getenv("LANDAU_FAULT_SPEC"); env && *env) configure(env);
}

void FaultInjector::clear() {
  specs_.clear();
  attempt_ = -1;
  fired_ = 0;
}

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

} // namespace

void FaultInjector::configure(const std::string& spec) {
  clear();
  if (spec.empty()) return;
  for (const std::string& entry : split(spec, ',')) {
    if (entry.empty()) continue;
    Spec f;
    bool have_kind = false, have_step = false;
    for (const std::string& tok : split(entry, '@')) {
      if (tok.rfind("step=", 0) == 0) {
        char* end = nullptr;
        f.step = std::strtol(tok.c_str() + 5, &end, 10);
        if (!end || *end != '\0' || f.step < 0)
          LANDAU_THROW("fault spec '" << entry << "': bad step in '" << tok << "'");
        have_step = true;
      } else if (!have_kind) {
        if (tok == "newton_diverge") f.kind = FaultKind::NewtonDiverge;
        else if (tok == "stagnate") f.kind = FaultKind::Stagnate;
        else if (tok == "nan") f.kind = FaultKind::Nan;
        else if (tok == "throw") f.kind = FaultKind::Throw;
        else LANDAU_THROW("fault spec '" << entry << "': unknown kind '" << tok << "'");
        have_kind = true;
      } else if (f.site.empty()) {
        f.site = tok;
      } else {
        LANDAU_THROW("fault spec '" << entry << "': unexpected token '" << tok << "'");
      }
    }
    if (!have_kind) LANDAU_THROW("fault spec '" << entry << "': missing kind");
    if (!have_step) LANDAU_THROW("fault spec '" << entry << "': missing step=N");
    specs_.push_back(std::move(f));
  }
  if (!specs_.empty())
    LANDAU_INFO("fault injector armed with " << specs_.size() << " fault(s): " << spec);
}

bool FaultInjector::fire(FaultKind kind, const char* site) {
  for (Spec& f : specs_) {
    if (f.fired || f.kind != kind || f.step != attempt_) continue;
    if (!f.site.empty() && f.site != site) continue;
    f.fired = true;
    ++fired_;
    LANDAU_WARN("fault injector: firing " << fault_kind_name(kind) << "@" << site << "@step="
                                          << attempt_);
    return true;
  }
  return false;
}

} // namespace landau
