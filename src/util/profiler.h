#pragma once
// Event profiler modeled on PetscLogEvent: named events accumulate wall-clock
// time and call counts; RAII ScopedEvent handles begin/end. The
// component-time benches (Table VII) read their numbers from here.
//
// Thread-safety: events may begin/end on any thread; accumulation is atomic.
//
// Contract: snapshot()/report() are *flat* per-event aggregates — events from
// different threads accumulate into the same slot, and a cross-thread total
// has no well-defined parent, so this class never claims a hierarchy. The
// parent/child view lives in the span tracer (obs/trace.h): when tracing is
// enabled, every ScopedEvent begin/end is routed through the span hooks below
// and obs::Tracer::self_time_report() renders the indented self-time tree
// (nesting reconstructed per thread, then merged by span path).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace landau {

/// Accumulated statistics for one named event.
struct EventStats {
  std::string name;
  std::int64_t count = 0;
  double seconds = 0.0;
  std::int64_t flops = 0;      // work attributed via add_work()
  std::int64_t dram_bytes = 0; // memory traffic attributed via add_work()
};

/// Global registry of profiling events.
class Profiler {
public:
  static Profiler& instance();

  /// Get-or-create the id of a named event. Ids are stable for process life.
  int event_id(const std::string& name);

  void begin(int id);
  void end(int id);

  /// Add externally-measured time (used by the schedule simulator).
  void add(int id, double seconds, std::int64_t count = 1);

  /// Attribute flop/DRAM work to an event (the linear solvers and kernels
  /// thread their counters here so phase totals carry work, not just time).
  /// Allocation-free: callers cache the id from event_id().
  void add_work(int id, std::int64_t flops, std::int64_t dram_bytes = 0);

  /// Snapshot of all events (sorted by accumulated time, descending).
  std::vector<EventStats> snapshot() const;

  /// Accumulated seconds for one event by name (0 if never seen).
  double seconds(const std::string& name) const;
  std::int64_t count(const std::string& name) const;
  std::int64_t flops(const std::string& name) const;
  std::int64_t dram_bytes(const std::string& name) const;

  /// Zero all accumulators (ids remain valid). Used between bench phases.
  void reset();

  /// Render a report table.
  std::string report() const;

  /// Interned name of an event id; the pointer is stable for process life
  /// (slots are never destroyed), so span consumers may hold it.
  const char* name_of(int id) const;

  /// Span hooks: when installed (by obs::Tracer::enable()), every
  /// begin()/end() additionally opens/closes a span under the interned event
  /// name. The uninstalled path is one relaxed null test per begin/end.
  using SpanBeginHook = void (*)(const char* name);
  using SpanEndHook = void (*)();
  static void set_span_hooks(SpanBeginHook begin, SpanEndHook end);

private:
  Profiler() = default;

  struct Slot {
    std::string name;
    std::atomic<std::int64_t> count{0};
    std::atomic<std::int64_t> nanos{0};
    std::atomic<std::int64_t> flops{0};
    std::atomic<std::int64_t> dram_bytes{0};
  };

  mutable std::mutex mutex_;
  std::map<std::string, int> ids_;
  std::vector<std::unique_ptr<Slot>> slots_;

  static std::atomic<SpanBeginHook> span_begin_hook_;
  static std::atomic<SpanEndHook> span_end_hook_;
};

/// RAII begin/end of one event.
class ScopedEvent {
public:
  explicit ScopedEvent(const std::string& name)
      : id_(Profiler::instance().event_id(name)) {
    Profiler::instance().begin(id_);
  }
  explicit ScopedEvent(int id) : id_(id) { Profiler::instance().begin(id_); }
  ~ScopedEvent() { Profiler::instance().end(id_); }
  ScopedEvent(const ScopedEvent&) = delete;
  ScopedEvent& operator=(const ScopedEvent&) = delete;

private:
  int id_;
};

/// Simple stopwatch for ad-hoc timing.
class Stopwatch {
public:
  Stopwatch() : start_(clock::now()) {}
  void restart() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

} // namespace landau
