#pragma once
// Versioned binary checkpoint files for mid-scenario restart (the quench
// driver's kill-safe save points). Format:
//
//   header   "LNDC" (4 bytes) | u32 version | u64 payload bytes
//          | u64 FNV-1a-64 checksum of the payload
//   payload  a sequence of tagged fields, each a 1-byte type tag followed by
//            little-endian data:
//              'd'  double (8 bytes)
//              'i'  int64  (8 bytes)
//              'v'  vector: u64 length then length doubles
//
// The reader verifies magic, version and checksum up front, so a torn or
// corrupted file fails loudly before any field is consumed, and every get_*
// checks its type tag — a schema drift between writer and reader throws
// instead of silently misreading. save() writes to "<path>.tmp" and renames,
// so a crash mid-write leaves the previous checkpoint intact (rename is
// atomic on POSIX filesystems).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "exec/annotations.h"
#include "la/vec.h"

namespace landau::util {

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Append-only typed buffer; save() adds the header and writes atomically.
class LANDAU_HOST_ONLY CheckpointWriter {
public:
  void put_f64(double v);
  void put_i64(std::int64_t v);
  void put_vec(std::span<const double> v);

  std::size_t payload_bytes() const { return buf_.size(); }

  /// Write header + payload to path via temp-file + rename. Throws
  /// landau::Error on any I/O failure.
  void save(const std::string& path) const;

private:
  std::vector<unsigned char> buf_;
};

/// Loads and validates a checkpoint file, then hands out fields in order.
class LANDAU_HOST_ONLY CheckpointReader {
public:
  /// Throws landau::Error on missing file, bad magic, version mismatch,
  /// truncation, or checksum failure.
  explicit CheckpointReader(const std::string& path);

  double get_f64();
  std::int64_t get_i64();
  la::Vec get_vec();

  /// All payload bytes consumed.
  bool exhausted() const { return pos_ == buf_.size(); }

private:
  void need(std::size_t bytes, const char* what);

  std::vector<unsigned char> buf_; // payload only (header already validated)
  std::size_t pos_ = 0;
  std::string path_;
};

bool checkpoint_exists(const std::string& path);

} // namespace landau::util
