#include "util/special_math.h"

namespace landau {

void elliptic_ke(double m, double* K, double* E) noexcept {
  // AGM iteration (Abramowitz & Stegun 17.6): with a0=1, b0=sqrt(1-m), c0=sqrt(m),
  //   a_{n+1} = (a_n+b_n)/2, b_{n+1} = sqrt(a_n b_n), c_{n+1} = (a_n-b_n)/2,
  // K = pi/(2 a_inf), E = K (1 - sum 2^{n-1} c_n^2).
  if (m <= 0.0) {
    *K = kPi / 2.0;
    *E = kPi / 2.0;
    return;
  }
  double a = 1.0;
  double b = std::sqrt(1.0 - m);
  double c = std::sqrt(m);
  double sum = 0.5 * c * c; // 2^{-1} c_0^2
  double pow2 = 0.5;
  for (int n = 0; n < 64 && c > 1e-17 * a; ++n) {
    const double an = 0.5 * (a + b);
    const double bn = std::sqrt(a * b);
    c = 0.5 * (a - b);
    a = an;
    b = bn;
    pow2 *= 2.0;
    sum += pow2 * c * c;
  }
  *K = kPi / (2.0 * a);
  *E = *K * (1.0 - sum);
}

double maxwellian_rz(double r, double z, double n, double theta, double vz0) noexcept {
  const double arg = (r * r + sqr(z - vz0)) / theta;
  return n / std::pow(kPi * theta, 1.5) * std::exp(-arg);
}

} // namespace landau
