#pragma once
// Special functions used by the Landau kernels.
//
// The azimuthal reduction of the 3D Landau tensor to cylindrical (r,z)
// coordinates produces complete elliptic integrals of the first and second
// kind; we evaluate both simultaneously with the arithmetic-geometric-mean
// (AGM) iteration, which converges quadratically and is accurate to full
// double precision for parameter m in [0, 1).

#include <cmath>

namespace landau {

/// Complete elliptic integrals K(m) and E(m) in the *parameter* convention
/// (m = k^2): K(m) = \int_0^{pi/2} (1 - m sin^2 t)^{-1/2} dt, similarly E.
/// Requires 0 <= m < 1 (K diverges at m=1).
void elliptic_ke(double m, double* K, double* E) noexcept;

/// Maxwellian distribution in nondimensional velocity units: a drifting
/// isotropic Maxwellian with density n, thermal-speed parameter theta = T
/// (in units where the reference species has theta=1), and z-drift vz0:
///   f(r,z) = n / (pi theta)^{3/2} * exp(-((r^2 + (z-vz0)^2)/theta)
/// evaluated at cylindrical velocity coordinates (r, z).
double maxwellian_rz(double r, double z, double n, double theta, double vz0 = 0.0) noexcept;

/// Convenience: square.
inline constexpr double sqr(double x) noexcept { return x * x; }

inline constexpr double kPi = 3.14159265358979323846;

} // namespace landau
