#include "util/profiler.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace landau {
namespace {

thread_local std::vector<std::pair<int, std::chrono::steady_clock::time_point>> tls_stack;

} // namespace

Profiler& Profiler::instance() {
  static Profiler p;
  return p;
}

int Profiler::event_id(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  int id = static_cast<int>(slots_.size());
  auto slot = std::make_unique<Slot>();
  slot->name = name;
  slots_.push_back(std::move(slot));
  ids_[name] = id;
  return id;
}

void Profiler::begin(int id) {
  tls_stack.emplace_back(id, std::chrono::steady_clock::now());
}

void Profiler::end(int id) {
  auto now = std::chrono::steady_clock::now();
  // Unwind to the matching begin; mismatches indicate a bug but we stay robust.
  while (!tls_stack.empty()) {
    auto [top_id, start] = tls_stack.back();
    tls_stack.pop_back();
    if (top_id == id) {
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(now - start).count();
      slots_[id]->nanos.fetch_add(ns, std::memory_order_relaxed);
      slots_[id]->count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

void Profiler::add(int id, double seconds, std::int64_t count) {
  slots_[id]->nanos.fetch_add(static_cast<std::int64_t>(seconds * 1e9),
                              std::memory_order_relaxed);
  slots_[id]->count.fetch_add(count, std::memory_order_relaxed);
}

void Profiler::add_work(int id, std::int64_t flops, std::int64_t dram_bytes) {
  slots_[id]->flops.fetch_add(flops, std::memory_order_relaxed);
  slots_[id]->dram_bytes.fetch_add(dram_bytes, std::memory_order_relaxed);
}

std::vector<EventStats> Profiler::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<EventStats> out;
  out.reserve(slots_.size());
  for (const auto& s : slots_) {
    EventStats es;
    es.name = s->name;
    es.count = s->count.load(std::memory_order_relaxed);
    es.seconds = 1e-9 * static_cast<double>(s->nanos.load(std::memory_order_relaxed));
    es.flops = s->flops.load(std::memory_order_relaxed);
    es.dram_bytes = s->dram_bytes.load(std::memory_order_relaxed);
    out.push_back(es);
  }
  std::sort(out.begin(), out.end(),
            [](const EventStats& a, const EventStats& b) { return a.seconds > b.seconds; });
  return out;
}

double Profiler::seconds(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(name);
  if (it == ids_.end()) return 0.0;
  return 1e-9 * static_cast<double>(slots_[it->second]->nanos.load(std::memory_order_relaxed));
}

std::int64_t Profiler::count(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(name);
  if (it == ids_.end()) return 0;
  return slots_[it->second]->count.load(std::memory_order_relaxed);
}

std::int64_t Profiler::flops(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(name);
  if (it == ids_.end()) return 0;
  return slots_[it->second]->flops.load(std::memory_order_relaxed);
}

std::int64_t Profiler::dram_bytes(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(name);
  if (it == ids_.end()) return 0;
  return slots_[it->second]->dram_bytes.load(std::memory_order_relaxed);
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& s : slots_) {
    s->count.store(0, std::memory_order_relaxed);
    s->nanos.store(0, std::memory_order_relaxed);
    s->flops.store(0, std::memory_order_relaxed);
    s->dram_bytes.store(0, std::memory_order_relaxed);
  }
}

std::string Profiler::report() const {
  auto stats = snapshot();
  std::ostringstream os;
  os << std::left << std::setw(32) << "event" << std::right << std::setw(12) << "count"
     << std::setw(14) << "seconds" << std::setw(12) << "Mflops" << std::setw(12) << "MB"
     << "\n";
  for (const auto& s : stats) {
    if (s.count == 0 && s.flops == 0) continue;
    os << std::left << std::setw(32) << s.name << std::right << std::setw(12) << s.count
       << std::setw(14) << std::fixed << std::setprecision(6) << s.seconds << std::setw(12)
       << std::setprecision(1) << 1e-6 * static_cast<double>(s.flops) << std::setw(12)
       << std::setprecision(1) << 1e-6 * static_cast<double>(s.dram_bytes) << "\n";
  }
  return os.str();
}

} // namespace landau
