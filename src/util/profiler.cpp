#include "util/profiler.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace landau {
namespace {

struct StackFrame {
  int id;
  std::chrono::steady_clock::time_point start;
  bool hooked; // a span-begin hook fired for this frame; end must balance it
};

thread_local std::vector<StackFrame> tls_stack;

} // namespace

std::atomic<Profiler::SpanBeginHook> Profiler::span_begin_hook_{nullptr};
std::atomic<Profiler::SpanEndHook> Profiler::span_end_hook_{nullptr};

Profiler& Profiler::instance() {
  // Leaked so the interned event names stay valid in the span tracer's
  // at-exit trace writer, which can run after static destructors.
  static Profiler* p = new Profiler;
  return *p;
}

void Profiler::set_span_hooks(SpanBeginHook begin, SpanEndHook end) {
  span_begin_hook_.store(begin, std::memory_order_relaxed);
  span_end_hook_.store(end, std::memory_order_relaxed);
}

const char* Profiler::name_of(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<std::size_t>(id) >= slots_.size()) return "?";
  return slots_[static_cast<std::size_t>(id)]->name.c_str();
}

int Profiler::event_id(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  int id = static_cast<int>(slots_.size());
  auto slot = std::make_unique<Slot>();
  slot->name = name;
  slots_.push_back(std::move(slot));
  ids_[name] = id;
  return id;
}

void Profiler::begin(int id) {
  bool hooked = false;
  if (SpanBeginHook hook = span_begin_hook_.load(std::memory_order_relaxed)) {
    hook(name_of(id));
    hooked = true;
  }
  tls_stack.push_back({id, std::chrono::steady_clock::now(), hooked});
}

void Profiler::end(int id) {
  auto now = std::chrono::steady_clock::now();
  const SpanEndHook end_hook = span_end_hook_.load(std::memory_order_relaxed);
  // Unwind to the matching begin; mismatches indicate a bug but we stay
  // robust. Every popped frame that opened a span closes it, so the tracer's
  // per-thread stack stays balanced even through a mismatched unwind.
  while (!tls_stack.empty()) {
    auto [top_id, start, hooked] = tls_stack.back();
    tls_stack.pop_back();
    if (hooked && end_hook) end_hook();
    if (top_id == id) {
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(now - start).count();
      slots_[id]->nanos.fetch_add(ns, std::memory_order_relaxed);
      slots_[id]->count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

void Profiler::add(int id, double seconds, std::int64_t count) {
  slots_[id]->nanos.fetch_add(static_cast<std::int64_t>(seconds * 1e9),
                              std::memory_order_relaxed);
  slots_[id]->count.fetch_add(count, std::memory_order_relaxed);
}

void Profiler::add_work(int id, std::int64_t flops, std::int64_t dram_bytes) {
  slots_[id]->flops.fetch_add(flops, std::memory_order_relaxed);
  slots_[id]->dram_bytes.fetch_add(dram_bytes, std::memory_order_relaxed);
}

std::vector<EventStats> Profiler::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<EventStats> out;
  out.reserve(slots_.size());
  for (const auto& s : slots_) {
    EventStats es;
    es.name = s->name;
    es.count = s->count.load(std::memory_order_relaxed);
    es.seconds = 1e-9 * static_cast<double>(s->nanos.load(std::memory_order_relaxed));
    es.flops = s->flops.load(std::memory_order_relaxed);
    es.dram_bytes = s->dram_bytes.load(std::memory_order_relaxed);
    out.push_back(es);
  }
  std::sort(out.begin(), out.end(),
            [](const EventStats& a, const EventStats& b) { return a.seconds > b.seconds; });
  return out;
}

double Profiler::seconds(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(name);
  if (it == ids_.end()) return 0.0;
  return 1e-9 * static_cast<double>(slots_[it->second]->nanos.load(std::memory_order_relaxed));
}

std::int64_t Profiler::count(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(name);
  if (it == ids_.end()) return 0;
  return slots_[it->second]->count.load(std::memory_order_relaxed);
}

std::int64_t Profiler::flops(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(name);
  if (it == ids_.end()) return 0;
  return slots_[it->second]->flops.load(std::memory_order_relaxed);
}

std::int64_t Profiler::dram_bytes(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(name);
  if (it == ids_.end()) return 0;
  return slots_[it->second]->dram_bytes.load(std::memory_order_relaxed);
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& s : slots_) {
    s->count.store(0, std::memory_order_relaxed);
    s->nanos.store(0, std::memory_order_relaxed);
    s->flops.store(0, std::memory_order_relaxed);
    s->dram_bytes.store(0, std::memory_order_relaxed);
  }
}

std::string Profiler::report() const {
  auto stats = snapshot();
  std::ostringstream os;
  os << std::left << std::setw(32) << "event" << std::right << std::setw(12) << "count"
     << std::setw(14) << "seconds" << std::setw(12) << "Mflops" << std::setw(12) << "MB"
     << "\n";
  for (const auto& s : stats) {
    if (s.count == 0 && s.flops == 0) continue;
    os << std::left << std::setw(32) << s.name << std::right << std::setw(12) << s.count
       << std::setw(14) << std::fixed << std::setprecision(6) << s.seconds << std::setw(12)
       << std::setprecision(1) << 1e-6 * static_cast<double>(s.flops) << std::setw(12)
       << std::setprecision(1) << 1e-6 * static_cast<double>(s.dram_bytes) << "\n";
  }
  return os.str();
}

} // namespace landau
