#pragma once
// ASCII table and CSV output used by the benchmark harness to print the
// paper's tables and figure series in a uniform format.

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"

namespace landau {

/// Builds a column-aligned ASCII table row-by-row, with an optional caption.
class TableWriter {
public:
  explicit TableWriter(std::string caption = "") : caption_(std::move(caption)) {}

  void header(std::vector<std::string> cols) { header_ = std::move(cols); }

  /// Append a row of preformatted cells. Must match the header width if set.
  void row(std::vector<std::string> cells);

  /// Convenience for mixed numeric rows.
  class RowBuilder {
  public:
    explicit RowBuilder(TableWriter& t) : table_(t) {}
    RowBuilder& cell(const std::string& s) {
      cells_.push_back(s);
      return *this;
    }
    RowBuilder& cell(double v, int precision = 3) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(precision) << v;
      cells_.push_back(os.str());
      return *this;
    }
    RowBuilder& cell(long long v) {
      cells_.push_back(std::to_string(v));
      return *this;
    }
    RowBuilder& cell(int v) {
      cells_.push_back(std::to_string(v));
      return *this;
    }
    ~RowBuilder() { table_.row(std::move(cells_)); }

  private:
    TableWriter& table_;
    std::vector<std::string> cells_;
  };
  RowBuilder add_row() { return RowBuilder(*this); }

  /// Render the table.
  std::string str() const;

  /// Write rows (with header) as CSV.
  void write_csv(const std::string& path) const;

private:
  std::string caption_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace landau
