#pragma once
// Error handling for the landau library: a single exception type carrying
// file/line context, plus assertion macros used throughout the code base.
//
// Recoverable, user-facing failures (bad options, singular matrices, solver
// divergence) throw landau::Error. Internal invariant violations use
// LANDAU_ASSERT, which is compiled in all build types: this is a numerical
// library where silent corruption is far worse than an abort.

#include <sstream>
#include <stdexcept>
#include <string>

namespace landau {

/// Exception type thrown by all landau components.
class Error : public std::runtime_error {
public:
  Error(std::string msg, const char* file, int line)
      : std::runtime_error(format(msg, file, line)) {}

private:
  static std::string format(const std::string& msg, const char* file, int line) {
    std::ostringstream os;
    os << msg << " [" << file << ":" << line << "]";
    return os.str();
  }
};

} // namespace landau

/// Throw landau::Error with streamed message: LANDAU_THROW("bad n=" << n);
#define LANDAU_THROW(msg_stream)                                               \
  do {                                                                         \
    std::ostringstream landau_os_;                                             \
    landau_os_ << msg_stream;                                                  \
    throw ::landau::Error(landau_os_.str(), __FILE__, __LINE__);               \
  } while (0)

/// Check a precondition/invariant; always active.
#define LANDAU_ASSERT(cond, msg_stream)                                        \
  do {                                                                         \
    if (!(cond)) {                                                             \
      LANDAU_THROW("assertion failed: " #cond ": " << msg_stream);             \
    }                                                                          \
  } while (0)

/// Check that an index is in [0, size).
#define LANDAU_CHECK_RANGE(i, size)                                            \
  LANDAU_ASSERT(static_cast<long long>(i) >= 0 &&                              \
                    static_cast<unsigned long long>(i) <                       \
                        static_cast<unsigned long long>(size),                 \
                "index " << (i) << " out of range [0," << (size) << ")")
