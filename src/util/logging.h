#pragma once
// Minimal leveled logger. A single global logger writes to stderr; verbosity
// is controlled programmatically or with the -landau_log_level option.

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace landau {

enum class LogLevel : int { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Thread-safe global logger.
class Logger {
public:
  static Logger& instance();

  void set_level(LogLevel lvl) { level_ = lvl; }
  LogLevel level() const { return level_; }

  void write(LogLevel lvl, const std::string& msg);

private:
  Logger() = default;
  LogLevel level_ = LogLevel::Warn;
  std::mutex mutex_;
};

} // namespace landau

#define LANDAU_LOG(lvl, msg_stream)                                            \
  do {                                                                         \
    if (static_cast<int>(lvl) <=                                               \
        static_cast<int>(::landau::Logger::instance().level())) {              \
      std::ostringstream landau_log_os_;                                       \
      landau_log_os_ << msg_stream;                                            \
      ::landau::Logger::instance().write(lvl, landau_log_os_.str());           \
    }                                                                          \
  } while (0)

#define LANDAU_INFO(msg) LANDAU_LOG(::landau::LogLevel::Info, msg)
#define LANDAU_WARN(msg) LANDAU_LOG(::landau::LogLevel::Warn, msg)
#define LANDAU_DEBUG(msg) LANDAU_LOG(::landau::LogLevel::Debug, msg)
