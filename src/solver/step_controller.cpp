#include "solver/step_controller.h"

#include <cmath>
#include <string>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/profiler.h"

namespace landau {

StepController::StepController(ImplicitIntegrator& integrator, StepControllerOptions opts)
    : integrator_(integrator), opts_(opts), dt_(opts.dt_initial),
      advance_event_(Profiler::instance().event_id("controller:advance")),
      reject_event_(Profiler::instance().event_id("controller:reject")) {
  LANDAU_ASSERT(opts_.dt_initial > 0.0, "dt_initial must be positive");
  LANDAU_ASSERT(opts_.dt_min > 0.0 && opts_.dt_min <= opts_.dt_initial,
                "dt_min must be in (0, dt_initial]");
  LANDAU_ASSERT(opts_.backoff > 0.0 && opts_.backoff <= 1.0, "backoff must be in (0, 1]");
  LANDAU_ASSERT(opts_.growth >= 1.0, "growth must be >= 1");
  LANDAU_ASSERT(opts_.max_retries >= 0, "max_retries must be >= 0");
}

void StepController::set_dt(double dt) {
  LANDAU_ASSERT(dt > 0.0, "dt must be positive");
  dt_ = dt;
}

StepController::PersistedState StepController::save_state() const {
  return {dt_, easy_count_, accepted_, rejected_};
}

void StepController::restore_state(const PersistedState& s) {
  LANDAU_ASSERT(s.dt > 0.0, "restored dt must be positive");
  dt_ = s.dt;
  easy_count_ = static_cast<int>(s.easy_count);
  accepted_ = s.accepted;
  rejected_ = s.rejected;
}

AdvanceStats StepController::advance(la::Vec& f, double e_z, const la::Vec* source) {
  ScopedEvent ev(advance_event_);
  snapshot_ = f; // rollback point; reuses capacity after the first advance
  AdvanceStats out;

  for (int attempt = 0;; ++attempt) {
    const bool last = attempt >= opts_.max_retries;
    StepStats stats;
    bool threw = false;
    std::string reason;
    try {
      stats = integrator_.step(f, dt_, e_z, source);
    } catch (const Error& e) {
      threw = true;
      reason = e.what();
    }

    bool ok = false;
    if (!threw) {
      const bool finite = !stats.non_finite && std::isfinite(stats.residual_norm) &&
                          (!opts_.check_state_finite || f.all_finite());
      const bool stagnated_only = finite && stats.stagnated && !stats.converged;
      ok = finite && (stats.converged || (stagnated_only && !opts_.reject_stagnated));
      if (!ok && last && stagnated_only && opts_.accept_stagnated_on_exhaust) {
        // Retrying cannot beat the quasi-Newton roundoff floor; completing
        // with an honest warning beats dying here (the XGC production
        // constraint: the implicit step must always finish).
        LANDAU_WARN("step controller: accepting stagnated step after "
                    << out.rejections << " rejection(s), |G| = " << stats.residual_norm);
        out.accepted_stagnated = true;
        ok = true;
      }
      if (!reason.empty()) reason.clear();
      if (!ok) {
        if (!finite) reason = "non-finite residual/update/state";
        else if (stats.stagnated) reason = "Newton stagnated";
        else reason = "Newton did not converge";
      }
    }

    if (ok) {
      out.step = stats;
      out.dt = dt_;
      ++accepted_;
      static obs::Counter& accepted_ctr =
          obs::MetricsRegistry::instance().counter("controller.accepted");
      static obs::Gauge& dt_gauge = obs::MetricsRegistry::instance().gauge("controller.dt");
      accepted_ctr.inc();
      dt_gauge.set(dt_);
      // dt regrowth: after a streak of easy, reject-free accepts, step back
      // out toward the ceiling so the post-transient plateau runs cheap.
      if (out.rejections == 0 && !out.accepted_stagnated &&
          stats.newton_iterations <= opts_.easy_newton_threshold) {
        if (++easy_count_ >= opts_.easy_streak && dt_ < dt_max()) {
          const double grown = std::min(dt_ * opts_.growth, dt_max());
          LANDAU_DEBUG("step controller: growing dt " << dt_ << " -> " << grown << " after "
                                                      << easy_count_ << " easy steps");
          dt_ = grown;
          easy_count_ = 0;
        }
      } else {
        easy_count_ = 0;
      }
      return out;
    }

    // Reject: roll back and either retry at a smaller dt or give up.
    f = snapshot_;
    ++out.rejections;
    ++rejected_;
    static obs::Counter& rejected_ctr =
        obs::MetricsRegistry::instance().counter("controller.rejected");
    rejected_ctr.inc();
    Profiler::instance().add(reject_event_, 0.0, 1);
    easy_count_ = 0;
    if (last)
      LANDAU_THROW("step controller: step rejected " << out.rejections
                                                     << " time(s), retries exhausted (last: "
                                                     << reason << ", dt = " << dt_ << ")");
    const double shrunk = std::max(dt_ * opts_.backoff, opts_.dt_min);
    LANDAU_WARN("step controller: rejecting step (" << reason << "), dt " << dt_ << " -> "
                                                    << shrunk << ", attempt " << (attempt + 1)
                                                    << "/" << (opts_.max_retries + 1));
    dt_ = shrunk;
  }
}

} // namespace landau
