#pragma once
// Failure-recovering adaptive time-step layer over ImplicitIntegrator.
//
// The quasi-Newton backward-Euler step the paper (and XGC) relies on must
// *always* complete: a thermal-quench transient drives the solver through
// regimes where a fixed dt stagnates or diverges, and a NaN produced anywhere
// would silently poison every downstream diagnostic. advance() wraps one
// step() with reject/retry semantics:
//
//   accept   converged (or stagnated, when stagnation is tolerated) AND the
//            state, residual and update are finite. A streak of easy accepts
//            (few Newton iterations, no rejects) grows dt by `growth` toward
//            dt_max, so the Spitzer plateau runs at large steps.
//   reject   divergence, stagnation (by default), a non-finite residual /
//            update / state, or a landau::Error thrown by the linear solver.
//            The state rolls back to the pre-step snapshot, dt shrinks by
//            `backoff` (floored at dt_min), and the step re-attempts — so the
//            quench transient is resolved with small steps automatically.
//   give up  after max_retries rejected attempts advance() throws
//            landau::Error — except that a final attempt which merely
//            stagnated (finite state, |update| at the quasi-Newton roundoff
//            floor) is accepted with a warning when
//            accept_stagnated_on_exhaust is set, because retrying cannot
//            beat the roundoff floor and production runs must complete.
//
// Controller state (dt, easy-step streak, accept/reject counters) is plain
// data with no hidden RNG, so save_state()/restore_state() round-trips it
// bit-exactly through a checkpoint file.

#include <cstdint>

#include "solver/implicit.h"

namespace landau {

struct StepControllerOptions {
  double dt_initial = 0.25;
  double dt_min = 1e-4;      // reject backoff floor
  double dt_max = 0.0;       // growth ceiling; <= 0 means dt_initial
  double backoff = 0.5;      // dt multiplier on reject, in (0, 1]
  double growth = 1.5;       // dt multiplier after an easy streak, >= 1
  int easy_streak = 3;       // consecutive easy accepts before growing dt
  int easy_newton_threshold = 4; // a step is easy if it takes <= this many its
  int max_retries = 8;       // rejected attempts per advance before giving up
  bool reject_stagnated = true;
  bool accept_stagnated_on_exhaust = true;
  bool check_state_finite = true; // scan f after each attempt (cheap O(n))
};

/// Outcome of one accepted advance.
struct AdvanceStats {
  StepStats step;                 // stats of the accepted attempt
  double dt = 0.0;                // dt the accepted attempt used
  int rejections = 0;             // rejected attempts within this advance
  bool accepted_stagnated = false; // accepted via the exhaustion escape hatch
};

class StepController {
public:
  explicit StepController(ImplicitIntegrator& integrator, StepControllerOptions opts = {});

  /// Advance f by exactly one accepted step (retrying internally as needed).
  /// Throws landau::Error when max_retries attempts are all rejected; f is
  /// left at the pre-step snapshot in that case.
  AdvanceStats advance(la::Vec& f, double e_z = 0.0, const la::Vec* source = nullptr);

  double dt() const { return dt_; }
  void set_dt(double dt);
  double dt_max() const { return opts_.dt_max > 0.0 ? opts_.dt_max : opts_.dt_initial; }

  const StepControllerOptions& options() const { return opts_; }
  ImplicitIntegrator& integrator() { return integrator_; }

  long total_accepted() const { return accepted_; }
  long total_rejected() const { return rejected_; }

  /// Bit-exact persistable controller state (checkpoint/restart).
  struct PersistedState {
    double dt = 0.0;
    std::int64_t easy_count = 0;
    std::int64_t accepted = 0;
    std::int64_t rejected = 0;
  };
  PersistedState save_state() const;
  void restore_state(const PersistedState& s);

private:
  ImplicitIntegrator& integrator_;
  StepControllerOptions opts_;
  double dt_;
  int easy_count_ = 0;
  long accepted_ = 0;
  long rejected_ = 0;
  la::Vec snapshot_; // pre-step state, reused across advances (no realloc)
  int advance_event_ = -1, reject_event_ = -1; // cached profiler ids
};

} // namespace landau
