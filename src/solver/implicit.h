#pragma once
// Fully implicit (backward Euler) advance of the Vlasov(E)-Landau system with
// the paper's quasi-Newton iteration (§III): the Jacobian is the FE operator
// with the Landau coefficients D(f), K(f) frozen at the current iterate and
// fully recomputed every iteration; the iteration converges linearly and is
// the solver XGC uses in production.
//
// One step solves G(f) = M (f - f_n) + dt [A f - C(f) f - M s] = 0,
// with A the E-field advection blocks, C the frozen-coefficient collision
// matrix and s an optional source. The Newton matrix is M + dt (A - C).
//
// Linear solvers: the custom block band LU with RCM ordering (§III-G,
// default — the species blocks factor independently, batched over the
// operator's worker pool), the device band LU (same batch in the emulated
// CUDA model), dense LU (reference), or GMRES (the iterative alternative the
// conclusion discusses). The band solvers' symbolic analysis (RCM, block
// discovery, scatter maps) is cached across Newton iterations and steps, and
// invalidated only when the matrix nonzero structure changes (AMR refine).

#include <memory>

#include "core/operator_base.h"
#include "la/band.h"
#include "la/band_device.h"
#include "la/dense.h"
#include "la/gmres.h"

namespace landau {

enum class LinearSolverKind { BandLU, DeviceBandLU, DenseLU, Gmres };

struct NewtonOptions {
  int max_iterations = 50;
  double rtol = 1e-8;
  double atol = 1e-14;
  bool verbose = false;
  /// Time-discretization parameter: 1 = backward Euler (the paper's choice),
  /// 0.5 = trapezoidal/Crank-Nicolson (second order in dt). The implicit
  /// side always uses the frozen-coefficient quasi-Newton Jacobian.
  double theta = 1.0;
};

/// Controls for the inner linear solve of each Newton iteration. The direct
/// solvers have no tunables (their accuracy is fixed by the factorization);
/// the GMRES fields mirror la::GmresOptions.
struct LinearSolverOptions {
  double gmres_rtol = 1e-12;
  double gmres_atol = 1e-50;
  int gmres_max_iterations = 2000;
  int gmres_restart = 60;
  bool gmres_jacobi_preconditioner = true;
};

struct StepStats {
  int newton_iterations = 0;
  bool converged = false; // |G| met atol/rtol
  /// The update stalled at the quasi-Newton roundoff floor before |G| met
  /// the tolerance: the step was accepted, but converged stays honest.
  bool stagnated = false;
  /// A NaN/Inf appeared in the residual or the Newton update: the iteration
  /// was abandoned immediately and f may be poisoned — callers (the step
  /// controller) must roll back to their pre-step snapshot.
  bool non_finite = false;
  double residual_norm = 0.0;
};

class ImplicitIntegrator {
public:
  explicit ImplicitIntegrator(CollisionOperatorBase& op, NewtonOptions nopts = {},
                              LinearSolverKind linear = LinearSolverKind::BandLU,
                              LinearSolverOptions lsopts = {});

  /// Advance f by one backward-Euler step of size dt under field e_z and
  /// optional source s (a full state-sized vector, df/dt units).
  StepStats step(la::Vec& f, double dt, double e_z = 0.0, const la::Vec* source = nullptr);

  LinearSolverKind linear_solver() const { return linear_; }
  const LinearSolverOptions& linear_options() const { return lsopts_; }
  long total_newton_iterations() const { return newton_count_; }

  /// Matrix bandwidth after RCM (diagnostic; valid once a step has run with
  /// the band solver).
  std::size_t band_bandwidth() const { return band_.bandwidth(); }
  std::size_t band_blocks() const { return band_.n_blocks(); }
  /// Symbolic analyses performed by the host band solver (diagnostic: stays
  /// at 1 across steps unless the matrix structure changes).
  long band_analysis_count() const { return band_.analysis_count(); }

private:
  void invalidate_if_structure_changed(const la::CsrMatrix& jmat);
  void factor_and_solve(const la::CsrMatrix& jmat, const la::Vec& rhs, la::Vec& x);

  CollisionOperatorBase& op_;
  NewtonOptions nopts_;
  LinearSolverKind linear_;
  LinearSolverOptions lsopts_;
  la::CsrMatrix cmat_, jmat_;
  la::BlockBandSolver band_;
  std::unique_ptr<la::DeviceBlockBandSolver> device_band_;
  std::size_t sym_rows_ = 0, sym_nnz_ = 0; // structure signature of the cache
  long newton_count_ = 0;
};

} // namespace landau
