#pragma once
// Fully implicit (backward Euler) advance of the Vlasov(E)-Landau system with
// the paper's quasi-Newton iteration (§III): the Jacobian is the FE operator
// with the Landau coefficients D(f), K(f) frozen at the current iterate and
// fully recomputed every iteration; the iteration converges linearly and is
// the solver XGC uses in production.
//
// One step solves G(f) = M (f - f_n) + dt [A f - C(f) f - M s] = 0,
// with A the E-field advection blocks, C the frozen-coefficient collision
// matrix and s an optional source. The Newton matrix is M + dt (A - C).
//
// Linear solvers: the custom block band LU with RCM ordering (§III-G,
// default — the species blocks factor independently), dense LU (reference),
// or GMRES (the iterative alternative the conclusion discusses).

#include <memory>

#include "core/operator_base.h"
#include "la/band.h"
#include "la/band_device.h"
#include "la/dense.h"
#include "la/gmres.h"

namespace landau {

enum class LinearSolverKind { BandLU, DeviceBandLU, DenseLU, Gmres };

struct NewtonOptions {
  int max_iterations = 50;
  double rtol = 1e-8;
  double atol = 1e-14;
  bool verbose = false;
  /// Time-discretization parameter: 1 = backward Euler (the paper's choice),
  /// 0.5 = trapezoidal/Crank-Nicolson (second order in dt). The implicit
  /// side always uses the frozen-coefficient quasi-Newton Jacobian.
  double theta = 1.0;
};

struct StepStats {
  int newton_iterations = 0;
  bool converged = false;
  double residual_norm = 0.0;
};

class ImplicitIntegrator {
public:
  explicit ImplicitIntegrator(CollisionOperatorBase& op, NewtonOptions nopts = {},
                              LinearSolverKind linear = LinearSolverKind::BandLU);

  /// Advance f by one backward-Euler step of size dt under field e_z and
  /// optional source s (a full state-sized vector, df/dt units).
  StepStats step(la::Vec& f, double dt, double e_z = 0.0, const la::Vec* source = nullptr);

  LinearSolverKind linear_solver() const { return linear_; }
  long total_newton_iterations() const { return newton_count_; }

  /// Matrix bandwidth after RCM (diagnostic; valid once a step has run with
  /// the band solver).
  std::size_t band_bandwidth() const { return band_.bandwidth(); }
  std::size_t band_blocks() const { return band_.n_blocks(); }

private:
  void factor_and_solve(const la::CsrMatrix& jmat, const la::Vec& rhs, la::Vec& x);

  CollisionOperatorBase& op_;
  NewtonOptions nopts_;
  LinearSolverKind linear_;
  la::CsrMatrix cmat_, jmat_;
  la::BlockBandSolver band_;
  std::unique_ptr<la::DeviceBlockBandSolver> device_band_;
  bool band_analyzed_ = false;
  long newton_count_ = 0;
};

} // namespace landau
