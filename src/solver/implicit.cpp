#include "solver/implicit.h"

#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/profiler.h"
#include "util/robustness.h"

namespace landau {

ImplicitIntegrator::ImplicitIntegrator(CollisionOperatorBase& op, NewtonOptions nopts,
                                       LinearSolverKind linear, LinearSolverOptions lsopts)
    : op_(op), nopts_(nopts), linear_(linear), lsopts_(lsopts), cmat_(op.new_matrix()),
      jmat_(op.new_matrix()), band_(&op.worker_pool()) {}

void ImplicitIntegrator::invalidate_if_structure_changed(const la::CsrMatrix& jmat) {
  // The band solvers' symbolic phase (RCM, block discovery, scatter maps) is
  // amortized across Newton iterations and steps (§III-G); quasi-Newton
  // freezes the structure, so only an actual pattern change — AMR refine
  // swapping in a new matrix — may invalidate it.
  if (jmat.rows() == sym_rows_ && jmat.nnz() == sym_nnz_) return;
  if (sym_rows_ != 0)
    LANDAU_DEBUG("linear solver: matrix structure changed ("
                 << sym_rows_ << "x" << sym_nnz_ << " nnz -> " << jmat.rows() << "x"
                 << jmat.nnz() << " nnz), re-running symbolic analysis");
  band_.invalidate();
  if (device_band_) device_band_->invalidate();
  sym_rows_ = jmat.rows();
  sym_nnz_ = jmat.nnz();
}

void ImplicitIntegrator::factor_and_solve(const la::CsrMatrix& jmat, const la::Vec& rhs,
                                          la::Vec& x) {
  // Defined-output contract: x is zeroed up front, so if the factorization or
  // solve throws, the caller's update vector holds zeros (a no-op Newton
  // update), never a stale or partial solution.
  x.zero();
  auto& fault = FaultInjector::instance();
  if (fault.armed() && fault.fire(FaultKind::Throw, "factor"))
    LANDAU_THROW("injected fault: linear solver factorization failure");
  if (robustness().paranoid)
    LANDAU_ASSERT(jmat.all_finite(), "paranoid: non-finite entries in the Newton matrix");
  invalidate_if_structure_changed(jmat);
  auto fire_solve_fault = [&fault] {
    if (fault.armed() && fault.fire(FaultKind::Throw, "solve"))
      LANDAU_THROW("injected fault: triangular solve failure");
  };
  switch (linear_) {
    case LinearSolverKind::BandLU: {
      if (!band_.analyzed()) {
        band_.analyze(jmat);
        LANDAU_DEBUG("band solver: " << band_.n_blocks() << " blocks, bandwidth "
                                     << band_.bandwidth());
      }
      {
        ScopedEvent ev("landau:factor");
        band_.factor(jmat);
      }
      ScopedEvent ev("landau:solve");
      fire_solve_fault();
      band_.solve(rhs, x);
      break;
    }
    case LinearSolverKind::DeviceBandLU: {
      if (!device_band_) device_band_ = std::make_unique<la::DeviceBlockBandSolver>(op_.worker_pool());
      if (!device_band_->analyzed()) device_band_->analyze(jmat);
      {
        ScopedEvent ev("landau:factor");
        device_band_->factor(jmat);
      }
      ScopedEvent ev("landau:solve");
      fire_solve_fault();
      device_band_->solve(rhs, x);
      break;
    }
    case LinearSolverKind::DenseLU: {
      std::unique_ptr<la::DenseLU> lu;
      {
        ScopedEvent ev("landau:factor");
        lu = std::make_unique<la::DenseLU>(jmat.to_dense());
      }
      ScopedEvent ev2("landau:solve");
      fire_solve_fault();
      lu->solve(rhs, x);
      break;
    }
    case LinearSolverKind::Gmres: {
      ScopedEvent ev("landau:solve");
      x.zero();
      la::GmresOptions gopts;
      gopts.rtol = lsopts_.gmres_rtol;
      gopts.atol = lsopts_.gmres_atol;
      gopts.max_iterations = lsopts_.gmres_max_iterations;
      gopts.restart = lsopts_.gmres_restart;
      gopts.jacobi_preconditioner = lsopts_.gmres_jacobi_preconditioner;
      const auto res = la::gmres_solve(jmat, rhs, x, gopts);
      static obs::Counter& gmres_iters =
          obs::MetricsRegistry::instance().counter("solver.gmres.iterations");
      gmres_iters.inc(res.iterations);
      if (!res.converged)
        LANDAU_WARN("GMRES stalled at residual " << res.residual_norm);
      break;
    }
  }
}

StepStats ImplicitIntegrator::step(la::Vec& f, double dt, double e_z, const la::Vec* source) {
  ScopedEvent ev("landau:step");
  auto& fault = FaultInjector::instance();
  fault.begin_attempt();
  const std::size_t n = op_.n_total();
  LANDAU_ASSERT(f.size() == n, "state size mismatch");
  if (cmat_.rows() != n) {
    // The operator was rebuilt under us (AMR refine): new matrices with the
    // new pattern; factor_and_solve notices and re-runs the symbolic phase.
    cmat_ = op_.new_matrix();
    jmat_ = op_.new_matrix();
  }
  const la::Vec fn = f;
  const auto& mass = op_.mass();
  const double theta = nopts_.theta;
  LANDAU_ASSERT(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");

  // M s (constant through the step).
  la::Vec msrc(n);
  if (source) {
    LANDAU_ASSERT(source->size() == n, "source size mismatch");
    mass.mult(*source, msrc);
  }

  la::Vec r(n), tmp(n), delta(n);

  // Explicit part of the theta scheme: (1 - theta) (C(f_n) - A) f_n,
  // evaluated once per step.
  la::Vec rhs_exp(n);
  if (theta < 1.0) {
    op_.pack(fn);
    cmat_.zero_entries();
    op_.add_collision(cmat_);
    if (e_z != 0.0) op_.add_advection(cmat_, -e_z);
    cmat_.mult(fn, rhs_exp);
  }

  StepStats stats;
  double r0 = -1.0;

  if (fault.armed()) {
    // Injected terminal outcomes, emulated cheaply at the step boundary: a
    // diverged Newton leaves a perturbed state and converged = false; a
    // stagnated one leaves the state untouched (the update stalled) with
    // stagnated = true. Both are consumed one-shot, so a controller retry of
    // the same physical step re-runs clean.
    if (fault.fire(FaultKind::NewtonDiverge, "newton")) {
      f.scale(1.5);
      stats.newton_iterations = nopts_.max_iterations;
      stats.residual_norm = 1e300;
      return stats;
    }
    if (fault.fire(FaultKind::Stagnate, "newton")) {
      stats.newton_iterations = 1;
      stats.stagnated = true;
      stats.residual_norm = std::max(nopts_.atol, nopts_.rtol) * 10.0;
      return stats;
    }
  }

  for (int it = 0; it < nopts_.max_iterations; ++it) {
    // Frozen-coefficient collision matrix about the current iterate.
    op_.pack(f);
    cmat_.zero_entries();
    op_.add_collision(cmat_);
    if (e_z != 0.0) op_.add_advection(cmat_, -e_z); // C - A combined (note sign)

    // Residual G = M (f - f_n) - dt [theta (C - A) f + (1-theta) (C_n - A) f_n] - dt M s.
    tmp = f;
    tmp.axpy(-1.0, fn);
    mass.mult(tmp, r);
    cmat_.mult(f, tmp);
    r.axpy(-dt * theta, tmp);
    if (theta < 1.0) r.axpy(-dt * (1.0 - theta), rhs_exp);
    if (source) r.axpy(-dt, msrc);
    if (fault.armed() && fault.fire(FaultKind::Nan, "rhs"))
      r[0] = std::numeric_limits<double>::quiet_NaN();

    stats.residual_norm = r.norm2();
    if (!std::isfinite(stats.residual_norm)) {
      // NaN/Inf in the residual: every further iterate would be poisoned, so
      // abandon the step immediately and tell the caller to roll back.
      stats.non_finite = true;
      LANDAU_WARN("Newton abandoned at iteration " << it
                                                   << ": non-finite residual norm");
      return stats;
    }
    if (r0 < 0) r0 = stats.residual_norm > 0 ? stats.residual_norm : 1.0;
    if (nopts_.verbose)
      LANDAU_INFO("newton " << it << " |G| = " << stats.residual_norm);
    if (stats.residual_norm <= std::max(nopts_.atol, nopts_.rtol * r0)) {
      stats.converged = true;
      break;
    }

    // Newton matrix M - theta dt (C - A); solve for the update.
    jmat_.zero_entries();
    jmat_.axpy(1.0, mass);
    jmat_.axpy(-dt * theta, cmat_);
    factor_and_solve(jmat_, r, delta);
    f.axpy(-1.0, delta);
    if (fault.armed() && fault.fire(FaultKind::Nan, "state"))
      f[0] = std::numeric_limits<double>::quiet_NaN();
    ++stats.newton_iterations;
    ++newton_count_;

    const double delta_norm = delta.norm2();
    const double f_norm = f.norm2();
    if (!std::isfinite(delta_norm) || !std::isfinite(f_norm)) {
      stats.non_finite = true;
      LANDAU_WARN("Newton abandoned at iteration " << it
                                                   << ": non-finite update or state");
      return stats;
    }

    // Stagnation exit: once the update is negligible relative to the state,
    // the quasi-Newton iteration has hit its roundoff floor — further
    // iterations only burn Jacobian builds (PETSc's snes_stol analog). The
    // step is accepted, but |G| never met atol/rtol, so converged stays
    // false: quench runs must not silently treat a stalled step as solved.
    if (delta_norm <= 1e-12 * std::max(1.0, f_norm)) {
      stats.stagnated = true;
      LANDAU_WARN("Newton stagnated after " << stats.newton_iterations
                                            << " iterations: |delta| at roundoff floor with |G| = "
                                            << stats.residual_norm
                                            << " above tolerance; accepting the step");
      break;
    }
  }
  if (!stats.converged && !stats.stagnated && !stats.non_finite)
    LANDAU_WARN("Newton did not converge: |G| = " << stats.residual_norm << " after "
                                                  << stats.newton_iterations << " iterations");
  // Telemetry of record for the step log and check.sh telemetry stage; the
  // handles are resolved once and the updates are relaxed atomics.
  static obs::Counter& newton_total =
      obs::MetricsRegistry::instance().counter("solver.newton.iterations");
  static obs::Histogram& newton_hist = obs::MetricsRegistry::instance().histogram(
      "solver.newton.per_step", {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0});
  newton_total.inc(stats.newton_iterations);
  newton_hist.observe(static_cast<double>(stats.newton_iterations));
  return stats;
}

} // namespace landau
