#pragma once
// High-level parameterization of velocity-space mesh adaptivity (§III-B):
// the solver builds grids for Maxwellian-like distributions by refining
// toward the origin until each species' thermal scale is resolved, then 2:1
// balancing. This is the command-line-driven AMR front end the paper
// describes for Maxwellian and runaway-electron distributions.

#include <vector>

#include "mesh/forest.h"

namespace landau::mesh {

struct VelocityMeshSpec {
  /// Domain [0, radius] x [-radius, radius] in reference-velocity units.
  double radius = 5.0;
  /// Uniform refinements of the 1 x 2 root forest (level 1 gives 2.5-unit
  /// cells for radius 5, the paper's Fig. 3 starting point).
  int base_levels = 1;
  /// Thermal speed of each species (or species cluster) to resolve.
  std::vector<double> thermal_speeds;
  /// Resolution target: cell size <= thermal_speed / cells_per_thermal
  /// within a few thermal radii of the origin.
  double cells_per_thermal = 1.0;
  /// Extent of the refined region around each thermal shell, in thermal radii.
  double zone_extent = 3.0;
  /// Safety cap on refinement depth.
  int max_levels = 16;
  bool corner_balance = true;

  /// Extra refined regions for runaway-electron tails (§III-B: the solver
  /// parameterizes grids "for common runaway electron distributions"): a
  /// strip along the +z axis where an accelerated beam lives.
  struct TailZone {
    double z_min = 0.0, z_max = 0.0; // parallel-velocity extent
    double r_width = 1.0;            // perpendicular extent from the axis
    double target_h = 0.25;          // required resolution inside the zone
  };
  std::vector<TailZone> tail_zones;
};

/// Build the adapted velocity-space mesh.
Forest build_velocity_mesh(const VelocityMeshSpec& spec);

} // namespace landau::mesh
