#include "mesh/refine.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace landau::mesh {
namespace {

/// Distance from the velocity-space origin (r,z) = (0,0) to the closest
/// point of a cell box.
double distance_to_origin(const Box& b) {
  const double dx = std::max({b.x0, 0.0, -b.x1});
  const double dy = std::max({b.y0, 0.0, -b.y1});
  return std::hypot(dx, dy);
}

} // namespace

Forest build_velocity_mesh(const VelocityMeshSpec& spec) {
  LANDAU_ASSERT(spec.radius > 0, "domain radius must be positive");
  Forest forest(Box{0.0, -spec.radius, spec.radius, spec.radius}, 1, 2);
  forest.refine_uniform(spec.base_levels);

  // Refine any cell whose size exceeds the resolution target of a species
  // whose refined zone it intersects. One species' zone is the disk of
  // zone_extent thermal radii about the origin (a Maxwellian's support).
  auto target_h = [&](const Box& b) {
    const double d = distance_to_origin(b);
    double h = spec.radius; // no requirement by default
    for (double vth : spec.thermal_speeds) {
      LANDAU_ASSERT(vth > 0, "thermal speed must be positive");
      if (d <= spec.zone_extent * vth) h = std::min(h, vth / spec.cells_per_thermal);
    }
    for (const auto& tz : spec.tail_zones) {
      const bool overlaps =
          b.x0 <= tz.r_width && b.y1 >= tz.z_min && b.y0 <= tz.z_max;
      if (overlaps) h = std::min(h, tz.target_h);
    }
    return h;
  };
  for (;;) {
    const std::size_t refined = forest.refine_where([&](const Box& b, int level) {
      if (level >= spec.max_levels) return false;
      return std::max(b.dx(), b.dy()) > target_h(b) * (1.0 + 1e-12);
    });
    if (refined == 0) break;
  }
  forest.balance(spec.corner_balance);
  return forest;
}

} // namespace landau::mesh
