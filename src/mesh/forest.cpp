#include "mesh/forest.h"

#include <algorithm>
#include <cmath>

namespace landau::mesh {

Forest::Forest(Box domain, int nx_roots, int ny_roots)
    : domain_(domain), nx_(nx_roots), ny_(ny_roots) {
  LANDAU_ASSERT(nx_ >= 1 && ny_ >= 1, "need at least one root cell");
  LANDAU_ASSERT(domain.dx() > 0 && domain.dy() > 0, "empty domain");
  for (int j = 0; j < ny_; ++j)
    for (int i = 0; i < nx_; ++i)
      leaf_set_[key(0, static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j))] = -1;
  rebuild_leaf_vector();
}

Box Forest::cell_box(int level, std::uint32_t gx, std::uint32_t gy) const {
  const double nx = static_cast<double>(nx_) * std::ldexp(1.0, level);
  const double ny = static_cast<double>(ny_) * std::ldexp(1.0, level);
  Box b;
  b.x0 = domain_.x0 + domain_.dx() * (gx / nx);
  b.x1 = domain_.x0 + domain_.dx() * ((gx + 1) / nx);
  b.y0 = domain_.y0 + domain_.dy() * (gy / ny);
  b.y1 = domain_.y0 + domain_.dy() * ((gy + 1) / ny);
  return b;
}

void Forest::rebuild_leaf_vector() {
  leaves_.clear();
  leaves_.reserve(leaf_set_.size());
  max_level_ = 0;
  for (const auto& [k, idx] : leaf_set_) {
    (void)idx;
    Leaf lf;
    lf.level = static_cast<int>(k >> 58);
    lf.gx = static_cast<std::uint32_t>((k >> 29) & ((1u << 29) - 1));
    lf.gy = static_cast<std::uint32_t>(k & ((1u << 29) - 1));
    lf.box = cell_box(lf.level, lf.gx, lf.gy);
    max_level_ = std::max(max_level_, lf.level);
    leaves_.push_back(lf);
  }
  // Deterministic ordering: lexicographic by position at the finest level,
  // bottom-to-top then left-to-right (z-fastest ordering is irrelevant here,
  // we just need stability).
  std::sort(leaves_.begin(), leaves_.end(), [this](const Leaf& a, const Leaf& b) {
    const std::uint64_t ay = static_cast<std::uint64_t>(a.gy) << (max_level_ - a.level);
    const std::uint64_t by = static_cast<std::uint64_t>(b.gy) << (max_level_ - b.level);
    if (ay != by) return ay < by;
    const std::uint64_t ax = static_cast<std::uint64_t>(a.gx) << (max_level_ - a.level);
    const std::uint64_t bx = static_cast<std::uint64_t>(b.gx) << (max_level_ - b.level);
    if (ax != bx) return ax < bx;
    return a.level < b.level;
  });
  for (std::size_t i = 0; i < leaves_.size(); ++i)
    leaf_set_[key(leaves_[i].level, leaves_[i].gx, leaves_[i].gy)] = static_cast<int>(i);
}

void Forest::split(int level, std::uint32_t gx, std::uint32_t gy) {
  LANDAU_ASSERT(level < 28, "refinement level too deep");
  leaf_set_.erase(key(level, gx, gy));
  for (std::uint32_t cy = 0; cy < 2; ++cy)
    for (std::uint32_t cx = 0; cx < 2; ++cx)
      leaf_set_[key(level + 1, 2 * gx + cx, 2 * gy + cy)] = -1;
}

void Forest::refine_uniform(int n) {
  for (int pass = 0; pass < n; ++pass) {
    std::vector<Leaf> snapshot = leaves_;
    for (const auto& lf : snapshot) split(lf.level, lf.gx, lf.gy);
    rebuild_leaf_vector();
  }
}

std::size_t Forest::refine_where(const std::function<bool(const Box&, int)>& pred) {
  std::vector<Leaf> to_split;
  for (const auto& lf : leaves_)
    if (pred(lf.box, lf.level)) to_split.push_back(lf);
  for (const auto& lf : to_split) split(lf.level, lf.gx, lf.gy);
  if (!to_split.empty()) rebuild_leaf_vector();
  return to_split.size();
}

std::pair<int, int> Forest::find_covering(int level, std::uint32_t gx, std::uint32_t gy) const {
  for (int l = level; l >= 0; --l) {
    auto it = leaf_set_.find(key(l, gx >> (level - l), gy >> (level - l)));
    if (it != leaf_set_.end()) return {l, it->second};
  }
  return {-1, -1};
}

void Forest::balance(bool corner_balance) {
  // Repeatedly refine any leaf with a neighbor (across an edge, and
  // optionally a corner) more than one level finer, until a fixed point.
  for (;;) {
    std::vector<Leaf> to_split;
    for (const auto& lf : leaves_) {
      const std::uint32_t w = static_cast<std::uint32_t>(nx_) << lf.level;
      const std::uint32_t h = static_cast<std::uint32_t>(ny_) << lf.level;
      bool needs = false;
      // A neighbor region is "too fine" if it contains a leaf at level
      // >= lf.level + 2, i.e. a grandchild of the same-level neighbor exists.
      auto too_fine = [&](std::int64_t ngx, std::int64_t ngy) {
        if (ngx < 0 || ngy < 0 || ngx >= static_cast<std::int64_t>(w) ||
            ngy >= static_cast<std::int64_t>(h))
          return false;
        // If the same-level or coarser cell is a leaf, fine.
        auto [lvl, idx] = find_covering(lf.level, static_cast<std::uint32_t>(ngx),
                                        static_cast<std::uint32_t>(ngy));
        (void)idx;
        if (lvl >= 0) return false;
        // Children exist; check whether any child is itself refined.
        for (std::uint32_t cy = 0; cy < 2; ++cy)
          for (std::uint32_t cx = 0; cx < 2; ++cx) {
            const std::uint32_t chx = 2 * static_cast<std::uint32_t>(ngx) + cx;
            const std::uint32_t chy = 2 * static_cast<std::uint32_t>(ngy) + cy;
            if (!leaf_exists(lf.level + 1, chx, chy)) {
              // This child region is either outside (impossible) or refined
              // further; but it may also simply not touch our cell. Being
              // conservative here only costs extra refinement, never
              // incorrectness, and keeps the query simple.
              return true;
            }
          }
        return false;
      };
      const std::int64_t x = lf.gx, y = lf.gy;
      needs = too_fine(x - 1, y) || too_fine(x + 1, y) || too_fine(x, y - 1) ||
              too_fine(x, y + 1);
      if (!needs && corner_balance)
        needs = too_fine(x - 1, y - 1) || too_fine(x + 1, y - 1) || too_fine(x - 1, y + 1) ||
                too_fine(x + 1, y + 1);
      if (needs) to_split.push_back(lf);
    }
    if (to_split.empty()) break;
    for (const auto& lf : to_split) split(lf.level, lf.gx, lf.gy);
    rebuild_leaf_vector();
  }
}

Forest::NeighborInfo Forest::neighbor(std::size_t i, Edge edge) const {
  LANDAU_CHECK_RANGE(i, leaves_.size());
  const Leaf& lf = leaves_[i];
  const std::uint32_t w = static_cast<std::uint32_t>(nx_) << lf.level;
  const std::uint32_t h = static_cast<std::uint32_t>(ny_) << lf.level;
  std::int64_t ngx = lf.gx, ngy = lf.gy;
  switch (edge) {
    case Edge::XLow: ngx -= 1; break;
    case Edge::XHigh: ngx += 1; break;
    case Edge::YLow: ngy -= 1; break;
    case Edge::YHigh: ngy += 1; break;
  }
  NeighborInfo info;
  if (ngx < 0 || ngy < 0 || ngx >= static_cast<std::int64_t>(w) ||
      ngy >= static_cast<std::int64_t>(h)) {
    info.kind = NeighborInfo::Kind::Boundary;
    return info;
  }
  auto [lvl, idx] =
      find_covering(lf.level, static_cast<std::uint32_t>(ngx), static_cast<std::uint32_t>(ngy));
  if (lvl == lf.level) {
    info.kind = NeighborInfo::Kind::Same;
    info.leaf = idx;
    return info;
  }
  if (lvl >= 0) {
    info.kind = NeighborInfo::Kind::Coarser;
    info.leaf = idx;
    return info;
  }
  // Finer: the two children of the neighbor cell adjacent to our edge.
  info.kind = NeighborInfo::Kind::Finer;
  const std::uint32_t cgx = 2 * static_cast<std::uint32_t>(ngx);
  const std::uint32_t cgy = 2 * static_cast<std::uint32_t>(ngy);
  std::uint32_t cx0, cy0, cx1, cy1;
  switch (edge) {
    case Edge::XLow:  cx0 = cgx + 1; cy0 = cgy;     cx1 = cgx + 1; cy1 = cgy + 1; break;
    case Edge::XHigh: cx0 = cgx;     cy0 = cgy;     cx1 = cgx;     cy1 = cgy + 1; break;
    case Edge::YLow:  cx0 = cgx;     cy0 = cgy + 1; cx1 = cgx + 1; cy1 = cgy + 1; break;
    case Edge::YHigh: cx0 = cgx;     cy0 = cgy;     cx1 = cgx + 1; cy1 = cgy;     break;
    default: LANDAU_THROW("bad edge");
  }
  auto it0 = leaf_set_.find(key(lf.level + 1, cx0, cy0));
  auto it1 = leaf_set_.find(key(lf.level + 1, cx1, cy1));
  LANDAU_ASSERT(it0 != leaf_set_.end() && it1 != leaf_set_.end(),
                "finer neighbor deeper than one level: mesh not 2:1 balanced");
  info.finer_leaves[0] = it0->second;
  info.finer_leaves[1] = it1->second;
  return info;
}

int Forest::find_point(double x, double y) const {
  if (x < domain_.x0 || x > domain_.x1 || y < domain_.y0 || y > domain_.y1) return -1;
  // Descend from the root containing the point.
  const double fx = (x - domain_.x0) / domain_.dx() * nx_;
  const double fy = (y - domain_.y0) / domain_.dy() * ny_;
  for (int l = 0; l <= max_level_; ++l) {
    const double scale = std::ldexp(1.0, l);
    auto gx = static_cast<std::uint32_t>(std::min(fx * scale, nx_ * scale - 1e-12));
    auto gy = static_cast<std::uint32_t>(std::min(fy * scale, ny_ * scale - 1e-12));
    auto it = leaf_set_.find(key(l, gx, gy));
    if (it != leaf_set_.end()) return it->second;
  }
  return -1;
}

} // namespace landau::mesh
