#pragma once
// Adaptive quadtree forest over a rectangular velocity-space domain — the
// stand-in for p4est (§III-B). Supports predicate-driven refinement, 2:1
// balancing across edges (and corners), and the neighbor queries the dof map
// needs to build hanging-node constraints on the non-conforming mesh.
//
// Cells are addressed by (level, gx, gy) where (gx, gy) are global integer
// coordinates on the level-l grid of (nx*2^l) x (ny*2^l) cells covering the
// whole forest; roots are the level-0 cells. This flat addressing makes
// neighbor queries across root boundaries uniform.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/error.h"

namespace landau::mesh {

/// Axis-aligned box [x0,x1] x [y0,y1].
struct Box {
  double x0 = 0, y0 = 0, x1 = 1, y1 = 1;
  double dx() const { return x1 - x0; }
  double dy() const { return y1 - y0; }
  double cx() const { return 0.5 * (x0 + x1); }
  double cy() const { return 0.5 * (y0 + y1); }
};

/// One leaf cell of the forest.
struct Leaf {
  int level = 0;
  std::uint32_t gx = 0, gy = 0;
  Box box;
};

/// Edges in neighbor queries.
enum class Edge : int { XLow = 0, XHigh = 1, YLow = 2, YHigh = 3 };

class Forest {
public:
  /// A forest of nx x ny unit roots tiling `domain`.
  Forest(Box domain, int nx_roots, int ny_roots);

  const Box& domain() const { return domain_; }
  int max_level() const { return max_level_; }
  std::size_t n_leaves() const { return leaves_.size(); }
  const std::vector<Leaf>& leaves() const { return leaves_; }
  const Leaf& leaf(std::size_t i) const { return leaves_[i]; }

  /// Uniformly refine every leaf n times.
  void refine_uniform(int n);

  /// One refinement sweep: split each leaf where pred(box, level) is true.
  /// Returns the number of leaves refined. Call in a loop for nested criteria.
  std::size_t refine_where(const std::function<bool(const Box&, int)>& pred);

  /// Enforce 2:1 balance across edges (and corners when corner_balance).
  void balance(bool corner_balance = true);

  struct NeighborInfo {
    enum class Kind { Boundary, Same, Coarser, Finer } kind = Kind::Boundary;
    int leaf = -1;        // valid for Same and Coarser
    int finer_leaves[2] = {-1, -1}; // valid for Finer (ordered along the edge)
  };

  /// Neighbor of leaf i across `edge`. After balance(), Finer neighbors are
  /// exactly one level finer and Coarser exactly one level coarser.
  NeighborInfo neighbor(std::size_t i, Edge edge) const;

  /// Leaf index containing point (x, y), or -1 outside the domain.
  int find_point(double x, double y) const;

  /// Geometry of an addressed cell.
  Box cell_box(int level, std::uint32_t gx, std::uint32_t gy) const;

private:
  static std::uint64_t key(int level, std::uint32_t gx, std::uint32_t gy) {
    return (static_cast<std::uint64_t>(level) << 58) |
           (static_cast<std::uint64_t>(gx) << 29) | gy;
  }

  void rebuild_leaf_vector();
  bool leaf_exists(int level, std::uint32_t gx, std::uint32_t gy) const {
    return leaf_set_.count(key(level, gx, gy)) > 0;
  }
  void split(int level, std::uint32_t gx, std::uint32_t gy);
  /// Find the leaf covering cell (level,gx,gy) at this level or coarser;
  /// returns (found_level, index) or found_level = -1.
  std::pair<int, int> find_covering(int level, std::uint32_t gx, std::uint32_t gy) const;

  Box domain_;
  int nx_, ny_;
  int max_level_ = 0;
  std::unordered_map<std::uint64_t, int> leaf_set_; // key -> index (index valid after rebuild)
  std::vector<Leaf> leaves_;
};

} // namespace landau::mesh
