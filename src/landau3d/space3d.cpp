#include "landau3d/space3d.h"

#include <cmath>

#include "exec/annotations.h"

namespace landau::v3 {

Tabulation3D::Tabulation3D(int order)
    : order_(order),
      nb_((order + 1) * (order + 1) * (order + 1)),
      nq_(nb_),
      basis_(order) {
  const int n1 = order + 1;
  const auto q1 = fem::gauss_legendre(n1);
  qp_.resize(static_cast<std::size_t>(nq_) * 3);
  qw_.resize(static_cast<std::size_t>(nq_));
  b_.resize(static_cast<std::size_t>(nq_) * static_cast<std::size_t>(nb_));
  e_.resize(static_cast<std::size_t>(nq_) * static_cast<std::size_t>(nb_) * 3);

  std::vector<double> lv(static_cast<std::size_t>(n1)), ld(static_cast<std::size_t>(n1));
  // Precompute the 1D values/derivatives of the basis at the 1D points.
  std::vector<double> v1(static_cast<std::size_t>(n1 * n1)), d1(static_cast<std::size_t>(n1 * n1));
  for (int q = 0; q < n1; ++q) {
    basis_.eval_all(q1.points[static_cast<std::size_t>(q)], lv.data());
    basis_.eval_deriv_all(q1.points[static_cast<std::size_t>(q)], ld.data());
    for (int b = 0; b < n1; ++b) {
      v1[static_cast<std::size_t>(q * n1 + b)] = lv[static_cast<std::size_t>(b)];
      d1[static_cast<std::size_t>(q * n1 + b)] = ld[static_cast<std::size_t>(b)];
    }
  }
  for (int qz = 0; qz < n1; ++qz)
    for (int qy = 0; qy < n1; ++qy)
      for (int qx = 0; qx < n1; ++qx) {
        const int q = (qz * n1 + qy) * n1 + qx;
        qp_[static_cast<std::size_t>(q * 3 + 0)] = q1.points[static_cast<std::size_t>(qx)];
        qp_[static_cast<std::size_t>(q * 3 + 1)] = q1.points[static_cast<std::size_t>(qy)];
        qp_[static_cast<std::size_t>(q * 3 + 2)] = q1.points[static_cast<std::size_t>(qz)];
        qw_[static_cast<std::size_t>(q)] = q1.weights[static_cast<std::size_t>(qx)] *
                                           q1.weights[static_cast<std::size_t>(qy)] *
                                           q1.weights[static_cast<std::size_t>(qz)];
        for (int bz = 0; bz < n1; ++bz)
          for (int by = 0; by < n1; ++by)
            for (int bx = 0; bx < n1; ++bx) {
              const int b = (bz * n1 + by) * n1 + bx;
              const double vx = v1[static_cast<std::size_t>(qx * n1 + bx)];
              const double vy = v1[static_cast<std::size_t>(qy * n1 + by)];
              const double vz = v1[static_cast<std::size_t>(qz * n1 + bz)];
              b_[static_cast<std::size_t>(q * nb_ + b)] = vx * vy * vz;
              e_[static_cast<std::size_t>((q * nb_ + b) * 3 + 0)] =
                  d1[static_cast<std::size_t>(qx * n1 + bx)] * vy * vz;
              e_[static_cast<std::size_t>((q * nb_ + b) * 3 + 1)] =
                  vx * d1[static_cast<std::size_t>(qy * n1 + by)] * vz;
              e_[static_cast<std::size_t>((q * nb_ + b) * 3 + 2)] =
                  vx * vy * d1[static_cast<std::size_t>(qz * n1 + bz)];
            }
      }
}

Space3D::Space3D(double radius, int cells_per_dim, int order)
    : radius_(radius), nc_(cells_per_dim), tab_(order) {
  LANDAU_ASSERT(radius > 0 && cells_per_dim >= 1, "bad 3D grid parameters");
  const int k = order;
  const int n1 = k + 1;
  const std::size_t npd = static_cast<std::size_t>(nc_ * k + 1); // nodes per dim (conforming)
  n_dofs_ = npd * npd * npd;

  // Node positions: GLL nodes within each cell; shared lattice indices via
  // (cell * k + local) — conforming because element boundaries coincide.
  positions_.resize(n_dofs_);
  const auto& nodes1 = tab_.basis_1d().nodes();
  std::vector<double> coord(npd);
  for (int c = 0; c < nc_; ++c)
    for (int i = 0; i <= k; ++i) {
      const std::size_t g = static_cast<std::size_t>(c * k + i);
      coord[g] = -radius_ + h() * (c + 0.5 * (nodes1[static_cast<std::size_t>(i)] + 1.0));
    }
  for (std::size_t iz = 0; iz < npd; ++iz)
    for (std::size_t iy = 0; iy < npd; ++iy)
      for (std::size_t ix = 0; ix < npd; ++ix)
        positions_[(iz * npd + iy) * npd + ix] = {coord[ix], coord[iy], coord[iz]};

  cell_dofs_.resize(n_cells() * static_cast<std::size_t>(tab_.n_basis()));
  std::size_t idx = 0;
  for (int cz = 0; cz < nc_; ++cz)
    for (int cy = 0; cy < nc_; ++cy)
      for (int cx = 0; cx < nc_; ++cx)
        for (int bz = 0; bz < n1; ++bz)
          for (int by = 0; by < n1; ++by)
            for (int bx = 0; bx < n1; ++bx) {
              const std::size_t gx = static_cast<std::size_t>(cx * k + bx);
              const std::size_t gy = static_cast<std::size_t>(cy * k + by);
              const std::size_t gz = static_cast<std::size_t>(cz * k + bz);
              cell_dofs_[idx++] = static_cast<std::int32_t>((gz * npd + gy) * npd + gx);
            }
}

double Space3D::cell_origin(std::size_t c, int dim) const {
  const std::size_t nx = static_cast<std::size_t>(nc_);
  const std::size_t cx = c % nx;
  const std::size_t cy = (c / nx) % nx;
  const std::size_t cz = c / (nx * nx);
  const std::size_t ci = dim == 0 ? cx : dim == 1 ? cy : cz;
  return -radius_ + h() * static_cast<double>(ci);
}

la::Vec Space3D::interpolate(const std::function<double(double, double, double)>& f) const {
  la::Vec v(n_dofs_);
  for (std::size_t i = 0; i < n_dofs_; ++i) {
    const auto& p = positions_[i];
    v[i] = f(p[0], p[1], p[2]);
  }
  return v;
}

void Space3D::eval_at_ips(std::span<const double> dofs, std::span<double> values,
                          std::span<double> gx, std::span<double> gy,
                          std::span<double> gz) const {
  LANDAU_ASSERT(dofs.size() == n_dofs_ && values.size() == n_ips(), "eval size mismatch");
  const int nq = tab_.n_quad();
  const int nb = tab_.n_basis();
  const double jinv = 2.0 / h();
  for (std::size_t c = 0; c < n_cells(); ++c) {
    const auto cd = cell_dofs(c);
    for (int q = 0; q < nq; ++q) {
      double v = 0, dx = 0, dy = 0, dz = 0;
      for (int b = 0; b < nb; ++b) {
        const double coeff = dofs[static_cast<std::size_t>(cd[static_cast<std::size_t>(b)])];
        v += tab_.B(q, b) * coeff;
        dx += tab_.E(q, b, 0) * coeff;
        dy += tab_.E(q, b, 1) * coeff;
        dz += tab_.E(q, b, 2) * coeff;
      }
      const std::size_t ip = c * static_cast<std::size_t>(nq) + static_cast<std::size_t>(q);
      values[ip] = v;
      gx[ip] = dx * jinv;
      gy[ip] = dy * jinv;
      gz[ip] = dz * jinv;
    }
  }
}

void Space3D::ip_coordinates(std::span<double> x, std::span<double> y, std::span<double> z,
                             std::span<double> w) const {
  const int nq = tab_.n_quad();
  const double hh = 0.5 * h();
  const double detj = hh * hh * hh;
  for (std::size_t c = 0; c < n_cells(); ++c) {
    const double ox = cell_origin(c, 0), oy = cell_origin(c, 1), oz = cell_origin(c, 2);
    for (int q = 0; q < nq; ++q) {
      const std::size_t ip = c * static_cast<std::size_t>(nq) + static_cast<std::size_t>(q);
      x[ip] = ox + 0.5 * h() * (tab_.qx(q, 0) + 1.0);
      y[ip] = oy + 0.5 * h() * (tab_.qx(q, 1) + 1.0);
      z[ip] = oz + 0.5 * h() * (tab_.qx(q, 2) + 1.0);
      w[ip] = tab_.qw(q) * detj;
    }
  }
}

double Space3D::moment(std::span<const double> dofs,
                       const std::function<double(double, double, double)>& g) const {
  std::vector<double> v(n_ips()), gx(n_ips()), gy(n_ips()), gz(n_ips());
  std::vector<double> x(n_ips()), y(n_ips()), z(n_ips()), w(n_ips());
  eval_at_ips(dofs, v, gx, gy, gz);
  ip_coordinates(x, y, z, w);
  double m = 0;
  for (std::size_t ip = 0; ip < n_ips(); ++ip) m += w[ip] * g(x[ip], y[ip], z[ip]) * v[ip];
  return m;
}

la::SparsityPattern Space3D::sparsity() const {
  la::SparsityPattern pattern(n_dofs_, n_dofs_);
  for (std::size_t c = 0; c < n_cells(); ++c) pattern.add_clique(cell_dofs(c));
  pattern.compress();
  return pattern;
}

void Space3D::assemble_mass(la::CsrMatrix& m) const {
  const int nq = tab_.n_quad();
  const int nb = tab_.n_basis();
  const double hh = 0.5 * h();
  const double detj = hh * hh * hh;
  std::vector<double> ke(static_cast<std::size_t>(nb) * static_cast<std::size_t>(nb));
  for (std::size_t c = 0; c < n_cells(); ++c) {
    std::fill(ke.begin(), ke.end(), 0.0);
    for (int q = 0; q < nq; ++q) {
      const double wq = tab_.qw(q) * detj;
      for (int a = 0; a < nb; ++a)
        for (int b = 0; b < nb; ++b)
          ke[static_cast<std::size_t>(a * nb + b)] += wq * tab_.B(q, a) * tab_.B(q, b);
    }
    add_element_matrix(c, ke, m, 0, false);
  }
}

LANDAU_DEVICE void Space3D::add_element_matrix(std::size_t cell, std::span<const double> ke,
                                               la::CsrMatrix& a, std::size_t block_offset,
                                               bool atomic) const {
  const auto cd = cell_dofs(cell);
  const std::size_t nb = cd.size();
  LANDAU_ASSERT(ke.size() == nb * nb, "element matrix shape mismatch");
  for (std::size_t i = 0; i < nb; ++i)
    for (std::size_t j = 0; j < nb; ++j) {
      const double v = ke[i * nb + j];
      if (fp::exact_eq(v, 0.0)) continue; // sparsity skip: bitwise compare intended
      const std::size_t gi = block_offset + static_cast<std::size_t>(cd[i]);
      const std::size_t gj = block_offset + static_cast<std::size_t>(cd[j]);
      if (atomic)
        a.add_atomic(gi, gj, v);
      else
        a.add(gi, gj, v);
    }
}

} // namespace landau::v3
