#pragma once
// Multi-species Landau collision operator in full 3D velocity space. The
// kernel is the 3D specialization of Algorithm 1: the inner integral uses
// the plain Landau tensor (eq. 3), T_K is a 3-vector, G_D a symmetric 3x3
// tensor, and the CUDA-model mapping (element per block, integration points
// on threadIdx.y, lane-strided inner loop with shuffle reduction) is
// unchanged. Conservation of density, all three momentum components and
// energy is exact to roundoff here — U(v, vbar) is symmetric and
// annihilates v - vbar, so the pairwise exchange identities hold trivially.

#include <memory>
#include <span>

#include "core/jacobian.h" // Backend enum
#include "core/operator_base.h"
#include "core/species.h"
#include "exec/thread_pool.h"
#include "landau3d/space3d.h"
#include "la/csr.h"
#include "la/vec.h"

namespace landau::v3 {

struct Landau3DOptions {
  double radius = 4.0;
  int cells_per_dim = 4;
  int order = 2;
  Backend backend = Backend::CudaSim;
  bool atomic_assembly = true;
  unsigned n_workers = 0;
};

/// Packed 3D integration-point data (SoA).
struct IPData3 {
  int n_species = 0;
  std::size_t n = 0;
  std::vector<double> x, y, z, w;
  std::vector<double> f, dfx, dfy, dfz; // species-major

  void resize(int ns, std::size_t npts);
};

class Landau3DOperator : public CollisionOperatorBase {
public:
  Landau3DOperator(SpeciesSet species, Landau3DOptions opts = {});

  const SpeciesSet& species() const { return species_; }
  const Space3D& space() const { return space_; }
  int n_species() const { return species_.size(); }
  std::size_t n_dofs_per_species() const { return space_.n_dofs(); }
  std::size_t n_total() const override {
    return n_dofs_per_species() * static_cast<std::size_t>(n_species());
  }

  std::span<double> block(la::Vec& v, int s) const;
  std::span<const double> block(const la::Vec& v, int s) const;

  /// Drifting Maxwellians (drift along z).
  la::Vec maxwellian_state(std::span<const double> drifts_z = {}) const;
  la::Vec project(const std::function<double(int, double, double, double)>& f) const;

  const la::CsrMatrix& mass() const override { return mass_; }
  la::CsrMatrix new_matrix() const override;
  void pack(const la::Vec& state) override;
  void add_collision(la::CsrMatrix& j, exec::KernelCounters* counters = nullptr) override;
  /// E-field advection along z (the axisymmetric model's E term in 3D).
  void add_advection(la::CsrMatrix& j, double e_z) const override;
  exec::ThreadPool& worker_pool() override { return *pool_; }

  struct Moments {
    double density = 0;
    double momentum[3] = {0, 0, 0}; // m \int v f
    double energy = 0;              // (m/2) \int v^2 f
  };
  Moments moments(const la::Vec& state, int s) const;

private:
  void kernel_cpu(la::CsrMatrix& j, exec::KernelCounters* counters) const;
  void kernel_cuda(la::CsrMatrix& j, exec::KernelCounters* counters) const;

  SpeciesSet species_;
  Landau3DOptions opts_;
  Space3D space_;
  std::unique_ptr<exec::ThreadPool> pool_;
  la::CsrMatrix mass_;
  IPData3 ip_;
  std::vector<double> q2_, q2_over_m_, q2_over_m2_;
};

} // namespace landau::v3
