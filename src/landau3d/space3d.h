#pragma once
// Full 3D velocity-space discretization (§II-A: "A full 3D model is
// supported in the library and is required for extension to relativistic
// regimes"): a uniform Cartesian grid of hexahedral Qk tensor elements over
// [-R, R]^3 with conforming continuous Lagrange spaces. The 3D path uses
// the plain Landau tensor of eq. (3) — no azimuthal reduction, no elliptic
// integrals — and the Cartesian measure d^3v. AMR is a 2D-only feature here
// (as in the paper's experiments, which are all axisymmetric).

#include <array>
#include <functional>
#include <vector>

#include "exec/annotations.h"
#include "fem/lagrange.h"
#include "fem/quadrature.h"
#include "la/csr.h"
#include "la/vec.h"
#include "util/error.h"

namespace landau::v3 {

/// Tensor-product Qk tabulation on the reference cube.
class Tabulation3D {
public:
  explicit Tabulation3D(int order);

  int order() const { return order_; }
  int n_basis() const { return nb_; } // (k+1)^3
  int n_quad() const { return nq_; }  // (k+1)^3

  LANDAU_DEVICE double B(int q, int b) const {
    return b_[static_cast<std::size_t>(q * nb_ + b)];
  }
  LANDAU_DEVICE double E(int q, int b, int d) const {
    return e_[static_cast<std::size_t>((q * nb_ + b) * 3 + d)];
  }
  LANDAU_DEVICE double qx(int q, int d) const { return qp_[static_cast<std::size_t>(q * 3 + d)]; }
  LANDAU_DEVICE double qw(int q) const { return qw_[static_cast<std::size_t>(q)]; }
  const fem::Lagrange1D& basis_1d() const { return basis_; }

private:
  int order_, nb_, nq_;
  fem::Lagrange1D basis_;
  std::vector<double> b_, e_, qp_, qw_;
};

/// Uniform Cartesian Qk space on [-R,R]^3 with n_cells_per_dim^3 cells.
class Space3D {
public:
  Space3D(double radius, int cells_per_dim, int order);

  double radius() const { return radius_; }
  int cells_per_dim() const { return nc_; }
  std::size_t n_cells() const {
    return static_cast<std::size_t>(nc_) * static_cast<std::size_t>(nc_) * static_cast<std::size_t>(nc_);
  }
  const Tabulation3D& tabulation() const { return tab_; }
  std::size_t n_dofs() const { return n_dofs_; }
  std::size_t n_ips() const { return n_cells() * static_cast<std::size_t>(tab_.n_quad()); }
  double h() const { return 2.0 * radius_ / nc_; }

  /// Global dof ids of cell c's (k+1)^3 nodes (x-fastest, then y, then z).
  std::span<const std::int32_t> cell_dofs(std::size_t c) const {
    return {cell_dofs_.data() + c * static_cast<std::size_t>(tab_.n_basis()),
            static_cast<std::size_t>(tab_.n_basis())};
  }

  /// Physical position of dof i.
  std::array<double, 3> position(std::int32_t dof) const {
    return positions_[static_cast<std::size_t>(dof)];
  }

  la::Vec interpolate(const std::function<double(double, double, double)>& f) const;

  /// Values and (physical) gradients at every integration point (SoA).
  void eval_at_ips(std::span<const double> dofs, std::span<double> values,
                   std::span<double> gx, std::span<double> gy, std::span<double> gz) const;

  /// Coordinates and weights (qw * detJ) of all integration points.
  void ip_coordinates(std::span<double> x, std::span<double> y, std::span<double> z,
                      std::span<double> w) const;

  /// \int g(v) f d^3v.
  double moment(std::span<const double> dofs,
                const std::function<double(double, double, double)>& g) const;

  la::SparsityPattern sparsity() const;
  void assemble_mass(la::CsrMatrix& m) const;

  /// Add an element matrix into a global (block-offset) matrix.
  LANDAU_DEVICE void add_element_matrix(std::size_t cell, std::span<const double> ke, la::CsrMatrix& a,
                          std::size_t block_offset, bool atomic) const;

private:
  double cell_origin(std::size_t c, int dim) const;

  double radius_;
  int nc_;
  Tabulation3D tab_;
  std::size_t n_dofs_ = 0;
  std::vector<std::int32_t> cell_dofs_;
  std::vector<std::array<double, 3>> positions_;
};

} // namespace landau::v3
