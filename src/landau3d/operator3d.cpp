#include "landau3d/operator3d.h"

#include <algorithm>
#include <cmath>

#include "exec/annotations.h"

#include "exec/cuda_sim.h"
#include "util/logging.h"
#include "util/profiler.h"
#include "util/special_math.h"

namespace landau::v3 {
namespace {

/// Reducible accumulator of the 3D inner integral: G_K (vector) and the
/// symmetric G_D stored as (xx, yy, zz, xy, xz, yz).
struct Accum3 {
  double gk[3] = {0, 0, 0};
  double gd[6] = {0, 0, 0, 0, 0, 0};
  Accum3& operator+=(const Accum3& o) {
    for (int i = 0; i < 3; ++i) gk[i] += o.gk[i];
    for (int i = 0; i < 6; ++i) gd[i] += o.gd[i];
    return *this;
  }
};

/// One (i, j) contribution: the plain Landau tensor of eq. (3).
LANDAU_DEVICE inline void inner_point3(const double vi[3], double xj, double yj, double zj, double wj,
                         const double* f_j, const double* dfx_j, const double* dfy_j,
                         const double* dfz_j, std::size_t stride, int ns, const double* q2,
                         const double* q2m, Accum3* acc) {
  const double ux = vi[0] - xj, uy = vi[1] - yj, uz = vi[2] - zj;
  const double n2 = ux * ux + uy * uy + uz * uz;
  if (n2 <= 1e-28) return; // integrable diagonal, contributes zero
  const double inv3 = 1.0 / (n2 * std::sqrt(n2));

  double tkx = 0, tky = 0, tkz = 0, td = 0;
  for (int b = 0; b < ns; ++b) {
    const std::size_t off = static_cast<std::size_t>(b) * stride;
    tkx += q2m[b] * dfx_j[off];
    tky += q2m[b] * dfy_j[off];
    tkz += q2m[b] * dfz_j[off];
    td += q2[b] * f_j[off];
  }
  // U . T_K with U = (n2 I - u u^T) inv3.
  const double udot = ux * tkx + uy * tky + uz * tkz;
  acc->gk[0] += wj * inv3 * (n2 * tkx - ux * udot);
  acc->gk[1] += wj * inv3 * (n2 * tky - uy * udot);
  acc->gk[2] += wj * inv3 * (n2 * tkz - uz * udot);
  const double c = wj * td * inv3;
  acc->gd[0] += c * (n2 - ux * ux);
  acc->gd[1] += c * (n2 - uy * uy);
  acc->gd[2] += c * (n2 - uz * uz);
  acc->gd[3] += c * (-ux * uy);
  acc->gd[4] += c * (-ux * uz);
  acc->gd[5] += c * (-uy * uz);
}

constexpr int kInnerFlops3 = 60;

} // namespace

void IPData3::resize(int ns, std::size_t npts) {
  n_species = ns;
  n = npts;
  x.assign(n, 0.0);
  y.assign(n, 0.0);
  z.assign(n, 0.0);
  w.assign(n, 0.0);
  const std::size_t total = static_cast<std::size_t>(ns) * n;
  f.assign(total, 0.0);
  dfx.assign(total, 0.0);
  dfy.assign(total, 0.0);
  dfz.assign(total, 0.0);
}

Landau3DOperator::Landau3DOperator(SpeciesSet species, Landau3DOptions opts)
    : species_(std::move(species)), opts_(opts),
      space_(opts.radius, opts.cells_per_dim, opts.order) {
  pool_ = std::make_unique<exec::ThreadPool>(opts_.n_workers);
  const int ns = species_.size();
  q2_.resize(static_cast<std::size_t>(ns));
  q2_over_m_.resize(static_cast<std::size_t>(ns));
  q2_over_m2_.resize(static_cast<std::size_t>(ns));
  for (int s = 0; s < ns; ++s) {
    const double q = species_[s].charge, m = species_[s].mass;
    q2_[static_cast<std::size_t>(s)] = q * q;
    q2_over_m_[static_cast<std::size_t>(s)] = q * q / m;
    q2_over_m2_[static_cast<std::size_t>(s)] = q * q / (m * m);
  }
  LANDAU_INFO("Landau3DOperator: " << space_.n_cells() << " cells, " << space_.n_dofs()
                                   << " dofs/species, " << ns << " species");
  mass_ = new_matrix();
  {
    la::CsrMatrix m1(space_.sparsity());
    space_.assemble_mass(m1);
    auto rowptr = m1.row_offsets();
    auto colind = m1.col_indices();
    for (int s = 0; s < ns; ++s) {
      const std::size_t off = static_cast<std::size_t>(s) * space_.n_dofs();
      for (std::size_t i = 0; i < m1.rows(); ++i)
        for (std::int32_t k = rowptr[i]; k < rowptr[i + 1]; ++k)
          mass_.add(off + i, off + static_cast<std::size_t>(colind[k]), m1.values()[k]);
    }
  }
}

std::span<double> Landau3DOperator::block(la::Vec& v, int s) const {
  return {v.data() + static_cast<std::size_t>(s) * space_.n_dofs(), space_.n_dofs()};
}
std::span<const double> Landau3DOperator::block(const la::Vec& v, int s) const {
  return {v.data() + static_cast<std::size_t>(s) * space_.n_dofs(), space_.n_dofs()};
}

la::Vec Landau3DOperator::maxwellian_state(std::span<const double> drifts_z) const {
  return project([&](int s, double x, double y, double z) {
    const double drift =
        s < static_cast<int>(drifts_z.size()) ? drifts_z[static_cast<std::size_t>(s)] : 0.0;
    const double th = species_[s].theta();
    const double r2 = x * x + y * y + sqr(z - drift);
    return species_[s].density / std::pow(kPi * th, 1.5) * std::exp(-r2 / th);
  });
}

la::Vec Landau3DOperator::project(
    const std::function<double(int, double, double, double)>& f) const {
  la::Vec state(n_total());
  for (int s = 0; s < n_species(); ++s) {
    la::Vec b =
        space_.interpolate([&](double x, double y, double z) { return f(s, x, y, z); });
    std::copy(b.begin(), b.end(), block(state, s).begin());
  }
  return state;
}

la::CsrMatrix Landau3DOperator::new_matrix() const {
  const std::size_t nf = space_.n_dofs();
  la::SparsityPattern pattern(n_total(), n_total());
  for (std::size_t c = 0; c < space_.n_cells(); ++c) {
    const auto cd = space_.cell_dofs(c);
    for (int s = 0; s < n_species(); ++s) {
      const std::size_t off = static_cast<std::size_t>(s) * nf;
      for (auto di : cd)
        for (auto dj : cd)
          pattern.add(off + static_cast<std::size_t>(di), off + static_cast<std::size_t>(dj));
    }
  }
  pattern.compress();
  return la::CsrMatrix(pattern);
}

void Landau3DOperator::pack(const la::Vec& state) {
  ScopedEvent ev("landau3d:pack");
  const int ns = n_species();
  ip_.resize(ns, space_.n_ips());
  space_.ip_coordinates(ip_.x, ip_.y, ip_.z, ip_.w);
  for (int s = 0; s < ns; ++s) {
    const std::size_t off = static_cast<std::size_t>(s) * ip_.n;
    la::Vec b(std::vector<double>(block(state, s).begin(), block(state, s).end()));
    space_.eval_at_ips(b.span(), {ip_.f.data() + off, ip_.n}, {ip_.dfx.data() + off, ip_.n},
                       {ip_.dfy.data() + off, ip_.n}, {ip_.dfz.data() + off, ip_.n});
  }
}

namespace {

/// Shared element epilogue: scale the reduced integrals per species, map to
/// the global basis and contract with the tabulation.
LANDAU_DEVICE void element_matrices_3d(const Space3D& space, std::span<const Accum3> g_per_qp,
                                       std::span<const double> wi_per_qp, int ns,
                                       const double* q2m, const double* q2m2, double nu0,
                                       std::span<double> ce) {
  const auto& tab = space.tabulation();
  const int nq = tab.n_quad();
  const int nb = tab.n_basis();
  const double jinv = 2.0 / space.h();
  LANDAU_ASSERT(ce.size() == static_cast<std::size_t>(ns) * nb * nb,
                "element-matrix buffer size mismatch");
  std::fill(ce.begin(), ce.end(), 0.0);
  for (int a_sp = 0; a_sp < ns; ++a_sp) {
    const double ck = nu0 * q2m[a_sp];
    const double cd = -nu0 * q2m2[a_sp];
    for (int i = 0; i < nq; ++i) {
      const Accum3& g = g_per_qp[static_cast<std::size_t>(i)];
      const double wi = wi_per_qp[static_cast<std::size_t>(i)];
      const double kk[3] = {jinv * ck * g.gk[0] * wi, jinv * ck * g.gk[1] * wi,
                            jinv * ck * g.gk[2] * wi};
      const double j2 = jinv * jinv * cd * wi;
      const double dd[6] = {j2 * g.gd[0], j2 * g.gd[1], j2 * g.gd[2],
                            j2 * g.gd[3], j2 * g.gd[4], j2 * g.gd[5]};
      for (int a = 0; a < nb; ++a) {
        const double ex = tab.E(i, a, 0), ey = tab.E(i, a, 1), ez = tab.E(i, a, 2);
        const double dax = ex * dd[0] + ey * dd[3] + ez * dd[4];
        const double day = ex * dd[3] + ey * dd[1] + ez * dd[5];
        const double daz = ex * dd[4] + ey * dd[5] + ez * dd[2];
        const double ka = ex * kk[0] + ey * kk[1] + ez * kk[2];
        double* row = ce.data() + (static_cast<std::size_t>(a_sp) * nb + a) * nb;
        for (int b = 0; b < nb; ++b)
          row[b] += dax * tab.E(i, b, 0) + day * tab.E(i, b, 1) + daz * tab.E(i, b, 2) +
                    ka * tab.B(i, b);
      }
    }
  }
}

} // namespace

void Landau3DOperator::kernel_cpu(la::CsrMatrix& j, exec::KernelCounters* counters) const {
  const auto& tab = space_.tabulation();
  const int nq = tab.n_quad();
  const int ns = n_species();
  const std::size_t n = ip_.n;
  std::vector<Accum3> g(static_cast<std::size_t>(nq));
  std::vector<double> wi(static_cast<std::size_t>(nq));
  std::vector<double> ce(static_cast<std::size_t>(ns) * tab.n_basis() * tab.n_basis());
  for (std::size_t cell = 0; cell < space_.n_cells(); ++cell) {
    exec::CounterScope scope(counters);
    for (int i = 0; i < nq; ++i) {
      const std::size_t gi = cell * static_cast<std::size_t>(nq) + static_cast<std::size_t>(i);
      const double vi[3] = {ip_.x[gi], ip_.y[gi], ip_.z[gi]};
      g[static_cast<std::size_t>(i)] = Accum3{};
      for (std::size_t jj = 0; jj < n; ++jj)
        inner_point3(vi, ip_.x[jj], ip_.y[jj], ip_.z[jj], ip_.w[jj], &ip_.f[jj], &ip_.dfx[jj],
                     &ip_.dfy[jj], &ip_.dfz[jj], n, ns, q2_.data(), q2_over_m_.data(),
                     &g[static_cast<std::size_t>(i)]);
      wi[static_cast<std::size_t>(i)] = ip_.w[gi];
    }
    scope.flops(static_cast<std::int64_t>(nq) * static_cast<std::int64_t>(n) *
                (kInnerFlops3 + 8 * ns));
    scope.dram(static_cast<std::int64_t>(n) * (4 + 4 * ns) * 8);
    element_matrices_3d(space_, g, wi, ns, q2_over_m_.data(), q2_over_m2_.data(), 1.0, ce);
    for (int s = 0; s < ns; ++s)
      space_.add_element_matrix(
          cell,
          {ce.data() + static_cast<std::size_t>(s) * tab.n_basis() * tab.n_basis(),
           static_cast<std::size_t>(tab.n_basis()) * static_cast<std::size_t>(tab.n_basis())},
          j, static_cast<std::size_t>(s) * space_.n_dofs(), false);
  }
}

void Landau3DOperator::kernel_cuda(la::CsrMatrix& j, exec::KernelCounters* counters) const {
  const auto& tab = space_.tabulation();
  const int nq = tab.n_quad();
  const int ns = n_species();
  const std::size_t n = ip_.n;
  int lanes = 1;
  while (2 * lanes * nq <= 256) lanes *= 2;
  const exec::Dim3 block{lanes, nq, 1};

  const int nb = tab.n_basis();
  exec::launch(
      *pool_, static_cast<int>(space_.n_cells()), block,
      LANDAU_KERNEL [&](exec::Block& blk) {
        exec::CounterScope scope(blk.counters());
        const auto cell = static_cast<std::size_t>(blk.block_idx());
        auto regs = blk.registers<Accum3>("inner.acc");
        blk.threads([&](exec::ThreadIdx t) {
          const std::size_t gi =
              cell * static_cast<std::size_t>(nq) + static_cast<std::size_t>(t.y);
          const double vi[3] = {ip_.x[gi], ip_.y[gi], ip_.z[gi]};
          for (std::size_t jj = static_cast<std::size_t>(t.x); jj < n;
               jj += static_cast<std::size_t>(blk.block_dim().x))
            inner_point3(vi, ip_.x[jj], ip_.y[jj], ip_.z[jj], ip_.w[jj], &ip_.f[jj],
                         &ip_.dfx[jj], &ip_.dfy[jj], &ip_.dfz[jj], n, ns, q2_.data(),
                         q2_over_m_.data(), regs.rw_ptr(static_cast<std::size_t>(t.flat)));
        });
        blk.shfl_xor_sum_x(regs);
        scope.flops(static_cast<std::int64_t>(nq) * static_cast<std::int64_t>(n) *
                    (kInnerFlops3 + 8 * ns));
        scope.dram(static_cast<std::int64_t>(n) * (4 + 4 * ns) * 8);

        auto g = blk.shared<Accum3>(static_cast<std::size_t>(nq), "epi.g");
        auto wi = blk.shared<double>(static_cast<std::size_t>(nq), "epi.wi");
        blk.threads([&](exec::ThreadIdx t) {
          if (t.x == 0) {
            g[static_cast<std::size_t>(t.y)] = regs[static_cast<std::size_t>(t.flat)];
            wi[static_cast<std::size_t>(t.y)] =
                ip_.w[cell * static_cast<std::size_t>(nq) + static_cast<std::size_t>(t.y)];
          }
        });
        blk.sync();
        auto ce = blk.shared<double>(static_cast<std::size_t>(ns * nb * nb), "epi.ce");
        element_matrices_3d(space_, g.raw(), wi.raw(), ns, q2_over_m_.data(),
                            q2_over_m2_.data(), 1.0, ce.raw());
        for (int s = 0; s < ns; ++s)
          space_.add_element_matrix(
              cell,
              {ce.raw().data() + static_cast<std::size_t>(s * nb) * nb,
               static_cast<std::size_t>(nb) * static_cast<std::size_t>(nb)},
              j, static_cast<std::size_t>(s) * space_.n_dofs(), opts_.atomic_assembly);
      },
      counters, nullptr, "landau3d:jacobian-cuda");
}

void Landau3DOperator::add_collision(la::CsrMatrix& j, exec::KernelCounters* counters) {
  LANDAU_ASSERT(ip_.n > 0, "pack() a state before assembling the collision operator");
  ScopedEvent ev("landau3d:matrix");
  if (opts_.backend == Backend::Cpu)
    kernel_cpu(j, counters);
  else
    kernel_cuda(j, counters);
}

void Landau3DOperator::add_advection(la::CsrMatrix& j, double e_z) const {
  if (fp::exact_eq(e_z, 0.0)) return;
  const auto& tab = space_.tabulation();
  const int nq = tab.n_quad();
  const int nb = tab.n_basis();
  const double jinv = 2.0 / space_.h();
  const double hh = 0.5 * space_.h();
  const double detj = hh * hh * hh;
  std::vector<double> ke(static_cast<std::size_t>(nb) * static_cast<std::size_t>(nb));
  for (std::size_t c = 0; c < space_.n_cells(); ++c) {
    std::fill(ke.begin(), ke.end(), 0.0);
    for (int q = 0; q < nq; ++q) {
      const double wq = tab.qw(q) * detj;
      for (int a = 0; a < nb; ++a)
        for (int b = 0; b < nb; ++b)
          ke[static_cast<std::size_t>(a * nb + b)] += wq * tab.B(q, a) * tab.E(q, b, 2) * jinv;
    }
    for (int s = 0; s < n_species(); ++s) {
      const double coef = (species_[s].charge / species_[s].mass) * e_z;
      std::vector<double> scaled(ke.size());
      for (std::size_t k = 0; k < ke.size(); ++k) scaled[k] = coef * ke[k];
      space_.add_element_matrix(c, scaled, j, static_cast<std::size_t>(s) * space_.n_dofs(),
                                false);
    }
  }
}

Landau3DOperator::Moments Landau3DOperator::moments(const la::Vec& state, int s) const {
  auto b = block(state, s);
  Moments m;
  const double mass = species_[s].mass;
  m.density = space_.moment(b, [](double, double, double) { return 1.0; });
  m.momentum[0] = mass * space_.moment(b, [](double x, double, double) { return x; });
  m.momentum[1] = mass * space_.moment(b, [](double, double y, double) { return y; });
  m.momentum[2] = mass * space_.moment(b, [](double, double, double z) { return z; });
  m.energy = 0.5 * mass *
             space_.moment(b, [](double x, double y, double z) { return x * x + y * y + z * z; });
  return m;
}

} // namespace landau::v3
