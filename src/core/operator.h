#pragma once
// LandauOperator — the public entry point of the library: a multi-species
// Landau collision operator on an adaptively refined axisymmetric velocity
// grid, with pluggable execution back-ends. Owns the mesh, FE space, packed
// integration-point data, mass matrix, and the worker pool that plays the
// GPU in the emulated execution model.
//
// The state vector concatenates the species' free-dof blocks
// (species-major), so every assembled operator is block diagonal (§III):
// the nonzero pattern is I_S (x) A_1.

#include <functional>
#include <memory>
#include <span>

#include "core/ip_data.h"
#include "core/jacobian.h"
#include "core/operator_base.h"
#include "core/species.h"
#include "exec/thread_pool.h"
#include "fem/fespace.h"
#include "la/csr.h"
#include "la/vec.h"
#include "mesh/forest.h"
#include "mesh/refine.h"
#include "util/options.h"

namespace landau {

struct LandauOptions {
  int order = 3;                 // Qk element order (paper: Q3)
  double radius = 5.0;           // domain half-size, units of v0
  int base_levels = 1;           // uniform refinement of the 1x2 root forest
  double cells_per_thermal = 1.0;
  double zone_extent = 3.0;      // refined zone in thermal radii
  int max_levels = 16;
  Backend backend = Backend::CudaSim;
  bool atomic_assembly = true;
  unsigned n_workers = 0;        // exec-model workers ("SMs"); 0 = inline

  /// Extra refined strips for runaway-electron tails (§III-B).
  std::vector<mesh::VelocityMeshSpec::TailZone> tail_zones;

  /// Read overrides from a -landau_* option database.
  static LandauOptions from_options(Options& opts);
};

class LandauOperator : public CollisionOperatorBase {
public:
  explicit LandauOperator(SpeciesSet species, LandauOptions opts = {});

  const SpeciesSet& species() const { return species_; }
  const LandauOptions& options() const { return opts_; }
  const mesh::Forest& forest() const { return forest_; }
  const fem::FESpace& space() const { return *fes_; }
  exec::ThreadPool& pool() { return *pool_; }
  exec::ThreadPool& worker_pool() override { return *pool_; }

  int n_species() const { return species_.size(); }
  std::size_t n_dofs_per_species() const { return fes_->n_dofs(); }
  std::size_t n_total() const override {
    return n_dofs_per_species() * static_cast<std::size_t>(n_species());
  }

  /// The free-dof block of species s within a full state vector.
  std::span<double> block(la::Vec& v, int s) const;
  std::span<const double> block(const la::Vec& v, int s) const;

  /// Initial condition: each species' (optionally z-drifting) Maxwellian.
  la::Vec maxwellian_state(std::span<const double> drifts_z = {}) const;

  /// Project an analytic per-species function into a full state vector.
  la::Vec project(const std::function<double(int, double, double)>& f) const;

  /// A zeroed matrix with the multi-species block sparsity.
  la::CsrMatrix new_matrix() const override;

  /// The (block) cylindrical mass matrix, assembled once on the host — the
  /// "CPU first assembly" of §III-F; kernels reuse its pattern.
  const la::CsrMatrix& mass() const override { return mass_; }

  /// Pack integration-point data (SoA) from a state: the device-side inputs
  /// of Algorithm 1.
  void pack(const la::Vec& state) override;
  const IPData& ip_data() const { return ip_; }

  /// J += C(f_packed): the frozen-coefficient collision operator
  /// (quasi-Newton Jacobian contribution and exact residual matrix).
  void add_collision(la::CsrMatrix& j, exec::KernelCounters* counters = nullptr) override;

  /// J += A with A the E-field advection blocks (see core/advection.h).
  void add_advection(la::CsrMatrix& j, double e_z) const override;

  /// J += shift * M via the exec-model mass kernel (Table IV's second kernel).
  void add_mass_kernel(la::CsrMatrix& j, double shift,
                       exec::KernelCounters* counters = nullptr);

  // --- moments (normalized units; mass-weighted where physical) -----------
  struct Moments {
    double density = 0;    // \int f dmu
    double momentum_z = 0; // m \int v_z f dmu
    double energy = 0;     // (m/2) \int v^2 f dmu
  };
  Moments moments(const la::Vec& state, int s) const;

  /// Total current J_z = sum_s q_s \int v_z f_s.
  double current_z(const la::Vec& state) const;
  /// Electron temperature in T_e0 units from the drift-corrected energy.
  double electron_temperature(const la::Vec& state) const;
  /// Electron density (n/n0).
  double electron_density(const la::Vec& state) const;

private:
  SpeciesSet species_;
  LandauOptions opts_;
  mesh::Forest forest_;
  std::unique_ptr<fem::FESpace> fes_;
  std::unique_ptr<exec::ThreadPool> pool_;
  la::CsrMatrix mass_;
  IPData ip_;
  JacobianContext ctx_;
};

} // namespace landau
