#include "core/operator.h"

#include <algorithm>

#include "core/advection.h"
#include "exec/check.h"
#include "util/logging.h"
#include "util/profiler.h"
#include "util/robustness.h"

namespace landau {
namespace {

mesh::Forest make_forest(const SpeciesSet& species, const LandauOptions& opts) {
  mesh::VelocityMeshSpec spec;
  spec.radius = opts.radius;
  spec.base_levels = opts.base_levels;
  spec.cells_per_thermal = opts.cells_per_thermal;
  spec.zone_extent = opts.zone_extent;
  spec.max_levels = opts.max_levels;
  spec.tail_zones = opts.tail_zones;
  for (const auto& sp : species) spec.thermal_speeds.push_back(sp.thermal_speed());
  return mesh::build_velocity_mesh(spec);
}

} // namespace

LandauOptions LandauOptions::from_options(Options& opts) {
  LandauOptions o;
  o.order = opts.get<int>("landau_order", o.order, "Qk element order");
  o.radius = opts.get<double>("landau_radius", o.radius, "velocity domain half-size (v0 units)");
  o.base_levels = opts.get<int>("landau_base_levels", o.base_levels, "uniform refinements");
  o.cells_per_thermal = opts.get<double>("landau_cells_per_thermal", o.cells_per_thermal,
                                         "AMR resolution target per thermal speed");
  o.zone_extent =
      opts.get<double>("landau_zone_extent", o.zone_extent, "AMR zone size (thermal radii)");
  o.max_levels = opts.get<int>("landau_max_levels", o.max_levels, "AMR depth cap");
  const std::string be =
      opts.get<std::string>("landau_backend", "cuda", "kernel back-end: cpu|cuda|kokkos");
  if (be == "cpu")
    o.backend = Backend::Cpu;
  else if (be == "kokkos")
    o.backend = Backend::KokkosSim;
  else
    o.backend = Backend::CudaSim;
  o.n_workers = static_cast<unsigned>(opts.get<int>("landau_workers", 0, "emulated SM workers"));
  o.atomic_assembly = opts.get<bool>("landau_atomic_assembly", true, "GPU-style atomic assembly");
  // Device memory-model checker switches (also reachable via the
  // LANDAU_CHECK_DEVICE environment variable; the command line wins).
  auto& chk = exec::check::options();
  chk.enabled =
      opts.get<bool>("landau_check_device", chk.enabled, "device memory-model checker");
  chk.strict = opts.get<bool>("landau_check_strict", chk.strict,
                              "checker strict mode: any report throws");
  chk.shuffle = opts.get<bool>("landau_check_shuffle", chk.shuffle,
                               "double-run launches with shuffled block order and diff");
  if (chk.strict || chk.shuffle) chk.enabled = true;
  return o;
}

LandauOperator::LandauOperator(SpeciesSet species, LandauOptions opts)
    : species_(std::move(species)), opts_(opts), forest_(make_forest(species_, opts_)) {
  fes_ = std::make_unique<fem::FESpace>(forest_, opts_.order);
  pool_ = std::make_unique<exec::ThreadPool>(opts_.n_workers);
  LANDAU_INFO("LandauOperator: " << forest_.n_leaves() << " cells, "
                                 << fes_->n_dofs() << " dofs/species, " << species_.size()
                                 << " species, backend " << backend_name(opts_.backend));
  // Host-assembled mass matrix with the full block sparsity (its first CPU
  // assembly fixes the pattern metadata the GPU assemblies then reuse).
  mass_ = new_matrix();
  {
    la::SparsityPattern single = fes_->sparsity();
    la::CsrMatrix m1(single);
    fes_->assemble_mass(m1);
    for (int s = 0; s < n_species(); ++s) {
      const std::size_t off = static_cast<std::size_t>(s) * n_dofs_per_species();
      auto rowptr = m1.row_offsets();
      auto colind = m1.col_indices();
      for (std::size_t i = 0; i < m1.rows(); ++i)
        for (std::int32_t k = rowptr[i]; k < rowptr[i + 1]; ++k)
          mass_.add(off + i, off + static_cast<std::size_t>(colind[k]), m1.values()[k]);
    }
  }
}

std::span<double> LandauOperator::block(la::Vec& v, int s) const {
  LANDAU_ASSERT(v.size() == n_total(), "state vector size mismatch");
  return {v.data() + static_cast<std::size_t>(s) * n_dofs_per_species(), n_dofs_per_species()};
}

std::span<const double> LandauOperator::block(const la::Vec& v, int s) const {
  LANDAU_ASSERT(v.size() == n_total(), "state vector size mismatch");
  return {v.data() + static_cast<std::size_t>(s) * n_dofs_per_species(), n_dofs_per_species()};
}

la::Vec LandauOperator::maxwellian_state(std::span<const double> drifts_z) const {
  return project([&](int s, double r, double z) {
    const double drift = s < static_cast<int>(drifts_z.size()) ? drifts_z[static_cast<std::size_t>(s)] : 0.0;
    return species_[s].maxwellian(r, z, drift);
  });
}

la::Vec LandauOperator::project(const std::function<double(int, double, double)>& f) const {
  la::Vec state(n_total());
  for (int s = 0; s < n_species(); ++s) {
    la::Vec b = fes_->interpolate([&](double r, double z) { return f(s, r, z); });
    std::copy(b.begin(), b.end(), block(state, s).begin());
  }
  return state;
}

la::CsrMatrix LandauOperator::new_matrix() const {
  return la::CsrMatrix(landau_jacobian_sparsity(*fes_, n_species()));
}

void LandauOperator::pack(const la::Vec& state) {
  ScopedEvent ev("landau:pack");
  std::vector<la::Vec> blocks;
  blocks.reserve(static_cast<std::size_t>(n_species()));
  for (int s = 0; s < n_species(); ++s) {
    auto b = block(state, s);
    blocks.emplace_back(std::vector<double>(b.begin(), b.end()));
  }
  pack_ip_data(*fes_, blocks, &ip_);
  ctx_.init(*fes_, species_, ip_);
  ctx_.atomic_assembly = opts_.atomic_assembly;
  if (robustness().paranoid) {
    // Operator-boundary audit: the packed values/gradients are the inputs the
    // Landau coefficients D(f), K(f) are integrated from — a NaN here poisons
    // every entry of the assembled matrix.
    LANDAU_ASSERT(la::all_finite(ip_.f) && la::all_finite(ip_.dfr) && la::all_finite(ip_.dfz),
                  "paranoid: non-finite packed IP data (state values/gradients)");
  }
}

void LandauOperator::add_collision(la::CsrMatrix& j, exec::KernelCounters* counters) {
  LANDAU_ASSERT(ip_.n > 0, "pack() a state before assembling the collision operator");
  ScopedEvent ev("landau:matrix");
  assemble_landau_jacobian(opts_.backend, *pool_, ctx_, j, counters);
  if (robustness().paranoid)
    LANDAU_ASSERT(j.all_finite(),
                  "paranoid: non-finite entries in the assembled collision matrix");
}

void LandauOperator::add_advection(la::CsrMatrix& j, double e_z) const {
  ScopedEvent ev("landau:advection");
  assemble_advection(ctx_, e_z, j);
}

void LandauOperator::add_mass_kernel(la::CsrMatrix& j, double shift,
                                     exec::KernelCounters* counters) {
  LANDAU_ASSERT(ip_.n > 0, "pack() a state before the mass kernel (weights live in IP data)");
  assemble_mass_kernel(*pool_, ctx_, shift, j, counters);
}

LandauOperator::Moments LandauOperator::moments(const la::Vec& state, int s) const {
  auto b = block(state, s);
  Moments m;
  m.density = fes_->moment(b, [](double, double) { return 1.0; });
  m.momentum_z = species_[s].mass * fes_->moment(b, [](double, double z) { return z; });
  m.energy =
      0.5 * species_[s].mass * fes_->moment(b, [](double r, double z) { return r * r + z * z; });
  return m;
}

double LandauOperator::current_z(const la::Vec& state) const {
  double j = 0.0;
  for (int s = 0; s < n_species(); ++s)
    j += species_[s].charge * fes_->moment(block(state, s), [](double, double z) { return z; });
  return j;
}

double LandauOperator::electron_temperature(const la::Vec& state) const {
  auto b = block(state, 0);
  const double n = fes_->moment(b, [](double, double) { return 1.0; });
  if (n <= 0) return 0.0;
  const double uz = fes_->moment(b, [](double, double z) { return z; }) / n;
  const double v2 = fes_->moment(b, [](double r, double z) { return r * r + z * z; }) / n;
  // T/T_e0 = (4/pi) m (2/3) <(v-u)^2> with m = 1 for electrons.
  return (4.0 / kPi) * species_[0].mass * (2.0 / 3.0) * (v2 - uz * uz);
}

double LandauOperator::electron_density(const la::Vec& state) const {
  return fes_->moment(block(state, 0), [](double, double) { return 1.0; });
}

} // namespace landau
