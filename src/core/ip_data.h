#pragma once
// Packed integration-point data for the Landau kernels (§III-E): coordinates,
// weights, function values and gradients of every species at every global
// integration point, stored as a structure of arrays for coalesced access on
// the emulated device. The element and integration-point loops of the inner
// integral are merged over these flat arrays, exactly as in the paper.
//
// In multi-grid mode (§III-H) the arrays concatenate every grid's points and
// a species' values are nonzero only on the points of its own grid, so the
// single flattened inner loop computes the union of the per-grid integrals
// without branching.

#include <cstddef>
#include <span>
#include <vector>

#include "fem/fespace.h"
#include "la/vec.h"

namespace landau {

/// SoA integration point data.
struct IPData {
  int n_species = 0;
  std::size_t n = 0; // number of global integration points

  std::vector<double> r, z; // coordinates, size n
  std::vector<double> w;    // quadrature weight * detJ * r (cylindrical), size n

  // Species-major SoA: value of species s at point j is f[s*n + j].
  std::vector<double> f, dfr, dfz;

  double f_at(int s, std::size_t j) const { return f[static_cast<std::size_t>(s) * n + j]; }
  double dfr_at(int s, std::size_t j) const { return dfr[static_cast<std::size_t>(s) * n + j]; }
  double dfz_at(int s, std::size_t j) const { return dfz[static_cast<std::size_t>(s) * n + j]; }

  void resize(int ns, std::size_t npts) {
    n_species = ns;
    n = npts;
    r.assign(n, 0.0);
    z.assign(n, 0.0);
    w.assign(n, 0.0);
    f.assign(static_cast<std::size_t>(ns) * n, 0.0);
    dfr.assign(static_cast<std::size_t>(ns) * n, 0.0);
    dfz.assign(static_cast<std::size_t>(ns) * n, 0.0);
  }

  /// Bytes of the dynamic state (for traffic accounting).
  std::size_t bytes() const {
    return (r.size() + z.size() + w.size() + f.size() + dfr.size() + dfz.size()) * sizeof(double);
  }
};

/// Pack a single-grid state: one FE space shared by all species, one free-dof
/// vector per species.
void pack_ip_data(const fem::FESpace& fes, std::span<const la::Vec> states, IPData* out);

} // namespace landau
