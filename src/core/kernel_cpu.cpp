// Serial CPU implementation of the Landau Jacobian kernel — the reference
// the paper's incremental development path starts from (simple C code on the
// CPU, §III-D). Plain element / integration-point / inner-point loops over
// the packed SoA arrays.

#include "core/jacobian.h"
#include "core/kernel_math.h"
#include "exec/annotations.h"
#include "obs/trace.h"

namespace landau::detail {

void landau_kernel_cpu(const JacobianContext& ctx, la::CsrMatrix& j,
                       exec::KernelCounters* counters) {
  obs::TraceSpan span("landau:jacobian-cpu", {{"cells", ctx.fes->n_cells()}});
  const auto& fes = *ctx.fes;
  const auto& tab = fes.tabulation();
  const auto& ip = *ctx.ip;
  const int nq = tab.n_quad();
  const int nb = tab.n_basis();
  const int ns = ctx.species->size();
  const std::size_t n = ip.n;

  // Device-checker scope: the serial kernel is one "block" per cell with no
  // concurrency at all, so only bounds and initialization rules apply
  // (concurrent_blocks = false disables the inter-block race rule).
  namespace check = exec::check;
  check::KernelScope chk("landau:jacobian-cpu", /*concurrent_blocks=*/false);
  auto ref_r = chk.in(std::span<const double>(ip.r), "ip.r");
  auto ref_z = chk.in(std::span<const double>(ip.z), "ip.z");
  auto ref_w = chk.in(std::span<const double>(ip.w), "ip.w");
  auto ref_f = chk.in(std::span<const double>(ip.f), "ip.f");
  auto ref_dfr = chk.in(std::span<const double>(ip.dfr), "ip.dfr");
  auto ref_dfz = chk.in(std::span<const double>(ip.dfz), "ip.dfz");
  // Not LANDAU_CROSS_BLOCK: this back-end runs cells serially
  // (concurrent_blocks=false above), so the assembly target is never
  // written concurrently and needs no atomics policy.
  auto ref_out = ctx.coo_values ? chk.out(std::span<double>(*ctx.coo_values), "coo.values")
                                : chk.out(j.values(), "csr.values");
  check::ThreadCtx tc;
  tc.session = chk.session();
  check::checked_span<const double> gr(ref_r, &tc), gz(ref_z, &tc), gw(ref_w, &tc);
  check::checked_span<const double> gf(ref_f, &tc), gdfr(ref_dfr, &tc), gdfz(ref_dfz, &tc);
  check::checked_span<double> gout(ref_out, &tc);

  ElementMatrices ce;
  std::vector<PointCoeffs> coeffs(static_cast<std::size_t>(ns) * nq);

  for (std::size_t cell = 0; cell < fes.n_cells(); ++cell) {
    exec::CounterScope scope(counters);
    tc.block = static_cast<int>(cell);
    const auto geom = fes.geometry(cell);
    ce.resize(ns, nb);

    for (int i = 0; i < nq; ++i) {
      const std::size_t gi = ctx.ip_offset + cell * static_cast<std::size_t>(nq) + static_cast<std::size_t>(i);
      InnerAccum g;
      for (std::size_t jj = 0; jj < n; ++jj)
        inner_point(gr[gi], gz[gi], gr[jj], gz[jj], gw[jj],
                    gf.read_strided(jj, static_cast<std::size_t>(ns), n),
                    gdfr.read_strided(jj, static_cast<std::size_t>(ns), n),
                    gdfz.read_strided(jj, static_cast<std::size_t>(ns), n), n, ns, ctx.q2.data(),
                    ctx.q2_over_m.data(), &g);
      scope.flops(static_cast<std::int64_t>(n) * inner_flops(ns));
      scope.dram(static_cast<std::int64_t>(n) * (3 + 3 * ns) * 8);
      for (int a = 0; a < ns; ++a)
        coeffs[static_cast<std::size_t>(a * nq + i)] = transform_point(
            g, ctx.nu0, ctx.q2[static_cast<std::size_t>(a)],
            ctx.q2_over_m[static_cast<std::size_t>(a)], ctx.q2_over_m2[static_cast<std::size_t>(a)],
            geom.jinv[0], geom.jinv[1], gw[gi]);
    }

    // Transform & Assemble (Algorithm 1 line 23): contract with the element
    // tabulation to form the per-species element matrices.
    for (int a_sp = 0; a_sp < ns; ++a_sp) {
      for (int i = 0; i < nq; ++i) {
        const auto& p = coeffs[static_cast<std::size_t>(a_sp * nq + i)];
        for (int a = 0; a < nb; ++a) {
          const double ear = tab.E(i, a, 0);
          const double eaz = tab.E(i, a, 1);
          const double ka = ear * p.kk_r + eaz * p.kk_z;
          const double dar = ear * p.dd00 + eaz * p.dd01;
          const double daz = ear * p.dd01 + eaz * p.dd11;
          for (int b = 0; b < nb; ++b)
            ce.at(a_sp, a, b) +=
                dar * tab.E(i, b, 0) + daz * tab.E(i, b, 1) + ka * tab.B(i, b);
        }
      }
    }
    scope.flops(static_cast<std::int64_t>(ns) * nq * nb * (8 + 5 * nb));
    scope.dram(static_cast<std::int64_t>(ns) * nb * nb * 8 * 2);
    assemble_element(ctx, cell, ce, j, gout.active() ? &gout : nullptr);
  }
  chk.finish();
}

} // namespace landau::detail
