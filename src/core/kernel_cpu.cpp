// Serial CPU implementation of the Landau Jacobian kernel — the reference
// the paper's incremental development path starts from (simple C code on the
// CPU, §III-D). Plain element / integration-point / inner-point loops over
// the packed SoA arrays.

#include "core/jacobian.h"
#include "core/kernel_math.h"

namespace landau::detail {

void landau_kernel_cpu(const JacobianContext& ctx, la::CsrMatrix& j,
                       exec::KernelCounters* counters) {
  const auto& fes = *ctx.fes;
  const auto& tab = fes.tabulation();
  const auto& ip = *ctx.ip;
  const int nq = tab.n_quad();
  const int nb = tab.n_basis();
  const int ns = ctx.species->size();
  const std::size_t n = ip.n;

  ElementMatrices ce;
  std::vector<PointCoeffs> coeffs(static_cast<std::size_t>(ns) * nq);

  for (std::size_t cell = 0; cell < fes.n_cells(); ++cell) {
    exec::CounterScope scope(counters);
    const auto geom = fes.geometry(cell);
    ce.resize(ns, nb);

    for (int i = 0; i < nq; ++i) {
      const std::size_t gi = ctx.ip_offset + cell * static_cast<std::size_t>(nq) + static_cast<std::size_t>(i);
      InnerAccum g;
      for (std::size_t jj = 0; jj < n; ++jj)
        inner_point(ip.r[gi], ip.z[gi], ip.r[jj], ip.z[jj], ip.w[jj], &ip.f[jj], &ip.dfr[jj],
                    &ip.dfz[jj], n, ns, ctx.q2.data(), ctx.q2_over_m.data(), &g);
      scope.flops(static_cast<std::int64_t>(n) * inner_flops(ns));
      scope.dram(static_cast<std::int64_t>(n) * (3 + 3 * ns) * 8);
      for (int a = 0; a < ns; ++a)
        coeffs[static_cast<std::size_t>(a * nq + i)] = transform_point(
            g, ctx.nu0, ctx.q2[static_cast<std::size_t>(a)],
            ctx.q2_over_m[static_cast<std::size_t>(a)], ctx.q2_over_m2[static_cast<std::size_t>(a)],
            geom.jinv[0], geom.jinv[1], ip.w[gi]);
    }

    // Transform & Assemble (Algorithm 1 line 23): contract with the element
    // tabulation to form the per-species element matrices.
    for (int a_sp = 0; a_sp < ns; ++a_sp) {
      for (int i = 0; i < nq; ++i) {
        const auto& p = coeffs[static_cast<std::size_t>(a_sp * nq + i)];
        for (int a = 0; a < nb; ++a) {
          const double ear = tab.E(i, a, 0);
          const double eaz = tab.E(i, a, 1);
          const double ka = ear * p.kk_r + eaz * p.kk_z;
          const double dar = ear * p.dd00 + eaz * p.dd01;
          const double daz = ear * p.dd01 + eaz * p.dd11;
          for (int b = 0; b < nb; ++b)
            ce.at(a_sp, a, b) +=
                dar * tab.E(i, b, 0) + daz * tab.E(i, b, 1) + ka * tab.B(i, b);
        }
      }
    }
    scope.flops(static_cast<std::int64_t>(ns) * nq * nb * (8 + 5 * nb));
    scope.dram(static_cast<std::int64_t>(ns) * nb * nb * 8 * 2);
    assemble_element(ctx, cell, ce, j);
  }
}

} // namespace landau::detail
