#include "core/multigrid.h"

#include <algorithm>
#include <cmath>

#include "core/advection.h"
#include "mesh/refine.h"
#include "util/logging.h"
#include "util/profiler.h"

namespace landau {

MultiGridLandauOperator::MultiGridLandauOperator(SpeciesSet species, LandauOptions opts,
                                                 double cluster_ratio)
    : species_(std::move(species)), opts_(opts) {
  const int ns = species_.size();
  pool_ = std::make_unique<exec::ThreadPool>(opts_.n_workers);

  // --- cluster species by thermal speed (§III-H) ---------------------------
  std::vector<int> order(static_cast<std::size_t>(ns));
  for (int s = 0; s < ns; ++s) order[static_cast<std::size_t>(s)] = s;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return species_[a].thermal_speed() > species_[b].thermal_speed();
  });
  species_grid_.assign(static_cast<std::size_t>(ns), -1);
  for (int idx : order) {
    const double vth = species_[idx].thermal_speed();
    bool placed = false;
    for (auto& g : grids_) {
      const double leader = species_[g.species.front()].thermal_speed();
      if (leader / vth <= cluster_ratio) {
        g.species.push_back(idx);
        placed = true;
        break;
      }
    }
    if (!placed) {
      grids_.emplace_back();
      grids_.back().species.push_back(idx);
    }
    species_grid_[static_cast<std::size_t>(idx)] =
        static_cast<int>(placed ? 0 : grids_.size() - 1);
  }
  // Fix species_grid_ (the `placed` shortcut above may be wrong for >1 grid).
  for (std::size_t g = 0; g < grids_.size(); ++g)
    for (int s : grids_[g].species) species_grid_[static_cast<std::size_t>(s)] = static_cast<int>(g);

  // --- build one scaled mesh per cluster -----------------------------------
  for (auto& g : grids_) {
    mesh::VelocityMeshSpec spec;
    double vmax = 0.0;
    for (int s : g.species) vmax = std::max(vmax, species_[s].thermal_speed());
    // The paper scales each grid's domain to its species: `radius` thermal
    // radii of the fastest cluster member (opts.radius is in units of the
    // reference species' thermal scale, so rescale proportionally).
    g.radius = opts_.radius / std::sqrt(kPi / 4.0) * vmax;
    spec.radius = g.radius;
    spec.base_levels = opts_.base_levels;
    for (int s : g.species) spec.thermal_speeds.push_back(species_[s].thermal_speed());
    spec.cells_per_thermal = opts_.cells_per_thermal;
    spec.zone_extent = opts_.zone_extent;
    spec.max_levels = opts_.max_levels;
    g.forest = mesh::build_velocity_mesh(spec);
    g.fes = std::make_unique<fem::FESpace>(g.forest, opts_.order);
  }

  // --- state layout and IP offsets -----------------------------------------
  species_offsets_.assign(static_cast<std::size_t>(ns), 0);
  species_ndofs_.assign(static_cast<std::size_t>(ns), 0);
  n_total_ = 0;
  std::size_t ip_total = 0;
  for (auto& g : grids_) {
    g.ip_offset = ip_total;
    ip_total += g.fes->n_ips();
    for (int s : g.species) {
      species_offsets_[static_cast<std::size_t>(s)] = n_total_;
      species_ndofs_[static_cast<std::size_t>(s)] = g.fes->n_dofs();
      n_total_ += g.fes->n_dofs();
    }
  }
  LANDAU_INFO("MultiGridLandauOperator: " << grids_.size() << " grids, " << ip_total
                                          << " total IPs, " << n_total_ << " equations");

  // --- host-assembled block mass matrix ------------------------------------
  mass_ = new_matrix();
  for (auto& g : grids_) {
    la::SparsityPattern single = g.fes->sparsity();
    la::CsrMatrix m1(single);
    g.fes->assemble_mass(m1);
    auto rowptr = m1.row_offsets();
    auto colind = m1.col_indices();
    for (int s : g.species) {
      const std::size_t off = species_offsets_[static_cast<std::size_t>(s)];
      for (std::size_t i = 0; i < m1.rows(); ++i)
        for (std::int32_t k = rowptr[i]; k < rowptr[i + 1]; ++k)
          mass_.add(off + i, off + static_cast<std::size_t>(colind[k]), m1.values()[k]);
    }
  }
}

std::span<double> MultiGridLandauOperator::block(la::Vec& v, int s) const {
  LANDAU_ASSERT(v.size() == n_total_, "state vector size mismatch");
  return {v.data() + species_offsets_[static_cast<std::size_t>(s)],
          species_ndofs_[static_cast<std::size_t>(s)]};
}

std::span<const double> MultiGridLandauOperator::block(const la::Vec& v, int s) const {
  LANDAU_ASSERT(v.size() == n_total_, "state vector size mismatch");
  return {v.data() + species_offsets_[static_cast<std::size_t>(s)],
          species_ndofs_[static_cast<std::size_t>(s)]};
}

la::Vec MultiGridLandauOperator::maxwellian_state() const {
  la::Vec state(n_total_);
  for (int s = 0; s < n_species(); ++s) {
    la::Vec b = space_of(s).interpolate(
        [&](double r, double z) { return species_[s].maxwellian(r, z); });
    std::copy(b.begin(), b.end(), block(state, s).begin());
  }
  return state;
}

la::CsrMatrix MultiGridLandauOperator::new_matrix() const {
  la::SparsityPattern pattern(n_total_, n_total_);
  for (const auto& g : grids_) {
    for (std::size_t c = 0; c < g.fes->n_cells(); ++c) {
      const auto dofs = g.fes->dofmap().cell_free_dofs(c);
      for (int s : g.species) {
        const std::size_t off = species_offsets_[static_cast<std::size_t>(s)];
        for (auto di : dofs)
          for (auto dj : dofs)
            pattern.add(off + static_cast<std::size_t>(di), off + static_cast<std::size_t>(dj));
      }
    }
  }
  pattern.compress();
  return la::CsrMatrix(pattern);
}

void MultiGridLandauOperator::pack(const la::Vec& state) {
  ScopedEvent ev("landau:pack");
  const int ns = n_species();
  std::size_t ip_total = 0;
  for (const auto& g : grids_) ip_total += g.fes->n_ips();
  ip_.resize(ns, ip_total);

  for (const auto& g : grids_) {
    const std::size_t n = g.fes->n_ips();
    const std::size_t off = g.ip_offset;
    g.fes->ip_coordinates({ip_.r.data() + off, n}, {ip_.z.data() + off, n},
                          {ip_.w.data() + off, n});
    for (std::size_t j = 0; j < n; ++j) ip_.w[off + j] *= ip_.r[off + j];
    // Species on this grid evaluate; all others stay zero here, so the
    // flattened inner loop integrates exactly the union of the grids.
    for (int s : g.species) {
      const std::size_t soff = static_cast<std::size_t>(s) * ip_total + off;
      la::Vec b(std::vector<double>(block(state, s).begin(), block(state, s).end()));
      g.fes->eval_at_ips(b.span(), {ip_.f.data() + soff, n}, {ip_.dfr.data() + soff, n},
                         {ip_.dfz.data() + soff, n});
    }
  }
}

JacobianContext MultiGridLandauOperator::make_context(int g) const {
  JacobianContext ctx;
  const auto& gb = grids_[static_cast<std::size_t>(g)];
  ctx.init(*gb.fes, species_, ip_);
  ctx.atomic_assembly = opts_.atomic_assembly;
  ctx.ip_offset = gb.ip_offset;
  ctx.grid_species = &gb.species;
  ctx.species_offsets = &species_offsets_;
  return ctx;
}

void MultiGridLandauOperator::add_collision(la::CsrMatrix& j, exec::KernelCounters* counters) {
  LANDAU_ASSERT(ip_.n > 0, "pack() a state before assembling the collision operator");
  ScopedEvent ev("landau:matrix");
  for (int g = 0; g < n_grids(); ++g) {
    const auto ctx = make_context(g);
    assemble_landau_jacobian(opts_.backend, *pool_, ctx, j, counters);
  }
}

void MultiGridLandauOperator::add_advection(la::CsrMatrix& j, double e_z) const {
  ScopedEvent ev("landau:advection");
  for (int g = 0; g < n_grids(); ++g) {
    const auto ctx = make_context(g);
    assemble_advection(ctx, e_z, j);
  }
}

LandauOperator::Moments MultiGridLandauOperator::moments(const la::Vec& state, int s) const {
  auto b = block(state, s);
  const auto& fes = space_of(s);
  LandauOperator::Moments m;
  m.density = fes.moment(b, [](double, double) { return 1.0; });
  m.momentum_z = species_[s].mass * fes.moment(b, [](double, double z) { return z; });
  m.energy =
      0.5 * species_[s].mass * fes.moment(b, [](double r, double z) { return r * r + z * z; });
  return m;
}

} // namespace landau
