#pragma once
// Multi-grid Landau operator (§III-H): species are clustered by thermal
// speed (species within a factor of ~2 "can, and should, share a grid") and
// each cluster gets its own velocity mesh scaled to its thermal scale. The
// collision integral still couples every pair of species: the inner
// integral runs over the concatenated integration points of all grids (a
// species' values are nonzero only on its own grid's points), while the
// outer element loop and the assembled blocks are per grid.
//
// The same azimuthal tensor identities that give exact conservation on one
// grid pair (i, j) across grids too — the double sum contains both (i in A,
// j in B) and (i in B, j in A) with the same weights — so the multi-grid
// operator conserves density, z-momentum and energy to solver tolerance as
// well (asserted in tests).

#include <memory>
#include <span>
#include <vector>

#include "core/ip_data.h"
#include "core/jacobian.h"
#include "core/operator.h"
#include "core/operator_base.h"
#include "core/species.h"

namespace landau {

/// One velocity grid holding a cluster of species.
struct GridBlock {
  std::vector<int> species;   // global species indices on this grid
  double radius = 0.0;        // domain half-size (scaled to the cluster)
  mesh::Forest forest;
  std::unique_ptr<fem::FESpace> fes;
  std::size_t ip_offset = 0;  // start of this grid's points in the IP arrays

  GridBlock() : forest(mesh::Box{0, -1, 1, 1}, 1, 2) {}
};

class MultiGridLandauOperator : public CollisionOperatorBase {
public:
  /// Cluster species whose thermal speeds are within `cluster_ratio` of the
  /// cluster's fastest member, build one scaled grid per cluster.
  MultiGridLandauOperator(SpeciesSet species, LandauOptions opts, double cluster_ratio = 2.0);

  const SpeciesSet& species() const { return species_; }
  int n_species() const { return species_.size(); }
  int n_grids() const { return static_cast<int>(grids_.size()); }
  const GridBlock& grid(int g) const { return grids_[static_cast<std::size_t>(g)]; }
  int grid_of_species(int s) const { return species_grid_[static_cast<std::size_t>(s)]; }

  std::size_t n_total() const override { return n_total_; }
  std::size_t n_dofs(int s) const { return species_ndofs_[static_cast<std::size_t>(s)]; }
  std::size_t n_ips_total() const {
    std::size_t total = 0;
    for (const auto& g : grids_) total += g.fes->n_ips();
    return total;
  }

  /// The free-dof block of species s within a full state vector.
  std::span<double> block(la::Vec& v, int s) const;
  std::span<const double> block(const la::Vec& v, int s) const;

  la::Vec maxwellian_state() const;

  const la::CsrMatrix& mass() const override { return mass_; }
  la::CsrMatrix new_matrix() const override;
  void pack(const la::Vec& state) override;
  void add_collision(la::CsrMatrix& j, exec::KernelCounters* counters = nullptr) override;
  void add_advection(la::CsrMatrix& j, double e_z) const override;
  exec::ThreadPool& worker_pool() override { return *pool_; }

  /// Moments of species s (computed on its own grid).
  LandauOperator::Moments moments(const la::Vec& state, int s) const;

private:
  const fem::FESpace& space_of(int s) const {
    return *grids_[static_cast<std::size_t>(species_grid_[static_cast<std::size_t>(s)])].fes;
  }
  JacobianContext make_context(int g) const;

  SpeciesSet species_;
  LandauOptions opts_;
  std::vector<GridBlock> grids_;
  std::vector<int> species_grid_;
  std::vector<std::size_t> species_offsets_; // state offset per species
  std::vector<std::size_t> species_ndofs_;
  std::size_t n_total_ = 0;
  std::unique_ptr<exec::ThreadPool> pool_;
  la::CsrMatrix mass_;
  IPData ip_;
};

} // namespace landau
