#include "core/ip_data.h"

#include "util/error.h"

namespace landau {

void pack_ip_data(const fem::FESpace& fes, std::span<const la::Vec> states, IPData* out) {
  const int ns = static_cast<int>(states.size());
  LANDAU_ASSERT(ns >= 1, "need at least one species state");
  out->resize(ns, fes.n_ips());

  fes.ip_coordinates(out->r, out->z, out->w);
  // Fold the cylindrical factor r into the packed weight (dvbar rbar in
  // eqs. 7-8; the same weight serves the outer integral's dv r).
  for (std::size_t j = 0; j < out->n; ++j) out->w[j] *= out->r[j];

  for (int s = 0; s < ns; ++s) {
    LANDAU_ASSERT(states[static_cast<std::size_t>(s)].size() == fes.n_dofs(),
                  "state size mismatch for species " << s);
    const std::size_t off = static_cast<std::size_t>(s) * out->n;
    fes.eval_at_ips(states[static_cast<std::size_t>(s)].span(),
                    {out->f.data() + off, out->n}, {out->dfr.data() + off, out->n},
                    {out->dfz.data() + off, out->n});
  }
}

} // namespace landau
