#pragma once
// Plasma species tables and the nondimensionalization of Appendix A.
//
// Everything in the solver works in normalized units:
//   * velocities in units of v0 = sqrt(8 kT_e / pi m_e)  (electron mean speed),
//   * masses in units of m0 = m_e, charges in units of e,
//   * densities in units of n0, time in units of t0 chosen so that the
//     normalized electron-electron collision frequency is 1,
//   * E_z in units such that the advection coefficient of species a is
//     (q_a/m_a) * E.
//
// A Maxwellian of temperature T (in T_e units) for species of mass m (in m_e
// units) is then f = n/(pi theta)^{3/2} exp(-x^2/theta) with
// theta = (pi/4) (T/T_e) (m_e/m); its normalized thermal speed is sqrt(theta).

#include <string>
#include <vector>

#include "util/error.h"
#include "util/special_math.h"

namespace landau {

/// One plasma species in normalized units.
struct Species {
  std::string name;
  double mass = 1.0;        // m / m_e
  double charge = -1.0;     // q / e (electrons: -1)
  double density = 1.0;     // initial n / n0
  double temperature = 1.0; // initial T / T_e

  /// Gaussian width parameter of this species' Maxwellian (see header).
  double theta() const { return (kPi / 4.0) * temperature / mass; }
  /// Normalized thermal speed (units of v0).
  double thermal_speed() const { return std::sqrt(theta()); }
  /// Initial Maxwellian at cylindrical velocity coordinates (r, z).
  double maxwellian(double r, double z, double drift_z = 0.0) const {
    return maxwellian_rz(r, z, density, theta(), drift_z);
  }
};

/// An ordered set of species; index 0 is conventionally the electrons.
class SpeciesSet {
public:
  SpeciesSet() = default;
  explicit SpeciesSet(std::vector<Species> list) : species_(std::move(list)) {
    LANDAU_ASSERT(!species_.empty(), "need at least one species");
  }

  int size() const { return static_cast<int>(species_.size()); }
  const Species& operator[](int s) const { return species_[static_cast<std::size_t>(s)]; }
  Species& operator[](int s) { return species_[static_cast<std::size_t>(s)]; }
  auto begin() const { return species_.begin(); }
  auto end() const { return species_.end(); }

  /// Normalized collision prefactor nu_ab = (q_a q_b)^2 (ln Lambda ratio = 1;
  /// the paper fixes ln Lambda = 10 for all pairs).
  double nu(int a, int b) const {
    return sqr((*this)[a].charge) * sqr((*this)[b].charge);
  }

  /// Effective ion charge Z_eff = sum n_i q_i^2 / sum n_i q_i over ions.
  double z_eff() const;

  /// Electron + deuterium, both Maxwellian at T_e (the §III-B/IV test plasma).
  static SpeciesSet electron_deuterium();

  /// Electron + ion of charge Z, quasi-neutral (n_i = 1/Z), as in Fig. 4.
  static SpeciesSet electron_ion(double z);

  /// The paper's performance plasma (§V): electrons, deuterium, and eight
  /// tungsten ionization states (charges 40..47 here), quasi-neutral.
  static SpeciesSet tungsten_plasma();

private:
  std::vector<Species> species_;
};

} // namespace landau
