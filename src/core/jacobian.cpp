#include "core/jacobian.h"

#include "exec/annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/profiler.h"

namespace landau {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::Cpu: return "cpu";
    case Backend::CudaSim: return "cuda-sim";
    case Backend::KokkosSim: return "kokkos-sim";
  }
  return "?";
}

bool JacobianContext::species_on_grid(int s) const {
  if (!grid_species) return true;
  for (int g : *grid_species)
    if (g == s) return true;
  return false;
}

void JacobianContext::init(const fem::FESpace& f, const SpeciesSet& s, const IPData& d) {
  fes = &f;
  species = &s;
  ip = &d;
  LANDAU_ASSERT(d.n_species == s.size(), "IP data species count mismatch");
  const int ns = s.size();
  q2.resize(static_cast<std::size_t>(ns));
  q2_over_m.resize(static_cast<std::size_t>(ns));
  q2_over_m2.resize(static_cast<std::size_t>(ns));
  for (int b = 0; b < ns; ++b) {
    const double q = s[b].charge;
    const double m = s[b].mass;
    q2[static_cast<std::size_t>(b)] = q * q;
    q2_over_m[static_cast<std::size_t>(b)] = q * q / m;
    q2_over_m2[static_cast<std::size_t>(b)] = q * q / (m * m);
  }
}

la::SparsityPattern landau_jacobian_sparsity(const fem::FESpace& fes, int n_species) {
  const std::size_t nf = fes.n_dofs();
  la::SparsityPattern pattern(nf * static_cast<std::size_t>(n_species),
                              nf * static_cast<std::size_t>(n_species));
  for (std::size_t c = 0; c < fes.n_cells(); ++c) {
    const auto dofs = fes.dofmap().cell_free_dofs(c);
    for (int s = 0; s < n_species; ++s) {
      const std::size_t off = static_cast<std::size_t>(s) * nf;
      for (auto di : dofs)
        for (auto dj : dofs)
          pattern.add(off + static_cast<std::size_t>(di), off + static_cast<std::size_t>(dj));
    }
  }
  pattern.compress();
  return pattern;
}

namespace detail {

LANDAU_DEVICE void assemble_element(const JacobianContext& ctx, std::size_t cell,
                                    const ElementMatrices& ce, la::CsrMatrix& j,
                                    const exec::check::checked_span<double>* chk) {
  using exec::check::Kind;
  const bool checked = chk && chk->active();
  const auto& dm = ctx.fes->dofmap();
  const auto nodes = dm.cell_nodes(cell);
  const int nb = ce.nb;
  if (ctx.coo_values) {
    // COO sink: stream every (closure-expanded) element value into this
    // cell's fixed slot range — disjoint per cell, so no atomics are needed.
    const std::size_t base = (*ctx.coo_cell_offsets)[cell];
    double* out = ctx.coo_values->data() + base;
    std::size_t k = 0;
    LANDAU_ASSERT(!ctx.grid_species, "COO assembly supports single-grid operators only");
    for (int s = 0; s < ce.n_species; ++s)
      for (int a = 0; a < nb; ++a) {
        const auto ca = dm.closure(nodes[static_cast<std::size_t>(a)]);
        for (int b = 0; b < nb; ++b) {
          const auto cb = dm.closure(nodes[static_cast<std::size_t>(b)]);
          const double v = ce.at(s, a, b);
          for (const auto& [di, wi] : ca) {
            (void)di;
            for (const auto& [dj, wj] : cb) {
              (void)dj;
              if (checked) chk->note(base + k, Kind::Write);
              out[k++] = wi * wj * v;
            }
          }
        }
      }
    return;
  }
  for (int s = 0; s < ce.n_species; ++s) {
    if (!ctx.species_on_grid(s)) continue; // dofs live on another grid (§III-H)
    const std::size_t off = ctx.block_offset(s);
    for (int a = 0; a < nb; ++a) {
      const auto ca = dm.closure(nodes[static_cast<std::size_t>(a)]);
      for (int b = 0; b < nb; ++b) {
        const double v = ce.at(s, a, b);
        if (fp::exact_eq(v, 0.0)) continue; // sparsity skip: bitwise compare intended
        const auto cb = dm.closure(nodes[static_cast<std::size_t>(b)]);
        for (const auto& [di, wi] : ca)
          for (const auto& [dj, wj] : cb) {
            const double contrib = wi * wj * v;
            const std::size_t gi = off + static_cast<std::size_t>(di);
            const std::size_t gj = off + static_cast<std::size_t>(dj);
            if (ctx.atomic_assembly)
              j.add_atomic(gi, gj, contrib);
            else
              j.add(gi, gj, contrib);
            if (checked)
              chk->note(j.entry_index(gi, gj), ctx.atomic_assembly ? Kind::Atomic : Kind::Write);
          }
      }
    }
  }
}

void landau_kernel_cpu(const JacobianContext& ctx, la::CsrMatrix& j,
                       exec::KernelCounters* counters);
void landau_kernel_cuda(exec::ThreadPool& pool, const JacobianContext& ctx, la::CsrMatrix& j,
                        exec::KernelCounters* counters);
void landau_kernel_kokkos(exec::ThreadPool& pool, const JacobianContext& ctx, la::CsrMatrix& j,
                          exec::KernelCounters* counters);

} // namespace detail

void assemble_landau_jacobian(Backend backend, exec::ThreadPool& pool,
                              const JacobianContext& ctx, la::CsrMatrix& j,
                              exec::KernelCounters* counters) {
  LANDAU_ASSERT(ctx.fes && ctx.species && ctx.ip, "JacobianContext not initialized");
  if (!ctx.species_offsets)
    LANDAU_ASSERT(j.rows() == ctx.n_free() * static_cast<std::size_t>(ctx.species->size()),
                  "Jacobian size mismatch");
  ScopedEvent ev("landau:jacobian-kernel");
  obs::TraceSpan span("landau:jacobian",
                      {{"species", ctx.species->size()},
                       {"cells", ctx.fes->n_cells()},
                       {"ip_points", ctx.ip->n}});
  switch (backend) {
    case Backend::Cpu: detail::landau_kernel_cpu(ctx, j, counters); break;
    case Backend::CudaSim: detail::landau_kernel_cuda(pool, ctx, j, counters); break;
    case Backend::KokkosSim: detail::landau_kernel_kokkos(pool, ctx, j, counters); break;
  }
  if (counters) {
    // Arithmetic intensity is cumulative over the counters' life — a property
    // of the algorithm, so the latest value is the representative one.
    static obs::Gauge& ai = obs::MetricsRegistry::instance().gauge("kernel.jacobian.ai");
    ai.set(counters->arithmetic_intensity());
  }
}

CooJacobianAssembler::CooJacobianAssembler(const fem::FESpace& fes, int n_species) {
  const auto& dm = fes.dofmap();
  const std::size_t nf = dm.n_free();
  const int nb = fes.tabulation().n_basis();
  std::vector<std::int32_t> ci, cj;
  cell_offsets_.resize(fes.n_cells());
  // Coordinate order must match the COO branch of assemble_element exactly.
  for (std::size_t cell = 0; cell < fes.n_cells(); ++cell) {
    cell_offsets_[cell] = ci.size();
    const auto nodes = dm.cell_nodes(cell);
    for (int s = 0; s < n_species; ++s) {
      const std::size_t off = static_cast<std::size_t>(s) * nf;
      for (int a = 0; a < nb; ++a) {
        const auto ca = dm.closure(nodes[static_cast<std::size_t>(a)]);
        for (int b = 0; b < nb; ++b) {
          const auto cb = dm.closure(nodes[static_cast<std::size_t>(b)]);
          for (const auto& [di, wi] : ca) {
            (void)wi;
            for (const auto& [dj, wj] : cb) {
              (void)wj;
              ci.push_back(static_cast<std::int32_t>(off + static_cast<std::size_t>(di)));
              cj.push_back(static_cast<std::int32_t>(off + static_cast<std::size_t>(dj)));
            }
          }
        }
      }
    }
  }
  values_.assign(ci.size(), 0.0);
  const std::size_t n = nf * static_cast<std::size_t>(n_species);
  coo_ = std::make_unique<la::CooAssembler>(n, n, std::move(ci), std::move(cj));
}

void CooJacobianAssembler::assemble(Backend backend, exec::ThreadPool& pool, JacobianContext ctx,
                                    exec::KernelCounters* counters) {
  ctx.coo_values = &values_;
  ctx.coo_cell_offsets = &cell_offsets_;
  assemble_landau_jacobian(backend, pool, ctx, coo_->matrix(), counters);
  coo_->assemble(values_);
}

void assemble_mass_kernel(exec::ThreadPool& pool, const JacobianContext& ctx, double shift,
                          la::CsrMatrix& j, exec::KernelCounters* counters) {
  // The mass kernel replaces all of Algorithm 1 with
  // C <- Transform&Assemble(w[gip]*s, 0, 0, B, 0): pure FE + sparse assembly,
  // the memory-bound contrast case of the paper's roofline study (Table IV).
  ScopedEvent ev("landau:mass-kernel");
  obs::TraceSpan span("landau:mass",
                      {{"species", ctx.species->size()}, {"cells", ctx.fes->n_cells()}});
  namespace check = exec::check;
  const auto& fes = *ctx.fes;
  const auto& tab = fes.tabulation();
  const int nq = tab.n_quad();
  const int nb = tab.n_basis();
  const int ns = ctx.species->size();

  // Device-checker scope: one "block" per cell (the kernel is block-uniform —
  // no intra-block thread structure), with the packed weights as input and
  // the value array as the concurrently-assembled output.
  check::KernelScope chk("landau:mass-kernel");
  auto wref = chk.in(std::span<const double>(ctx.ip->w), "ip.w");
  auto oref = ctx.coo_values
                  ? LANDAU_CROSS_BLOCK(chk.out(std::span<double>(*ctx.coo_values), "coo.values"))
                  : LANDAU_CROSS_BLOCK(chk.out(j.values(), "csr.values"));

  check::run_grid(pool, fes.n_cells(), &chk, counters, LANDAU_KERNEL [&](std::size_t cell) {
    exec::CounterScope scope(counters);
    check::ThreadCtx tc;
    tc.session = chk.session();
    tc.block = static_cast<int>(cell);
    check::checked_span<const double> wv(wref, &tc);
    check::checked_span<double> ov(oref, &tc);
    detail::ElementMatrices ce;
    ce.resize(1, nb);
    const std::size_t ip0 = ctx.ip_offset + cell * static_cast<std::size_t>(nq);
    // DRAM: per-block stream of the weight slice; writes counted in assembly.
    scope.dram(nq * 8);
    for (int q = 0; q < nq; ++q) {
      // Packed weight is qw * detJ * r; the axisymmetric measure adds 2 pi.
      const double wq =
          2.0 * 3.14159265358979323846 * wv[ip0 + static_cast<std::size_t>(q)] * shift;
      for (int a = 0; a < nb; ++a)
        for (int b = 0; b < nb; ++b) ce.at(0, a, b) += wq * tab.B(q, a) * tab.B(q, b);
      scope.flops(3 * nb * nb);
    }
    // The mass matrix is identical for every species block.
    detail::ElementMatrices all;
    all.resize(ns, nb);
    for (int s = 0; s < ns; ++s)
      for (int a = 0; a < nb; ++a)
        for (int b = 0; b < nb; ++b) all.at(s, a, b) = ce.at(0, a, b);
    scope.dram(static_cast<std::int64_t>(ns) * nb * nb * 8 * 2); // write + RMW traffic
    detail::assemble_element(ctx, cell, all, j, ov.active() ? &ov : nullptr);
  });
  chk.finish();
  if (counters) {
    static obs::Gauge& ai = obs::MetricsRegistry::instance().gauge("kernel.mass.ai");
    ai.set(counters->arithmetic_intensity());
  }
}

} // namespace landau
