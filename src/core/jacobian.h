#pragma once
// Landau collision-operator matrix construction — the paper's central kernel
// (Algorithm 1) in three implementations sharing one context:
//
//  * Backend::Cpu       — plain loops (the "common CPU code" reference),
//  * Backend::CudaSim   — Algorithm 1 on the emulated CUDA model: one element
//                         per block, integration points on threadIdx.y,
//                         warp-shuffle reduction across threadIdx.x, shared
//                         memory staging, atomic global assembly,
//  * Backend::KokkosSim — the Kokkos formulation: league member per element,
//                         team threads over integration points, vector-lane
//                         parallel_reduce on a (G_K, G_D) reducer object.
//
// All three must produce identical matrices to roundoff; a test asserts it.
//
// The assembled matrix C is the weak-form collision operator *linearized
// about the packed state* (D and K frozen): M df/dt = C(f) f, which is both
// the quasi-Newton Jacobian contribution and — applied to f — the exact
// nonlinear residual of the collision term.

#include <memory>
#include <vector>

#include "core/ip_data.h"
#include "core/species.h"
#include "exec/annotations.h"
#include "exec/check.h"
#include "exec/counters.h"
#include "exec/thread_pool.h"
#include "fem/fespace.h"
#include "la/csr.h"

namespace landau {

enum class Backend { Cpu, CudaSim, KokkosSim };

const char* backend_name(Backend b);

/// Everything the kernels need, plus the per-species coefficient tables
/// (factored out of the inner loop as in §III-A).
struct JacobianContext {
  const fem::FESpace* fes = nullptr;
  const SpeciesSet* species = nullptr;
  const IPData* ip = nullptr;
  bool atomic_assembly = true; // GPU back-ends use atomicAdd (§III-F)
  double nu0 = 1.0;            // global collision prefactor (nu_ee = 1 normalized)

  // Optional COO sink (§III-F's second assembly interface): when set,
  // assemble_element streams element values into this buffer — one fixed
  // slot per (cell, species, test, trial, closure-pair) — instead of
  // scattering into the CSR matrix; a CooAssembler then compresses them.
  std::vector<double>* coo_values = nullptr;
  const std::vector<std::size_t>* coo_cell_offsets = nullptr;

  // Multi-grid support (§III-H): this context's FE space is one grid of a
  // multi-grid operator. Its cells' integration points start at ip_offset in
  // the concatenated IP arrays; only grid_species have dofs on this grid
  // (others contribute to the inner integral via the IP data but assemble
  // nothing here); species dof blocks start at species_offsets[s].
  std::size_t ip_offset = 0;
  const std::vector<int>* grid_species = nullptr;            // nullptr: all species
  const std::vector<std::size_t>* species_offsets = nullptr; // nullptr: s * n_free()

  // Coefficient tables: q^2, q^2 m0/m, q^2 (m0/m)^2 per species.
  std::vector<double> q2, q2_over_m, q2_over_m2;

  void init(const fem::FESpace& f, const SpeciesSet& s, const IPData& d);

  std::size_t n_free() const { return fes->n_dofs(); }
  std::size_t block_offset(int s) const {
    return species_offsets ? (*species_offsets)[static_cast<std::size_t>(s)]
                           : static_cast<std::size_t>(s) * n_free();
  }
  /// Species whose dofs live on this context's grid.
  bool species_on_grid(int s) const;
};

/// Sparsity of the full multi-species Jacobian: S independent diagonal blocks
/// with the FE space's element-coupling pattern (I_S (x) A_1, §III).
la::SparsityPattern landau_jacobian_sparsity(const fem::FESpace& fes, int n_species);

/// Add the collision matrix C into J (J must carry the block sparsity).
void assemble_landau_jacobian(Backend backend, exec::ThreadPool& pool,
                              const JacobianContext& ctx, la::CsrMatrix& j,
                              exec::KernelCounters* counters = nullptr);

/// Add s * (cylindrical) mass matrix into every species block of J using the
/// exec-model mass kernel (the paper's separately-profiled second kernel).
void assemble_mass_kernel(exec::ThreadPool& pool, const JacobianContext& ctx, double shift,
                          la::CsrMatrix& j, exec::KernelCounters* counters = nullptr);

/// COO assembly of the Landau Jacobian: the coordinate list is fixed once at
/// construction (MatSetPreallocationCOO) and does not require the CPU
/// first-assembly step of the traditional interface; each assemble() call
/// runs the kernel with the COO sink and compresses (MatSetValuesCOO).
class CooJacobianAssembler {
public:
  CooJacobianAssembler(const fem::FESpace& fes, int n_species);

  /// Run the kernel about ctx's packed state and assemble into matrix().
  void assemble(Backend backend, exec::ThreadPool& pool, JacobianContext ctx,
                exec::KernelCounters* counters = nullptr);

  const la::CsrMatrix& matrix() const { return coo_->matrix(); }
  std::size_t coo_size() const { return values_.size(); }

private:
  std::unique_ptr<la::CooAssembler> coo_;
  std::vector<std::size_t> cell_offsets_;
  std::vector<double> values_;
};

namespace detail {

/// Element matrices of one cell (all species), in node space. The per-backend
/// kernels fill this; assembly into the global matrix is shared.
struct ElementMatrices {
  int nb = 0, n_species = 0;
  std::vector<double> c; // [species][a][b]
  double& at(int s, int a, int b) { return c[(static_cast<std::size_t>(s) * nb + a) * nb + b]; }
  double at(int s, int a, int b) const {
    return c[(static_cast<std::size_t>(s) * nb + a) * nb + b];
  }
  void resize(int ns, int nbasis) {
    n_species = ns;
    nb = nbasis;
    c.assign(static_cast<std::size_t>(ns) * nb * nb, 0.0);
  }
};

/// Scatter one cell's element matrices into the global block matrix. When the
/// device checker is active, `chk` is the caller's checked view of the output
/// value array (CSR values or the COO sink) bound to the executing block, and
/// every scattered entry is recorded as a plain or atomic device write.
LANDAU_DEVICE void assemble_element(const JacobianContext& ctx, std::size_t cell,
                                    const ElementMatrices& ce, la::CsrMatrix& j,
                                    const exec::check::checked_span<double>* chk = nullptr);

} // namespace detail
} // namespace landau
