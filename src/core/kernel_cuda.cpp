// The CUDA formulation of the Landau Jacobian kernel (Algorithm 1), written
// against the emulated CUDA programming model:
//
//  * grid.x  = elements (one element per block / SM),
//  * block.y = integration points of the element,
//  * block.x = reduction lanes for the inner integral (power of two,
//    block.x * block.y <= 256, §III-E1),
//  * the beta-terms of the inner integral are staged tile-by-tile into
//    shared memory; partial integrals live in per-thread registers and are
//    combined with a warp-shuffle butterfly; the element matrix is formed by
//    all threads and assembled into the global CSR matrix with atomic adds.

#include "core/jacobian.h"
#include "core/kernel_math.h"
#include "exec/cuda_sim.h"

namespace landau::detail {
namespace {

/// Largest power-of-two lane count with lanes * nq <= 256 (§III-E1).
int reduction_lanes(int nq) {
  int x = 1;
  while (2 * x * nq <= 256) x *= 2;
  return x;
}

constexpr int kTile = 128; // shared-memory staging tile (inner points)

} // namespace

void landau_kernel_cuda(exec::ThreadPool& pool, const JacobianContext& ctx, la::CsrMatrix& j,
                        exec::KernelCounters* counters) {
  const auto& fes = *ctx.fes;
  const auto& tab = fes.tabulation();
  const auto& ip = *ctx.ip;
  const int nq = tab.n_quad();
  const int nb = tab.n_basis();
  const int ns = ctx.species->size();
  const std::size_t n = ip.n;
  const exec::Dim3 block{reduction_lanes(nq), nq, 1};

  exec::launch(
      pool, static_cast<int>(fes.n_cells()), block,
      [&](exec::Block& blk) {
        exec::CounterScope scope(blk.counters());
        const auto cell = static_cast<std::size_t>(blk.block_idx());
        const auto geom = fes.geometry(cell);
        const int lanes = blk.block_dim().x;

        // Register file: each thread's partial (G_K, G_D).
        auto regs = blk.registers<InnerAccum>();

        // Shared memory: staging tiles and the per-(species, point) results.
        auto tile_r = blk.shared<double>(kTile);
        auto tile_z = blk.shared<double>(kTile);
        auto tile_w = blk.shared<double>(kTile);
        auto tile_f = blk.shared<double>(static_cast<std::size_t>(ns) * kTile);
        auto tile_dfr = blk.shared<double>(static_cast<std::size_t>(ns) * kTile);
        auto tile_dfz = blk.shared<double>(static_cast<std::size_t>(ns) * kTile);
        auto kkdd = blk.shared<PointCoeffs>(static_cast<std::size_t>(ns) * nq);
        auto ce = blk.shared<double>(static_cast<std::size_t>(ns) * nb * nb);

        // Inner integral over all global points, tile by tile (lines 3-11).
        for (std::size_t j0 = 0; j0 < n; j0 += kTile) {
          const int tn = static_cast<int>(std::min<std::size_t>(kTile, n - j0));
          // Cooperative load: threads stride the tile (coalesced SoA reads).
          blk.threads([&](exec::ThreadIdx t) {
            for (int k = t.flat; k < tn; k += blk.num_threads()) {
              const std::size_t gj = j0 + static_cast<std::size_t>(k);
              tile_r[static_cast<std::size_t>(k)] = ip.r[gj];
              tile_z[static_cast<std::size_t>(k)] = ip.z[gj];
              tile_w[static_cast<std::size_t>(k)] = ip.w[gj];
              for (int s = 0; s < ns; ++s) {
                tile_f[static_cast<std::size_t>(s * kTile + k)] = ip.f_at(s, gj);
                tile_dfr[static_cast<std::size_t>(s * kTile + k)] = ip.dfr_at(s, gj);
                tile_dfz[static_cast<std::size_t>(s * kTile + k)] = ip.dfz_at(s, gj);
              }
            }
          });
          blk.sync();
          scope.dram(static_cast<std::int64_t>(tn) * (3 + 3 * ns) * 8);
          // Each thread accumulates its lane's share of the tile.
          blk.threads([&](exec::ThreadIdx t) {
            const std::size_t gi =
                ctx.ip_offset + cell * static_cast<std::size_t>(nq) + static_cast<std::size_t>(t.y);
            for (int k = t.x; k < tn; k += lanes)
              inner_point(ip.r[gi], ip.z[gi], tile_r[static_cast<std::size_t>(k)],
                          tile_z[static_cast<std::size_t>(k)], tile_w[static_cast<std::size_t>(k)],
                          &tile_f[static_cast<std::size_t>(k)], &tile_dfr[static_cast<std::size_t>(k)],
                          &tile_dfz[static_cast<std::size_t>(k)], kTile, ns, ctx.q2.data(),
                          ctx.q2_over_m.data(), &regs[static_cast<std::size_t>(t.flat)]);
          });
          blk.sync();
          scope.flops(static_cast<std::int64_t>(tn) * nq * inner_flops(ns));
          scope.shared(static_cast<std::int64_t>(tn) * nq * (3 + 3 * ns) * 8);
        }

        // Warp-shuffle reduction across the x-lanes (line 12).
        blk.shfl_xor_sum_x(regs);

        // Per-species scaling and mapping to the global basis (lines 13-21).
        blk.threads([&](exec::ThreadIdx t) {
          const std::size_t gi =
              ctx.ip_offset + cell * static_cast<std::size_t>(nq) + static_cast<std::size_t>(t.y);
          const InnerAccum& g = regs[static_cast<std::size_t>(t.flat)]; // row-reduced value
          for (int a = t.x; a < ns; a += lanes)
            kkdd[static_cast<std::size_t>(a * nq + t.y)] = transform_point(
                g, ctx.nu0, ctx.q2[static_cast<std::size_t>(a)],
                ctx.q2_over_m[static_cast<std::size_t>(a)],
                ctx.q2_over_m2[static_cast<std::size_t>(a)], geom.jinv[0], geom.jinv[1],
                ip.w[gi]);
        });
        blk.sync();

        // Transform & Assemble with all threads (line 23): distribute the
        // (species, test, trial) triples across the whole block.
        const int total = ns * nb * nb;
        blk.threads([&](exec::ThreadIdx t) {
          for (int item = t.flat; item < total; item += blk.num_threads()) {
            const int a_sp = item / (nb * nb);
            const int a = (item / nb) % nb;
            const int b = item % nb;
            double acc = 0.0;
            for (int i = 0; i < nq; ++i) {
              const auto& p = kkdd[static_cast<std::size_t>(a_sp * nq + i)];
              const double ear = tab.E(i, a, 0);
              const double eaz = tab.E(i, a, 1);
              acc += (ear * p.dd00 + eaz * p.dd01) * tab.E(i, b, 0) +
                     (ear * p.dd01 + eaz * p.dd11) * tab.E(i, b, 1) +
                     (ear * p.kk_r + eaz * p.kk_z) * tab.B(i, b);
            }
            ce[static_cast<std::size_t>(item)] = acc;
          }
        });
        blk.sync();
        scope.flops(static_cast<std::int64_t>(total) * nq * 13);
        scope.dram(static_cast<std::int64_t>(total) * 8 * 2);

        // Global assembly with atomics (§III-F).
        ElementMatrices em;
        em.n_species = ns;
        em.nb = nb;
        em.c.assign(ce.begin(), ce.end());
        assemble_element(ctx, cell, em, j);
      },
      counters);
}

} // namespace landau::detail
