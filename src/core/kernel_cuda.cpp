// The CUDA formulation of the Landau Jacobian kernel (Algorithm 1), written
// against the emulated CUDA programming model:
//
//  * grid.x  = elements (one element per block / SM),
//  * block.y = integration points of the element,
//  * block.x = reduction lanes for the inner integral (power of two,
//    block.x * block.y <= 256, §III-E1),
//  * the beta-terms of the inner integral are staged tile-by-tile into
//    shared memory; partial integrals live in per-thread registers and are
//    combined with a warp-shuffle butterfly; the element matrix is formed by
//    all threads and assembled into the global CSR matrix with atomic adds.

#include "core/jacobian.h"
#include "core/kernel_math.h"
#include "exec/annotations.h"
#include "exec/cuda_sim.h"

namespace landau::detail {
namespace {

/// Largest power-of-two lane count with lanes * nq <= 256 (§III-E1).
int reduction_lanes(int nq) {
  int x = 1;
  while (2 * x * nq <= 256) x *= 2;
  return x;
}

constexpr int kTile = 128; // shared-memory staging tile (inner points)

} // namespace

void landau_kernel_cuda(exec::ThreadPool& pool, const JacobianContext& ctx, la::CsrMatrix& j,
                        exec::KernelCounters* counters) {
  namespace check = exec::check;
  const auto& fes = *ctx.fes;
  const auto& tab = fes.tabulation();
  const auto& ip = *ctx.ip;
  const int nq = tab.n_quad();
  const int nb = tab.n_basis();
  const int ns = ctx.species->size();
  const std::size_t n = ip.n;
  const exec::Dim3 block{reduction_lanes(nq), nq, 1};

  // Device-checker scope: register the packed IP arrays as inputs and the
  // assembly target as the concurrently-written output. Inactive (and free)
  // unless LANDAU_CHECK_DEVICE is on.
  check::KernelScope chk("landau:jacobian-cuda");
  auto ref_r = chk.in(std::span<const double>(ip.r), "ip.r");
  auto ref_z = chk.in(std::span<const double>(ip.z), "ip.z");
  auto ref_w = chk.in(std::span<const double>(ip.w), "ip.w");
  auto ref_f = chk.in(std::span<const double>(ip.f), "ip.f");
  auto ref_dfr = chk.in(std::span<const double>(ip.dfr), "ip.dfr");
  auto ref_dfz = chk.in(std::span<const double>(ip.dfz), "ip.dfz");
  // The assembly target is written concurrently by all blocks (paper
  // §III-F): stores must go through the atomic path, which landau-lint
  // enforces on direct subscript stores through views of this ref.
  auto ref_out = ctx.coo_values
                     ? LANDAU_CROSS_BLOCK(chk.out(std::span<double>(*ctx.coo_values), "coo.values"))
                     : LANDAU_CROSS_BLOCK(chk.out(j.values(), "csr.values"));

  exec::launch(
      pool, static_cast<int>(fes.n_cells()), block,
      LANDAU_KERNEL [&](exec::Block& blk) {
        exec::CounterScope scope(blk.counters());
        const auto cell = static_cast<std::size_t>(blk.block_idx());
        const auto geom = fes.geometry(cell);
        const int lanes = blk.block_dim().x;

        // Global memory through this block's access identity.
        auto gr = blk.view(ref_r);
        auto gz = blk.view(ref_z);
        auto gw = blk.view(ref_w);
        auto gf = blk.view(ref_f);
        auto gdfr = blk.view(ref_dfr);
        auto gdfz = blk.view(ref_dfz);
        auto gout = blk.view(ref_out);

        // Register file: each thread's partial (G_K, G_D).
        auto regs = blk.registers<InnerAccum>("regs");

        // Shared memory: staging tiles and the per-(species, point) results.
        auto tile_r = blk.shared<double>(kTile, "tile_r");
        auto tile_z = blk.shared<double>(kTile, "tile_z");
        auto tile_w = blk.shared<double>(kTile, "tile_w");
        auto tile_f = blk.shared<double>(static_cast<std::size_t>(ns) * kTile, "tile_f");
        auto tile_dfr = blk.shared<double>(static_cast<std::size_t>(ns) * kTile, "tile_dfr");
        auto tile_dfz = blk.shared<double>(static_cast<std::size_t>(ns) * kTile, "tile_dfz");
        auto kkdd = blk.shared<PointCoeffs>(static_cast<std::size_t>(ns) * nq, "kkdd");
        auto ce = blk.shared<double>(static_cast<std::size_t>(ns) * nb * nb, "ce");

        // Inner integral over all global points, tile by tile (lines 3-11).
        for (std::size_t j0 = 0; j0 < n; j0 += kTile) {
          const int tn = static_cast<int>(std::min<std::size_t>(kTile, n - j0));
          // Cooperative load: threads stride the tile (coalesced SoA reads).
          blk.threads([&](exec::ThreadIdx t) {
            for (int k = t.flat; k < tn; k += blk.num_threads()) {
              const std::size_t gj = j0 + static_cast<std::size_t>(k);
              tile_r[static_cast<std::size_t>(k)] = gr[gj];
              tile_z[static_cast<std::size_t>(k)] = gz[gj];
              tile_w[static_cast<std::size_t>(k)] = gw[gj];
              for (int s = 0; s < ns; ++s) {
                const std::size_t sg = static_cast<std::size_t>(s) * n + gj;
                tile_f[static_cast<std::size_t>(s * kTile + k)] = gf[sg];
                tile_dfr[static_cast<std::size_t>(s * kTile + k)] = gdfr[sg];
                tile_dfz[static_cast<std::size_t>(s * kTile + k)] = gdfz[sg];
              }
            }
          });
          blk.sync();
          scope.dram(static_cast<std::int64_t>(tn) * (3 + 3 * ns) * 8);
          // Each thread accumulates its lane's share of the tile.
          blk.threads([&](exec::ThreadIdx t) {
            const std::size_t gi =
                ctx.ip_offset + cell * static_cast<std::size_t>(nq) + static_cast<std::size_t>(t.y);
            for (int k = t.x; k < tn; k += lanes) {
              const auto sk = static_cast<std::size_t>(k);
              inner_point(gr[gi], gz[gi], tile_r[sk], tile_z[sk], tile_w[sk],
                          tile_f.read_strided(sk, static_cast<std::size_t>(ns), kTile),
                          tile_dfr.read_strided(sk, static_cast<std::size_t>(ns), kTile),
                          tile_dfz.read_strided(sk, static_cast<std::size_t>(ns), kTile), kTile, ns,
                          ctx.q2.data(), ctx.q2_over_m.data(),
                          regs.rw_ptr(static_cast<std::size_t>(t.flat)));
            }
          });
          blk.sync();
          scope.flops(static_cast<std::int64_t>(tn) * nq * inner_flops(ns));
          scope.shared(static_cast<std::int64_t>(tn) * nq * (3 + 3 * ns) * 8);
        }

        // Warp-shuffle reduction across the x-lanes (line 12).
        blk.shfl_xor_sum_x(regs);

        // Per-species scaling and mapping to the global basis (lines 13-21).
        blk.threads([&](exec::ThreadIdx t) {
          const std::size_t gi =
              ctx.ip_offset + cell * static_cast<std::size_t>(nq) + static_cast<std::size_t>(t.y);
          // Row-reduced value: each thread reads its own register slot.
          const InnerAccum& g = *regs.read_ptr(static_cast<std::size_t>(t.flat));
          for (int a = t.x; a < ns; a += lanes)
            kkdd[static_cast<std::size_t>(a * nq + t.y)] = transform_point(
                g, ctx.nu0, ctx.q2[static_cast<std::size_t>(a)],
                ctx.q2_over_m[static_cast<std::size_t>(a)],
                ctx.q2_over_m2[static_cast<std::size_t>(a)], geom.jinv[0], geom.jinv[1],
                gw[gi]);
        });
        blk.sync();

        // Transform & Assemble with all threads (line 23): distribute the
        // (species, test, trial) triples across the whole block.
        const int total = ns * nb * nb;
        blk.threads([&](exec::ThreadIdx t) {
          for (int item = t.flat; item < total; item += blk.num_threads()) {
            const int a_sp = item / (nb * nb);
            const int a = (item / nb) % nb;
            const int b = item % nb;
            double acc = 0.0;
            for (int i = 0; i < nq; ++i) {
              const PointCoeffs& p = *kkdd.read_ptr(static_cast<std::size_t>(a_sp * nq + i));
              const double ear = tab.E(i, a, 0);
              const double eaz = tab.E(i, a, 1);
              acc += (ear * p.dd00 + eaz * p.dd01) * tab.E(i, b, 0) +
                     (ear * p.dd01 + eaz * p.dd11) * tab.E(i, b, 1) +
                     (ear * p.kk_r + eaz * p.kk_z) * tab.B(i, b);
            }
            ce[static_cast<std::size_t>(item)] = acc;
          }
        });
        blk.sync();
        scope.flops(static_cast<std::int64_t>(total) * nq * 13);
        scope.dram(static_cast<std::int64_t>(total) * 8 * 2);

        // Global assembly with atomics (§III-F).
        ElementMatrices em;
        em.n_species = ns;
        em.nb = nb;
        const double* cep = ce.read_all();
        em.c.assign(cep, cep + ce.size());
        assemble_element(ctx, cell, em, j, gout.active() ? &gout : nullptr);
      },
      counters, &chk, "landau:jacobian-cuda");
  chk.finish();
}

} // namespace landau::detail
