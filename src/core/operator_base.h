#pragma once
// Abstract interface between collision operators and the implicit time
// integrator: everything the quasi-Newton backward-Euler advance needs.
// Implemented by the single-grid LandauOperator and the multi-grid
// MultiGridLandauOperator (§III-H).

#include "exec/counters.h"
#include "exec/thread_pool.h"
#include "la/csr.h"
#include "la/vec.h"

namespace landau {

class CollisionOperatorBase {
public:
  virtual ~CollisionOperatorBase() = default;

  /// Total number of equations (all species, all grids).
  virtual std::size_t n_total() const = 0;

  /// The (block) cylindrical mass matrix over the full system.
  virtual const la::CsrMatrix& mass() const = 0;

  /// A zeroed matrix with the system's block sparsity.
  virtual la::CsrMatrix new_matrix() const = 0;

  /// Pack integration-point data from a state (device inputs of Algorithm 1).
  virtual void pack(const la::Vec& state) = 0;

  /// J += C(f_packed), the frozen-coefficient collision operator.
  virtual void add_collision(la::CsrMatrix& j, exec::KernelCounters* counters = nullptr) = 0;

  /// J += A, the E-field advection blocks.
  virtual void add_advection(la::CsrMatrix& j, double e_z) const = 0;

  /// The worker pool playing the device in the emulated execution model
  /// (shared with device-side linear solvers).
  virtual exec::ThreadPool& worker_pool() = 0;
};

} // namespace landau
