#pragma once
// The electric-field advection term of eq. (1): for species a the weak form
// contributes (q_a/m_a) E_z * 2 pi \int r psi d(phi)/dz dr dz to the system
// operator. Linear in f with a per-species scalar coefficient; assembled on
// the host (it is a standard FE convection matrix, cheap next to Algorithm 1).

#include "core/jacobian.h"

namespace landau {

/// Add the advection blocks A_s = (q_s/m_s) E_z * (psi, d/dz phi) to J.
/// Sign convention: the evolution is M df/dt = -A f + C f + M S, so A is
/// assembled positive and the integrator subtracts it.
void assemble_advection(const JacobianContext& ctx, double e_z, la::CsrMatrix& j);

} // namespace landau
