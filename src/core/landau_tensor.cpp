#include "core/landau_tensor.h"

#include <cmath>

#include "util/special_math.h"

namespace landau {

LANDAU_DEVICE void landau_tensor_2d(double r, double z, double rp, double zp, Tensor2* uk,
                      Tensor2* ud) noexcept {
  const double dz = z - zp;
  const double a = r * r + rp * rp + dz * dz;
  if (a <= 0.0) {
    *uk = Tensor2{};
    *ud = Tensor2{};
    return;
  }
  const double s = 2.0 * r * rp / a;
  // Integrable singularity at coincident points (s -> 1, dz -> 0): follow the
  // PETSc kernel and contribute zero from the diagonal.
  if (s >= 1.0 - 1e-14 && std::abs(dz) < 1e-14 * std::sqrt(a)) {
    *uk = Tensor2{};
    *ud = Tensor2{};
    return;
  }
  const double m = 2.0 * s / (1.0 + s);
  double K, E;
  elliptic_ke(m, &K, &E);

  const double sq1s = std::sqrt(1.0 + s);
  const double one_minus_s = 1.0 - s;
  const double P0 = 4.0 * E / (one_minus_s * sq1s);
  const double Q0 = 4.0 * K / sq1s;
  const double R0 = 4.0 * sq1s * E;
  double P1, P2;
  if (s > 1e-3) {
    P1 = (4.0 / (s * sq1s)) * (E / one_minus_s - K);
    P2 = (P0 - 2.0 * Q0 + R0) / (s * s);
  } else {
    // Small-s series (axis limit r or r' -> 0): the closed forms above lose
    // precision to cancellation (P1 like eps/s, P2 like eps/s^2). From the
    // binomial expansion of (1 - s cos)^{-3/2}:
    //   P1 = pi (3/2 s + 105/64 s^3 + O(s^5))
    //   P2 = pi (1 + 45/32 s^2 + O(s^4)).
    P1 = kPi * s * (1.5 + (105.0 / 64.0) * s * s);
    P2 = kPi * (1.0 + (45.0 / 32.0) * s * s);
  }

  const double am32 = 1.0 / (a * std::sqrt(a));
  const double off = -dz * (r * P0 - rp * P1) * am32;
  const double d22 = ((r * r + rp * rp) * P0 - 2.0 * r * rp * P1) * am32;

  ud->m[0][0] = (rp * rp * (P0 - P2) + dz * dz * P0) * am32;
  ud->m[0][1] = off;
  ud->m[1][0] = off;
  ud->m[1][1] = d22;

  uk->m[0][0] = (dz * dz * P1 + r * rp * (P0 - P2)) * am32;
  uk->m[0][1] = off;
  uk->m[1][0] = dz * (rp * P0 - r * P1) * am32;
  uk->m[1][1] = d22;
}

std::array<std::array<double, 3>, 3> landau_tensor_3d(const std::array<double, 3>& v,
                                                      const std::array<double, 3>& vbar) noexcept {
  std::array<std::array<double, 3>, 3> u{};
  const double ux = v[0] - vbar[0];
  const double uy = v[1] - vbar[1];
  const double uz = v[2] - vbar[2];
  const double n2 = ux * ux + uy * uy + uz * uz;
  if (n2 <= 0.0) return u;
  const double inv3 = 1.0 / (n2 * std::sqrt(n2));
  const double uu[3] = {ux, uy, uz};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) u[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
        ((i == j ? n2 : 0.0) - uu[i] * uu[j]) * inv3;
  return u;
}

void landau_tensor_2d_quadrature(double r, double z, double rp, double zp, Tensor2* uk,
                                 Tensor2* ud, int nphi) {
  // Field point fixed at azimuth 0: v = (r, 0, z). Source point at azimuth
  // phi: vbar = (r' cos, r' sin, z'). Integrate the 3D tensor over phi,
  // projecting the source gradient direction for U^K:
  //   grad_bar f = (cos phi f_r', sin phi f_r', f_z').
  *uk = Tensor2{};
  *ud = Tensor2{};
  const double dphi = 2.0 * kPi / nphi;
  for (int i = 0; i < nphi; ++i) {
    const double phi = (i + 0.5) * dphi;
    const double c = std::cos(phi), s = std::sin(phi);
    const auto u = landau_tensor_3d({r, 0.0, z}, {rp * c, rp * s, zp});
    // U^D: (x,z) block of the plain tensor (test/field gradient is (d_r, d_z)
    // at azimuth 0; trial gradient likewise for the D term's outer f).
    ud->m[0][0] += u[0][0] * dphi;
    ud->m[0][1] += u[0][2] * dphi;
    ud->m[1][0] += u[2][0] * dphi;
    ud->m[1][1] += u[2][2] * dphi;
    // U^K: source-gradient rotation.
    uk->m[0][0] += (u[0][0] * c + u[0][1] * s) * dphi;
    uk->m[0][1] += u[0][2] * dphi;
    uk->m[1][0] += (u[2][0] * c + u[2][1] * s) * dphi;
    uk->m[1][1] += u[2][2] * dphi;
  }
}

} // namespace landau
