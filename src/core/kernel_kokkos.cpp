// The Kokkos formulation of the Landau Jacobian kernel: one league member
// per element, team threads over integration points, and the inner integral
// expressed as a parallel_reduce over vector lanes with a general C++
// reducer object (InnerAccum) — the machinery the CUDA version spells out
// with registers and warp shuffles is hidden in the reduction (§III-D).

#include "core/jacobian.h"
#include "core/kernel_math.h"
#include "exec/annotations.h"
#include "exec/kokkos_sim.h"

namespace landau::detail {

void landau_kernel_kokkos(exec::ThreadPool& pool, const JacobianContext& ctx, la::CsrMatrix& j,
                          exec::KernelCounters* counters) {
  namespace kk = exec::kokkos;
  const auto& fes = *ctx.fes;
  const auto& tab = fes.tabulation();
  const auto& ip = *ctx.ip;
  const int nq = tab.n_quad();
  const int nb = tab.n_basis();
  const int ns = ctx.species->size();
  const std::size_t n = ip.n;

  const kk::TeamPolicy policy{static_cast<int>(fes.n_cells()), nq, 32};

  // Device-checker scope (see kernel_cuda.cpp; same buffers, same rules).
  namespace check = exec::check;
  check::KernelScope chk("landau:jacobian-kokkos");
  auto ref_r = chk.in(std::span<const double>(ip.r), "ip.r");
  auto ref_z = chk.in(std::span<const double>(ip.z), "ip.z");
  auto ref_w = chk.in(std::span<const double>(ip.w), "ip.w");
  auto ref_f = chk.in(std::span<const double>(ip.f), "ip.f");
  auto ref_dfr = chk.in(std::span<const double>(ip.dfr), "ip.dfr");
  auto ref_dfz = chk.in(std::span<const double>(ip.dfz), "ip.dfz");
  auto ref_out = ctx.coo_values
                     ? LANDAU_CROSS_BLOCK(chk.out(std::span<double>(*ctx.coo_values), "coo.values"))
                     : LANDAU_CROSS_BLOCK(chk.out(j.values(), "csr.values"));

  kk::parallel_for(
      pool, policy,
      LANDAU_KERNEL [&](kk::TeamMember& member) {
    exec::CounterScope scope(counters);
    const auto cell = static_cast<std::size_t>(member.league_rank());
    const auto geom = fes.geometry(cell);

    auto gr = member.view(ref_r);
    auto gz = member.view(ref_z);
    auto gw = member.view(ref_w);
    auto gf = member.view(ref_f);
    auto gdfr = member.view(ref_dfr);
    auto gdfz = member.view(ref_dfz);
    auto gout = member.view(ref_out);

    // Team scratch: variable-length shared arrays (no compile-time sizing,
    // unlike the CUDA version).
    auto kkdd = member.team_scratch<PointCoeffs>(static_cast<std::size_t>(ns) * nq, "kkdd");
    auto ce = member.team_scratch<double>(static_cast<std::size_t>(ns) * nb * nb, "ce");

    // Integration points distributed over the team's threads.
    member.team_range(nq, [&](int i) {
      const std::size_t gi = ctx.ip_offset + cell * static_cast<std::size_t>(nq) + static_cast<std::size_t>(i);
      InnerAccum g;
      member.vector_reduce(
          static_cast<int>(n),
          [&](int jj, InnerAccum& acc) {
            const auto sj = static_cast<std::size_t>(jj);
            inner_point(gr[gi], gz[gi], gr[sj], gz[sj], gw[sj],
                        gf.read_strided(sj, static_cast<std::size_t>(ns), n),
                        gdfr.read_strided(sj, static_cast<std::size_t>(ns), n),
                        gdfz.read_strided(sj, static_cast<std::size_t>(ns), n), n, ns,
                        ctx.q2.data(), ctx.q2_over_m.data(), &acc);
          },
          g);
      for (int a = 0; a < ns; ++a)
        kkdd[static_cast<std::size_t>(a * nq + i)] = transform_point(
            g, ctx.nu0, ctx.q2[static_cast<std::size_t>(a)],
            ctx.q2_over_m[static_cast<std::size_t>(a)],
            ctx.q2_over_m2[static_cast<std::size_t>(a)], geom.jinv[0], geom.jinv[1], gw[gi]);
    });
    member.team_barrier();
    scope.flops(static_cast<std::int64_t>(n) * nq * inner_flops(ns));
    scope.dram(static_cast<std::int64_t>(n) * (3 + 3 * ns) * 8); // per-member stream
    scope.shared(static_cast<std::int64_t>(n) * nq * (3 + 3 * ns) * 8);

    // Transform & Assemble across the team.
    member.team_range(ns * nb, [&](int item) {
      const int a_sp = item / nb;
      const int a = item % nb;
      member.vector_range(nb, [&](int b) {
        double acc = 0.0;
        for (int i = 0; i < nq; ++i) {
          const PointCoeffs& p = *kkdd.read_ptr(static_cast<std::size_t>(a_sp * nq + i));
          const double ear = tab.E(i, a, 0);
          const double eaz = tab.E(i, a, 1);
          acc += (ear * p.dd00 + eaz * p.dd01) * tab.E(i, b, 0) +
                 (ear * p.dd01 + eaz * p.dd11) * tab.E(i, b, 1) +
                 (ear * p.kk_r + eaz * p.kk_z) * tab.B(i, b);
        }
        ce[static_cast<std::size_t>((a_sp * nb + a) * nb + b)] = acc;
      });
    });
    member.team_barrier();
    scope.flops(static_cast<std::int64_t>(ns) * nb * nb * nq * 13);
    scope.dram(static_cast<std::int64_t>(ns) * nb * nb * 8 * 2);

    ElementMatrices em;
    em.n_species = ns;
    em.nb = nb;
    const double* cep = ce.read_all();
    em.c.assign(cep, cep + ce.size());
    assemble_element(ctx, cell, em, j, gout.active() ? &gout : nullptr);
      },
      &chk, "landau:jacobian-kokkos");
  chk.finish();
}

} // namespace landau::detail
