// The Kokkos formulation of the Landau Jacobian kernel: one league member
// per element, team threads over integration points, and the inner integral
// expressed as a parallel_reduce over vector lanes with a general C++
// reducer object (InnerAccum) — the machinery the CUDA version spells out
// with registers and warp shuffles is hidden in the reduction (§III-D).

#include "core/jacobian.h"
#include "core/kernel_math.h"
#include "exec/kokkos_sim.h"

namespace landau::detail {

void landau_kernel_kokkos(exec::ThreadPool& pool, const JacobianContext& ctx, la::CsrMatrix& j,
                          exec::KernelCounters* counters) {
  namespace kk = exec::kokkos;
  const auto& fes = *ctx.fes;
  const auto& tab = fes.tabulation();
  const auto& ip = *ctx.ip;
  const int nq = tab.n_quad();
  const int nb = tab.n_basis();
  const int ns = ctx.species->size();
  const std::size_t n = ip.n;

  const kk::TeamPolicy policy{static_cast<int>(fes.n_cells()), nq, 32};

  kk::parallel_for(pool, policy, [&](kk::TeamMember& member) {
    exec::CounterScope scope(counters);
    const auto cell = static_cast<std::size_t>(member.league_rank());
    const auto geom = fes.geometry(cell);

    // Team scratch: variable-length shared arrays (no compile-time sizing,
    // unlike the CUDA version).
    auto kkdd = member.team_scratch<PointCoeffs>(static_cast<std::size_t>(ns) * nq);
    auto ce = member.team_scratch<double>(static_cast<std::size_t>(ns) * nb * nb);

    // Integration points distributed over the team's threads.
    member.team_range(nq, [&](int i) {
      const std::size_t gi = ctx.ip_offset + cell * static_cast<std::size_t>(nq) + static_cast<std::size_t>(i);
      InnerAccum g;
      member.vector_reduce(
          static_cast<int>(n),
          [&](int jj, InnerAccum& acc) {
            const auto sj = static_cast<std::size_t>(jj);
            inner_point(ip.r[gi], ip.z[gi], ip.r[sj], ip.z[sj], ip.w[sj], &ip.f[sj],
                        &ip.dfr[sj], &ip.dfz[sj], n, ns, ctx.q2.data(), ctx.q2_over_m.data(),
                        &acc);
          },
          g);
      for (int a = 0; a < ns; ++a)
        kkdd[static_cast<std::size_t>(a * nq + i)] = transform_point(
            g, ctx.nu0, ctx.q2[static_cast<std::size_t>(a)],
            ctx.q2_over_m[static_cast<std::size_t>(a)],
            ctx.q2_over_m2[static_cast<std::size_t>(a)], geom.jinv[0], geom.jinv[1], ip.w[gi]);
    });
    member.team_barrier();
    scope.flops(static_cast<std::int64_t>(n) * nq * inner_flops(ns));
    scope.dram(static_cast<std::int64_t>(n) * (3 + 3 * ns) * 8); // per-member stream
    scope.shared(static_cast<std::int64_t>(n) * nq * (3 + 3 * ns) * 8);

    // Transform & Assemble across the team.
    member.team_range(ns * nb, [&](int item) {
      const int a_sp = item / nb;
      const int a = item % nb;
      member.vector_range(nb, [&](int b) {
        double acc = 0.0;
        for (int i = 0; i < nq; ++i) {
          const auto& p = kkdd[static_cast<std::size_t>(a_sp * nq + i)];
          const double ear = tab.E(i, a, 0);
          const double eaz = tab.E(i, a, 1);
          acc += (ear * p.dd00 + eaz * p.dd01) * tab.E(i, b, 0) +
                 (ear * p.dd01 + eaz * p.dd11) * tab.E(i, b, 1) +
                 (ear * p.kk_r + eaz * p.kk_z) * tab.B(i, b);
        }
        ce[static_cast<std::size_t>((a_sp * nb + a) * nb + b)] = acc;
      });
    });
    member.team_barrier();
    scope.flops(static_cast<std::int64_t>(ns) * nb * nb * nq * 13);
    scope.dram(static_cast<std::int64_t>(ns) * nb * nb * 8 * 2);

    ElementMatrices em;
    em.n_species = ns;
    em.nb = nb;
    em.c.assign(ce.begin(), ce.end());
    assemble_element(ctx, cell, em, j);
  });
}

} // namespace landau::detail
