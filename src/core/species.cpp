#include "core/species.h"

namespace landau {

double SpeciesSet::z_eff() const {
  double num = 0.0, den = 0.0;
  for (int s = 1; s < size(); ++s) {
    const auto& sp = (*this)[s];
    num += sp.density * sqr(sp.charge);
    den += sp.density * sp.charge;
  }
  return den != 0.0 ? num / den : 0.0;
}

SpeciesSet SpeciesSet::electron_deuterium() {
  // Deuteron mass 2 * 1836 m_e; both species at T_e with equal density.
  return SpeciesSet({
      {.name = "electron", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0},
      {.name = "deuterium", .mass = 2.0 * 1836.15, .charge = 1.0, .density = 1.0, .temperature = 1.0},
  });
}

SpeciesSet SpeciesSet::electron_ion(double z) {
  LANDAU_ASSERT(z > 0, "ion charge must be positive");
  // Quasi-neutrality: n_i Z = n_e. Ion mass ~ 2 Z proton masses (a light
  // nucleus scaled with Z keeps the model simple; resistivity depends on Z
  // through collisions, not the ion mass, which only sets the ion inertia).
  return SpeciesSet({
      {.name = "electron", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0},
      {.name = "ion", .mass = 2.0 * 1836.15 * z, .charge = z, .density = 1.0 / z, .temperature = 1.0},
  });
}

SpeciesSet SpeciesSet::tungsten_plasma() {
  std::vector<Species> list;
  list.push_back({.name = "electron", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0});
  list.push_back(
      {.name = "deuterium", .mass = 2.0 * 1836.15, .charge = 1.0, .density = 0.5, .temperature = 1.0});
  // Eight tungsten charge states sharing the tungsten mass (183.84 u) and
  // thermal temperature; densities chosen small and quasi-neutralizing.
  const double mw = 183.84 * 1836.15;
  double need = 0.5; // remaining electron charge to neutralize
  for (int i = 0; i < 8; ++i) {
    const double q = 40.0 + i;
    const double n = need / (8.0 * q);
    list.push_back({.name = "W" + std::to_string(40 + i), .mass = mw, .charge = q,
                    .density = n, .temperature = 1.0});
  }
  return SpeciesSet(std::move(list));
}

} // namespace landau
