#include "core/advection.h"

#include "util/special_math.h"

namespace landau {

void assemble_advection(const JacobianContext& ctx, double e_z, la::CsrMatrix& j) {
  if (e_z == 0.0) return;
  const auto& fes = *ctx.fes;
  const auto& tab = fes.tabulation();
  const int nq = tab.n_quad();
  const int nb = tab.n_basis();
  const int ns = ctx.species->size();

  detail::ElementMatrices ce;
  for (std::size_t cell = 0; cell < fes.n_cells(); ++cell) {
    const auto geom = fes.geometry(cell);
    ce.resize(ns, nb);
    for (int q = 0; q < nq; ++q) {
      const double r = geom.x0 + 0.5 * geom.dx * (tab.qx(q) + 1.0);
      const double wq = 2.0 * kPi * r * tab.qw(q) * geom.detj;
      for (int a = 0; a < nb; ++a) {
        const double ba = tab.B(q, a);
        for (int b = 0; b < nb; ++b) {
          // d phi_b / dz in physical coordinates.
          const double dz = tab.E(q, b, 1) * geom.jinv[1];
          const double base = wq * ba * dz;
          for (int s = 0; s < ns; ++s) {
            const auto& sp = (*ctx.species)[s];
            ce.at(s, a, b) += (sp.charge / sp.mass) * e_z * base;
          }
        }
      }
    }
    detail::assemble_element(ctx, cell, ce, j);
  }
}

} // namespace landau
