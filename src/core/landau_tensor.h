#pragma once
// The Landau tensor (eq. 3) and its axisymmetric reductions U^D and U^K
// (eqs. 7-8), the physics core of the collision kernel.
//
// In cylindrical velocity coordinates the azimuthal integral of the 3D
// projection tensor reduces to complete elliptic integrals. With field point
// (r, z), source point (r', z'), dz = z - z', a = r^2 + r'^2 + dz^2 and
// s = 2 r r' / a, define m = 2s/(1+s) and the basis integrals
//
//   P0 = \oint (1 - s cos phi)^{-3/2} dphi = 4 E(m) / ((1-s) sqrt(1+s))
//   P1 = (4 / (s sqrt(1+s))) (E(m)/(1-s) - K(m))
//   Q0 = \oint (...)^{-1/2} = 4 K(m)/sqrt(1+s)
//   R0 = \oint (...)^{+1/2} = 4 sqrt(1+s) E(m)
//   P2 = (P0 - 2 Q0 + R0) / s^2
//
// giving (derivation in DESIGN.md §3.1, validated against direct quadrature):
//
//   U^D = a^{-3/2} [ r'^2 (P0-P2) + dz^2 P0 ,  -dz (r P0 - r' P1)
//                    -dz (r P0 - r' P1)     ,  (r^2 + r'^2) P0 - 2 r r' P1 ]
//   U^K = a^{-3/2} [ dz^2 P1 + r r' (P0-P2),  -dz (r P0 - r' P1)
//                    dz (r' P0 - r P1)      ,  (r^2 + r'^2) P0 - 2 r r' P1 ]
//
// The diagonal (r,z) == (r',z') is an integrable singularity: like the PETSc
// implementation we return zeros there (its quadrature weight is finite and
// the principal-value contribution vanishes).

#include <array>

#include "exec/annotations.h"

namespace landau {

/// 2x2 tensors in row-major order.
struct Tensor2 {
  double m[2][2] = {{0, 0}, {0, 0}};
};

/// Evaluate U^K and U^D at field point (r,z), source point (rp,zp).
/// The hot path of the entire solver: kept inline-friendly and allocation
/// free. Counts ~flops via the optional pointer (roofline instrumentation).
LANDAU_DEVICE void landau_tensor_2d(double r, double z, double rp, double zp, Tensor2* uk,
                                    Tensor2* ud) noexcept;

/// Number of floating point operations one landau_tensor_2d call performs
/// (AGM iterations counted at their typical depth); used for flop accounting.
inline constexpr int kLandauTensor2DFlops = 130;

/// 3D Landau tensor (eq. 3): U = (|u|^2 I - u u^T)/|u|^3, u = v - vbar.
std::array<std::array<double, 3>, 3> landau_tensor_3d(const std::array<double, 3>& v,
                                                      const std::array<double, 3>& vbar) noexcept;

/// Reference implementation of U^K/U^D by direct azimuthal quadrature of the
/// 3D tensor (nphi midpoint samples). Used by tests and docs only — O(nphi)
/// per call.
void landau_tensor_2d_quadrature(double r, double z, double rp, double zp, Tensor2* uk,
                                 Tensor2* ud, int nphi = 20000);

} // namespace landau
