#pragma once
// The per-integration-point math shared by all three Landau kernel back-ends
// (Algorithm 1 lines 4-11 and 13-20). Keeping the arithmetic in one place
// guarantees the back-ends differ only in loop organization and memory
// staging — the paper's point about the CUDA and Kokkos versions.

#include "core/jacobian.h"
#include "core/landau_tensor.h"
#include "exec/annotations.h"

namespace landau::detail {

/// Partial inner-integral accumulator of one thread: G_K (vector) and the
/// symmetric G_D (tensor) of Algorithm 1 lines 10-11. Reducible: default
/// constructible with operator+= (the Kokkos reducer requirement).
struct InnerAccum {
  double gk_r = 0, gk_z = 0;
  double gd00 = 0, gd01 = 0, gd11 = 0;
  InnerAccum& operator+=(const InnerAccum& o) {
    gk_r += o.gk_r;
    gk_z += o.gk_z;
    gd00 += o.gd00;
    gd01 += o.gd01;
    gd11 += o.gd11;
    return *this;
  }
};

/// Flops per inner-loop iteration (tensor + species sums + accumulation),
/// used by every back-end for consistent roofline accounting.
LANDAU_DEVICE inline int inner_flops(int n_species) {
  return kLandauTensor2DFlops + 6 * n_species + 14;
}

/// One (i, j) contribution to the inner integral: Algorithm 1 lines 4-11.
/// The j-side data may point into shared-memory staging buffers (tiles).
LANDAU_DEVICE inline void inner_point(double ri, double zi, double rj, double zj, double wj,
                        const double* f_j,   // [species] values at j (stride given)
                        const double* dfr_j, // [species]
                        const double* dfz_j, std::size_t stride, int n_species,
                        const double* q2, const double* q2_over_m, InnerAccum* acc) {
  Tensor2 uk, ud;
  landau_tensor_2d(ri, zi, rj, zj, &uk, &ud);
  double tk_r = 0, tk_z = 0, td = 0;
  for (int b = 0; b < n_species; ++b) {
    const std::size_t off = static_cast<std::size_t>(b) * stride;
    tk_r += q2_over_m[b] * dfr_j[off];
    tk_z += q2_over_m[b] * dfz_j[off];
    td += q2[b] * f_j[off];
  }
  acc->gk_r += wj * (uk.m[0][0] * tk_r + uk.m[0][1] * tk_z);
  acc->gk_z += wj * (uk.m[1][0] * tk_r + uk.m[1][1] * tk_z);
  acc->gd00 += wj * td * ud.m[0][0];
  acc->gd01 += wj * td * ud.m[0][1];
  acc->gd11 += wj * td * ud.m[1][1];
}

/// Per-point per-species transform (Algorithm 1 lines 13-20): scale the
/// reduced integrals by the species coefficients, map to the global basis
/// with the (diagonal) inverse element Jacobian, and weight by w[gi].
struct PointCoeffs {
  double kk_r, kk_z;          // KK[alpha][i]
  double dd00, dd01, dd11;    // DD[alpha][i] (symmetric)
};

LANDAU_DEVICE inline PointCoeffs transform_point(const InnerAccum& g, double nu0, double q2a,
                                   double q2a_over_ma, double q2a_over_ma2, double jinv0,
                                   double jinv1, double wi) {
  // wi is the packed weight qw * detJ * r; the outer measure carries the
  // explicit 2 pi of the axisymmetric weak form (the inner 2 pi is already
  // folded into the elliptic-integral tensors).
  PointCoeffs p;
  const double w2pi = 2.0 * 3.14159265358979323846 * wi;
  const double ck = nu0 * q2a_over_ma;
  const double cd = -nu0 * q2a_over_ma2;
  (void)q2a;
  p.kk_r = jinv0 * ck * g.gk_r * w2pi;
  p.kk_z = jinv1 * ck * g.gk_z * w2pi;
  p.dd00 = jinv0 * jinv0 * cd * g.gd00 * w2pi;
  p.dd01 = jinv0 * jinv1 * cd * g.gd01 * w2pi;
  p.dd11 = jinv1 * jinv1 * cd * g.gd11 * w2pi;
  return p;
}

} // namespace landau::detail
