#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/error.h"

namespace landau::obs {

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  type_ = Type::Object;
  for (auto& [k, existing] : members_)
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  members_.emplace_back(key, std::move(v));
  return members_.back().second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null"; // JSON has no NaN/Inf; null marks the poisoned sample
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Round-trippable but not noisy: shorten when a 15-digit form re-reads
  // exactly (the common case for telemetry values).
  char shorter[32];
  std::snprintf(shorter, sizeof shorter, "%.15g", v);
  double back = 0.0;
  std::sscanf(shorter, "%lf", &back);
  out += (back == v) ? shorter : buf;
}

} // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Int: out += std::to_string(int_); break;
    case Type::Double: append_double(out, double_); break;
    case Type::String:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Type::Array: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        out += '"';
        out += json_escape(members_[i].first);
        out += pretty ? "\": " : "\":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser (recursive descent, strict)
// ---------------------------------------------------------------------------

namespace {

class Parser {
public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content after JSON document");
    return v;
  }

private:
  [[noreturn]] void fail(const char* what) const {
    LANDAU_THROW("JSON parse error at offset " << pos_ << ": " << what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (telemetry keys are ASCII; full BMP for correctness).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    bool is_double = false;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && s_[start] == '-')) fail("bad number");
    const std::string tok = s_.substr(start, pos_ - start);
    if (!is_double) {
      // 64-bit integer path; very long digit strings fall back to double.
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end && *end == '\0') return JsonValue(v);
    }
    double d = 0.0;
    if (std::sscanf(tok.c_str(), "%lf", &d) != 1) fail("bad number");
    return JsonValue(d);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

} // namespace

JsonValue JsonValue::parse(const std::string& text) { return Parser(text).parse_document(); }

} // namespace landau::obs
