#pragma once
// Minimal JSON value model shared by the observability layer: the span
// tracer's Chrome-trace export, the metrics registry's NDJSON step log, the
// roofline reporter and the bench JSON emitter all build documents through
// JsonValue, and the tests parse the emitted files back through parse() to
// assert well-formedness instead of string-matching.
//
// Deliberately small: objects preserve insertion order (stable, diffable
// output for tools/bench_compare.py), numbers are doubles with an integer
// fast path (no 1e+06 surprises for counters), strings are escaped per RFC
// 8259. Not a general-purpose library — no comments, no NaN/Inf literals
// (non-finite doubles serialize as null, which is what a telemetry consumer
// wants from a poisoned sample).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace landau::obs {

class JsonValue {
public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default; // null
  JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
  JsonValue(int v) : type_(Type::Int), int_(v) {}
  JsonValue(long v) : type_(Type::Int), int_(v) {}
  JsonValue(long long v) : type_(Type::Int), int_(v) {}
  JsonValue(unsigned v) : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
  JsonValue(std::size_t v) : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
  JsonValue(double v) : type_(Type::Double), double_(v) {}
  JsonValue(const char* s) : type_(Type::String), string_(s) {}
  JsonValue(std::string s) : type_(Type::String), string_(std::move(s)) {}

  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::Array;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::Object;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_number() const { return type_ == Type::Int || type_ == Type::Double; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const {
    return type_ == Type::Double ? static_cast<std::int64_t>(double_) : int_;
  }
  double as_double() const { return type_ == Type::Int ? static_cast<double>(int_) : double_; }
  const std::string& as_string() const { return string_; }

  // --- array interface -----------------------------------------------------
  JsonValue& push_back(JsonValue v) {
    items_.push_back(std::move(v));
    return items_.back();
  }
  std::size_t size() const { return is_object() ? members_.size() : items_.size(); }
  const JsonValue& operator[](std::size_t i) const { return items_[i]; }
  const std::vector<JsonValue>& items() const { return items_; }

  // --- object interface (insertion-ordered) --------------------------------
  JsonValue& set(const std::string& key, JsonValue v);
  bool contains(const std::string& key) const { return find(key) != nullptr; }
  /// Member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const { return members_; }

  /// Serialize. indent < 0 renders compact one-line JSON (NDJSON records);
  /// indent >= 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Strict RFC-8259 parse of a complete document; throws landau::Error with
  /// an offset-carrying message on malformed input.
  static JsonValue parse(const std::string& text);

private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                            // Array
  std::vector<std::pair<std::string, JsonValue>> members_; // Object
};

/// Escape a string body per RFC 8259 (no surrounding quotes).
std::string json_escape(const std::string& s);

} // namespace landau::obs
