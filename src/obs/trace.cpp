#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/error.h"
#include "util/logging.h"
#include "util/profiler.h"

namespace landau::obs {

namespace detail {
std::atomic<bool> g_trace_active{false};
} // namespace detail

namespace {

using clock = std::chrono::steady_clock;

/// Process-relative nanosecond timestamp (epoch = first tracer touch).
std::int64_t now_ns() {
  static const clock::time_point t0 = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0).count();
}

/// One span begun but not yet ended on this thread.
struct OpenSpan {
  const char* name = nullptr;
  std::int64_t t0_ns = 0;
  std::uint64_t epoch = 0; // enable-generation; stale opens are discarded
  std::int32_t n_args = 0;
  TraceArg args[kMaxTraceArgs];
};

/// Completed-span ring of one thread. The owning thread writes under mu_;
/// snapshot() reads under the same lock — uncontended in steady state, so the
/// enabled hot path stays two clock reads plus one cheap lock.
struct ThreadBuffer {
  explicit ThreadBuffer(std::int32_t tid, std::size_t capacity) : tid_(tid) {
    ring_.resize(capacity);
  }

  void push(const SpanRecord& rec) {
    std::lock_guard<std::mutex> lock(mu_);
    ring_[head_] = rec;
    head_ = (head_ + 1) % ring_.size();
    ++written_;
  }

  void collect(std::vector<SpanRecord>& out) const {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t live = std::min<std::uint64_t>(written_, ring_.size());
    // Oldest surviving record sits at head_ when the ring has wrapped.
    std::size_t i = written_ > ring_.size() ? head_ : 0;
    for (std::uint64_t k = 0; k < live; ++k) {
      out.push_back(ring_[i]);
      i = (i + 1) % ring_.size();
    }
  }

  std::int64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return written_ > ring_.size() ? static_cast<std::int64_t>(written_ - ring_.size()) : 0;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    head_ = 0;
    written_ = 0;
  }

  std::int32_t tid() const { return tid_; }

private:
  mutable std::mutex mu_;
  std::int32_t tid_;
  std::vector<SpanRecord> ring_;
  std::size_t head_ = 0;
  std::uint64_t written_ = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::int32_t next_tid = 0;
  std::atomic<std::uint64_t> epoch{0};
};

Registry& registry() {
  static Registry* r = new Registry; // leaked: threads may record at exit
  return *r;
}

/// Thread-local tracer state; the buffer is shared with the registry so
/// records survive thread exit.
struct TlsState {
  std::shared_ptr<ThreadBuffer> buffer;
  std::vector<OpenSpan> stack;
};

TlsState& tls(std::size_t ring_capacity) {
  thread_local TlsState state;
  if (!state.buffer) {
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    state.buffer = std::make_shared<ThreadBuffer>(reg.next_tid++, ring_capacity);
    reg.buffers.push_back(state.buffer);
    state.stack.reserve(32);
  }
  return state;
}

void profiler_span_begin(const char* name) { Tracer::instance().begin(name); }
void profiler_span_end() { Tracer::instance().end(); }

void write_trace_at_exit() {
  auto& t = Tracer::instance();
  if (t.enabled() && !t.path().empty()) {
    t.write_chrome_trace(t.path());
    std::fprintf(stderr, "%s", t.self_time_report().c_str());
  }
}

} // namespace

Tracer::Tracer() {
  now_ns(); // pin the timestamp epoch before any span
  if (const char* env = std::getenv("LANDAU_TRACE"); env && *env) {
    path_ = env;
    enable();
  }
  std::atexit(write_trace_at_exit);
}

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer; // leaked: usable from other static dtors
  return *t;
}

namespace {
// Eager construction at load: TraceSpan tests the global flag *before* ever
// touching instance(), so without this a binary that never calls instance()
// explicitly would leave LANDAU_TRACE unparsed and the env path dead.
const bool g_tracer_env_parsed = (Tracer::instance(), true);
} // namespace

void Tracer::enable() {
  registry().epoch.fetch_add(1, std::memory_order_relaxed);
  Profiler::set_span_hooks(&profiler_span_begin, &profiler_span_end);
  detail::g_trace_active.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  detail::g_trace_active.store(false, std::memory_order_relaxed);
  Profiler::set_span_hooks(nullptr, nullptr);
}

void Tracer::set_ring_capacity(std::size_t spans) {
  ring_capacity_.store(std::max<std::size_t>(spans, 16), std::memory_order_relaxed);
}

void Tracer::begin(const char* name, std::initializer_list<TraceArg> args) {
  if (!tracing()) return;
  TlsState& state = tls(ring_capacity());
  OpenSpan open;
  open.name = name;
  open.t0_ns = now_ns();
  open.epoch = registry().epoch.load(std::memory_order_relaxed);
  for (const TraceArg& a : args) {
    if (open.n_args == kMaxTraceArgs) break;
    open.args[open.n_args++] = a;
  }
  state.stack.push_back(open);
}

void Tracer::end() {
  // Deliberately not gated on tracing(): a span that began before disable()
  // still completes, so the buffers never hold half-open state.
  TlsState& state = tls(ring_capacity());
  if (state.stack.empty()) return; // enable()d mid-span: no matching begin
  OpenSpan open = state.stack.back();
  state.stack.pop_back();
  if (open.epoch != registry().epoch.load(std::memory_order_relaxed)) return; // stale
  SpanRecord rec;
  rec.name = open.name;
  rec.t0_ns = open.t0_ns;
  rec.t1_ns = now_ns();
  rec.tid = state.buffer->tid();
  rec.depth = static_cast<std::int32_t>(state.stack.size());
  rec.n_args = open.n_args;
  for (int i = 0; i < open.n_args; ++i) rec.args[i] = open.args[i];
  state.buffer->push(rec);
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    buffers = reg.buffers;
  }
  std::vector<SpanRecord> out;
  for (const auto& b : buffers) b->collect(out);
  std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    return a.t0_ns != b.t0_ns ? a.t0_ns < b.t0_ns : a.t1_ns > b.t1_ns;
  });
  return out;
}

std::int64_t Tracer::dropped() const {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::int64_t n = 0;
  for (const auto& b : reg.buffers) n += b->dropped();
  return n;
}

void Tracer::clear() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& b : reg.buffers) b->clear();
}

// ---------------------------------------------------------------------------
// Self-time tree
// ---------------------------------------------------------------------------

namespace {

/// Index-linked aggregation arena (SpanTreeNode's child vector would
/// invalidate pointers while the open-span stack still holds them).
struct BuildNode {
  std::string name;
  std::int64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t child_ns = 0;
  std::vector<std::size_t> children;
};

std::size_t child_of(std::vector<BuildNode>& arena, std::size_t parent, const char* name) {
  for (std::size_t c : arena[parent].children)
    if (arena[c].name == name) return c;
  arena.push_back(BuildNode{name, 0, 0, 0, {}});
  arena[parent].children.push_back(arena.size() - 1);
  return arena.size() - 1;
}

SpanTreeNode convert(const std::vector<BuildNode>& arena, std::size_t i) {
  const BuildNode& b = arena[i];
  SpanTreeNode node;
  node.name = b.name;
  node.count = b.count;
  node.total_ns = b.total_ns;
  node.self_ns = std::max<std::int64_t>(0, b.total_ns - b.child_ns);
  node.children.reserve(b.children.size());
  for (std::size_t c : b.children) node.children.push_back(convert(arena, c));
  std::sort(node.children.begin(), node.children.end(),
            [](const SpanTreeNode& a, const SpanTreeNode& b2) { return a.total_ns > b2.total_ns; });
  return node;
}

void render(const SpanTreeNode& node, int depth, std::ostringstream& os) {
  std::string label(static_cast<std::size_t>(2 * depth), ' ');
  label += node.name;
  if (label.size() > 42) label.resize(42);
  os << std::left << std::setw(44) << label << std::right << std::setw(10) << node.count
     << std::setw(14) << std::fixed << std::setprecision(6) << 1e-9 * static_cast<double>(node.total_ns)
     << std::setw(14) << 1e-9 * static_cast<double>(node.self_ns) << "\n";
  for (const auto& c : node.children) render(c, depth + 1, os);
}

} // namespace

SpanTreeNode Tracer::build_tree() const {
  const auto records = snapshot();
  std::vector<BuildNode> arena;
  arena.push_back(BuildNode{"<root>", 0, 0, 0, {}});

  // Group by thread, reconstruct each thread's nesting by time containment,
  // and merge the paths of every thread into one tree.
  std::map<std::int32_t, std::vector<SpanRecord>> by_tid;
  for (const auto& r : records) by_tid[r.tid].push_back(r);
  for (auto& [tid, recs] : by_tid) {
    (void)tid;
    // snapshot() order (t0 asc, t1 desc) makes parents precede children.
    std::vector<std::pair<std::int64_t, std::size_t>> open; // (t1, arena index)
    for (const auto& r : recs) {
      while (!open.empty() && open.back().first <= r.t0_ns) open.pop_back();
      const std::size_t parent = open.empty() ? 0 : open.back().second;
      const std::size_t node = child_of(arena, parent, r.name);
      arena[node].count += 1;
      arena[node].total_ns += r.t1_ns - r.t0_ns;
      arena[parent].child_ns += r.t1_ns - r.t0_ns;
      open.emplace_back(r.t1_ns, node);
    }
  }
  for (std::size_t c : arena[0].children) arena[0].total_ns += arena[c].total_ns;
  return convert(arena, 0);
}

std::string Tracer::self_time_report() const {
  const SpanTreeNode root = build_tree();
  std::ostringstream os;
  os << "span self-time tree (" << dropped() << " span(s) dropped by ring wrap)\n";
  os << std::left << std::setw(44) << "span" << std::right << std::setw(10) << "count"
     << std::setw(14) << "total s" << std::setw(14) << "self s" << "\n";
  for (const auto& c : root.children) render(c, 0, os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

JsonValue Tracer::chrome_trace() const {
  // The bare-array form of the trace-event format; chrome://tracing and
  // Perfetto both load it. Timestamps and durations are microseconds.
  JsonValue events = JsonValue::array();
  for (const auto& r : snapshot()) {
    JsonValue e = JsonValue::object();
    e.set("name", r.name);
    e.set("cat", "landau");
    e.set("ph", "X");
    e.set("ts", static_cast<double>(r.t0_ns) * 1e-3);
    e.set("dur", static_cast<double>(r.t1_ns - r.t0_ns) * 1e-3);
    e.set("pid", 1);
    e.set("tid", r.tid);
    if (r.n_args > 0) {
      JsonValue args = JsonValue::object();
      for (int i = 0; i < r.n_args; ++i) {
        const TraceArg& a = r.args[i];
        if (a.is_double)
          args.set(a.key, a.d);
        else
          args.set(a.key, static_cast<long long>(a.i));
      }
      e.set("args", std::move(args));
    }
    events.push_back(std::move(e));
  }
  return events;
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    LANDAU_WARN("tracer: cannot open trace output '" << path << "'");
    return;
  }
  os << chrome_trace().dump() << "\n";
  LANDAU_INFO("tracer: wrote Chrome trace to '" << path << "'");
}

} // namespace landau::obs
