#pragma once
// Metrics registry: named counters, gauges and fixed-bucket histograms that
// the solver and quench layers update every step (Newton iterations, GMRES
// iterations, dt, StepController rejections/retries, checkpoint writes,
// per-kernel arithmetic intensity), plus the NDJSON step logger that samples
// them once per accepted time step.
//
// Cost model: metric updates are relaxed atomics and are always on (the
// counters are the telemetry of record — PETSc's -log_view counters are
// likewise unconditional). Handles are resolved once by name and cached at
// the call site (the registry hands out stable references), so the hot path
// never touches the name map. The *sampling* side — serializing a step
// record to NDJSON — is gated: StepLog::active() is a flag test, and with no
// log configured (the default) QuenchModel pays exactly that test per step.
//
// Step log: LANDAU_STEP_LOG=path.ndjson in the environment (parsed on first
// use), -landau_step_log in the examples, or set_path() programmatically.
// Each line is one self-contained JSON object; the schema is asserted by
// tests/test_obs.cpp and validated by the tools/check.sh telemetry stage.

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace landau::obs {

/// Monotonic counter (relaxed atomics; merged across threads).
class Counter {
public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void inc(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

private:
  std::string name_;
  std::atomic<std::int64_t> value_{0};
};

/// Last-value gauge (doubles; relaxed store/load).
class Gauge {
public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations with
/// x <= edges[i] (first matching edge); the final overflow bucket counts
/// x > edges.back(). Also tracks count and sum for mean recovery.
class Histogram {
public:
  Histogram(std::string name, std::vector<double> edges);

  void observe(double x);
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const std::vector<double>& edges() const { return edges_; }
  /// Bucket i of edges().size() + 1 (the last is the overflow bucket).
  std::int64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();
  const std::string& name() const { return name_; }

private:
  std::string name_;
  std::vector<double> edges_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Global get-or-create registry; returned references are stable for process
/// life, so call sites resolve once and cache.
class MetricsRegistry {
public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Get-or-create; the edges of an existing histogram are NOT rebucketed —
  /// first registration wins (matching the counters' process-life contract).
  Histogram& histogram(const std::string& name, std::vector<double> edges);

  /// All metrics as one JSON object: counters as integers, gauges as
  /// doubles, histograms as {count, sum, edges, buckets}.
  JsonValue to_json() const;

  /// Zero every metric (names and handles stay valid). Bench phases only.
  void reset();

private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

/// NDJSON step log: one JSON object per line, flushed per record so a crashed
/// run keeps every accepted step. Disabled (active() == false) unless a path
/// is configured via LANDAU_STEP_LOG or set_path().
class StepLog {
public:
  /// Global instance; first access parses LANDAU_STEP_LOG.
  static StepLog& instance();

  bool active() const { return active_.load(std::memory_order_relaxed); }
  const std::string& path() const { return path_; }

  /// Open `path` for appending ("" closes and deactivates).
  void set_path(const std::string& path);

  /// Write one record as a single NDJSON line (no-op when inactive).
  void write(const JsonValue& record);

private:
  StepLog();

  std::mutex mu_;
  std::string path_;
  std::atomic<bool> active_{false};
  std::unique_ptr<std::ofstream> out_;
};

} // namespace landau::obs
