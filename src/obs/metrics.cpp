#include "obs/metrics.h"

#include <cstdlib>

#include "util/logging.h"

namespace landau::obs {

Histogram::Histogram(std::string name, std::vector<double> edges)
    : name_(std::move(name)), edges_(std::move(edges)) {
  // One bucket per edge plus the overflow bucket; zero edges is legal (a
  // count/sum-only histogram).
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(edges_.size() + 1);
  for (std::size_t i = 0; i <= edges_.size(); ++i) buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double x) {
  std::size_t i = 0;
  while (i < edges_.size() && x > edges_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20; keep a CAS loop for toolchains
  // where it is not lock-free-native.
  double old = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old, old + x, std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

void Histogram::reset() {
  for (std::size_t i = 0; i <= edges_.size(); ++i) buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* r = new MetricsRegistry; // leaked: atexit-safe
  return *r;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& c : counters_)
    if (c->name() == name) return *c;
  counters_.push_back(std::make_unique<Counter>(name));
  return *counters_.back();
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& g : gauges_)
    if (g->name() == name) return *g;
  gauges_.push_back(std::make_unique<Gauge>(name));
  return *gauges_.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> edges) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& h : histograms_)
    if (h->name() == name) return *h;
  histograms_.push_back(std::make_unique<Histogram>(name, std::move(edges)));
  return *histograms_.back();
}

JsonValue MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue out = JsonValue::object();
  JsonValue counters = JsonValue::object();
  for (const auto& c : counters_) counters.set(c->name(), static_cast<long long>(c->value()));
  out.set("counters", std::move(counters));
  JsonValue gauges = JsonValue::object();
  for (const auto& g : gauges_) gauges.set(g->name(), g->value());
  out.set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::object();
  for (const auto& h : histograms_) {
    JsonValue hj = JsonValue::object();
    hj.set("count", static_cast<long long>(h->count()));
    hj.set("sum", h->sum());
    JsonValue edges = JsonValue::array();
    for (double e : h->edges()) edges.push_back(e);
    hj.set("edges", std::move(edges));
    JsonValue buckets = JsonValue::array();
    for (std::size_t i = 0; i <= h->edges().size(); ++i)
      buckets.push_back(static_cast<long long>(h->bucket(i)));
    hj.set("buckets", std::move(buckets));
    histograms.set(h->name(), std::move(hj));
  }
  out.set("histograms", std::move(histograms));
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& c : counters_) c->reset();
  for (const auto& g : gauges_) g->reset();
  for (const auto& h : histograms_) h->reset();
}

StepLog::StepLog() {
  if (const char* env = std::getenv("LANDAU_STEP_LOG"); env && *env) set_path(env);
}

StepLog& StepLog::instance() {
  static StepLog* log = new StepLog; // leaked: usable from static dtors
  return *log;
}

void StepLog::set_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  active_.store(false, std::memory_order_relaxed);
  out_.reset();
  path_ = path;
  if (path_.empty()) return;
  out_ = std::make_unique<std::ofstream>(path_, std::ios::trunc);
  if (!*out_) {
    LANDAU_WARN("step log: cannot open '" << path_ << "'");
    out_.reset();
    return;
  }
  active_.store(true, std::memory_order_relaxed);
}

void StepLog::write(const JsonValue& record) {
  if (!active()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_) return;
  *out_ << record.dump() << "\n";
  out_->flush(); // NDJSON contract: a crashed run keeps every accepted step
}

} // namespace landau::obs
