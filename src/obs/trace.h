#pragma once
// Span tracer: per-thread ring buffers of nested begin/end spans with typed
// arguments (kernel name, grid/block dims, species, element count), exported
// as Chrome trace-event JSON (load in chrome://tracing or Perfetto) and as a
// collapsed self-time tree. This supplies the parent/child hierarchy the
// profiler header used to promise: Profiler events route here through span
// hooks (installed on enable), so every ScopedEvent in the solver and
// assembly layers appears as a span without touching its call site.
//
// Cost model, mirroring the device checker's: with tracing off (the default)
// every hook is one relaxed atomic load of a global flag — no allocation, no
// clock read, no branch beyond the test (bench_trace_overhead measures the
// end-to-end slowdown at < 2% on a relaxation step). With tracing on, each
// span is two steady_clock reads plus one write into a thread-local ring
// buffer; no locks are taken on the hot path (the registry mutex is touched
// only when a thread's buffer is first created).
//
// Ring semantics: each thread owns a fixed-capacity buffer of *completed*
// spans; when it wraps, the oldest records are overwritten and a drop count
// is kept, so a long run keeps the most recent window — which is the window
// a trace viewer wants. Nesting is reconstructed at export time from the
// recorded (thread, depth, t0, t1), so overwriting old records never
// corrupts the tree.
//
// Enabling: LANDAU_TRACE=path.json in the environment (parsed on first
// Tracer use; the trace is written at process exit), -landau_trace in the
// examples, or programmatically:
//
//   obs::Tracer::instance().enable();
//   ... run ...
//   obs::Tracer::instance().write_chrome_trace("trace.json");
//   std::puts(obs::Tracer::instance().self_time_report().c_str());

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "exec/annotations.h"
#include "obs/json.h"

namespace landau::obs {

/// One span argument: a static-storage key with an int or double value.
/// Keys must be string literals (or otherwise outlive the tracer) — the hot
/// path stores the pointer, never copies.
struct TraceArg {
  const char* key = nullptr;
  std::int64_t i = 0;
  double d = 0.0;
  bool is_double = false;

  TraceArg() = default;
  TraceArg(const char* k, int v) : key(k), i(v) {}
  TraceArg(const char* k, long v) : key(k), i(v) {}
  TraceArg(const char* k, long long v) : key(k), i(v) {}
  TraceArg(const char* k, unsigned v) : key(k), i(static_cast<std::int64_t>(v)) {}
  TraceArg(const char* k, std::size_t v) : key(k), i(static_cast<std::int64_t>(v)) {}
  TraceArg(const char* k, double v) : key(k), d(v), is_double(true) {}
};

inline constexpr int kMaxTraceArgs = 4;

/// One completed span as stored in a thread's ring buffer.
struct SpanRecord {
  const char* name = nullptr; // static storage or profiler-interned
  std::int64_t t0_ns = 0, t1_ns = 0;
  std::int32_t tid = 0;
  std::int32_t depth = 0; // nesting depth at begin (0 = top level)
  std::int32_t n_args = 0;
  TraceArg args[kMaxTraceArgs];
};

/// Aggregated node of the collapsed self-time tree (merged across threads by
/// span-name path).
struct SpanTreeNode {
  std::string name;
  std::int64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t self_ns = 0; // total minus the time covered by child spans
  std::vector<SpanTreeNode> children;
};

namespace detail {
extern std::atomic<bool> g_trace_active;
} // namespace detail

/// The one query every instrumentation site makes first; compiled to a single
/// relaxed load, this is the whole cost of a disabled tracer.
inline bool tracing() { return detail::g_trace_active.load(std::memory_order_relaxed); }

class LANDAU_HOST_ONLY Tracer {
public:
  /// First access parses LANDAU_TRACE (non-empty value = output path,
  /// enables tracing and registers an at-exit Chrome-trace write).
  static Tracer& instance();

  void enable();
  void disable();
  bool enabled() const { return tracing(); }

  /// Output path configured via LANDAU_TRACE / set_path ("" = none).
  const std::string& path() const { return path_; }
  void set_path(std::string path) { path_ = std::move(path); }

  /// Per-thread ring capacity for buffers created *after* the call.
  void set_ring_capacity(std::size_t spans);
  std::size_t ring_capacity() const { return ring_capacity_.load(std::memory_order_relaxed); }

  /// Begin/end one span on the calling thread. `name` must outlive the
  /// tracer (string literal or profiler-interned). No-ops when disabled;
  /// an end() without a live begin() is ignored (cross-enable unwind).
  void begin(const char* name) { begin(name, {}); }
  void begin(const char* name, std::initializer_list<TraceArg> args);
  void end();

  /// All completed spans currently held in the ring buffers, in t0 order.
  std::vector<SpanRecord> snapshot() const;
  /// Spans overwritten by ring wrap-around since the last clear().
  std::int64_t dropped() const;
  /// Discard all recorded spans (buffers stay registered).
  void clear();

  /// Merge the recorded spans into one self-time tree (threads merged by
  /// name path, children sorted by total time descending).
  SpanTreeNode build_tree() const;
  /// Indented text rendering of build_tree() — the hierarchical view the
  /// flat Profiler::report() cannot provide across threads.
  std::string self_time_report() const;

  /// Chrome trace-event JSON (an array of "X" complete events); loads in
  /// chrome://tracing and Perfetto. Returns the document for tests.
  JsonValue chrome_trace() const;
  void write_chrome_trace(const std::string& path) const;

private:
  Tracer();
  Tracer(const Tracer&) = delete;

  std::string path_;
  std::atomic<std::size_t> ring_capacity_{1u << 15};
};

/// RAII span; the disabled path is a single flag test per constructor.
class TraceSpan {
public:
  explicit TraceSpan(const char* name) {
    if (tracing()) {
      live_ = true;
      Tracer::instance().begin(name);
    }
  }
  TraceSpan(const char* name, std::initializer_list<TraceArg> args) {
    if (tracing()) {
      live_ = true;
      Tracer::instance().begin(name, args);
    }
  }
  ~TraceSpan() {
    if (live_) Tracer::instance().end();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

private:
  bool live_ = false;
};

} // namespace landau::obs
