#pragma once
// Roofline reporter: a one-shot machine-peak calibrator (FMA-throughput and
// streaming-bandwidth microbenchmarks on the host) combined with the exact
// KernelCounters flop/byte instrumentation to emit Table-IV-style roofline
// utilization tables automatically — no NSight Compute required, because
// arithmetic intensity is a property of the algorithm (it reproduces exactly
// in emulation) and the achieved-fraction column only needs the host's own
// measured peaks.
//
// Two placements are reported per kernel: against the *host* peaks (what this
// build actually attains) and against a modeled device (DeviceSpec — V100 by
// default), which is the paper's Table IV view.

#include <cstdint>
#include <string>
#include <vector>

#include "exec/counters.h"
#include "exec/device.h"
#include "obs/json.h"

namespace landau::obs {

/// Host peaks measured by calibrate_peaks().
struct MachinePeaks {
  double fma_gflops = 0.0;  // sustained FP64 FMA throughput, one core
  double stream_gbs = 0.0;  // sustained streaming read bandwidth, one core
  double calibration_seconds = 0.0;

  /// Roofline turning point (flops/byte) of the measured machine.
  double knee() const { return stream_gbs > 0 ? fma_gflops / stream_gbs : 0.0; }
};

/// Measure host FP64 FMA throughput and streaming bandwidth. `budget_seconds`
/// bounds the total calibration time (split between the two loops); the
/// result is cached after the first call (pass `recalibrate` to force).
MachinePeaks calibrate_peaks(double budget_seconds = 0.1, bool recalibrate = false);

/// One kernel's measured work and time.
struct RooflineEntry {
  std::string kernel;
  std::int64_t flops = 0;
  std::int64_t dram_bytes = 0;
  std::int64_t shared_bytes = 0;
  double seconds = 0.0;

  static RooflineEntry from_counters(std::string kernel, const exec::KernelCounters& c,
                                     double seconds) {
    return {std::move(kernel), c.flops.load(std::memory_order_relaxed),
            c.dram_bytes.load(std::memory_order_relaxed),
            c.shared_bytes.load(std::memory_order_relaxed), seconds};
  }
};

/// Derived roofline placement of one entry against one (peak flops, peak BW).
struct RooflinePlacement {
  double ai = 0.0;                  // flops / DRAM byte
  double attainable_fraction = 0.0; // min(1, ai / knee): ceiling at this AI
  double achieved_gflops = 0.0;     // flops / seconds (0 if no time given)
  double pct_of_attainable = 0.0;   // achieved / (attainable * peak)
  bool compute_bound = false;       // ai >= knee
};

RooflinePlacement place(const RooflineEntry& e, double peak_gflops, double peak_gbs);

/// Table-IV-style report: every entry placed against the host peaks and a
/// modeled device. Returns the rendered ASCII table.
std::string roofline_report(const std::vector<RooflineEntry>& entries, const MachinePeaks& host,
                            const exec::DeviceSpec& device);

/// The same report as JSON (consumed by the bench emitter / bench_compare).
JsonValue roofline_json(const std::vector<RooflineEntry>& entries, const MachinePeaks& host,
                        const exec::DeviceSpec& device);

} // namespace landau::obs
