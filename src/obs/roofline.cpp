#include "obs/roofline.h"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <sstream>
#include <vector>

#include "util/table_writer.h"

namespace landau::obs {

namespace {

using clock = std::chrono::steady_clock;

double seconds_since(clock::time_point t0) {
  return std::chrono::duration<double>(clock::now() - t0).count();
}

/// FP64 FMA throughput: eight independent accumulator chains so the loop is
/// throughput-limited (not latency-limited), repeated until the budget is
/// spent. The compiler cannot fold the chains — the multiplier is read from
/// a volatile.
double measure_fma_gflops(double budget_seconds) {
  volatile double vm = 1.0000001, vb = 1e-9;
  const double m = vm, b = vb;
  double acc[8] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  constexpr int kInner = 4096;
  std::int64_t flops = 0;
  const auto t0 = clock::now();
  double elapsed = 0.0;
  do {
    for (int i = 0; i < kInner; ++i)
      for (double& a : acc) a = a * m + b;
    flops += 2ll * kInner * 8; // one mul + one add per chain step
    elapsed = seconds_since(t0);
  } while (elapsed < budget_seconds);
  // Fold the accumulators into a volatile sink so the chains are observable.
  double s = 0.0;
  for (double a : acc) s += a;
  volatile double sink = s;
  (void)sink;
  return 1e-9 * static_cast<double>(flops) / elapsed;
}

/// Streaming read bandwidth: sum a working set far beyond L2 so the loads
/// stream from memory; unrolled by 8 to keep address generation off the
/// critical path.
double measure_stream_gbs(double budget_seconds) {
  constexpr std::size_t kWords = 1u << 22; // 32 MiB of doubles
  std::vector<double> data(kWords, 1.5);
  std::int64_t bytes = 0;
  double s = 0.0;
  const auto t0 = clock::now();
  double elapsed = 0.0;
  do {
    double a0 = 0, a1 = 0, a2 = 0, a3 = 0, a4 = 0, a5 = 0, a6 = 0, a7 = 0;
    for (std::size_t i = 0; i + 8 <= kWords; i += 8) {
      a0 += data[i];
      a1 += data[i + 1];
      a2 += data[i + 2];
      a3 += data[i + 3];
      a4 += data[i + 4];
      a5 += data[i + 5];
      a6 += data[i + 6];
      a7 += data[i + 7];
    }
    s += a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7;
    bytes += static_cast<std::int64_t>(kWords) * 8;
    elapsed = seconds_since(t0);
  } while (elapsed < budget_seconds);
  volatile double sink = s;
  (void)sink;
  return 1e-9 * static_cast<double>(bytes) / elapsed;
}

} // namespace

MachinePeaks calibrate_peaks(double budget_seconds, bool recalibrate) {
  static MachinePeaks cached;
  static bool have = false;
  if (have && !recalibrate) return cached;
  const auto t0 = clock::now();
  MachinePeaks p;
  p.fma_gflops = measure_fma_gflops(budget_seconds * 0.5);
  p.stream_gbs = measure_stream_gbs(budget_seconds * 0.5);
  p.calibration_seconds = seconds_since(t0);
  cached = p;
  have = true;
  return p;
}

RooflinePlacement place(const RooflineEntry& e, double peak_gflops, double peak_gbs) {
  RooflinePlacement r;
  const double knee = peak_gbs > 0 ? peak_gflops / peak_gbs : 0.0;
  r.ai = e.dram_bytes > 0
             ? static_cast<double>(e.flops) / static_cast<double>(e.dram_bytes)
             : 0.0;
  r.compute_bound = knee > 0 && r.ai >= knee;
  r.attainable_fraction = knee > 0 ? std::min(1.0, r.ai / knee) : 0.0;
  r.achieved_gflops = e.seconds > 0 ? 1e-9 * static_cast<double>(e.flops) / e.seconds : 0.0;
  const double attainable_gflops = r.attainable_fraction * peak_gflops;
  r.pct_of_attainable =
      attainable_gflops > 0 ? 100.0 * r.achieved_gflops / attainable_gflops : 0.0;
  return r;
}

std::string roofline_report(const std::vector<RooflineEntry>& entries, const MachinePeaks& host,
                            const exec::DeviceSpec& device) {
  std::ostringstream caption;
  caption << "roofline placement — host peaks " << std::fixed << std::setprecision(2)
          << host.fma_gflops << " Gflop/s FMA, " << host.stream_gbs << " GB/s stream (knee "
          << host.knee() << "), device model " << device.name;
  TableWriter table(caption.str());
  table.header({"kernel", "AI (f/B)", "bound", "Gflop", "host %attainable", "host Gflop/s",
                std::string(device.name) + " %peak"});
  for (const auto& e : entries) {
    const auto h = place(e, host.fma_gflops, host.stream_gbs);
    const auto d =
        place(e, device.peak_fp64_tflops * 1e3, device.peak_dram_gbs); // device peaks in G units
    table.add_row()
        .cell(e.kernel)
        .cell(h.ai, 1)
        .cell(h.compute_bound ? "compute" : "memory")
        .cell(1e-9 * static_cast<double>(e.flops), 2)
        .cell(h.pct_of_attainable, 0)
        .cell(h.achieved_gflops, 2)
        .cell(100.0 * d.attainable_fraction, 0);
  }
  return table.str();
}

JsonValue roofline_json(const std::vector<RooflineEntry>& entries, const MachinePeaks& host,
                        const exec::DeviceSpec& device) {
  JsonValue out = JsonValue::object();
  JsonValue hostj = JsonValue::object();
  hostj.set("fma_gflops", host.fma_gflops);
  hostj.set("stream_gbs", host.stream_gbs);
  hostj.set("knee_flops_per_byte", host.knee());
  hostj.set("calibration_seconds", host.calibration_seconds);
  out.set("host_peaks", std::move(hostj));
  JsonValue devj = JsonValue::object();
  devj.set("name", device.name);
  devj.set("peak_fp64_tflops", device.peak_fp64_tflops);
  devj.set("peak_dram_gbs", device.peak_dram_gbs);
  devj.set("knee_flops_per_byte", device.roofline_knee());
  out.set("device_model", std::move(devj));
  JsonValue kernels = JsonValue::array();
  for (const auto& e : entries) {
    const auto h = place(e, host.fma_gflops, host.stream_gbs);
    const auto d = place(e, device.peak_fp64_tflops * 1e3, device.peak_dram_gbs);
    JsonValue k = JsonValue::object();
    k.set("kernel", e.kernel);
    k.set("flops", static_cast<long long>(e.flops));
    k.set("dram_bytes", static_cast<long long>(e.dram_bytes));
    k.set("shared_bytes", static_cast<long long>(e.shared_bytes));
    k.set("seconds", e.seconds);
    k.set("ai", h.ai);
    k.set("compute_bound_host", h.compute_bound);
    k.set("host_achieved_gflops", h.achieved_gflops);
    k.set("host_pct_of_attainable", h.pct_of_attainable);
    k.set("device_attainable_fraction", d.attainable_fraction);
    kernels.push_back(std::move(k));
  }
  out.set("kernels", std::move(kernels));
  return out;
}

} // namespace landau::obs
