#pragma once
// Device descriptions for the emulated back-ends and the schedule simulator.
// Peak numbers are the ones the paper uses for its roofline and
// cross-machine normalizations (§V-A1, §V-D).

#include <string>

namespace landau::exec {

/// Static description of one accelerator or CPU "device".
struct DeviceSpec {
  std::string name;
  int n_sms = 1;                 // V100 SMs / MI100 CUs / CPU cores
  double peak_fp64_tflops = 1.0; // DFMA peak
  double peak_dram_gbs = 100.0;  // DRAM bandwidth
  bool hw_fp64_atomics = true;   // MI100 lacks HW FP64 global atomicAdd (§V-D1)
  double kernel_launch_us = 10.0;

  /// Roofline turning point (flops/byte): AI above this is compute bound.
  double roofline_knee() const { return peak_fp64_tflops * 1e12 / (peak_dram_gbs * 1e9); }
};

/// NVIDIA V100 (Summit): 80 SMs, 7.8 TF/s DFMA, 890 GB/s (paper §V-A1).
inline DeviceSpec v100() {
  return {.name = "V100", .n_sms = 80, .peak_fp64_tflops = 7.8, .peak_dram_gbs = 890.0,
          .hw_fp64_atomics = true, .kernel_launch_us = 10.0};
}

/// AMD MI100 (Spock): 120 CUs, 11.5 TF/s peak, no HW FP64 global atomics.
inline DeviceSpec mi100() {
  return {.name = "MI100", .n_sms = 120, .peak_fp64_tflops = 11.5, .peak_dram_gbs = 1230.0,
          .hw_fp64_atomics = false, .kernel_launch_us = 20.0};
}

/// Fujitsu A64FX node (Fugaku): 48 cores, 8 SVE lanes; treated as a manycore
/// "device" whose league members map to OpenMP threads.
inline DeviceSpec a64fx() {
  return {.name = "A64FX", .n_sms = 48, .peak_fp64_tflops = 3.4, .peak_dram_gbs = 1024.0,
          .hw_fp64_atomics = true, .kernel_launch_us = 1.0};
}

/// The host this emulation actually runs on.
inline DeviceSpec host_cpu(int n_cores) {
  return {.name = "host-cpu", .n_sms = n_cores, .peak_fp64_tflops = 0.05,
          .peak_dram_gbs = 20.0, .hw_fp64_atomics = true, .kernel_launch_us = 0.5};
}

} // namespace landau::exec
