#pragma once
// CPU emulation of the CUDA programming model (§I, §III-D/E of the paper).
//
// The model: a kernel launch is a 1D grid of 2D thread blocks. Each block is
// assigned to one SM and has a shared-memory arena visible to all its
// threads; threads synchronize with __syncthreads() barriers and exchange
// registers within a warp via shuffle instructions.
//
// The emulation: one worker of a ThreadPool plays one SM; a block runs to
// completion on its worker. Within a block, kernels are written in *phase
// style*: each region between barriers is a callable executed for every
// (threadIdx.x, threadIdx.y); values that live in registers across barriers
// are kept in explicit per-thread register files. Because phases execute
// sequentially on one worker, Block::sync() is a semantic marker (phases are
// already ordered), while shuffle operations are emulated exactly as the
// butterfly data exchange they perform on hardware.
//
// This preserves the algorithmic content of the CUDA version — data layout,
// reduction trees, shared-memory traffic — while running on plain threads.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <type_traits>
#include <vector>

#include "exec/check.h"
#include "exec/counters.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"
#include "util/error.h"

namespace landau::exec {

struct Dim3 {
  int x = 1, y = 1, z = 1;
  int size() const { return x * y * z; }
};

/// Bump allocator with stable addresses (chunked), used for both the shared
/// memory arena and the per-thread register files of one block.
class Arena {
public:
  explicit Arena(std::size_t chunk_bytes = 1 << 16) : chunk_bytes_(chunk_bytes) {}

  template <class T> std::span<T> alloc(std::size_t n) {
    // reset() drops chunks without running destructors, so only types that
    // don't need one may live here.
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::alloc requires a trivially-destructible T");
    const std::size_t bytes = n * sizeof(T);
    const std::size_t align = alignof(T);
    // Alignment must be computed from the chunk's actual base address: the
    // vector's storage is only aligned to max_align_t, which over-aligned
    // types (alignas(64) tiles) exceed.
    const auto aligned_off = [&] {
      const auto base = reinterpret_cast<std::uintptr_t>(chunks_.back().data());
      return ((base + off_ + align - 1) / align * align) - base;
    };
    if (chunks_.empty() || aligned_off() + bytes > chunks_.back().size()) {
      chunks_.emplace_back(std::max(chunk_bytes_, bytes + align - 1));
      off_ = 0;
    }
    off_ = aligned_off();
    T* p = reinterpret_cast<T*>(chunks_.back().data() + off_);
    off_ += bytes;
    for (std::size_t i = 0; i < n; ++i) new (p + i) T{};
    return {p, n};
  }

  void reset() {
    chunks_.clear();
    off_ = 0;
  }

private:
  std::size_t chunk_bytes_;
  std::size_t off_ = 0;
  std::deque<std::vector<std::byte>> chunks_;
};

/// Identity of one thread within its block.
struct ThreadIdx {
  int x = 0, y = 0;
  int flat = 0; // x + y * blockDim.x
};

/// Execution context of one thread block.
class Block {
public:
  Block(int block_id, Dim3 grid_dim, Dim3 block_dim, KernelCounters* counters)
      : block_id_(block_id), grid_dim_(grid_dim), block_dim_(block_dim), counters_(counters) {}

  int block_idx() const { return block_id_; }
  Dim3 grid_dim() const { return grid_dim_; }
  Dim3 block_dim() const { return block_dim_; }
  int num_threads() const { return block_dim_.size(); }
  KernelCounters* counters() const { return counters_; }

  /// Bind this block to an active checker session (set up by launch()).
  void bind_check(check::KernelSession* session) {
    chk_.session = session;
    chk_.block = block_id_;
  }
  /// Access identity of the currently executing code within this block.
  check::ThreadCtx& check_ctx() { return chk_; }

  /// Bind a globally registered buffer to this block's access identity.
  template <class T> check::checked_span<T> view(check::BufferRef<T> ref) {
    return {ref, &chk_};
  }

  /// Shared memory allocation (__shared__ / dynamic shared memory). Under the
  /// checker it is registered *uninitialized* — `__shared__` arrays are on
  /// hardware, even though Arena zero-fills here.
  template <class T> check::checked_span<T> shared(std::size_t n, const char* name = "shared") {
    std::span<T> s = shared_.alloc<T>(n);
    if (chk_.session) {
      auto* sb = chk_.session->add_buffer(name, check::Space::Shared, s.data(), s.size(), sizeof(T),
                                          std::is_same_v<std::remove_cv_t<T>, double>,
                                          /*writable=*/true, /*initialized=*/false, block_id_);
      return {check::BufferRef<T>{s.data(), s.size(), sb}, &chk_};
    }
    return {s};
  }

  /// Per-thread register file: one T per thread, persisting across phases.
  /// Registers model local variables (value-initialized), so they start
  /// initialized; the checker enforces that thread t only touches slot t.
  template <class T> check::checked_span<T> registers(const char* name = "regs") {
    std::span<T> s = regs_.alloc<T>(static_cast<std::size_t>(num_threads()));
    if (chk_.session) {
      auto* sb = chk_.session->add_buffer(name, check::Space::Register, s.data(), s.size(),
                                          sizeof(T), std::is_same_v<std::remove_cv_t<T>, double>,
                                          /*writable=*/true, /*initialized=*/true, block_id_);
      return {check::BufferRef<T>{s.data(), s.size(), sb}, &chk_};
    }
    return {s};
  }

  /// Execute a phase: f(ThreadIdx) for every thread of the block.
  template <class F> void threads(F&& f) {
    for (int ty = 0; ty < block_dim_.y; ++ty)
      for (int tx = 0; tx < block_dim_.x; ++tx) {
        chk_.thread = tx + ty * block_dim_.x;
        f(ThreadIdx{tx, ty, tx + ty * block_dim_.x});
      }
    chk_.thread = check::kUniformThread;
  }

  /// __syncthreads(): a semantic marker — phases already execute in order.
  /// Under the checker it closes the current access phase (the drop_sync
  /// seeded-bug hook models a forgotten barrier by skipping one advance).
  void sync() {
    if (chk_.session) {
      const int id = chk_.sync_count++;
      if (id != check::options().drop_sync) ++chk_.phase;
    }
  }

  /// Warp-shuffle butterfly sum across the x-dimension: after the call, every
  /// thread's register holds the sum over all x-lanes of its y-row. This is
  /// the `__shfl_xor_sync` reduction of Algorithm 1 line 12, performed stage
  /// by stage exactly as on hardware (blockDim.x must be a power of two).
  template <class T> void shfl_xor_sum_x(check::checked_span<T> cregs) {
    // The shuffle is the sanctioned cross-lane register exchange: it operates
    // on the raw storage, bypassing the per-thread isolation rule the checker
    // enforces on ordinary register accesses.
    std::span<T> regs = cregs.raw();
    const int w = block_dim_.x;
    LANDAU_ASSERT((w & (w - 1)) == 0, "shuffle width must be a power of two, got " << w);
    LANDAU_ASSERT(regs.size() == static_cast<std::size_t>(num_threads()), "register file size");
    std::vector<T> stage(regs.begin(), regs.end());
    for (int offset = w / 2; offset > 0; offset /= 2) {
      for (int ty = 0; ty < block_dim_.y; ++ty)
        for (int tx = 0; tx < w; ++tx) {
          const int i = tx + ty * w;
          const int j = (tx ^ offset) + ty * w;
          T v = stage[static_cast<std::size_t>(i)];
          v += stage[static_cast<std::size_t>(j)];
          regs[static_cast<std::size_t>(i)] = v;
        }
      std::copy(regs.begin(), regs.end(), stage.begin());
    }
  }

private:
  int block_id_;
  Dim3 grid_dim_, block_dim_;
  KernelCounters* counters_;
  Arena shared_;
  Arena regs_;
  check::ThreadCtx chk_;
};

/// Launch a kernel: run kernel(Block&) for every block of a 1D grid,
/// dispatching blocks to the pool's workers ("SMs"). `name` labels the
/// launch's span in the tracer (a string literal; nullptr = generic label) —
/// with tracing off the whole cost is one relaxed flag load.
template <class Kernel>
void launch(ThreadPool& pool, int grid_size, Dim3 block_dim, Kernel&& kernel,
            KernelCounters* counters = nullptr, check::KernelScope* chk = nullptr,
            const char* name = nullptr) {
  obs::TraceSpan span(name ? name : "exec:launch",
                      {{"grid", grid_size}, {"block_x", block_dim.x}, {"block_y", block_dim.y}});
  const Dim3 grid{grid_size, 1, 1};
  check::run_grid(pool, static_cast<std::size_t>(grid_size), chk, counters, [&](std::size_t b) {
    Block blk(static_cast<int>(b), grid, block_dim, counters);
    if (chk && chk->active()) blk.bind_check(chk->session());
    kernel(blk);
  });
}

} // namespace landau::exec
