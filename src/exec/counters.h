#pragma once
// FLOP/byte instrumentation threaded through the compute kernels. The
// roofline bench (paper Table IV) derives arithmetic intensity from these
// counters instead of NSight Compute hardware metrics: AI is a property of
// the algorithm and reproduces exactly in emulation.
//
// Counting is opt-in per kernel launch (pass nullptr to disable) and the
// accounting calls are cheap relaxed atomics, so instrumented runs remain
// usable for timing sanity checks (though reported times exclude them).
//
// Counting contract: every operation — adds and reset() alike — uses relaxed
// ordering. The counters are plain accumulators with no acquire/release
// pairing; readers that need a coherent snapshot must impose their own
// happens-before edge (in practice: read after ThreadPool::wait() has joined
// the kernel, which synchronizes-with the workers). Calling reset()
// concurrently with an in-flight kernel yields an undefined mix of old and
// new contributions — reset only between launches.

#include <atomic>
#include <cstdint>

namespace landau::exec {

/// Accumulators for one kernel's device-side work.
struct KernelCounters {
  std::atomic<std::int64_t> flops{0};
  std::atomic<std::int64_t> dram_bytes{0};   // global-memory traffic (SoA loads/stores)
  std::atomic<std::int64_t> shared_bytes{0}; // shared-memory traffic

  void add_flops(std::int64_t n) { flops.fetch_add(n, std::memory_order_relaxed); }
  void add_dram(std::int64_t n) { dram_bytes.fetch_add(n, std::memory_order_relaxed); }
  void add_shared(std::int64_t n) { shared_bytes.fetch_add(n, std::memory_order_relaxed); }

  void reset() {
    flops.store(0, std::memory_order_relaxed);
    dram_bytes.store(0, std::memory_order_relaxed);
    shared_bytes.store(0, std::memory_order_relaxed);
  }

  /// Arithmetic intensity w.r.t. DRAM traffic (flops per byte).
  double arithmetic_intensity() const {
    const auto b = dram_bytes.load();
    return b > 0 ? static_cast<double>(flops.load()) / static_cast<double>(b) : 0.0;
  }
};

/// Per-call-site helper: counts only when the target is non-null.
class CounterScope {
public:
  explicit CounterScope(KernelCounters* c) : c_(c) {}
  void flops(std::int64_t n) {
    if (c_) f_ += n;
  }
  void dram(std::int64_t n) {
    if (c_) d_ += n;
  }
  void shared(std::int64_t n) {
    if (c_) s_ += n;
  }
  ~CounterScope() {
    if (c_) {
      c_->add_flops(f_);
      c_->add_dram(d_);
      c_->add_shared(s_);
    }
  }

private:
  KernelCounters* c_;
  std::int64_t f_ = 0, d_ = 0, s_ = 0;
};

} // namespace landau::exec
