#include "exec/stream.h"

namespace landau::exec {

void Stream::enqueue(std::function<void()> task) {
  std::lock_guard<std::mutex> lock(mutex_);
  queue_.push_back(std::move(task));
  if (!running_) launch_next_locked();
}

void Stream::launch_next_locked() {
  if (queue_.empty()) {
    running_ = false;
    cv_.notify_all();
    return;
  }
  running_ = true;
  auto task = std::move(queue_.front());
  queue_.pop_front();
  pool_.submit([this, task = std::move(task)] {
    task();
    std::lock_guard<std::mutex> lock(mutex_);
    launch_next_locked();
  });
}

void Stream::synchronize() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !running_ && queue_.empty(); });
}

std::size_t Stream::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + (running_ ? 1 : 0);
}

} // namespace landau::exec
