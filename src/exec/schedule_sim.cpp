#include "exec/schedule_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace landau::exec {

double SmtModel::total_rate(int k) const {
  if (k <= 0) return 0.0;
  const std::size_t i = std::min<std::size_t>(static_cast<std::size_t>(k), throughput.size() - 1);
  return throughput[i];
}

namespace {

struct Process {
  int core = 0; // global core id
  int gpu = 0;
  std::size_t segment = 0; // index into work.iteration
  int iterations_left = 0;
  double remaining = 0.0; // service demand left in the current segment
  bool done = false;
};

} // namespace

SimResult simulate_throughput(const MachineModel& machine, const ProcessWork& work,
                              int cores_used, int procs_per_core) {
  LANDAU_ASSERT(!work.iteration.empty(), "process work must have at least one segment");
  LANDAU_ASSERT(cores_used >= 1 && cores_used <= machine.cores,
                "cores_used " << cores_used << " out of range");
  LANDAU_ASSERT(procs_per_core >= 1, "procs_per_core must be positive");

  const int n_procs = machine.n_gpus * cores_used * procs_per_core;
  std::vector<Process> procs(static_cast<std::size_t>(n_procs));
  for (int p = 0; p < n_procs; ++p) {
    auto& pr = procs[static_cast<std::size_t>(p)];
    pr.gpu = p / (cores_used * procs_per_core);
    pr.core = pr.gpu * cores_used + (p / procs_per_core) % cores_used;
    pr.iterations_left = work.n_iterations;
    pr.segment = 0;
    pr.remaining = work.iteration[0].work;
    if (work.iteration[0].kind == ResourceKind::Gpu)
      pr.remaining += machine.gpu.launch_overhead;
  }

  const int n_cores = machine.n_gpus * cores_used;
  std::vector<int> core_occupancy(static_cast<std::size_t>(n_cores), 0);
  std::vector<int> gpu_kernels(static_cast<std::size_t>(machine.n_gpus), 0);
  std::vector<std::int64_t> gpu_blocks(static_cast<std::size_t>(machine.n_gpus), 0);
  int bw_users = 0;

  auto occupy = [&](const Process& pr, int sign) {
    const auto& seg = work.iteration[pr.segment];
    switch (seg.kind) {
      case ResourceKind::Core:
        core_occupancy[static_cast<std::size_t>(pr.core)] += sign;
        break;
      case ResourceKind::Gpu:
        gpu_kernels[static_cast<std::size_t>(pr.gpu)] += sign;
        gpu_blocks[static_cast<std::size_t>(pr.gpu)] += sign * seg.blocks;
        break;
      case ResourceKind::Bandwidth:
        bw_users += sign;
        break;
    }
  };
  for (const auto& pr : procs) occupy(pr, +1);

  auto rate_of = [&](const Process& pr) -> double {
    const auto& seg = work.iteration[pr.segment];
    switch (seg.kind) {
      case ResourceKind::Core: {
        const int k = core_occupancy[static_cast<std::size_t>(pr.core)];
        return machine.smt.total_rate(k) / static_cast<double>(k);
      }
      case ResourceKind::Gpu: {
        const int j = gpu_kernels[static_cast<std::size_t>(pr.gpu)];
        const auto demand = gpu_blocks[static_cast<std::size_t>(pr.gpu)];
        // Kernels run at full rate while the summed block demand fits the
        // resident-block capacity, then share it; oversubscribed MPS degrades
        // further.
        double r = 1.0;
        const int cap = machine.gpu.block_capacity();
        if (demand > cap) r = static_cast<double>(cap) / static_cast<double>(demand);
        if (j > machine.gpu.max_resident)
          r /= 1.0 + machine.gpu.oversub_penalty * static_cast<double>(j - machine.gpu.max_resident);
        return r;
      }
      case ResourceKind::Bandwidth: {
        const double k = static_cast<double>(bw_users);
        return k <= machine.membw_capacity ? 1.0 : machine.membw_capacity / k;
      }
    }
    return 1.0;
  };

  double now = 0.0;
  double gpu0_busy = 0.0;
  std::int64_t iterations_done = 0;
  int running = n_procs;

  while (running > 0) {
    // Next completion under current rates.
    double dt = std::numeric_limits<double>::infinity();
    for (const auto& pr : procs) {
      if (pr.done) continue;
      const double r = rate_of(pr);
      LANDAU_ASSERT(r > 0.0, "stalled process in schedule simulation");
      dt = std::min(dt, pr.remaining / r);
    }
    if (gpu_kernels[0] > 0) gpu0_busy += dt;
    // Advance everyone; collect completions (ties complete together).
    now += dt;
    for (auto& pr : procs) {
      if (pr.done) continue;
      pr.remaining -= dt * rate_of(pr);
    }
    for (auto& pr : procs) {
      if (pr.done || pr.remaining > 1e-15) continue;
      occupy(pr, -1);
      // Advance to the next segment / iteration.
      ++pr.segment;
      if (pr.segment == work.iteration.size()) {
        pr.segment = 0;
        --pr.iterations_left;
        ++iterations_done;
        if (pr.iterations_left == 0) {
          pr.done = true;
          --running;
          continue;
        }
      }
      pr.remaining = work.iteration[pr.segment].work;
      if (work.iteration[pr.segment].kind == ResourceKind::Gpu)
        pr.remaining += machine.gpu.launch_overhead;
      occupy(pr, +1);
    }
  }

  SimResult result;
  result.makespan = now;
  result.iterations_per_second = now > 0 ? static_cast<double>(iterations_done) / now : 0.0;
  result.gpu_busy_fraction = now > 0 ? gpu0_busy / now : 0.0;
  return result;
}

} // namespace landau::exec
