#include "exec/thread_pool.h"

#include <atomic>

namespace landau::exec {

ThreadPool::ThreadPool(unsigned n_workers) {
  workers_.reserve(n_workers);
  for (unsigned i = 0; i < n_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (workers_.empty() || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Static chunking: one contiguous chunk per worker keeps block->SM
  // assignment deterministic, matching the grid-strided dispatch on a GPU.
  const std::size_t w = workers_.size();
  const std::size_t chunk = (n + w - 1) / w;
  for (std::size_t c = 0; c * chunk < n; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

} // namespace landau::exec
