#pragma once
// Annotation vocabulary for the emulated-CUDA kernel layer, consumed by the
// static analyzer `tools/lint/landau_lint.py` (build target `lint-kernels`).
//
// The emulator is plain C++, so the CUDA and Kokkos compilers that reject
// whole bug classes at build time on real hardware — barrier divergence,
// host-state capture into device lambdas, non-atomic global accumulation —
// never see this code. These macros reintroduce the host/device distinction
// as zero-cost source markers: every macro expands to nothing, and the
// analyzer keys its checks off the tokens.
//
// Vocabulary
//   LANDAU_KERNEL
//     Placed immediately before a kernel-entry lambda at an `exec::launch`
//     or `kokkos::parallel_for` call site (the lambda that would carry
//     `__global__` / KOKKOS_LAMBDA on hardware). The lambda body and every
//     LANDAU_DEVICE function it calls form a *device region*; all checks
//     apply there. Launch sites without the marker are themselves findings
//     (launch-hygiene), so coverage is self-enforcing.
//
//   LANDAU_DEVICE
//     Placed on a function callable from device regions (the `__device__`
//     qualifier). The analyzer scans these bodies with the same rules as
//     kernel lambdas.
//
//   LANDAU_HOST_ONLY
//     Placed on a class (attribute position: `class LANDAU_HOST_ONLY Foo`)
//     or function that must never be referenced from a device region — the
//     thread pool, tracers, checkpoint I/O. The analyzer collects annotated
//     names from the whole tree and flags any mention inside a device
//     region (capture check).
//
//   LANDAU_CROSS_BLOCK(registration)
//     Wraps a device-checker output registration (`chk.out(...)`) whose
//     buffer is written concurrently by multiple blocks — the COO/CSR
//     assembly targets of §III-F. Views of such buffers may only be written
//     through atomic adds or handed to a LANDAU_DEVICE assembly routine;
//     a direct subscript store in a kernel body is flagged (atomics check).
//     Per-block-disjoint outputs (the batched band matrices, one per block)
//     stay unwrapped and are not policed — the dynamic checker (PR 3)
//     still validates them at runtime.
//
// Capture dialect: block-uniform `[&]` capture is *sanctioned* for kernel
// lambdas here, because a block runs to completion on one worker and the
// captured host state is read-only block-uniform data (the emulator's
// analogue of __constant__/parameter space). What the capture check forbids
// inside device regions is (a) any mention of a LANDAU_HOST_ONLY name and
// (b) declaring host containers (std::vector/string/map/...) — a per-block
// host allocation that would not compile under nvcc.

#define LANDAU_KERNEL
#define LANDAU_DEVICE
#define LANDAU_HOST_ONLY
#define LANDAU_CROSS_BLOCK(registration) registration

namespace landau::fp {

/// Sanctioned exact floating-point comparison for device code. The
/// fp-hygiene check flags raw `==`/`!=` on doubles in device regions
/// (usually a missing tolerance); routing an *intentional* bitwise compare
/// — the skip-exact-zeros sparsity test in the assembly epilogues — through
/// these names records the intent and satisfies the analyzer.
constexpr bool exact_eq(double a, double b) { return a == b; }
constexpr bool exact_ne(double a, double b) { return a != b; }

} // namespace landau::fp
