#pragma once
// Fixed-size worker pool. In the CUDA-model emulation one worker plays the
// role of one streaming multiprocessor (SM): blocks are dispatched to workers
// and each block runs to completion on its worker, exactly like CUDA's
// block-to-SM residency model (§III-E: "Each SM processes one element").

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/annotations.h"

namespace landau::exec {

class LANDAU_HOST_ONLY ThreadPool {
public:
  /// n_workers == 0 means "run everything inline on the caller" (serial mode).
  explicit ThreadPool(unsigned n_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned n_workers() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void wait_idle();

  /// Run fn(i) for i in [0, n), distributing across workers; blocks until done.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

} // namespace landau::exec
