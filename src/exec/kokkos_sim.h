#pragma once
// Kokkos-style portability layer on top of the same emulated substrate as
// cuda_sim.h. Mirrors the subset of Kokkos the paper's kernel uses (§III-D):
//
//  * TeamPolicy(league_size, team_size, vector_length) — a league member maps
//    to a CUDA block / an OpenMP thread; team threads map to threadIdx.y;
//    vector lanes map to threadIdx.x / SVE lanes.
//  * parallel_for over TeamThreadRange, parallel_reduce over
//    ThreadVectorRange with reductions on general C++ objects equipped with a
//    default constructor and operator+= ("join").
//  * team scratch memory (variable-length shared arrays).
//
// Unlike the CUDA version, user code here never manages shuffle machinery —
// the reduction is hidden in vector_reduce, exactly the contrast the paper
// draws between its two implementations.

#include <cstddef>
#include <span>

#include "exec/cuda_sim.h"
#include "exec/thread_pool.h"

namespace landau::exec::kokkos {

struct TeamPolicy {
  int league_size = 1;
  int team_size = 1;     // "threads" (CUDA y-dimension / OpenMP chunks)
  int vector_length = 1; // "vector lanes" (CUDA x-dimension / SVE lanes)
};

/// Handle given to the team functor; one per league member.
class TeamMember {
public:
  TeamMember(int league_rank, const TeamPolicy& policy) : rank_(league_rank), policy_(policy) {}

  int league_rank() const { return rank_; }
  int league_size() const { return policy_.league_size; }
  int team_size() const { return policy_.team_size; }
  int vector_length() const { return policy_.vector_length; }

  /// Bind this league member to an active checker session. The member's
  /// access identity maps (team thread, vector lane) to the flat thread id
  /// lane + thread * vector_length — the same layout the CUDA back-end uses.
  void bind_check(check::KernelSession* session) {
    chk_.session = session;
    chk_.block = rank_;
  }
  check::ThreadCtx& check_ctx() const { return chk_; }

  /// Bind a globally registered buffer to this member's access identity.
  template <class T> check::checked_span<T> view(check::BufferRef<T> ref) const {
    return {ref, &chk_};
  }

  /// Team scratch (shared) memory; variable length, as Kokkos provides.
  /// Registered uninitialized under the checker, like CUDA shared memory.
  template <class T>
  check::checked_span<T> team_scratch(std::size_t n, const char* name = "scratch") {
    std::span<T> s = scratch_.alloc<T>(n);
    if (chk_.session) {
      auto* sb = chk_.session->add_buffer(name, check::Space::Shared, s.data(), s.size(), sizeof(T),
                                          std::is_same_v<std::remove_cv_t<T>, double>,
                                          /*writable=*/true, /*initialized=*/false, rank_);
      return {check::BufferRef<T>{s.data(), s.size(), sb}, &chk_};
    }
    return {s};
  }

  /// parallel_for(TeamThreadRange(member, n), f): distribute [0,n) over the
  /// team's threads. Emulated as an ordered loop; iteration i belongs to team
  /// thread i % team_size, as with a strided CUDA loop.
  template <class F> void team_range(int n, F&& f) const {
    for (int i = 0; i < n; ++i) {
      ty_ = i % policy_.team_size;
      set_thread();
      f(i);
    }
    ty_ = -1;
    set_thread();
  }

  /// parallel_reduce(ThreadVectorRange(member, n), f, result): reduce over
  /// vector lanes into any object with operator+= via f(i, update).
  template <class F, class R> void vector_reduce(int n, F&& f, R& result) const {
    R acc{};
    for (int i = 0; i < n; ++i) {
      lane_ = i % policy_.vector_length;
      set_thread();
      f(i, acc);
    }
    lane_ = -1;
    set_thread();
    result += acc;
  }

  /// parallel_for(ThreadVectorRange(member, n), f).
  template <class F> void vector_range(int n, F&& f) const {
    for (int i = 0; i < n; ++i) {
      lane_ = i % policy_.vector_length;
      set_thread();
      f(i);
    }
    lane_ = -1;
    set_thread();
  }

  /// Close the current access phase under the checker (no-op otherwise —
  /// league members already run their ranges in order).
  void team_barrier() const {
    if (chk_.session) {
      const int id = chk_.sync_count++;
      if (id != check::options().drop_sync) ++chk_.phase;
    }
  }

private:
  void set_thread() const {
    if (ty_ < 0 && lane_ < 0)
      chk_.thread = check::kUniformThread;
    else
      chk_.thread = (lane_ < 0 ? 0 : lane_) + (ty_ < 0 ? 0 : ty_) * policy_.vector_length;
  }

  int rank_;
  TeamPolicy policy_;
  mutable Arena scratch_;
  mutable check::ThreadCtx chk_;
  mutable int ty_ = -1, lane_ = -1;
};

/// parallel_for over the league: each league member runs on one pool worker
/// (one SM with the CUDA back-end, one OpenMP thread with the OpenMP one).
/// `name` labels the dispatch's span in the tracer, as with exec::launch.
template <class Functor>
void parallel_for(ThreadPool& pool, const TeamPolicy& policy, Functor&& functor,
                  check::KernelScope* chk = nullptr, const char* name = nullptr) {
  obs::TraceSpan span(name ? name : "kokkos:parallel_for",
                      {{"league", policy.league_size},
                       {"team", policy.team_size},
                       {"vector", policy.vector_length}});
  check::run_grid(pool, static_cast<std::size_t>(policy.league_size), chk, nullptr,
                  [&](std::size_t rank) {
                    TeamMember member(static_cast<int>(rank), policy);
                    if (chk && chk->active()) member.bind_check(chk->session());
                    functor(member);
                  });
}

} // namespace landau::exec::kokkos
