#pragma once
// Kokkos-style portability layer on top of the same emulated substrate as
// cuda_sim.h. Mirrors the subset of Kokkos the paper's kernel uses (§III-D):
//
//  * TeamPolicy(league_size, team_size, vector_length) — a league member maps
//    to a CUDA block / an OpenMP thread; team threads map to threadIdx.y;
//    vector lanes map to threadIdx.x / SVE lanes.
//  * parallel_for over TeamThreadRange, parallel_reduce over
//    ThreadVectorRange with reductions on general C++ objects equipped with a
//    default constructor and operator+= ("join").
//  * team scratch memory (variable-length shared arrays).
//
// Unlike the CUDA version, user code here never manages shuffle machinery —
// the reduction is hidden in vector_reduce, exactly the contrast the paper
// draws between its two implementations.

#include <cstddef>
#include <span>

#include "exec/cuda_sim.h"
#include "exec/thread_pool.h"

namespace landau::exec::kokkos {

struct TeamPolicy {
  int league_size = 1;
  int team_size = 1;     // "threads" (CUDA y-dimension / OpenMP chunks)
  int vector_length = 1; // "vector lanes" (CUDA x-dimension / SVE lanes)
};

/// Handle given to the team functor; one per league member.
class TeamMember {
public:
  TeamMember(int league_rank, const TeamPolicy& policy) : rank_(league_rank), policy_(policy) {}

  int league_rank() const { return rank_; }
  int league_size() const { return policy_.league_size; }
  int team_size() const { return policy_.team_size; }
  int vector_length() const { return policy_.vector_length; }

  /// Team scratch (shared) memory; variable length, as Kokkos provides.
  template <class T> std::span<T> team_scratch(std::size_t n) { return scratch_.alloc<T>(n); }

  /// parallel_for(TeamThreadRange(member, n), f): distribute [0,n) over the
  /// team's threads. Emulated as an ordered loop.
  template <class F> void team_range(int n, F&& f) const {
    for (int i = 0; i < n; ++i) f(i);
  }

  /// parallel_reduce(ThreadVectorRange(member, n), f, result): reduce over
  /// vector lanes into any object with operator+= via f(i, update).
  template <class F, class R> void vector_reduce(int n, F&& f, R& result) const {
    R acc{};
    for (int i = 0; i < n; ++i) f(i, acc);
    result += acc;
  }

  /// parallel_for(ThreadVectorRange(member, n), f).
  template <class F> void vector_range(int n, F&& f) const {
    for (int i = 0; i < n; ++i) f(i);
  }

  void team_barrier() const {}

private:
  int rank_;
  TeamPolicy policy_;
  mutable Arena scratch_;
};

/// parallel_for over the league: each league member runs on one pool worker
/// (one SM with the CUDA back-end, one OpenMP thread with the OpenMP one).
template <class Functor>
void parallel_for(ThreadPool& pool, const TeamPolicy& policy, Functor&& functor) {
  pool.parallel_for(static_cast<std::size_t>(policy.league_size), [&](std::size_t rank) {
    TeamMember member(static_cast<int>(rank), policy);
    functor(member);
  });
}

} // namespace landau::exec::kokkos
