#pragma once
// Asynchronous work streams — the execution analog of the paper's harness
// (§V): many MPI processes independently launching kernels on a shared GPU,
// scheduled by MPS. A Stream preserves FIFO order among its own tasks (one
// process's kernels are ordered); different streams run concurrently on the
// shared worker pool. The throughput benches use streams to overlap many
// independent collision advances, which is how a configuration-space
// application amortizes the per-vertex solves.

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>

#include "exec/thread_pool.h"

namespace landau::exec {

class Stream {
public:
  explicit Stream(ThreadPool& pool) : pool_(pool) {}
  ~Stream() { synchronize(); }

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Enqueue a task; returns immediately. Tasks of this stream run in order.
  void enqueue(std::function<void()> task);

  /// Block until every task enqueued so far has completed.
  void synchronize();

  std::size_t pending() const;

private:
  void launch_next_locked(); // requires mutex_ held

  ThreadPool& pool_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool running_ = false;
};

} // namespace landau::exec
