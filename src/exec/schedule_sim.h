#pragma once
// Discrete-event throughput simulator for the paper's node-level performance
// experiments (Tables II, III, V, VI).
//
// The paper's harness runs P MPI processes per node, each asynchronously
// solving an independent instance of the collision problem; processes share
// CPU cores (up to 3-4 hardware threads/core), a GPU scheduled by MPS, and
// node memory bandwidth. The figure of merit is throughput: Newton
// iterations/second across all processes.
//
// On this single-core host those wall-clock scaling shapes cannot be
// measured, so — per the substitution rule — we *simulate the schedule*: each
// process is a repeating sequence of work segments whose serial durations are
// measured from the real emulated kernels on this machine, and the simulator
// replays them under processor-sharing resource models:
//
//  * Core: k resident hardware threads yield smt_throughput(k) total rate
//    (calibrated to the paper's "modest but consistent gain" for 2nd/3rd HT),
//  * Gpu: a kernel occupies `blocks` SMs; co-resident kernels (MPS) share the
//    SM pool, with an oversubscription penalty once more than `max_resident`
//    kernels are in flight (the Spock rollover, §V-D1),
//  * Bandwidth: plain processor sharing of node memory bandwidth.
//
// The event loop advances to the next segment completion given current rates;
// rates are recomputed whenever occupancy changes (standard PS-queue
// simulation). Deterministic: no randomness anywhere.

#include <cstdint>
#include <string>
#include <vector>

namespace landau::exec {

/// SMT throughput curve: total core throughput with k resident threads,
/// relative to one thread. Index 0 unused; values beyond the last entry clamp.
struct SmtModel {
  std::vector<double> throughput{0.0, 1.0, 1.25, 1.29, 1.31};
  double total_rate(int k) const;
};

/// GPU sharing model (one GPU).
struct GpuModel {
  int n_sms = 80;
  int blocks_per_sm = 8;          // resident blocks per SM (2048 threads / 256-thread blocks)
  int max_resident = 48;          // kernels co-resident before scheduling degrades
  double oversub_penalty = 0.15;  // extra slowdown per kernel beyond max_resident
  double launch_overhead = 10e-6; // seconds added to each kernel's service demand

  /// Total resident-block capacity before kernels start sharing cycles.
  int block_capacity() const { return n_sms * blocks_per_sm; }
};

/// One machine node.
struct MachineModel {
  std::string name;
  int n_gpus = 1;
  int cores = 7; // cores available per GPU (Summit: 7)
  int hw_threads_per_core = 4;
  SmtModel smt;
  GpuModel gpu;
  double membw_capacity = 8.0; // processes sharing bandwidth beyond this slow down
};

/// Segment kinds a process cycles through each Newton iteration.
enum class ResourceKind { Core, Gpu, Bandwidth };

struct Segment {
  ResourceKind kind;
  double work = 0.0; // seconds of service demand at full rate
  int blocks = 1;    // SMs requested (Gpu segments only)
};

/// The per-iteration workload of one process, plus iteration count.
struct ProcessWork {
  std::vector<Segment> iteration; // executed in order, n_iterations times
  int n_iterations = 1;
};

struct SimResult {
  double makespan = 0.0;             // seconds until all processes finish
  double iterations_per_second = 0.0; // total completed iterations / makespan
  double gpu_busy_fraction = 0.0;     // utilization of GPU 0
};

/// Simulate `procs_per_core` processes on each of `cores_used` cores per GPU,
/// across all GPUs of the machine. Each process runs `work` to completion.
SimResult simulate_throughput(const MachineModel& machine, const ProcessWork& work,
                              int cores_used, int procs_per_core);

} // namespace landau::exec
