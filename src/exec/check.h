#pragma once
// Device memory-model checker for the emulated CUDA kernels.
//
// The emulation in cuda_sim.h runs each block's phases sequentially on one
// ThreadPool worker, so -fsanitize=thread is structurally blind to the races
// that matter on real hardware: two threads of a block touching the same
// shared-memory word in the same barrier-delimited phase, or two blocks
// scattering into the same global word without atomics (§III-F requires
// atomicAdd there). This checker validates the *CUDA* memory model, not the
// pthread one:
//
//   (1) intra-block same-phase write/write and read/write conflicts between
//       threads — the races serialization hides,
//   (2) inter-block conflicting global accesses where at least one side is a
//       plain (non-atomic) access — e.g. a `+=` where the paper's assembly
//       requires atomicAdd,
//   (3) reads of never-written device memory — shared memory is treated as
//       uninitialized at allocation, as `__shared__` arrays are on hardware,
//       even though the emulation's Arena zero-fills,
//   (4) out-of-bounds indexing through any instrumented view,
// plus a register-isolation rule (a thread may only touch its own slot of a
// Block register file; warp shuffles are the sanctioned exchange) and a
// ScheduleShuffler that re-runs a launch with a seeded random block order and
// diffs the outputs to flag order-dependent kernels.
//
// Wiring: a kernel creates a KernelScope at its launch site, registers the
// global buffers it will touch (in()/out()), and reads/writes them through
// checked_span views bound to the executing block's ThreadCtx. Shared-memory
// and register-file allocations from Block are instrumented automatically.
// When the checker is disabled (the default) every hook is a null-pointer
// test: no shadow state is allocated and no access is recorded.
//
// Enabling: LANDAU_CHECK_DEVICE=1 (or "strict", "shuffle", comma-separable)
// in the environment, RobustnessOptions::check_device, or programmatically
// through check::options(). Reports flow through util/logging with
// (kernel, buffer, index, block, phase, thread) provenance; strict mode makes
// KernelScope::finish() throw landau::Error on the first report.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "exec/counters.h"
#include "exec/thread_pool.h"

namespace landau::exec::check {

// ---------------------------------------------------------------------------
// Options and global state
// ---------------------------------------------------------------------------

struct CheckOptions {
  bool enabled = false; // master switch (see also robustness().check_device)
  bool strict = false;  // KernelScope::finish() throws on any report
  bool shuffle = false; // ScheduleShuffler: double-run launches, diff outputs
  std::uint64_t shuffle_seed = 0x9e3779b97f4a7c15ull;
  double shuffle_tol = 1e-9; // relative fp tolerance of the schedule diff
  int max_reports_per_kernel = 64;

  // Seeded-bug hooks for validating the checker itself (ctest -L analysis).
  // drop_sync skips the phase advance of the N-th sync() of every block,
  // modeling a forgotten __syncthreads(); uninit_input registers the named
  // input buffer as never-written, modeling a read of unpacked device data.
  int drop_sync = -1;
  std::string uninit_input;
};

/// Mutable global options; first access parses LANDAU_CHECK_DEVICE.
CheckOptions& options();

/// True when checking is on (options().enabled or robustness().check_device).
bool enabled();

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Report categories (stable strings, asserted on by tests).
inline constexpr const char* kIntraBlockRace = "intra-block-race";
inline constexpr const char* kInterBlockRace = "inter-block-race";
inline constexpr const char* kUninitRead = "uninit-read";
inline constexpr const char* kOutOfBounds = "out-of-bounds";
inline constexpr const char* kRegisterIsolation = "register-isolation";
inline constexpr const char* kOrderDependent = "order-dependent";

/// Thread id of block-uniform code (outside Block::threads / team ranges).
inline constexpr int kUniformThread = -1;

struct Report {
  std::string kernel;   // launch site name ("landau:jacobian-cuda", ...)
  std::string buffer;   // registered buffer name ("csr.values", "tile_r", ...)
  std::string category; // one of the k... strings above
  std::size_t index = 0;
  // The access that detected the conflict...
  int block = -1, phase = -1, thread = kUniformThread;
  // ...and the earlier access it conflicts with (when applicable).
  int prev_block = -1, prev_phase = -1, prev_thread = kUniformThread;
  std::string detail;

  std::string str() const;
};

// ---------------------------------------------------------------------------
// Shadow memory
// ---------------------------------------------------------------------------

enum class Space : std::uint8_t { Global, Shared, Register };
enum class Kind : std::uint8_t { Read, Write, Atomic };

class KernelSession;

/// Identity of the code performing an access: owned by the executing Block /
/// TeamMember / pseudo-task and consulted by checked_span at access time.
struct ThreadCtx {
  KernelSession* session = nullptr;
  int block = 0;
  int phase = 0;
  int thread = kUniformThread;
  int sync_count = 0; // consumed by the drop_sync seeded-bug hook
};

/// Per-word shadow state of one registered buffer.
struct ShadowWord {
  std::int32_t w_block = -2, w_phase = -1, w_thread = -3;
  std::int32_t r_block = -2, r_phase = -1, r_thread = -3;
  std::uint8_t w_kind = 0; // 0 none, 1 plain, 2 atomic
  std::uint8_t init = 0;
};

/// Shadow state and conflict detection for one registered buffer.
class ShadowBuffer {
public:
  ShadowBuffer(KernelSession* session, std::string name, Space space, const void* base,
               std::size_t words, std::size_t word_bytes, bool f64, bool writable,
               bool initialized, int owner_block);

  void record(std::size_t index, Kind kind, const ThreadCtx& who);
  void record_oob(std::size_t index, const ThreadCtx& who);

  const std::string& name() const { return name_; }
  Space space() const { return space_; }
  std::size_t words() const { return words_; }

private:
  friend class KernelSession;
  KernelSession* session_;
  std::string name_;
  Space space_;
  const void* base_;
  std::size_t words_, word_bytes_;
  bool f64_, writable_, initialized_;
  int owner_block_; // -1 for global buffers; the owning block for shared/regs
  std::vector<ShadowWord> shadow_;
  // Schedule-shuffler snapshots (writable global buffers only).
  std::vector<std::byte> preimage_, result_;
};

/// Inactive-by-default handle to a registered buffer; produced by
/// KernelScope::in()/out() and bound to a ThreadCtx to form a checked_span.
template <class T> struct BufferRef {
  T* data = nullptr;
  std::size_t size = 0;
  ShadowBuffer* sb = nullptr;
};

// ---------------------------------------------------------------------------
// checked_span: the instrumented device-buffer view
// ---------------------------------------------------------------------------

template <class T> class checked_span;

/// Proxy reference returned by checked_span::operator[]: reads record on
/// conversion, writes on assignment. Compound ops record read + write.
template <class T> class checked_ref {
public:
  checked_ref(const checked_span<T>* s, std::size_t i) : s_(s), i_(i) {}

  operator const T&() const {
    s_->note(i_, Kind::Read);
    return *s_->target(i_);
  }
  T& operator=(const T& v) const
    requires(!std::is_const_v<T>)
  {
    s_->note(i_, Kind::Write);
    return *s_->target(i_) = v;
  }
  // Assigning between two proxies must copy the value, not rebind the proxy.
  const checked_ref& operator=(const checked_ref& o) const
    requires(!std::is_const_v<T>)
  {
    *this = static_cast<const T&>(o);
    return *this;
  }
  template <class U>
  const checked_ref& operator=(const checked_ref<U>& o) const
    requires(!std::is_const_v<T>)
  {
    *this = static_cast<const U&>(o);
    return *this;
  }
  T& operator+=(const T& v) const
    requires(!std::is_const_v<T>)
  {
    s_->note(i_, Kind::Read);
    s_->note(i_, Kind::Write);
    return *s_->target(i_) += v;
  }
  T& operator-=(const T& v) const
    requires(!std::is_const_v<T>)
  {
    s_->note(i_, Kind::Read);
    s_->note(i_, Kind::Write);
    return *s_->target(i_) -= v;
  }

private:
  const checked_span<T>* s_;
  std::size_t i_;
};

/// Span-like device-buffer view. With a null shadow binding (checker off)
/// every access degenerates to a raw pointer dereference; with an active
/// binding each access is bounds-checked and recorded in shadow memory under
/// the identity of the currently executing (block, phase, thread).
template <class T> class checked_span {
public:
  checked_span() = default;
  /*implicit*/ checked_span(std::span<T> s) : p_(s.data()), n_(s.size()) {}
  checked_span(BufferRef<T> ref, ThreadCtx* ctx)
      : p_(ref.data), n_(ref.size), sb_(ref.sb), ctx_(ref.sb ? ctx : nullptr) {}

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  bool active() const { return sb_ != nullptr; }

  checked_ref<T> operator[](std::size_t i) const { return {this, i}; }

  /// Handing out raw pointers for bulk access requires annotating the
  /// accessed index set; these record the accesses and return the base.
  T* read_ptr(std::size_t i, std::size_t count = 1) const {
    for (std::size_t k = 0; sb_ && k < count; ++k) note(i + k, Kind::Read);
    return target(i);
  }
  T* read_strided(std::size_t i, std::size_t count, std::size_t stride) const {
    for (std::size_t k = 0; sb_ && k < count; ++k) note(i + k * stride, Kind::Read);
    return target(i);
  }
  T* write_ptr(std::size_t i, std::size_t count = 1) const {
    for (std::size_t k = 0; sb_ && k < count; ++k) note(i + k, Kind::Write);
    return target(i);
  }
  /// Read-modify-write pointer (e.g. an accumulator passed to a helper).
  T* rw_ptr(std::size_t i) const {
    if (sb_) {
      note(i, Kind::Read);
      note(i, Kind::Write);
    }
    return target(i);
  }
  /// Record a read of the whole view, return the base pointer.
  T* read_all() const { return read_ptr(0, n_); }

  /// Unchecked escape hatch (checker internals: shuffle emulation).
  std::span<T> raw() const { return {p_, n_}; }

  // Iteration yields proxies, so range-for records reads.
  class iterator {
  public:
    iterator(const checked_span* s, std::size_t i) : s_(s), i_(i) {}
    checked_ref<T> operator*() const { return (*s_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

  private:
    const checked_span* s_;
    std::size_t i_;
  };
  iterator begin() const { return {this, 0}; }
  iterator end() const { return {this, n_}; }

  void note(std::size_t i, Kind k) const {
    if (!sb_) return;
    if (i >= n_) {
      sb_->record_oob(i, *ctx_);
      return;
    }
    sb_->record(i, k, *ctx_);
  }
  /// Address of element i; out-of-bounds indices are redirected to a sink so
  /// the emulation survives to report instead of corrupting memory.
  T* target(std::size_t i) const {
    if (sb_ && i >= n_) {
      static thread_local std::remove_const_t<T> sink{};
      return &sink;
    }
    return p_ + i;
  }

private:
  T* p_ = nullptr;
  std::size_t n_ = 0;
  ShadowBuffer* sb_ = nullptr;
  ThreadCtx* ctx_ = nullptr;
};

// ---------------------------------------------------------------------------
// Sessions and launch-site scopes
// ---------------------------------------------------------------------------

/// Shadow state of one instrumented kernel launch. Created by KernelScope
/// when the checker is enabled; thread-safe (blocks run on pool workers).
class KernelSession {
public:
  KernelSession(std::string kernel, bool concurrent_blocks);
  ~KernelSession();

  const std::string& kernel() const { return kernel_; }
  bool concurrent_blocks() const { return concurrent_; }

  ShadowBuffer* add_buffer(std::string name, Space space, const void* base, std::size_t words,
                           std::size_t word_bytes, bool f64, bool writable, bool initialized,
                           int owner_block);

  /// Record a report (deduplicated by buffer/category/index, capped).
  /// Caller holds the buffer's lock; prev_* describe the conflicting earlier
  /// access (pass -2 block for "none").
  void report(const ShadowBuffer* buf, const char* category, std::size_t index,
              const ThreadCtx& who, int prev_block, int prev_phase, int prev_thread,
              std::string detail);

  std::size_t n_reports() const;
  std::vector<Report> take_reports();

  // --- ScheduleShuffler support (writable global buffers only) -------------
  void save_preimages();
  void snapshot_results();
  void restore_preimages();
  void reset_shadow();
  /// Diff current buffer contents against the snapshot; reports
  /// "order-dependent" beyond tolerance, then restores the snapshot so the
  /// caller always observes the natural-order results.
  void diff_schedules();

private:
  friend class ShadowBuffer; // records lock mu_ and call report() under it
  mutable std::mutex mu_;
  std::string kernel_;
  bool concurrent_;
  std::vector<std::unique_ptr<ShadowBuffer>> buffers_;
  std::vector<Report> reports_;
  std::vector<std::uint64_t> dedup_; // hashes of (buffer, category, index)
  bool saturated_ = false;
};

/// RAII handle a kernel creates at its launch site. Inactive (and free) when
/// the checker is disabled. finish() flushes reports into the global
/// DeviceChecker and throws in strict mode; the destructor flushes without
/// throwing if finish() was not called.
class KernelScope {
public:
  explicit KernelScope(const char* kernel, bool concurrent_blocks = true);
  ~KernelScope();

  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

  bool active() const { return session_ != nullptr; }
  KernelSession* session() const { return session_.get(); }

  /// Register a read-only input buffer (initialized unless it matches the
  /// uninit_input seeded-bug hook).
  template <class T> BufferRef<const T> in(std::span<const T> s, std::string name) {
    if (!session_) return {s.data(), s.size(), nullptr};
    const bool init = options().uninit_input != name;
    return {s.data(), s.size(),
            session_->add_buffer(std::move(name), Space::Global, s.data(), s.size(), sizeof(T),
                                 std::is_same_v<std::remove_cv_t<T>, double>, false, init, -1)};
  }
  /// Register a writable global buffer (outputs, in/out accumulators).
  template <class T> BufferRef<T> out(std::span<T> s, std::string name, bool initialized = true) {
    if (!session_) return {s.data(), s.size(), nullptr};
    return {s.data(), s.size(),
            session_->add_buffer(std::move(name), Space::Global, s.data(), s.size(), sizeof(T),
                                 std::is_same_v<std::remove_cv_t<T>, double>, true, initialized,
                                 -1)};
  }

  /// Flush reports to the global checker; throws landau::Error in strict
  /// mode if this launch produced any report.
  void finish();

private:
  void flush(); // non-throwing part of finish()
  std::unique_ptr<KernelSession> session_;
  bool finished_ = false;
};

// ---------------------------------------------------------------------------
// Global report sink
// ---------------------------------------------------------------------------

/// Process-wide accumulator of finished sessions' reports (tests inspect and
/// clear it; long runs keep at most a bounded number of reports).
class DeviceChecker {
public:
  static DeviceChecker& instance();

  void add(std::vector<Report> reports);
  std::vector<Report> reports() const;
  long count(const std::string& category) const;
  long total() const;
  void clear();

private:
  mutable std::mutex mu_;
  std::vector<Report> reports_;
  long total_ = 0;
};

// ---------------------------------------------------------------------------
// ScheduleShuffler
// ---------------------------------------------------------------------------

/// Deterministic seeded permutation source for block-order shuffling.
class ScheduleShuffler {
public:
  explicit ScheduleShuffler(std::uint64_t seed) : state_(seed ? seed : 1) {}
  /// Fisher–Yates permutation of [0, n) from a splitmix64 stream.
  std::vector<std::size_t> permutation(std::size_t n);

private:
  std::uint64_t next();
  std::uint64_t state_;
};

/// Run `run_one(i)` for i in [0, n) over the pool — and, when the shuffler is
/// enabled and the scope is active, re-run the whole grid in a seeded random
/// block order and diff the registered writable global buffers to flag
/// order-dependent kernels. Kernel counters are restored so instrumented
/// flop/byte counts are not double-counted by the second run.
template <class F>
void run_grid(ThreadPool& pool, std::size_t n, KernelScope* chk, KernelCounters* counters,
              F&& run_one) {
  if (!chk || !chk->active() || !options().shuffle) {
    pool.parallel_for(n, run_one);
    return;
  }
  KernelSession* s = chk->session();
  s->save_preimages();
  pool.parallel_for(n, run_one);
  s->snapshot_results();
  std::int64_t flops = 0, dram = 0, shared = 0;
  if (counters) {
    flops = counters->flops.load();
    dram = counters->dram_bytes.load();
    shared = counters->shared_bytes.load();
  }
  s->restore_preimages();
  s->reset_shadow();
  ScheduleShuffler shuffler(options().shuffle_seed);
  const auto perm = shuffler.permutation(n);
  pool.parallel_for(n, [&](std::size_t i) { run_one(perm[i]); });
  if (counters) {
    counters->flops.store(flops);
    counters->dram_bytes.store(dram);
    counters->shared_bytes.store(shared);
  }
  s->diff_schedules();
}

} // namespace landau::exec::check
