#include "exec/check.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/error.h"
#include "util/logging.h"
#include "util/robustness.h"

namespace landau::exec::check {

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

namespace {

void parse_env(CheckOptions& o) {
  const char* env = std::getenv("LANDAU_CHECK_DEVICE");
  if (!env || !*env) return;
  std::string s(env);
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(',', start);
    const std::string tok =
        s.substr(start, end == std::string::npos ? std::string::npos : end - start);
    if (tok == "0" || tok == "off" || tok == "no") {
      o.enabled = false;
    } else if (tok == "1" || tok == "on" || tok == "yes" || tok.empty()) {
      o.enabled = true;
    } else if (tok == "strict") {
      o.enabled = o.strict = true;
    } else if (tok == "shuffle") {
      o.enabled = o.shuffle = true;
    } else {
      LANDAU_WARN("LANDAU_CHECK_DEVICE: ignoring unknown token '" << tok << "'");
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
}

} // namespace

CheckOptions& options() {
  static CheckOptions opts = [] {
    CheckOptions o;
    parse_env(o);
    return o;
  }();
  return opts;
}

bool enabled() { return options().enabled || robustness().check_device; }

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

namespace {

void describe_access(std::ostream& os, int block, int phase, int thread) {
  os << "block " << block << ", phase " << phase;
  if (thread == kUniformThread)
    os << ", uniform code";
  else
    os << ", thread " << thread;
}

} // namespace

std::string Report::str() const {
  std::ostringstream os;
  os << "device-check [" << kernel << "] " << category << ": " << buffer << "[" << index << "] (";
  describe_access(os, block, phase, thread);
  os << ")";
  if (prev_block != -2 && (category == kIntraBlockRace || category == kInterBlockRace)) {
    os << " conflicts with earlier access (";
    describe_access(os, prev_block, prev_phase, prev_thread);
    os << ")";
  }
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

// ---------------------------------------------------------------------------
// ShadowBuffer
// ---------------------------------------------------------------------------

ShadowBuffer::ShadowBuffer(KernelSession* session, std::string name, Space space,
                           const void* base, std::size_t words, std::size_t word_bytes, bool f64,
                           bool writable, bool initialized, int owner_block)
    : session_(session), name_(std::move(name)), space_(space), base_(base), words_(words),
      word_bytes_(word_bytes), f64_(f64), writable_(writable), initialized_(initialized),
      owner_block_(owner_block) {
  shadow_.resize(words_);
  if (initialized_)
    for (auto& w : shadow_) w.init = 1;
}

void ShadowBuffer::record(std::size_t index, Kind kind, const ThreadCtx& who) {
  // One lock per session: checked mode trades throughput for exact shadow
  // state; the clean path never reaches here. report() assumes this lock.
  std::lock_guard<std::mutex> lock(session_->mu_);
  ShadowWord& w = shadow_[index];
  const bool concurrent = session_->concurrent_;
  const char* detail = "";

  // Register isolation: a thread owns exactly its own slot; uniform code may
  // read (a broadcast) but never write a specific thread's register.
  if (space_ == Space::Register) {
    const bool bad = who.thread == kUniformThread
                         ? kind != Kind::Read
                         : index != static_cast<std::size_t>(who.thread);
    if (bad)
      session_->report(this, kRegisterIsolation, index, who, -2, -1, -3,
                       "registers are per-thread; use shfl_xor_sum_x to exchange values");
  }

  if (kind == Kind::Read) {
    if (!w.init)
      session_->report(this, kUninitRead, index, who, -2, -1, -3,
                       space_ == Space::Shared
                           ? "shared memory is uninitialized at allocation on hardware"
                           : "read of never-written device memory");
    if (w.w_kind != 0) {
      if (w.w_block == who.block) {
        if (who.thread != kUniformThread && w.w_thread != kUniformThread &&
            w.w_phase == who.phase && w.w_thread != who.thread)
          session_->report(this, kIntraBlockRace, index, who, w.w_block, w.w_phase, w.w_thread,
                           "read and write in the same phase without a sync between them");
      } else if (concurrent && space_ == Space::Global) {
        session_->report(this, kInterBlockRace, index, who, w.w_block, w.w_phase, w.w_thread,
                         w.w_kind == 2 ? "plain read of a word another block updates atomically"
                                       : "plain read of a word another block writes");
      }
    }
    w.r_block = who.block;
    w.r_phase = who.phase;
    w.r_thread = who.thread;
    return;
  }

  // Write or Atomic.
  const std::uint8_t new_kind = kind == Kind::Atomic ? 2 : 1;
  if (w.w_kind != 0) {
    const bool both_atomic = new_kind == 2 && w.w_kind == 2;
    if (w.w_block == who.block) {
      if (who.thread != kUniformThread && w.w_thread != kUniformThread &&
          w.w_phase == who.phase && w.w_thread != who.thread && !both_atomic)
        session_->report(this, kIntraBlockRace, index, who, w.w_block, w.w_phase, w.w_thread,
                         "two threads write the same word in the same phase");
    } else if (concurrent && space_ == Space::Global && !both_atomic) {
      detail = new_kind == 1 && w.w_kind == 1
                   ? "non-atomic writes from two blocks (atomicAdd required, \xc2\xa7III-F)"
                   : "atomic and plain writes from two blocks";
      session_->report(this, kInterBlockRace, index, who, w.w_block, w.w_phase, w.w_thread,
                       detail);
    }
  }
  if (w.r_block != -2) {
    if (w.r_block == who.block) {
      if (who.thread != kUniformThread && w.r_thread != kUniformThread &&
          w.r_phase == who.phase && w.r_thread != who.thread)
        session_->report(this, kIntraBlockRace, index, who, w.r_block, w.r_phase, w.r_thread,
                         "write after another thread's read in the same phase");
    } else if (concurrent && space_ == Space::Global) {
      session_->report(this, kInterBlockRace, index, who, w.r_block, w.r_phase, w.r_thread,
                       "write of a word another block reads");
    }
  }
  w.init = 1;
  w.w_block = who.block;
  w.w_phase = who.phase;
  w.w_thread = who.thread;
  w.w_kind = new_kind;
}

void ShadowBuffer::record_oob(std::size_t index, const ThreadCtx& who) {
  std::lock_guard<std::mutex> lock(session_->mu_);
  std::ostringstream os;
  os << "index " << index << " out of range [0," << words_ << ")";
  session_->report(this, kOutOfBounds, index, who, -2, -1, -3, os.str());
}

// ---------------------------------------------------------------------------
// KernelSession
// ---------------------------------------------------------------------------

KernelSession::KernelSession(std::string kernel, bool concurrent_blocks)
    : kernel_(std::move(kernel)), concurrent_(concurrent_blocks) {}

KernelSession::~KernelSession() = default;

ShadowBuffer* KernelSession::add_buffer(std::string name, Space space, const void* base,
                                        std::size_t words, std::size_t word_bytes, bool f64,
                                        bool writable, bool initialized, int owner_block) {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ShadowBuffer>(this, std::move(name), space, base, words,
                                                    word_bytes, f64, writable, initialized,
                                                    owner_block));
  return buffers_.back().get();
}

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

} // namespace

void KernelSession::report(const ShadowBuffer* buf, const char* category, std::size_t index,
                           const ThreadCtx& who, int prev_block, int prev_phase, int prev_thread,
                           std::string detail) {
  // Dedup by (buffer identity, category, word): one report per distinct
  // defect keeps a racy kernel from flooding the log.
  const std::uint64_t key =
      mix64(reinterpret_cast<std::uintptr_t>(buf) ^ mix64(index) ^
            mix64(reinterpret_cast<std::uintptr_t>(static_cast<const void*>(category))));
  for (std::uint64_t k : dedup_)
    if (k == key) return;
  if (static_cast<int>(reports_.size()) >= options().max_reports_per_kernel) {
    if (!saturated_) {
      saturated_ = true;
      LANDAU_WARN("device-check [" << kernel_ << "]: report cap reached ("
                                   << options().max_reports_per_kernel
                                   << "), suppressing further reports for this launch");
    }
    return;
  }
  dedup_.push_back(key);
  Report r;
  r.kernel = kernel_;
  r.buffer = buf->name_;
  r.category = category;
  r.index = index;
  r.block = who.block;
  r.phase = who.phase;
  r.thread = who.thread;
  r.prev_block = prev_block;
  r.prev_phase = prev_phase;
  r.prev_thread = prev_thread;
  r.detail = std::move(detail);
  LANDAU_WARN(r.str());
  reports_.push_back(std::move(r));
}

std::size_t KernelSession::n_reports() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_.size();
}

std::vector<Report> KernelSession::take_reports() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Report> out;
  out.swap(reports_);
  return out;
}

void KernelSession::save_preimages() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& b : buffers_) {
    if (!b->writable_ || b->space_ != Space::Global) continue;
    const auto* p = static_cast<const std::byte*>(b->base_);
    b->preimage_.assign(p, p + b->words_ * b->word_bytes_);
  }
}

void KernelSession::snapshot_results() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& b : buffers_) {
    if (b->preimage_.empty()) continue;
    const auto* p = static_cast<const std::byte*>(b->base_);
    b->result_.assign(p, p + b->words_ * b->word_bytes_);
  }
}

void KernelSession::restore_preimages() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& b : buffers_) {
    if (b->preimage_.empty()) continue;
    std::memcpy(const_cast<void*>(b->base_), b->preimage_.data(), b->preimage_.size());
  }
}

void KernelSession::reset_shadow() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& b : buffers_) {
    for (auto& w : b->shadow_) w = ShadowWord{};
    if (b->initialized_)
      for (auto& w : b->shadow_) w.init = 1;
  }
}

void KernelSession::diff_schedules() {
  const double tol = options().shuffle_tol;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& b : buffers_) {
    if (b->result_.empty()) continue;
    const auto* now = static_cast<const std::byte*>(b->base_);
    std::size_t mismatches = 0;
    std::size_t first = 0;
    double worst = 0.0;
    if (b->f64_) {
      const auto* a = reinterpret_cast<const double*>(now);
      const auto* r = reinterpret_cast<const double*>(b->result_.data());
      for (std::size_t i = 0; i < b->words_; ++i) {
        const double scale = std::max({std::abs(a[i]), std::abs(r[i]), 1.0});
        const double rel = std::abs(a[i] - r[i]) / scale;
        if (rel > tol) {
          if (mismatches == 0) first = i;
          ++mismatches;
          worst = std::max(worst, rel);
        }
      }
    } else if (std::memcmp(now, b->result_.data(), b->result_.size()) != 0) {
      for (std::size_t i = 0; i < b->result_.size(); ++i)
        if (now[i] != b->result_[i]) {
          first = i / b->word_bytes_;
          mismatches = 1;
          break;
        }
    }
    if (mismatches > 0) {
      ThreadCtx who; // schedule diff has no single accessing block
      who.block = -1;
      who.phase = -1;
      std::ostringstream os;
      os << "block-schedule shuffle changed " << mismatches << " of " << b->words_ << " words";
      if (b->f64_) os << " (worst relative difference " << worst << ")";
      os << "; kernel output depends on block execution order";
      report(b.get(), kOrderDependent, first, who, -2, -1, -3, os.str());
    }
    // Restore the natural-order results so checked runs stay deterministic.
    std::memcpy(const_cast<void*>(b->base_), b->result_.data(), b->result_.size());
  }
}

// ---------------------------------------------------------------------------
// KernelScope
// ---------------------------------------------------------------------------

KernelScope::KernelScope(const char* kernel, bool concurrent_blocks) {
  if (enabled()) session_ = std::make_unique<KernelSession>(kernel, concurrent_blocks);
}

KernelScope::~KernelScope() {
  if (!finished_) flush();
}

void KernelScope::flush() {
  finished_ = true;
  if (!session_) return;
  auto reports = session_->take_reports();
  if (!reports.empty())
    LANDAU_WARN("device-check [" << session_->kernel() << "]: " << reports.size()
                                 << " report(s)");
  DeviceChecker::instance().add(std::move(reports));
}

void KernelScope::finish() {
  if (!session_) {
    finished_ = true;
    return;
  }
  const std::size_t n = session_->n_reports();
  std::string first;
  if (n > 0 && options().strict) {
    auto reports = session_->take_reports();
    first = reports.front().str();
    DeviceChecker::instance().add(std::move(reports));
    finished_ = true;
    LANDAU_THROW("device-check strict mode: " << n << " report(s) in kernel '"
                                              << session_->kernel() << "'; first: " << first);
  }
  flush();
}

// ---------------------------------------------------------------------------
// DeviceChecker
// ---------------------------------------------------------------------------

DeviceChecker& DeviceChecker::instance() {
  static DeviceChecker checker;
  return checker;
}

void DeviceChecker::add(std::vector<Report> reports) {
  std::lock_guard<std::mutex> lock(mu_);
  total_ += static_cast<long>(reports.size());
  constexpr std::size_t kMaxKept = 4096;
  for (auto& r : reports)
    if (reports_.size() < kMaxKept) reports_.push_back(std::move(r));
}

std::vector<Report> DeviceChecker::reports() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_;
}

long DeviceChecker::count(const std::string& category) const {
  std::lock_guard<std::mutex> lock(mu_);
  long n = 0;
  for (const auto& r : reports_)
    if (r.category == category) ++n;
  return n;
}

long DeviceChecker::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void DeviceChecker::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  reports_.clear();
  total_ = 0;
}

// ---------------------------------------------------------------------------
// ScheduleShuffler
// ---------------------------------------------------------------------------

std::uint64_t ScheduleShuffler::next() {
  // splitmix64: deterministic, seedable, no <random> state size concerns.
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<std::size_t> ScheduleShuffler::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = next() % i;
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

} // namespace landau::exec::check
