#include "fem/quadrature.h"

#include <cmath>

#include "util/error.h"

namespace landau::fem {

Quadrature1D gauss_legendre(int n) {
  LANDAU_ASSERT(n >= 1 && n <= 64, "unsupported quadrature order " << n);
  Quadrature1D q;
  q.points.resize(static_cast<std::size_t>(n));
  q.weights.resize(static_cast<std::size_t>(n));
  // Newton iteration on P_n from the Chebyshev initial guess; standard
  // Golub-Welsch-free construction, accurate to machine precision for n<=64.
  for (int i = 0; i < n; ++i) {
    double x = std::cos(M_PI * (i + 0.75) / (n + 0.5));
    double pp = 0.0;
    for (int it = 0; it < 100; ++it) {
      // Evaluate P_n(x) and P_n'(x) by recurrence.
      double p0 = 1.0, p1 = x;
      for (int k = 2; k <= n; ++k) {
        const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
        p0 = p1;
        p1 = p2;
      }
      pp = n * (x * p1 - p0) / (x * x - 1.0);
      const double dx = -p1 / pp;
      x += dx;
      if (std::abs(dx) < 1e-15) break;
    }
    q.points[static_cast<std::size_t>(n - 1 - i)] = x;
    q.weights[static_cast<std::size_t>(n - 1 - i)] = 2.0 / ((1.0 - x * x) * pp * pp);
  }
  return q;
}

Quadrature2D tensor_quadrature(int n) {
  const Quadrature1D q1 = gauss_legendre(n);
  Quadrature2D q;
  q.x.reserve(static_cast<std::size_t>(n * n));
  q.y.reserve(static_cast<std::size_t>(n * n));
  q.w.reserve(static_cast<std::size_t>(n * n));
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) {
      q.x.push_back(q1.points[static_cast<std::size_t>(i)]);
      q.y.push_back(q1.points[static_cast<std::size_t>(j)]);
      q.w.push_back(q1.weights[static_cast<std::size_t>(i)] * q1.weights[static_cast<std::size_t>(j)]);
    }
  return q;
}

} // namespace landau::fem
