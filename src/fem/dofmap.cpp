#include "fem/dofmap.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/error.h"

namespace landau::fem {
namespace {

using mesh::Edge;
using mesh::Forest;

/// Exact topological identity of a node (see header).
struct NodeKey {
  std::uint8_t type; // 0 corner-lattice, 1 vertical-edge, 2 horizontal-edge, 3 interior
  std::uint8_t level;
  std::uint8_t sub;
  std::uint32_t a, b;
  bool operator==(const NodeKey& o) const {
    return type == o.type && level == o.level && sub == o.sub && a == o.a && b == o.b;
  }
};

struct NodeKeyHash {
  std::size_t operator()(const NodeKey& k) const {
    std::uint64_t h = k.type;
    h = h * 1000003u + k.level;
    h = h * 1000003u + k.sub;
    h = h * 1000003u + k.a;
    h = h * 1000003u + k.b;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

/// If 1D node i sits on the half-integer lattice {0, 1/2, 1} of its cell,
/// return twice that fraction (0, 1, 2); otherwise -1. GLL nodes are
/// symmetric, so only the endpoints and (for even k) the center qualify.
int lattice_coord(int i, int k) {
  if (i == 0) return 0;
  if (i == k) return 2;
  if (k % 2 == 0 && i == k / 2) return 1;
  return -1;
}

} // namespace

DofMap::DofMap(const Forest& forest, const Tabulation& tab)
    : order_(tab.order()), nb_(tab.n_basis()) {
  const int k = order_;
  const int n1 = k + 1;
  const int L = forest.max_level();
  const auto& leaves = forest.leaves();

  std::unordered_map<NodeKey, std::int32_t, NodeKeyHash> ids;
  cell_nodes_.assign(leaves.size() * static_cast<std::size_t>(nb_), -1);

  auto make_key = [&](const mesh::Leaf& lf, int i, int j) -> NodeKey {
    const int shift = L - lf.level;
    const int lx = lattice_coord(i, k);
    const int ly = lattice_coord(j, k);
    NodeKey key{};
    if (lx >= 0 && ly >= 0) {
      key.type = 0;
      key.a = (2u * lf.gx + static_cast<std::uint32_t>(lx)) << shift;
      key.b = (2u * lf.gy + static_cast<std::uint32_t>(ly)) << shift;
    } else if ((lx == 0 || lx == 2) && ly < 0) {
      key.type = 1; // node on a vertical cell edge
      key.level = static_cast<std::uint8_t>(lf.level);
      key.sub = static_cast<std::uint8_t>(j);
      key.a = (2u * lf.gx + static_cast<std::uint32_t>(lx)) << shift;
      key.b = lf.gy;
    } else if ((ly == 0 || ly == 2) && lx < 0) {
      key.type = 2; // node on a horizontal cell edge
      key.level = static_cast<std::uint8_t>(lf.level);
      key.sub = static_cast<std::uint8_t>(i);
      key.a = lf.gx;
      key.b = (2u * lf.gy + static_cast<std::uint32_t>(ly)) << shift;
    } else {
      key.type = 3; // cell-interior (includes even-k midlines)
      key.level = static_cast<std::uint8_t>(lf.level);
      key.sub = static_cast<std::uint8_t>(j * n1 + i);
      key.a = lf.gx;
      key.b = lf.gy;
    }
    return key;
  };

  // Pass 1: enumerate nodes.
  const auto& nodes1d = tab.basis_1d().nodes();
  for (std::size_t c = 0; c < leaves.size(); ++c) {
    const auto& lf = leaves[c];
    for (int j = 0; j < n1; ++j)
      for (int i = 0; i < n1; ++i) {
        const NodeKey key = make_key(lf, i, j);
        auto [it, inserted] = ids.try_emplace(key, static_cast<std::int32_t>(positions_.size()));
        if (inserted) {
          const double x = lf.box.x0 + lf.box.dx() * 0.5 * (nodes1d[static_cast<std::size_t>(i)] + 1.0);
          const double y = lf.box.y0 + lf.box.dy() * 0.5 * (nodes1d[static_cast<std::size_t>(j)] + 1.0);
          positions_.push_back({x, y});
        }
        cell_nodes_[c * static_cast<std::size_t>(nb_) + static_cast<std::size_t>(j * n1 + i)] =
            it->second;
      }
  }

  // Pass 2: hanging-node constraints (node-id space, possibly chained).
  std::unordered_map<std::int32_t, std::vector<DofWeight>> raw;
  std::vector<double> lweights(static_cast<std::size_t>(n1));
  for (std::size_t c = 0; c < leaves.size(); ++c) {
    const auto& lf = leaves[c];
    for (int e = 0; e < 4; ++e) {
      const auto edge = static_cast<Edge>(e);
      const auto nb = forest.neighbor(c, edge);
      if (nb.kind != Forest::NeighborInfo::Kind::Coarser) continue;

      // Local node indices along my edge and the coarse cell's matching edge,
      // both ordered by increasing coordinate along the edge.
      auto my_local = [&](int m) {
        switch (edge) {
          case Edge::XLow: return m * n1;
          case Edge::XHigh: return m * n1 + k;
          case Edge::YLow: return m;
          case Edge::YHigh: return k * n1 + m;
        }
        return 0;
      };
      auto coarse_local = [&](int m) {
        switch (edge) {
          case Edge::XLow: return m * n1 + k; // neighbor's XHigh edge
          case Edge::XHigh: return m * n1;
          case Edge::YLow: return k * n1 + m;
          case Edge::YHigh: return m;
        }
        return 0;
      };
      const bool vertical = (edge == Edge::XLow || edge == Edge::XHigh);
      const int half = vertical ? static_cast<int>(lf.gy & 1u) : static_cast<int>(lf.gx & 1u);

      auto masters = cell_nodes(static_cast<std::size_t>(nb.leaf));
      auto mine = cell_nodes(c);
      for (int m = 0; m <= k; ++m) {
        const std::int32_t node = mine[static_cast<std::size_t>(my_local(m))];
        bool shared = false;
        for (int j = 0; j <= k; ++j)
          if (masters[static_cast<std::size_t>(coarse_local(j))] == node) shared = true;
        if (shared) continue; // coincides with a coarse node (corner / even-k midpoint)
        // My node's reference coordinate on the coarse edge:
        // t_fine = (x_m+1)/2 in [0,1]; t_coarse = (half + t_fine)/2; ref = 2 t_coarse - 1.
        const double tfine = 0.5 * (nodes1d[static_cast<std::size_t>(m)] + 1.0);
        const double ref = half + tfine - 1.0;
        tab.basis_1d().eval_all(ref, lweights.data());
        std::vector<DofWeight> cons;
        for (int j = 0; j <= k; ++j)
          if (std::abs(lweights[static_cast<std::size_t>(j)]) > 1e-14)
            cons.push_back({masters[static_cast<std::size_t>(coarse_local(j))],
                            lweights[static_cast<std::size_t>(j)]});
        raw[node] = std::move(cons); // identical if written from both fine siblings
      }
    }
  }

  // Pass 3: transitive resolution (masters strictly coarser => DAG).
  std::unordered_map<std::int32_t, std::vector<DofWeight>> resolved;
  std::function<const std::vector<DofWeight>&(std::int32_t)> resolve =
      [&](std::int32_t node) -> const std::vector<DofWeight>& {
    auto rit = resolved.find(node);
    if (rit != resolved.end()) return rit->second;
    auto cit = raw.find(node);
    std::vector<DofWeight> out;
    if (cit == raw.end()) {
      out.push_back({node, 1.0});
    } else {
      for (const auto& [master, w] : cit->second)
        for (const auto& [mnode, mw] : resolve(master)) {
          bool merged = false;
          for (auto& dw : out)
            if (dw.dof == mnode) {
              dw.weight += w * mw;
              merged = true;
              break;
            }
          if (!merged) out.push_back({mnode, w * mw});
        }
    }
    return resolved.emplace(node, std::move(out)).first->second;
  };

  // Pass 4: number free nodes, build closures over free-dof indices.
  const std::size_t n_nodes_total = positions_.size();
  free_index_.assign(n_nodes_total, -1);
  n_free_ = 0;
  for (std::size_t n = 0; n < n_nodes_total; ++n)
    if (!raw.count(static_cast<std::int32_t>(n)))
      free_index_[n] = static_cast<std::int32_t>(n_free_++);

  closure_ranges_.resize(n_nodes_total);
  for (std::size_t n = 0; n < n_nodes_total; ++n) {
    const auto node = static_cast<std::int32_t>(n);
    const std::size_t offset = closure_data_.size();
    if (free_index_[n] >= 0) {
      closure_data_.push_back({free_index_[n], 1.0});
    } else {
      for (const auto& [mnode, w] : resolve(node)) {
        const std::int32_t fd = free_index_[static_cast<std::size_t>(mnode)];
        LANDAU_ASSERT(fd >= 0, "constraint chain did not terminate at a free node");
        closure_data_.push_back({fd, w});
      }
    }
    closure_ranges_[n] = {offset, closure_data_.size() - offset};
  }
}

void DofMap::expand(std::span<const double> free_values, std::span<double> node_values) const {
  LANDAU_ASSERT(free_values.size() == n_free_ && node_values.size() == n_nodes(),
                "expand size mismatch");
  for (std::size_t n = 0; n < n_nodes(); ++n) {
    double v = 0.0;
    for (const auto& [dof, w] : closure(static_cast<std::int32_t>(n)))
      v += w * free_values[static_cast<std::size_t>(dof)];
    node_values[n] = v;
  }
}

void DofMap::restrict_add(std::span<const double> node_values,
                          std::span<double> free_values) const {
  LANDAU_ASSERT(free_values.size() == n_free_ && node_values.size() == n_nodes(),
                "restrict size mismatch");
  for (std::size_t n = 0; n < n_nodes(); ++n)
    for (const auto& [dof, w] : closure(static_cast<std::int32_t>(n)))
      free_values[static_cast<std::size_t>(dof)] += w * node_values[n];
}

std::vector<std::int32_t> DofMap::cell_free_dofs(std::size_t c) const {
  std::vector<std::int32_t> dofs;
  for (auto node : cell_nodes(c))
    for (const auto& [dof, w] : closure(node)) {
      (void)w;
      if (std::find(dofs.begin(), dofs.end(), dof) == dofs.end()) dofs.push_back(dof);
    }
  std::sort(dofs.begin(), dofs.end());
  return dofs;
}

} // namespace landau::fem
