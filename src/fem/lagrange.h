#pragma once
// 1D nodal Lagrange basis of order k on Gauss-Lobatto-Legendre nodes in
// [-1,1]. GLL nodes include the endpoints (needed for C0 continuity across
// cells) and keep the interpolation well-conditioned at high order. Basis
// values and derivatives are evaluated with the barycentric formula.

#include <vector>

namespace landau::fem {

class Lagrange1D {
public:
  /// Order k >= 1 (k+1 nodes).
  explicit Lagrange1D(int order);

  int order() const { return order_; }
  int n_nodes() const { return order_ + 1; }
  const std::vector<double>& nodes() const { return nodes_; }

  /// Value of basis function j at x.
  double eval(int j, double x) const;
  /// Derivative of basis function j at x.
  double eval_deriv(int j, double x) const;

  /// Evaluate all basis functions (and derivatives) at x.
  void eval_all(double x, double* values) const;
  void eval_deriv_all(double x, double* derivs) const;

private:
  int order_;
  std::vector<double> nodes_;
  std::vector<double> bary_; // barycentric weights
};

/// Gauss-Lobatto-Legendre nodes for order k (k+1 nodes including endpoints).
std::vector<double> gauss_lobatto_nodes(int order);

} // namespace landau::fem
