#pragma once
// Global degree-of-freedom management for continuous Qk elements on the
// non-conforming (2:1 balanced) quadtree forest.
//
// Nodes are identified by exact topological keys (corner lattice points,
// edge-interior nodes keyed by their edge, cell-interior nodes keyed by
// their cell), so geometrically coincident nodes of neighboring cells merge
// without floating-point comparisons — including across refinement levels,
// where only cell corners (and, for even k, edge midpoints) coincide.
//
// Hanging nodes — nodes on a fine-cell edge whose neighbor is coarser — are
// *constrained*: their value interpolates the coarse neighbor's edge nodes
// through the coarse 1D basis. For Q3 that is 4 masters per constrained
// node, which is exactly the 4-way interpolation the paper describes in the
// assembly discussion (§V-A1). Constraint chains (a master hanging on a yet
// coarser edge through a corner) are resolved transitively.

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "exec/annotations.h"
#include "fem/tabulation.h"
#include "mesh/forest.h"

namespace landau::fem {

/// One (master dof, weight) pair of a node's closure.
struct DofWeight {
  std::int32_t dof;
  double weight;
};

class DofMap {
public:
  DofMap(const mesh::Forest& forest, const Tabulation& tab);

  int order() const { return order_; }
  std::size_t n_cells() const { return cell_nodes_.size() / static_cast<std::size_t>(nb_); }
  std::size_t n_nodes() const { return positions_.size(); }
  /// Number of unconstrained nodes == number of equations per species
  /// (the paper's "n").
  std::size_t n_free() const { return n_free_; }

  /// Global node ids of cell c's (k+1)^2 nodes, x-fastest.
  std::span<const std::int32_t> cell_nodes(std::size_t c) const {
    return {cell_nodes_.data() + c * static_cast<std::size_t>(nb_),
            static_cast<std::size_t>(nb_)};
  }

  bool is_constrained(std::int32_t node) const { return free_index_[static_cast<std::size_t>(node)] < 0; }
  /// Free-dof index of an unconstrained node; -1 for constrained nodes.
  std::int32_t free_index(std::int32_t node) const { return free_index_[static_cast<std::size_t>(node)]; }

  /// Closure of a node: list of (free dof, weight) whose combination gives
  /// the node's value. Identity for free nodes.
  LANDAU_DEVICE std::span<const DofWeight> closure(std::int32_t node) const {
    const auto& range = closure_ranges_[static_cast<std::size_t>(node)];
    return {closure_data_.data() + range.first, range.second};
  }

  /// Geometric position of a node.
  std::array<double, 2> position(std::int32_t node) const { return positions_[static_cast<std::size_t>(node)]; }

  /// Scatter free-dof values to all nodes (applying constraints).
  void expand(std::span<const double> free_values, std::span<double> node_values) const;

  /// Accumulate node-space residuals into free dofs (transpose of expand).
  void restrict_add(std::span<const double> node_values, std::span<double> free_values) const;

  /// Free dofs coupled by cell c (union of the closures of its nodes,
  /// deduplicated) — the element's assembly footprint.
  std::vector<std::int32_t> cell_free_dofs(std::size_t c) const;

private:
  int order_, nb_;
  std::vector<std::int32_t> cell_nodes_;
  std::vector<std::array<double, 2>> positions_;
  std::vector<std::int32_t> free_index_;
  std::vector<std::pair<std::size_t, std::size_t>> closure_ranges_; // (offset, count)
  std::vector<DofWeight> closure_data_;
  std::size_t n_free_ = 0;
};

} // namespace landau::fem
