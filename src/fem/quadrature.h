#pragma once
// Gauss-Legendre quadrature on [-1,1] and its tensor product on the
// reference square. Qk tensor elements use (k+1)^2 points per cell, e.g.
// Nq = 16 for the paper's Q3 elements.

#include <vector>

namespace landau::fem {

struct Quadrature1D {
  std::vector<double> points;  // in [-1,1]
  std::vector<double> weights; // sum to 2
};

/// n-point Gauss-Legendre rule (exact for polynomials of degree 2n-1).
Quadrature1D gauss_legendre(int n);

struct Quadrature2D {
  std::vector<double> x, y; // nq points on [-1,1]^2, x-fastest ordering
  std::vector<double> w;    // weights, sum to 4
  int nq() const { return static_cast<int>(w.size()); }
};

/// Tensor product of two n-point Gauss-Legendre rules.
Quadrature2D tensor_quadrature(int n);

} // namespace landau::fem
