#include "fem/transfer.h"

#include <algorithm>
#include <cmath>

#include "exec/check.h"

namespace landau::fem {

namespace {

/// Shared body of eval_point: SpanLike is std::span<const double> or the
/// device checker's instrumented checked_span view of the source dofs.
template <class SpanLike>
double eval_point_impl(const FESpace& space, const SpanLike& dofs, double r, double z) {
  const int cell = space.forest().find_point(r, z);
  if (cell < 0) return 0.0;
  const auto g = space.geometry(static_cast<std::size_t>(cell));
  const double rx = std::clamp(2.0 * (r - g.x0) / g.dx - 1.0, -1.0, 1.0);
  const double ry = std::clamp(2.0 * (z - g.y0) / g.dy - 1.0, -1.0, 1.0);
  const auto& tab = space.tabulation();
  std::vector<double> vals(static_cast<std::size_t>(tab.n_basis()));
  tab.eval_basis(rx, ry, vals.data());
  // Nodal values (constraints applied) gathered for this cell only.
  const auto& dm = space.dofmap();
  const auto nodes = dm.cell_nodes(static_cast<std::size_t>(cell));
  double v = 0.0;
  for (int b = 0; b < tab.n_basis(); ++b) {
    double coeff = 0.0;
    for (const auto& [dof, w] : dm.closure(nodes[static_cast<std::size_t>(b)]))
      coeff += w * dofs[static_cast<std::size_t>(dof)];
    v += vals[static_cast<std::size_t>(b)] * coeff;
  }
  return v;
}

} // namespace

double eval_point(const FESpace& space, std::span<const double> dofs, double r, double z) {
  return eval_point_impl(space, dofs, r, z);
}

la::Vec transfer(const FESpace& from, std::span<const double> dofs, const FESpace& to) {
  LANDAU_ASSERT(dofs.size() == from.n_dofs(), "transfer: source dof count mismatch");
  // Multigrid transfer under the device checker: a serial pseudo-kernel that
  // validates every gather from the source grid's dof array (bounds and
  // initialization; there is no concurrency to race).
  namespace check = exec::check;
  check::KernelScope chk("fem:transfer", /*concurrent_blocks=*/false);
  auto ref = chk.in(dofs, "transfer.src");
  check::ThreadCtx tc;
  tc.session = chk.session();
  check::checked_span<const double> src(ref, &tc);
  la::Vec out = to.interpolate(
      [&](double r, double z) { return eval_point_impl(from, src, r, z); });
  chk.finish();
  return out;
}

std::function<bool(const mesh::Box&, int)> gradient_indicator(const FESpace& space,
                                                              std::span<const double> dofs,
                                                              double tol, int max_level) {
  // Precompute the global scale once.
  double fmax = 0.0;
  for (double v : dofs) fmax = std::max(fmax, std::abs(v));
  const double threshold = tol * std::max(fmax, 1e-300);
  // Copy the dofs so the indicator outlives the caller's vector.
  std::vector<double> copy(dofs.begin(), dofs.end());
  const FESpace* sp = &space;
  return [sp, copy = std::move(copy), threshold, max_level](const mesh::Box& b, int level) {
    if (level >= max_level) return false;
    // Field range across the cell corners and center.
    double lo = 1e300, hi = -1e300;
    for (auto [x, y] : {std::pair{b.x0, b.y0}, {b.x1, b.y0}, {b.x0, b.y1}, {b.x1, b.y1},
                        {b.cx(), b.cy()}}) {
      const double v = eval_point(*sp, copy, x, y);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return hi - lo > threshold;
  };
}

} // namespace landau::fem
