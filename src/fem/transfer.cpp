#include "fem/transfer.h"

#include <algorithm>
#include <cmath>

namespace landau::fem {

double eval_point(const FESpace& space, std::span<const double> dofs, double r, double z) {
  const int cell = space.forest().find_point(r, z);
  if (cell < 0) return 0.0;
  const auto g = space.geometry(static_cast<std::size_t>(cell));
  const double rx = std::clamp(2.0 * (r - g.x0) / g.dx - 1.0, -1.0, 1.0);
  const double ry = std::clamp(2.0 * (z - g.y0) / g.dy - 1.0, -1.0, 1.0);
  const auto& tab = space.tabulation();
  std::vector<double> vals(static_cast<std::size_t>(tab.n_basis()));
  tab.eval_basis(rx, ry, vals.data());
  // Nodal values (constraints applied) gathered for this cell only.
  const auto& dm = space.dofmap();
  const auto nodes = dm.cell_nodes(static_cast<std::size_t>(cell));
  double v = 0.0;
  for (int b = 0; b < tab.n_basis(); ++b) {
    double coeff = 0.0;
    for (const auto& [dof, w] : dm.closure(nodes[static_cast<std::size_t>(b)]))
      coeff += w * dofs[static_cast<std::size_t>(dof)];
    v += vals[static_cast<std::size_t>(b)] * coeff;
  }
  return v;
}

la::Vec transfer(const FESpace& from, std::span<const double> dofs, const FESpace& to) {
  LANDAU_ASSERT(dofs.size() == from.n_dofs(), "transfer: source dof count mismatch");
  return to.interpolate(
      [&](double r, double z) { return eval_point(from, dofs, r, z); });
}

std::function<bool(const mesh::Box&, int)> gradient_indicator(const FESpace& space,
                                                              std::span<const double> dofs,
                                                              double tol, int max_level) {
  // Precompute the global scale once.
  double fmax = 0.0;
  for (double v : dofs) fmax = std::max(fmax, std::abs(v));
  const double threshold = tol * std::max(fmax, 1e-300);
  // Copy the dofs so the indicator outlives the caller's vector.
  std::vector<double> copy(dofs.begin(), dofs.end());
  const FESpace* sp = &space;
  return [sp, copy = std::move(copy), threshold, max_level](const mesh::Box& b, int level) {
    if (level >= max_level) return false;
    // Field range across the cell corners and center.
    double lo = 1e300, hi = -1e300;
    for (auto [x, y] : {std::pair{b.x0, b.y0}, {b.x1, b.y0}, {b.x0, b.y1}, {b.x1, b.y1},
                        {b.cx(), b.cy()}}) {
      const double v = eval_point(*sp, copy, x, y);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return hi - lo > threshold;
  };
}

} // namespace landau::fem
