#pragma once
// Continuous Qk finite element space on the adaptive forest: geometry
// factors, interpolation, evaluation at integration points, cylindrical
// moments, and the (cylindrically weighted) mass matrix. This is the
// discretization layer the Landau operator builds on.
//
// All integrals carry the axisymmetric velocity-space measure
//   d\mu = 2*pi * r dr dz,
// with coordinates (r, z) = (v_perp, v_par) as in §II-A of the paper.

#include <array>
#include <functional>
#include <memory>
#include <span>

#include "exec/annotations.h"
#include "fem/dofmap.h"
#include "fem/tabulation.h"
#include "la/csr.h"
#include "la/vec.h"
#include "mesh/forest.h"

namespace landau::fem {

class FESpace {
public:
  FESpace(const mesh::Forest& forest, int order);

  const mesh::Forest& forest() const { return *forest_; }
  const Tabulation& tabulation() const { return tab_; }
  const DofMap& dofmap() const { return dofmap_; }

  int order() const { return tab_.order(); }
  std::size_t n_cells() const { return forest_->n_leaves(); }
  std::size_t n_dofs() const { return dofmap_.n_free(); }
  int n_quad_per_cell() const { return tab_.n_quad(); }
  std::size_t n_ips() const { return n_cells() * static_cast<std::size_t>(tab_.n_quad()); }

  /// Geometry of cell c (axis-aligned rectangles: diagonal Jacobian).
  struct CellGeometry {
    double x0, y0, dx, dy;
    double detj;          // dx*dy/4
    double jinv[2];       // {2/dx, 2/dy}
  };
  LANDAU_DEVICE CellGeometry geometry(std::size_t c) const;

  /// Nodal interpolation of an analytic function into the free dofs.
  la::Vec interpolate(const std::function<double(double, double)>& f) const;

  /// L2 projection in the cylindrical inner product: solves M x = b with
  /// b_i = (psi_i, f). Unlike interpolation, projection preserves the
  /// function's moments against every test function in the space — the
  /// conservative way to initialize distribution functions.
  la::Vec project_l2(const std::function<double(double, double)>& f) const;

  /// Evaluate a dof vector at every integration point. Outputs are global
  /// IP arrays of size n_ips() (SoA layout, IP index = cell*Nq + q).
  void eval_at_ips(std::span<const double> free, std::span<double> values,
                   std::span<double> grad_r, std::span<double> grad_z) const;

  /// Coordinates and weights of all integration points (SoA). Weights are
  /// qw * detJ (the cylindrical factor 2*pi*r is applied by the caller).
  void ip_coordinates(std::span<double> r, std::span<double> z, std::span<double> w) const;

  /// Cylindrical moment \int g(r,z) f d\mu of a dof vector.
  double moment(std::span<const double> free,
                const std::function<double(double, double)>& g) const;

  /// Sparsity of an operator coupling free dofs within each cell.
  la::SparsityPattern sparsity() const;

  /// Assemble the cylindrically weighted mass matrix M_ij = (psi_i, psi_j)
  /// (reference CPU path; the exec-model mass kernel in core/ must match).
  void assemble_mass(la::CsrMatrix& m) const;

  /// Add an element matrix (node space, nb x nb) into a global matrix,
  /// distributing constrained contributions to master dofs — the
  /// "Transform&Assemble" interpolation step of Algorithm 1.
  void add_element_matrix(std::size_t cell, const la::DenseMatrix& ke, la::CsrMatrix& a,
                          bool atomic = false) const;

private:
  const mesh::Forest* forest_;
  Tabulation tab_;
  DofMap dofmap_;
};

} // namespace landau::fem
