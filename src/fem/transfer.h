#pragma once
// Mesh-to-mesh field transfer for solution-driven regridding: after the
// distribution function evolves (e.g. the quench's cold bulk + hot tail),
// the AMR front end builds a better-adapted forest and the state moves to
// the new space. Transfer is by nodal interpolation of the old FE function
// (point location in the old forest + basis evaluation), which is exact
// whenever the new space resolves the old one — in particular under pure
// refinement, where the spaces are nested.

#include <functional>

#include "fem/fespace.h"
#include "la/vec.h"

namespace landau::fem {

/// Evaluate an FE function (free-dof vector) at an arbitrary physical point.
/// Points outside the old domain evaluate to 0 (velocity-space tails).
double eval_point(const FESpace& space, std::span<const double> dofs, double r, double z);

/// Interpolate a field from one space onto another.
la::Vec transfer(const FESpace& from, std::span<const double> dofs, const FESpace& to);

/// Gradient-based refinement indicator for regridding: marks a cell when the
/// field's range across its nodes exceeds `tol` times the field's global
/// max. Use with Forest::refine_where through mesh rebuild.
std::function<bool(const mesh::Box&, int)> gradient_indicator(const FESpace& space,
                                                              std::span<const double> dofs,
                                                              double tol, int max_level);

} // namespace landau::fem
