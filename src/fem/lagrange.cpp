#include "fem/lagrange.h"

#include <cmath>

#include "util/error.h"

namespace landau::fem {

std::vector<double> gauss_lobatto_nodes(int order) {
  LANDAU_ASSERT(order >= 1 && order <= 16, "unsupported element order " << order);
  const int n = order + 1;
  std::vector<double> x(static_cast<std::size_t>(n));
  x[0] = -1.0;
  x[static_cast<std::size_t>(n - 1)] = 1.0;
  // Interior GLL nodes are the roots of P'_{n-1}; Newton from Chebyshev guess.
  for (int i = 1; i < n - 1; ++i) {
    double xi = -std::cos(M_PI * i / (n - 1));
    for (int it = 0; it < 100; ++it) {
      // P_{n-1}(xi) and derivatives by recurrence.
      double p0 = 1.0, p1 = xi;
      for (int k = 2; k <= n - 1; ++k) {
        const double p2 = ((2.0 * k - 1.0) * xi * p1 - (k - 1.0) * p0) / k;
        p0 = p1;
        p1 = p2;
      }
      const double m = n - 1;
      const double dp = m * (xi * p1 - p0) / (xi * xi - 1.0);        // P'_{n-1}
      const double d2p = (2.0 * xi * dp - m * (m + 1.0) * p1) / (1.0 - xi * xi); // P''_{n-1}
      const double dx = -dp / d2p;
      xi += dx;
      if (std::abs(dx) < 1e-15) break;
    }
    x[static_cast<std::size_t>(i)] = xi;
  }
  // Enforce exact symmetry (the dof map relies on the center node of even
  // orders being exactly 0 and on mirrored nodes being exact negatives).
  for (int i = 0; i < n / 2; ++i)
    x[static_cast<std::size_t>(i)] = -x[static_cast<std::size_t>(n - 1 - i)];
  if (n % 2 == 1) x[static_cast<std::size_t>(n / 2)] = 0.0;
  return x;
}

Lagrange1D::Lagrange1D(int order) : order_(order), nodes_(gauss_lobatto_nodes(order)) {
  const int n = n_nodes();
  bary_.assign(static_cast<std::size_t>(n), 1.0);
  for (int j = 0; j < n; ++j) {
    double w = 1.0;
    for (int i = 0; i < n; ++i)
      if (i != j) w *= nodes_[static_cast<std::size_t>(j)] - nodes_[static_cast<std::size_t>(i)];
    bary_[static_cast<std::size_t>(j)] = 1.0 / w;
  }
}

double Lagrange1D::eval(int j, double x) const {
  const int n = n_nodes();
  // Exact hit on a node.
  for (int i = 0; i < n; ++i)
    if (x == nodes_[static_cast<std::size_t>(i)]) return i == j ? 1.0 : 0.0;
  // l_j(x) = w_j/(x-x_j) * prod_i (x-x_i).
  double prod = 1.0;
  for (int i = 0; i < n; ++i) prod *= x - nodes_[static_cast<std::size_t>(i)];
  return prod * bary_[static_cast<std::size_t>(j)] / (x - nodes_[static_cast<std::size_t>(j)]);
}

double Lagrange1D::eval_deriv(int j, double x) const {
  // l_j'(x) = l_j(x) * sum_{i != j} 1/(x - x_i) away from nodes; at a node use
  // the standard differentiation-matrix formulas.
  const int n = n_nodes();
  for (int m = 0; m < n; ++m) {
    if (x == nodes_[static_cast<std::size_t>(m)]) {
      if (m == j) {
        double s = 0.0;
        for (int i = 0; i < n; ++i)
          if (i != j) s += 1.0 / (x - nodes_[static_cast<std::size_t>(i)]);
        return s;
      }
      // D[m][j] = (w_j / w_m) / (x_m - x_j)
      return (bary_[static_cast<std::size_t>(j)] / bary_[static_cast<std::size_t>(m)]) /
             (nodes_[static_cast<std::size_t>(m)] - nodes_[static_cast<std::size_t>(j)]);
    }
  }
  double s = 0.0;
  for (int i = 0; i < n; ++i)
    if (i != j) s += 1.0 / (x - nodes_[static_cast<std::size_t>(i)]);
  return eval(j, x) * s;
}

void Lagrange1D::eval_all(double x, double* values) const {
  for (int j = 0; j < n_nodes(); ++j) values[j] = eval(j, x);
}

void Lagrange1D::eval_deriv_all(double x, double* derivs) const {
  for (int j = 0; j < n_nodes(); ++j) derivs[j] = eval_deriv(j, x);
}

} // namespace landau::fem
