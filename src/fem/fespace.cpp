#include "fem/fespace.h"

#include <cmath>

#include "la/gmres.h"
#include "util/special_math.h"

namespace landau::fem {

FESpace::FESpace(const mesh::Forest& forest, int order)
    : forest_(&forest), tab_(order), dofmap_(forest, tab_) {}

FESpace::CellGeometry FESpace::geometry(std::size_t c) const {
  const auto& box = forest_->leaf(c).box;
  CellGeometry g;
  g.x0 = box.x0;
  g.y0 = box.y0;
  g.dx = box.dx();
  g.dy = box.dy();
  g.detj = 0.25 * g.dx * g.dy;
  g.jinv[0] = 2.0 / g.dx;
  g.jinv[1] = 2.0 / g.dy;
  return g;
}

la::Vec FESpace::interpolate(const std::function<double(double, double)>& f) const {
  la::Vec v(dofmap_.n_free());
  for (std::size_t n = 0; n < dofmap_.n_nodes(); ++n) {
    const std::int32_t fd = dofmap_.free_index(static_cast<std::int32_t>(n));
    if (fd < 0) continue;
    const auto p = dofmap_.position(static_cast<std::int32_t>(n));
    v[static_cast<std::size_t>(fd)] = f(p[0], p[1]);
  }
  return v;
}

la::Vec FESpace::project_l2(const std::function<double(double, double)>& f) const {
  // Right-hand side b_a = \int 2 pi r psi_a f, assembled with the same
  // quadrature as the mass matrix so the projection identity is exact.
  const int nq = tab_.n_quad();
  const int nb = tab_.n_basis();
  std::vector<double> node_rhs(dofmap_.n_nodes(), 0.0);
  for (std::size_t c = 0; c < n_cells(); ++c) {
    const auto geom = geometry(c);
    const auto nodes = dofmap_.cell_nodes(c);
    for (int q = 0; q < nq; ++q) {
      const double r = geom.x0 + 0.5 * geom.dx * (tab_.qx(q) + 1.0);
      const double z = geom.y0 + 0.5 * geom.dy * (tab_.qy(q) + 1.0);
      const double wq = 2.0 * kPi * r * tab_.qw(q) * geom.detj * f(r, z);
      for (int b = 0; b < nb; ++b)
        node_rhs[static_cast<std::size_t>(nodes[static_cast<std::size_t>(b)])] +=
            wq * tab_.B(q, b);
    }
  }
  la::Vec rhs(dofmap_.n_free());
  dofmap_.restrict_add(node_rhs, rhs.span());

  la::CsrMatrix m(sparsity());
  assemble_mass(m);
  la::Vec x(dofmap_.n_free());
  la::GmresOptions opts;
  opts.rtol = 1e-13;
  opts.max_iterations = 5000;
  const auto res = la::gmres_solve(m, rhs, x, opts);
  LANDAU_ASSERT(res.converged, "mass solve for L2 projection did not converge");
  return x;
}

void FESpace::eval_at_ips(std::span<const double> free, std::span<double> values,
                          std::span<double> grad_r, std::span<double> grad_z) const {
  LANDAU_ASSERT(values.size() == n_ips() && grad_r.size() == n_ips() && grad_z.size() == n_ips(),
                "eval_at_ips output size mismatch");
  std::vector<double> nodal(dofmap_.n_nodes());
  dofmap_.expand(free, nodal);
  const int nq = tab_.n_quad();
  const int nb = tab_.n_basis();
  for (std::size_t c = 0; c < n_cells(); ++c) {
    const auto geom = geometry(c);
    const auto nodes = dofmap_.cell_nodes(c);
    for (int q = 0; q < nq; ++q) {
      double v = 0.0, gx = 0.0, gy = 0.0;
      for (int b = 0; b < nb; ++b) {
        const double coeff = nodal[static_cast<std::size_t>(nodes[static_cast<std::size_t>(b)])];
        v += tab_.B(q, b) * coeff;
        gx += tab_.E(q, b, 0) * coeff;
        gy += tab_.E(q, b, 1) * coeff;
      }
      const std::size_t ip = c * static_cast<std::size_t>(nq) + static_cast<std::size_t>(q);
      values[ip] = v;
      grad_r[ip] = gx * geom.jinv[0];
      grad_z[ip] = gy * geom.jinv[1];
    }
  }
}

void FESpace::ip_coordinates(std::span<double> r, std::span<double> z, std::span<double> w) const {
  LANDAU_ASSERT(r.size() == n_ips() && z.size() == n_ips() && w.size() == n_ips(),
                "ip_coordinates output size mismatch");
  const int nq = tab_.n_quad();
  for (std::size_t c = 0; c < n_cells(); ++c) {
    const auto geom = geometry(c);
    for (int q = 0; q < nq; ++q) {
      const std::size_t ip = c * static_cast<std::size_t>(nq) + static_cast<std::size_t>(q);
      r[ip] = geom.x0 + 0.5 * geom.dx * (tab_.qx(q) + 1.0);
      z[ip] = geom.y0 + 0.5 * geom.dy * (tab_.qy(q) + 1.0);
      w[ip] = tab_.qw(q) * geom.detj;
    }
  }
}

double FESpace::moment(std::span<const double> free,
                       const std::function<double(double, double)>& g) const {
  std::vector<double> vals(n_ips()), gr(n_ips()), gz(n_ips());
  std::vector<double> r(n_ips()), z(n_ips()), w(n_ips());
  eval_at_ips(free, vals, gr, gz);
  ip_coordinates(r, z, w);
  double m = 0.0;
  for (std::size_t ip = 0; ip < n_ips(); ++ip)
    m += 2.0 * kPi * r[ip] * w[ip] * g(r[ip], z[ip]) * vals[ip];
  return m;
}

la::SparsityPattern FESpace::sparsity() const {
  la::SparsityPattern pattern(n_dofs(), n_dofs());
  for (std::size_t c = 0; c < n_cells(); ++c) {
    const auto dofs = dofmap_.cell_free_dofs(c);
    pattern.add_clique(dofs);
  }
  pattern.compress();
  return pattern;
}

void FESpace::add_element_matrix(std::size_t cell, const la::DenseMatrix& ke, la::CsrMatrix& a,
                                 bool atomic) const {
  const auto nodes = dofmap_.cell_nodes(cell);
  const std::size_t nb = nodes.size();
  LANDAU_ASSERT(ke.rows() == nb && ke.cols() == nb, "element matrix shape mismatch");
  for (std::size_t bi = 0; bi < nb; ++bi) {
    const auto ci = dofmap_.closure(nodes[bi]);
    for (std::size_t bj = 0; bj < nb; ++bj) {
      const double v = ke(bi, bj);
      if (v == 0.0) continue;
      const auto cj = dofmap_.closure(nodes[bj]);
      for (const auto& [di, wi] : ci)
        for (const auto& [dj, wj] : cj) {
          const double contrib = wi * wj * v;
          if (atomic)
            a.add_atomic(static_cast<std::size_t>(di), static_cast<std::size_t>(dj), contrib);
          else
            a.add(static_cast<std::size_t>(di), static_cast<std::size_t>(dj), contrib);
        }
    }
  }
}

void FESpace::assemble_mass(la::CsrMatrix& m) const {
  const int nq = tab_.n_quad();
  const int nb = tab_.n_basis();
  la::DenseMatrix ke(static_cast<std::size_t>(nb), static_cast<std::size_t>(nb));
  for (std::size_t c = 0; c < n_cells(); ++c) {
    const auto geom = geometry(c);
    ke.zero();
    for (int q = 0; q < nq; ++q) {
      const double r = geom.x0 + 0.5 * geom.dx * (tab_.qx(q) + 1.0);
      const double wq = 2.0 * kPi * r * tab_.qw(q) * geom.detj;
      for (int bi = 0; bi < nb; ++bi)
        for (int bj = 0; bj < nb; ++bj)
          ke(static_cast<std::size_t>(bi), static_cast<std::size_t>(bj)) +=
              wq * tab_.B(q, bi) * tab_.B(q, bj);
    }
    add_element_matrix(c, ke, m);
  }
}

} // namespace landau::fem
