#include "fem/tabulation.h"

#include <vector>

namespace landau::fem {

Tabulation::Tabulation(int order)
    : order_(order),
      nb_((order + 1) * (order + 1)),
      nq_((order + 1) * (order + 1)),
      basis_(order),
      quad_(tensor_quadrature(order + 1)) {
  b_.resize(static_cast<std::size_t>(nq_ * nb_));
  e_.resize(static_cast<std::size_t>(nq_ * nb_ * 2));
  for (int q = 0; q < nq_; ++q) {
    std::vector<double> vals(static_cast<std::size_t>(nb_));
    std::vector<double> grads(static_cast<std::size_t>(nb_ * 2));
    eval_basis(qx(q), qy(q), vals.data());
    eval_basis_grad(qx(q), qy(q), grads.data());
    for (int b = 0; b < nb_; ++b) {
      b_[static_cast<std::size_t>(q * nb_ + b)] = vals[static_cast<std::size_t>(b)];
      e_[static_cast<std::size_t>((q * nb_ + b) * 2 + 0)] = grads[static_cast<std::size_t>(b * 2 + 0)];
      e_[static_cast<std::size_t>((q * nb_ + b) * 2 + 1)] = grads[static_cast<std::size_t>(b * 2 + 1)];
    }
  }
}

void Tabulation::eval_basis(double x, double y, double* values) const {
  const int n1 = order_ + 1;
  std::vector<double> lx(static_cast<std::size_t>(n1)), ly(static_cast<std::size_t>(n1));
  basis_.eval_all(x, lx.data());
  basis_.eval_all(y, ly.data());
  for (int j = 0; j < n1; ++j)
    for (int i = 0; i < n1; ++i)
      values[j * n1 + i] = lx[static_cast<std::size_t>(i)] * ly[static_cast<std::size_t>(j)];
}

void Tabulation::eval_basis_grad(double x, double y, double* grads) const {
  const int n1 = order_ + 1;
  std::vector<double> lx(static_cast<std::size_t>(n1)), ly(static_cast<std::size_t>(n1));
  std::vector<double> dx(static_cast<std::size_t>(n1)), dy(static_cast<std::size_t>(n1));
  basis_.eval_all(x, lx.data());
  basis_.eval_all(y, ly.data());
  basis_.eval_deriv_all(x, dx.data());
  basis_.eval_deriv_all(y, dy.data());
  for (int j = 0; j < n1; ++j)
    for (int i = 0; i < n1; ++i) {
      grads[(j * n1 + i) * 2 + 0] = dx[static_cast<std::size_t>(i)] * ly[static_cast<std::size_t>(j)];
      grads[(j * n1 + i) * 2 + 1] = lx[static_cast<std::size_t>(i)] * dy[static_cast<std::size_t>(j)];
    }
}

} // namespace landau::fem
