#pragma once
// Finite element tabulation for tensor-product Qk elements on the reference
// square: basis values B and reference gradients E at the tensor
// Gauss-Legendre quadrature points. These are the "B" and "E" tables passed
// to the GPU kernel in Algorithm 1. Nq == Nb for these elements (e.g. 16 for
// Q3), as the paper notes.

#include <vector>

#include "exec/annotations.h"
#include "fem/lagrange.h"
#include "fem/quadrature.h"

namespace landau::fem {

class Tabulation {
public:
  explicit Tabulation(int order);

  int order() const { return order_; }
  int n_basis() const { return nb_; } // (k+1)^2, node x-fastest
  int n_quad() const { return nq_; }  // (k+1)^2, point x-fastest

  /// Basis value B[q][b].
  LANDAU_DEVICE double B(int q, int b) const {
    return b_[static_cast<std::size_t>(q * nb_ + b)];
  }
  /// Reference gradient E[q][b][d], d in {0,1}.
  LANDAU_DEVICE double E(int q, int b, int d) const {
    return e_[static_cast<std::size_t>((q * nb_ + b) * 2 + d)];
  }

  /// Quadrature point coordinates and weights on [-1,1]^2.
  LANDAU_DEVICE double qx(int q) const { return quad_.x[static_cast<std::size_t>(q)]; }
  LANDAU_DEVICE double qy(int q) const { return quad_.y[static_cast<std::size_t>(q)]; }
  LANDAU_DEVICE double qw(int q) const { return quad_.w[static_cast<std::size_t>(q)]; }

  /// Reference coordinates of node b.
  double node_x(int b) const { return basis_.nodes()[static_cast<std::size_t>(b % (order_ + 1))]; }
  double node_y(int b) const { return basis_.nodes()[static_cast<std::size_t>(b / (order_ + 1))]; }

  const Lagrange1D& basis_1d() const { return basis_; }

  /// Evaluate all 2D basis functions at an arbitrary reference point.
  void eval_basis(double x, double y, double* values) const;
  void eval_basis_grad(double x, double y, double* grads /* nb x 2 */) const;

private:
  int order_, nb_, nq_;
  Lagrange1D basis_;
  Quadrature2D quad_;
  std::vector<double> b_; // nq x nb
  std::vector<double> e_; // nq x nb x 2
};

} // namespace landau::fem
