#include "la/dense.h"

#include <cmath>

namespace landau::la {

void DenseMatrix::mult(const Vec& x, Vec& y) const {
  LANDAU_ASSERT(x.size() == cols_ && y.size() == rows_, "dense mult size mismatch");
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    const double* a = row(i);
    for (std::size_t j = 0; j < cols_; ++j) s += a[j] * x[j];
    y[i] = s;
  }
}

void DenseMatrix::mult_add(const Vec& x, Vec& y) const {
  LANDAU_ASSERT(x.size() == cols_ && y.size() == rows_, "dense mult_add size mismatch");
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    const double* a = row(i);
    for (std::size_t j = 0; j < cols_; ++j) s += a[j] * x[j];
    y[i] += s;
  }
}

void DenseMatrix::mult_transpose(const Vec& x, Vec& y) const {
  LANDAU_ASSERT(x.size() == rows_ && y.size() == cols_, "dense mult_transpose size mismatch");
  y.zero();
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a = row(i);
    for (std::size_t j = 0; j < cols_; ++j) y[j] += a[j] * x[i];
  }
}

double DenseMatrix::norm_frobenius() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

DenseLU::DenseLU(DenseMatrix a) : lu_(std::move(a)) {
  LANDAU_ASSERT(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  pivots_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t p = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best == 0.0) LANDAU_THROW("singular matrix in dense LU at column " << k);
    pivots_[k] = static_cast<int>(p);
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
      pivot_sign_ = -pivot_sign_;
    }
    const double inv = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) * inv;
      lu_(i, k) = m;
      const double* rk = lu_.row(k);
      double* ri = lu_.row(i);
      for (std::size_t j = k + 1; j < n; ++j) ri[j] -= m * rk[j];
    }
  }
}

void DenseLU::solve(const Vec& b, Vec& x) const {
  const std::size_t n = size();
  LANDAU_ASSERT(b.size() == n && x.size() == n, "dense solve size mismatch");
  if (&x != &b) std::copy(b.begin(), b.end(), x.begin());
  // Apply pivots and forward substitution (L has unit diagonal).
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t p = static_cast<std::size_t>(pivots_[k]);
    if (p != k) std::swap(x[k], x[p]);
    const double xk = x[k];
    for (std::size_t i = k + 1; i < n; ++i) x[i] -= lu_(i, k) * xk;
  }
  // Back substitution with U.
  for (std::size_t k = n; k-- > 0;) {
    double s = x[k];
    const double* rk = lu_.row(k);
    for (std::size_t j = k + 1; j < n; ++j) s -= rk[j] * x[j];
    x[k] = s / rk[k];
  }
}

double DenseLU::determinant() const {
  double d = pivot_sign_;
  for (std::size_t k = 0; k < size(); ++k) d *= lu_(k, k);
  return d;
}

} // namespace landau::la
