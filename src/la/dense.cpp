#include "la/dense.h"

#include <cmath>

namespace landau::la {

void DenseMatrix::mult(const Vec& x, Vec& y) const {
  LANDAU_ASSERT(x.size() == cols_ && y.size() == rows_, "dense mult size mismatch");
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    const double* a = row(i);
    for (std::size_t j = 0; j < cols_; ++j) s += a[j] * x[j];
    y[i] = s;
  }
}

void DenseMatrix::mult_add(const Vec& x, Vec& y) const {
  LANDAU_ASSERT(x.size() == cols_ && y.size() == rows_, "dense mult_add size mismatch");
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    const double* a = row(i);
    for (std::size_t j = 0; j < cols_; ++j) s += a[j] * x[j];
    y[i] += s;
  }
}

void DenseMatrix::mult_transpose(const Vec& x, Vec& y) const {
  LANDAU_ASSERT(x.size() == rows_ && y.size() == cols_, "dense mult_transpose size mismatch");
  y.zero();
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a = row(i);
    for (std::size_t j = 0; j < cols_; ++j) y[j] += a[j] * x[i];
  }
}

double DenseMatrix::norm_frobenius() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

DenseLU::DenseLU(DenseMatrix a) : lu_(std::move(a)) {
  LANDAU_ASSERT(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  // Row scales for scaled partial pivoting. Landau Jacobians mix rows whose
  // magnitudes differ by many orders (cell volumes across AMR levels), and
  // raw-magnitude pivoting then selects rows that dominate only by scale —
  // the factors lose all accuracy. Pivoting on |a_ik| / max_j |a_ij| is
  // scale-invariant and restores a backward-stable solve.
  std::vector<double> scale(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* ri = lu_.row(i);
    for (std::size_t j = 0; j < n; ++j) scale[i] = std::max(scale[i], std::abs(ri[j]));
    if (scale[i] == 0.0) LANDAU_THROW("singular matrix in dense LU: zero row " << i);
  }
  pivots_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Scaled partial pivot.
    std::size_t p = k;
    double best = std::abs(lu_(k, k)) / scale[k];
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k)) / scale[i];
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (lu_(p, k) == 0.0) LANDAU_THROW("singular matrix in dense LU at column " << k);
    pivots_[k] = static_cast<int>(p);
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
      std::swap(scale[k], scale[p]);
      pivot_sign_ = -pivot_sign_;
    }
    const double inv = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) * inv;
      lu_(i, k) = m;
      const double* rk = lu_.row(k);
      double* ri = lu_.row(i);
      for (std::size_t j = k + 1; j < n; ++j) ri[j] -= m * rk[j];
    }
  }
}

void DenseLU::solve(const Vec& b, Vec& x) const {
  const std::size_t n = size();
  LANDAU_ASSERT(b.size() == n && x.size() == n, "dense solve size mismatch");
  if (&x != &b) std::copy(b.begin(), b.end(), x.begin());
  // Apply pivots and forward substitution (L has unit diagonal).
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t p = static_cast<std::size_t>(pivots_[k]);
    if (p != k) std::swap(x[k], x[p]);
    const double xk = x[k];
    for (std::size_t i = k + 1; i < n; ++i) x[i] -= lu_(i, k) * xk;
  }
  // Back substitution with U.
  for (std::size_t k = n; k-- > 0;) {
    double s = x[k];
    const double* rk = lu_.row(k);
    for (std::size_t j = k + 1; j < n; ++j) s -= rk[j] * x[j];
    x[k] = s / rk[k];
  }
}

double DenseLU::determinant() const {
  double d = pivot_sign_;
  for (std::size_t k = 0; k < size(); ++k) d *= lu_(k, k);
  return d;
}

} // namespace landau::la
