#pragma once
// Band-storage matrix and the custom banded LU solver described in §III-G:
// reverse Cuthill–McKee ordering minimizes bandwidth, then the standard
// outer-product form of banded LU (Golub & Van Loan, Algorithm 4.3.1) factors
// the matrix in place without pivoting. Landau Jacobians are structurally
// symmetric, so LBW == UBW in practice, but the storage supports LBW != UBW.

#include <cstdint>
#include <vector>

#include "la/csr.h"
#include "la/vec.h"

namespace landau::la {

/// Row-major band storage: entry A(i,j) with -lbw <= j-i <= ubw lives at
/// data[i*(lbw+ubw+1) + (j-i+lbw)].
class BandMatrix {
public:
  BandMatrix() = default;
  BandMatrix(std::size_t n, std::size_t lbw, std::size_t ubw)
      : n_(n), lbw_(lbw), ubw_(ubw), width_(lbw + ubw + 1), data_(n * width_, 0.0) {}

  /// Gather a (sub)matrix of A, rows/cols [row_begin, row_end) in the order
  /// given by perm (perm[new] = old), into band storage. Entries of A outside
  /// the band of the permuted matrix would be dropped, so the band widths are
  /// computed from the permuted pattern first (use from_csr).
  static BandMatrix from_csr(const CsrMatrix& a, const std::vector<std::int32_t>& perm,
                             std::size_t row_begin, std::size_t row_end);

  std::size_t size() const { return n_; }
  std::size_t lower_bandwidth() const { return lbw_; }
  std::size_t upper_bandwidth() const { return ubw_; }

  double& at(std::size_t i, std::size_t j) { return data_[i * width_ + (j - i + lbw_)]; }
  double at(std::size_t i, std::size_t j) const { return data_[i * width_ + (j - i + lbw_)]; }
  bool in_band(std::size_t i, std::size_t j) const {
    return (j + lbw_ >= i) && (j <= i + ubw_);
  }

  /// In-place LU factorization without pivoting (outer-product form). Throws
  /// on a (near-)zero pivot. Returns the number of floating point operations
  /// performed (used by the roofline bench).
  std::int64_t factor_lu();

  /// Solve LU x = b after factor_lu(); b and x may alias.
  void solve(const Vec& b, Vec& x) const;

  /// y = A x (only valid before factorization).
  void mult(const Vec& x, Vec& y) const;

private:
  std::size_t n_ = 0, lbw_ = 0, ubw_ = 0, width_ = 1;
  std::vector<double> data_;
};

/// Direct solver for the (possibly block-diagonal) Landau Jacobian:
/// computes RCM once per pattern, detects diagonal blocks from graph
/// components, factors each block as an independent banded LU — the species
/// independence the CUDA band solver exploits with grid-group sync.
class BlockBandSolver {
public:
  BlockBandSolver() = default;

  /// Analyze the pattern (RCM + component detection). Must be re-run if the
  /// pattern changes; values may change freely between factor() calls.
  void analyze(const CsrMatrix& a);

  /// Factor the current values of a (pattern must match analyze()).
  void factor(const CsrMatrix& a);

  /// Solve A x = b with the factored matrix.
  void solve(const Vec& b, Vec& x) const;

  std::size_t n_blocks() const { return blocks_.size(); }
  std::size_t bandwidth() const { return bandwidth_; }
  bool analyzed() const { return !perm_.empty(); }

private:
  struct Block {
    std::size_t begin = 0, end = 0; // rows in permuted ordering
    BandMatrix lu;
  };
  std::vector<std::int32_t> perm_; // perm[new] = old
  std::vector<std::int32_t> inv_;
  std::vector<Block> blocks_;
  std::size_t bandwidth_ = 0;
};

} // namespace landau::la
