#pragma once
// Band-storage matrix and the custom banded LU solver described in §III-G:
// reverse Cuthill–McKee ordering minimizes bandwidth, then the standard
// outer-product form of banded LU (Golub & Van Loan, Algorithm 4.3.1) factors
// the matrix in place without pivoting. Landau Jacobians are structurally
// symmetric, so LBW == UBW in practice, but the storage supports LBW != UBW.
//
// Symbolic-reuse contract (the §III-G amortization): analyze() runs the
// expensive pattern work once — RCM, diagonal-block discovery, per-block band
// widths, and a CSR-value -> band-storage scatter map. After that, factor()
// is a pure value copy + in-place LU and solve() reuses persistent per-block
// permuted-RHS workspaces; neither allocates. analyze() must be re-run only
// when the nonzero *structure* changes (e.g. AMR refine); values may change
// freely between factor() calls — exactly the quasi-Newton iteration pattern,
// where the Jacobian structure is frozen across iterations.

#include <cstdint>
#include <span>
#include <vector>

#include "exec/annotations.h"
#include "exec/thread_pool.h"
#include "la/csr.h"
#include "la/vec.h"

namespace landau::la {

/// Row-major band storage: entry A(i,j) with -lbw <= j-i <= ubw lives at
/// data[i*(lbw+ubw+1) + (j-i+lbw)].
class BandMatrix {
public:
  BandMatrix() = default;
  BandMatrix(std::size_t n, std::size_t lbw, std::size_t ubw)
      : n_(n), lbw_(lbw), ubw_(ubw), width_(lbw + ubw + 1), data_(n * width_, 0.0) {}

  /// Gather a (sub)matrix of A, rows/cols [row_begin, row_end) in the order
  /// given by perm (perm[new] = old), into band storage. Entries of A outside
  /// the band of the permuted matrix would be dropped, so the band widths are
  /// computed from the permuted pattern first (use from_csr).
  static BandMatrix from_csr(const CsrMatrix& a, const std::vector<std::int32_t>& perm,
                             std::size_t row_begin, std::size_t row_end);

  /// Set the shape, reusing the existing allocation when it is large enough
  /// (grows at most once per shape over the solver's lifetime); zeroes values.
  void reshape(std::size_t n, std::size_t lbw, std::size_t ubw);

  /// Zero all values, keeping the shape. Never allocates.
  void zero() { std::fill(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(n_ * width_), 0.0); }

  std::size_t size() const { return n_; }
  std::size_t lower_bandwidth() const { return lbw_; }
  std::size_t upper_bandwidth() const { return ubw_; }

  /// Flat band storage (n * (lbw+ubw+1) doubles), for scatter maps.
  std::span<double> data() { return {data_.data(), n_ * width_}; }
  std::span<const double> data() const { return {data_.data(), n_ * width_}; }

  /// Storage index of entry (i,j); valid for in_band(i,j) only.
  LANDAU_DEVICE std::size_t index(std::size_t i, std::size_t j) const {
    return i * width_ + (j - i + lbw_);
  }

  double& at(std::size_t i, std::size_t j) { return data_[index(i, j)]; }
  double at(std::size_t i, std::size_t j) const { return data_[index(i, j)]; }
  bool in_band(std::size_t i, std::size_t j) const {
    return (j + lbw_ >= i) && (j <= i + ubw_);
  }

  /// In-place LU factorization without pivoting (outer-product form). Throws
  /// on a (near-)zero pivot. Returns the number of floating point operations
  /// performed (used by the roofline bench).
  std::int64_t factor_lu();

  /// Solve LU x = b after factor_lu(); b and x may alias.
  void solve(const Vec& b, Vec& x) const;

  /// Flop count of one solve() (forward + backward substitution).
  std::int64_t solve_flops() const {
    return static_cast<std::int64_t>(n_) * static_cast<std::int64_t>(lbw_ + ubw_ + 2) * 2;
  }

  /// y = A x (only valid before factorization).
  void mult(const Vec& x, Vec& y) const;

private:
  std::size_t n_ = 0, lbw_ = 0, ubw_ = 0, width_ = 1;
  std::vector<double> data_;
};

/// One diagonal block of the permuted matrix: rows [begin, end) in the
/// permuted ordering.
struct BlockRange {
  std::size_t begin = 0, end = 0;
};

/// Diagonal-block discovery shared by the host and device block solvers:
/// the connected components of the symmetrized matrix graph (one per species
/// subsystem, §III-G), located as contiguous runs of the permuted ordering.
/// Throws if perm does not emit each component contiguously — a
/// non-contiguous ordering would silently build cross-coupled blocks.
std::vector<BlockRange> discover_blocks(const CsrMatrix& a,
                                        const std::vector<std::int32_t>& perm);

/// Cached symbolic + numeric state of one diagonal block: the permuted
/// block's band widths, the CSR-value -> band-storage scatter map (computed
/// once by analyze()), the band storage the LU factors live in, and a
/// persistent permuted-RHS workspace. load(), factor and the triangular
/// solves are allocation-free; only analyze() allocates.
class BandBlock {
public:
  /// Symbolic phase: band widths of the permuted block + scatter map.
  void analyze(const CsrMatrix& a, const std::vector<std::int32_t>& perm,
               const std::vector<std::int32_t>& inv, BlockRange range);

  /// Numeric phase: zero the band and scatter the current CSR values into it
  /// (no band-width discovery, no allocation).
  void load(const CsrMatrix& a);

  std::size_t begin() const { return begin_; }
  std::size_t end() const { return end_; }
  std::size_t size() const { return end_ - begin_; }
  std::size_t nnz() const { return scatter_.size(); }

  BandMatrix& lu() { return lu_; }
  const BandMatrix& lu() const { return lu_; }

  /// Persistent permuted-RHS workspace (solve happens in place in it).
  Vec& rhs() { return rhs_; }

  /// Gather this block's permuted rows of b into the workspace.
  void gather_rhs(const Vec& b, const std::vector<std::int32_t>& perm);
  /// Scatter the solved workspace back into the global solution.
  void scatter_solution(Vec& x, const std::vector<std::int32_t>& perm) const;

private:
  struct ScatterEntry {
    std::size_t src = 0; // index into CsrMatrix::values()
    std::size_t dst = 0; // index into BandMatrix::data()
  };
  std::size_t begin_ = 0, end_ = 0;
  std::vector<ScatterEntry> scatter_;
  BandMatrix lu_;
  Vec rhs_;
};

/// Direct solver for the (possibly block-diagonal) Landau Jacobian:
/// computes RCM once per pattern, detects diagonal blocks from graph
/// components, factors each block as an independent banded LU — the species
/// independence the CUDA band solver exploits with grid-group sync. With a
/// worker pool the blocks factor and solve in batch (one task per block),
/// mirroring the batched device path; without one they run serially.
class BlockBandSolver {
public:
  BlockBandSolver() = default;
  /// pool may be nullptr (serial). The pool is borrowed, not owned.
  explicit BlockBandSolver(exec::ThreadPool* pool) : pool_(pool) {}

  /// Analyze the pattern (RCM + component detection + scatter maps). Must be
  /// re-run if the pattern changes; values may change freely between
  /// factor() calls.
  void analyze(const CsrMatrix& a);

  /// Drop cached symbolic data; analyzed() becomes false.
  void invalidate();

  /// Factor the current values of a (pattern must match analyze()).
  /// Allocation-free after analyze(). Throws landau::Error on a zero or
  /// non-finite pivot (a poisoned matrix fails here, not in solve()); after a
  /// throw the factorization is invalid and solve() must not be called until
  /// a later factor() succeeds — x is never touched by a failed factor.
  void factor(const CsrMatrix& a);

  /// Solve A x = b with the factored matrix. Allocation-free after
  /// analyze(); b and x may alias: every block gathers its permuted rows of b
  /// into a private workspace and solves there before any block scatters into
  /// x, so the aliased vector stays consistent even through the batched path
  /// and through any failure path (a throw during the triangular solves
  /// happens before the scatter and leaves b/x unmodified).
  void solve(const Vec& b, Vec& x);

  std::size_t n_blocks() const { return blocks_.size(); }
  std::size_t bandwidth() const { return bandwidth_; }
  bool analyzed() const { return !perm_.empty(); }
  /// Number of analyze() runs over this solver's lifetime (lets callers
  /// assert the symbolic phase is actually being amortized).
  long analysis_count() const { return analysis_count_; }

private:
  exec::ThreadPool* pool_ = nullptr;
  std::vector<std::int32_t> perm_; // perm[new] = old
  std::vector<std::int32_t> inv_;
  std::vector<BandBlock> blocks_;
  std::vector<std::int64_t> flops_scratch_; // per-block factor flops
  std::size_t bandwidth_ = 0;
  long analysis_count_ = 0;
  int factor_event_ = -1, solve_event_ = -1; // cached profiler ids
};

} // namespace landau::la
