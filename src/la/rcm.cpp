#include "la/rcm.h"

#include <algorithm>
#include <queue>

namespace landau::la {
namespace {

/// Symmetrized adjacency (excluding the diagonal) of the matrix graph.
std::vector<std::vector<std::int32_t>> build_adjacency(const CsrMatrix& a) {
  const std::size_t n = a.rows();
  std::vector<std::vector<std::int32_t>> adj(n);
  auto rowptr = a.row_offsets();
  auto colind = a.col_indices();
  for (std::size_t i = 0; i < n; ++i)
    for (std::int32_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      const auto j = static_cast<std::size_t>(colind[k]);
      if (j == i) continue;
      adj[i].push_back(static_cast<std::int32_t>(j));
      adj[j].push_back(static_cast<std::int32_t>(i));
    }
  for (auto& row : adj) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  return adj;
}

/// BFS from start; returns (levels, last vertex in the final level with
/// minimal degree) — used for the pseudo-peripheral vertex search.
std::int32_t bfs_eccentric(const std::vector<std::vector<std::int32_t>>& adj, std::int32_t start,
                           std::vector<std::int32_t>& level) {
  std::fill(level.begin(), level.end(), -1);
  std::queue<std::int32_t> q;
  q.push(start);
  level[start] = 0;
  std::int32_t last = start;
  while (!q.empty()) {
    const std::int32_t u = q.front();
    q.pop();
    last = u;
    for (std::int32_t v : adj[u])
      if (level[v] < 0) {
        level[v] = level[u] + 1;
        q.push(v);
      }
  }
  // Among vertices in the deepest level, prefer minimal degree.
  const std::int32_t depth = level[last];
  std::int32_t best = last;
  for (std::size_t v = 0; v < adj.size(); ++v)
    if (level[v] == depth && adj[v].size() < adj[best].size()) best = static_cast<std::int32_t>(v);
  return best;
}

} // namespace

std::vector<std::int32_t> rcm_ordering(const CsrMatrix& a) {
  const std::size_t n = a.rows();
  auto adj = build_adjacency(a);
  std::vector<std::int32_t> order;
  order.reserve(n);
  std::vector<char> visited(n, 0);
  std::vector<std::int32_t> level(n);

  for (std::size_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    // Pseudo-peripheral start: two BFS sweeps from the component's first vertex.
    std::int32_t start = static_cast<std::int32_t>(seed);
    start = bfs_eccentric(adj, start, level);
    // Cuthill–McKee BFS ordering neighbors by ascending degree.
    std::queue<std::int32_t> q;
    q.push(start);
    visited[start] = 1;
    while (!q.empty()) {
      const std::int32_t u = q.front();
      q.pop();
      order.push_back(u);
      std::vector<std::int32_t> nbrs;
      for (std::int32_t v : adj[u])
        if (!visited[v]) nbrs.push_back(v);
      std::sort(nbrs.begin(), nbrs.end(), [&](std::int32_t x, std::int32_t y) {
        return adj[x].size() < adj[y].size();
      });
      for (std::int32_t v : nbrs) {
        visited[v] = 1;
        q.push(v);
      }
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<std::int32_t> invert_permutation(const std::vector<std::int32_t>& perm) {
  std::vector<std::int32_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<std::size_t>(perm[i])] = static_cast<std::int32_t>(i);
  return inv;
}

CsrMatrix permute_symmetric(const CsrMatrix& a, const std::vector<std::int32_t>& perm) {
  const std::size_t n = a.rows();
  LANDAU_ASSERT(perm.size() == n, "permutation size mismatch");
  auto inv = invert_permutation(perm);
  SparsityPattern pattern(n, n);
  auto rowptr = a.row_offsets();
  auto colind = a.col_indices();
  for (std::size_t i = 0; i < n; ++i) {
    const auto pi = static_cast<std::size_t>(inv[i]);
    for (std::int32_t k = rowptr[i]; k < rowptr[i + 1]; ++k)
      pattern.add(pi, static_cast<std::size_t>(inv[static_cast<std::size_t>(colind[k])]));
  }
  pattern.compress();
  CsrMatrix b(pattern);
  for (std::size_t i = 0; i < n; ++i) {
    const auto pi = static_cast<std::size_t>(inv[i]);
    for (std::int32_t k = rowptr[i]; k < rowptr[i + 1]; ++k)
      b.add(pi, static_cast<std::size_t>(inv[static_cast<std::size_t>(colind[k])]),
            a.values()[k]);
  }
  return b;
}

std::size_t permuted_bandwidth(const CsrMatrix& a, const std::vector<std::int32_t>& perm) {
  auto inv = invert_permutation(perm);
  auto rowptr = a.row_offsets();
  auto colind = a.col_indices();
  std::size_t bw = 0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const std::int32_t pi = inv[i];
    for (std::int32_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      const std::int32_t pj = inv[static_cast<std::size_t>(colind[k])];
      bw = std::max<std::size_t>(bw, static_cast<std::size_t>(std::abs(pi - pj)));
    }
  }
  return bw;
}

std::vector<std::int32_t> connected_components(const CsrMatrix& a, std::int32_t* n_components) {
  auto adj = build_adjacency(a);
  const std::size_t n = a.rows();
  std::vector<std::int32_t> comp(n, -1);
  std::int32_t nc = 0;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (comp[seed] >= 0) continue;
    std::queue<std::int32_t> q;
    q.push(static_cast<std::int32_t>(seed));
    comp[seed] = nc;
    while (!q.empty()) {
      const std::int32_t u = q.front();
      q.pop();
      for (std::int32_t v : adj[u])
        if (comp[v] < 0) {
          comp[v] = nc;
          q.push(v);
        }
    }
    ++nc;
  }
  if (n_components) *n_components = nc;
  return comp;
}

} // namespace landau::la
