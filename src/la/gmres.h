#pragma once
// Restarted GMRES with optional Jacobi preconditioning. The paper notes that
// iterative methods are the asymptotically-attractive alternative to the band
// direct solver on these small elliptic systems; we keep a simple Krylov
// baseline for comparison benches and solver cross-checks.

#include <functional>

#include "la/csr.h"
#include "la/vec.h"

namespace landau::la {

struct GmresOptions {
  int restart = 60;
  int max_iterations = 1000;
  double rtol = 1e-10;
  double atol = 1e-50;
  bool jacobi_preconditioner = true;
};

struct GmresResult {
  bool converged = false;
  /// Non-finite arithmetic was encountered (NaN/Inf in the matrix, rhs, or an
  /// intermediate); x was restored to the last finite iterate.
  bool breakdown = false;
  int iterations = 0;
  double residual_norm = 0.0;
};

/// Solve A x = b; x is both the initial guess and the result.
///
/// Failure contract: on a stalled solve (converged = false) x holds the best
/// iterate reached; on non-finite breakdown (breakdown = true) x is restored
/// to the last finite iterate — the initial guess if the very first residual
/// is already non-finite — so the output vector is finite and defined through
/// every failure path. b and x must not alias (the Arnoldi recurrence reads b
/// at every restart).
GmresResult gmres_solve(const CsrMatrix& a, const Vec& b, Vec& x,
                        const GmresOptions& opts = {});

} // namespace landau::la
