#pragma once
// Restarted GMRES with optional Jacobi preconditioning. The paper notes that
// iterative methods are the asymptotically-attractive alternative to the band
// direct solver on these small elliptic systems; we keep a simple Krylov
// baseline for comparison benches and solver cross-checks.

#include <functional>

#include "la/csr.h"
#include "la/vec.h"

namespace landau::la {

struct GmresOptions {
  int restart = 60;
  int max_iterations = 1000;
  double rtol = 1e-10;
  double atol = 1e-50;
  bool jacobi_preconditioner = true;
};

struct GmresResult {
  bool converged = false;
  int iterations = 0;
  double residual_norm = 0.0;
};

/// Solve A x = b; x is both the initial guess and the result.
GmresResult gmres_solve(const CsrMatrix& a, const Vec& b, Vec& x,
                        const GmresOptions& opts = {});

} // namespace landau::la
