#include "la/band.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <mutex>

#include "la/rcm.h"
#include "util/error.h"
#include "util/profiler.h"

namespace landau::la {

BandMatrix BandMatrix::from_csr(const CsrMatrix& a, const std::vector<std::int32_t>& perm,
                                std::size_t row_begin, std::size_t row_end) {
  LANDAU_ASSERT(row_end <= perm.size() && row_begin <= row_end, "bad block range");
  const std::size_t n = row_end - row_begin;
  auto inv = invert_permutation(perm);
  auto rowptr = a.row_offsets();
  auto colind = a.col_indices();

  // First pass: band widths of the permuted block.
  std::size_t lbw = 0, ubw = 0;
  for (std::size_t pi = row_begin; pi < row_end; ++pi) {
    const auto i = static_cast<std::size_t>(perm[pi]);
    for (std::int32_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      const auto pj = static_cast<std::size_t>(inv[static_cast<std::size_t>(colind[k])]);
      LANDAU_ASSERT(pj >= row_begin && pj < row_end,
                    "matrix entry couples across block boundary: (" << pi << "," << pj << ")");
      if (pj < pi)
        lbw = std::max(lbw, pi - pj);
      else
        ubw = std::max(ubw, pj - pi);
    }
  }

  BandMatrix b(n, lbw, ubw);
  for (std::size_t pi = row_begin; pi < row_end; ++pi) {
    const auto i = static_cast<std::size_t>(perm[pi]);
    for (std::int32_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      const auto pj = static_cast<std::size_t>(inv[static_cast<std::size_t>(colind[k])]);
      b.at(pi - row_begin, pj - row_begin) = a.values()[k];
    }
  }
  return b;
}

void BandMatrix::reshape(std::size_t n, std::size_t lbw, std::size_t ubw) {
  n_ = n;
  lbw_ = lbw;
  ubw_ = ubw;
  width_ = lbw + ubw + 1;
  const std::size_t need = n_ * width_;
  if (data_.size() < need) data_.resize(need);
  std::fill(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(need), 0.0);
}

std::int64_t BandMatrix::factor_lu() {
  // Outer-product banded LU without pivoting (Golub & Van Loan 4.3.1):
  // for each column k, scale the sub-column by 1/pivot and apply a B x B
  // rank-one update to the dense sub-block A(k+1:k+lbw, k+1:k+ubw).
  std::int64_t flops = 0;
  for (std::size_t k = 0; k < n_; ++k) {
    const double piv = at(k, k);
    // The negated comparison also rejects NaN pivots (NaN < x is false for
    // every x), so a poisoned matrix throws instead of factoring into NaNs.
    if (!(std::abs(piv) >= 1e-300) || !std::isfinite(piv))
      LANDAU_THROW("zero or non-finite pivot in banded LU at row " << k);
    const double inv = 1.0 / piv;
    const std::size_t imax = std::min(n_ - 1, k + lbw_);
    const std::size_t jmax = std::min(n_ - 1, k + ubw_);
    for (std::size_t i = k + 1; i <= imax && i < n_; ++i) {
      const double m = at(i, k) * inv;
      at(i, k) = m;
      ++flops;
      for (std::size_t j = k + 1; j <= jmax; ++j) {
        at(i, j) -= m * at(k, j);
        flops += 2;
      }
    }
  }
  return flops;
}

void BandMatrix::solve(const Vec& b, Vec& x) const {
  LANDAU_ASSERT(b.size() == n_ && x.size() == n_, "band solve size mismatch");
  if (&x != &b) std::copy(b.begin(), b.end(), x.begin());
  // Forward: L (unit diagonal) y = b.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j0 = i > lbw_ ? i - lbw_ : 0;
    double s = x[i];
    for (std::size_t j = j0; j < i; ++j) s -= at(i, j) * x[j];
    x[i] = s;
  }
  // Backward: U x = y.
  for (std::size_t i = n_; i-- > 0;) {
    const std::size_t j1 = std::min(n_ - 1, i + ubw_);
    double s = x[i];
    for (std::size_t j = i + 1; j <= j1; ++j) s -= at(i, j) * x[j];
    x[i] = s / at(i, i);
  }
}

void BandMatrix::mult(const Vec& x, Vec& y) const {
  LANDAU_ASSERT(x.size() == n_ && y.size() == n_, "band mult size mismatch");
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j0 = i > lbw_ ? i - lbw_ : 0;
    const std::size_t j1 = std::min(n_ - 1, i + ubw_);
    double s = 0.0;
    for (std::size_t j = j0; j <= j1; ++j) s += at(i, j) * x[j];
    y[i] = s;
  }
}

std::vector<BlockRange> discover_blocks(const CsrMatrix& a,
                                        const std::vector<std::int32_t>& perm) {
  LANDAU_ASSERT(perm.size() == a.rows(), "permutation size mismatch");
  std::int32_t nc = 0;
  auto comp = connected_components(a, &nc);
  std::vector<BlockRange> blocks;
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= perm.size(); ++i) {
    const bool boundary = (i == perm.size()) ||
                          comp[static_cast<std::size_t>(perm[i])] !=
                              comp[static_cast<std::size_t>(perm[begin])];
    if (boundary) {
      blocks.push_back({begin, i});
      begin = i;
    }
  }
  LANDAU_ASSERT(blocks.size() == static_cast<std::size_t>(nc),
                "RCM did not emit components contiguously: " << blocks.size() << " runs for "
                                                             << nc << " components");
  return blocks;
}

void BandBlock::analyze(const CsrMatrix& a, const std::vector<std::int32_t>& perm,
                        const std::vector<std::int32_t>& inv, BlockRange range) {
  begin_ = range.begin;
  end_ = range.end;
  auto rowptr = a.row_offsets();
  auto colind = a.col_indices();

  // Band widths of the permuted block (the from_csr first pass, cached).
  std::size_t lbw = 0, ubw = 0;
  std::size_t nnz = 0;
  for (std::size_t pi = begin_; pi < end_; ++pi) {
    const auto i = static_cast<std::size_t>(perm[pi]);
    for (std::int32_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      const auto pj = static_cast<std::size_t>(inv[static_cast<std::size_t>(colind[k])]);
      LANDAU_ASSERT(pj >= begin_ && pj < end_,
                    "matrix entry couples across block boundary: (" << pi << "," << pj << ")");
      if (pj < pi)
        lbw = std::max(lbw, pi - pj);
      else
        ubw = std::max(ubw, pj - pi);
      ++nnz;
    }
  }
  lu_.reshape(end_ - begin_, lbw, ubw);

  // CSR-value -> band-storage scatter map: factor() becomes a value copy.
  scatter_.clear();
  scatter_.reserve(nnz);
  for (std::size_t pi = begin_; pi < end_; ++pi) {
    const auto i = static_cast<std::size_t>(perm[pi]);
    for (std::int32_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      const auto pj = static_cast<std::size_t>(inv[static_cast<std::size_t>(colind[k])]);
      scatter_.push_back(
          {static_cast<std::size_t>(k), lu_.index(pi - begin_, pj - begin_)});
    }
  }
  rhs_.resize(end_ - begin_);
}

void BandBlock::load(const CsrMatrix& a) {
  lu_.zero();
  auto vals = a.values();
  auto dst = lu_.data();
  for (const auto& e : scatter_) dst[e.dst] = vals[e.src];
}

void BandBlock::gather_rhs(const Vec& b, const std::vector<std::int32_t>& perm) {
  for (std::size_t i = 0; i < rhs_.size(); ++i)
    rhs_[i] = b[static_cast<std::size_t>(perm[begin_ + i])];
}

void BandBlock::scatter_solution(Vec& x, const std::vector<std::int32_t>& perm) const {
  for (std::size_t i = 0; i < rhs_.size(); ++i)
    x[static_cast<std::size_t>(perm[begin_ + i])] = rhs_[i];
}

namespace {

/// Run fn(block_index) for every block — batched over the pool when one is
/// available (one task per block, the host mirror of the device batch),
/// serially otherwise. Exceptions from workers (e.g. a zero pivot) are
/// rethrown on the calling thread.
template <class F>
void dispatch_blocks(exec::ThreadPool* pool, std::size_t n, F&& fn) {
  if (pool != nullptr && pool->n_workers() > 1 && n > 1) {
    std::exception_ptr err;
    std::mutex err_mutex;
    pool->parallel_for(n, [&](std::size_t bi) {
      try {
        fn(bi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mutex);
        if (!err) err = std::current_exception();
      }
    });
    if (err) std::rethrow_exception(err);
    return;
  }
  for (std::size_t bi = 0; bi < n; ++bi) fn(bi);
}

} // namespace

void BlockBandSolver::analyze(const CsrMatrix& a) {
  perm_ = rcm_ordering(a);
  inv_ = invert_permutation(perm_);
  bandwidth_ = permuted_bandwidth(a, perm_);

  const auto ranges = discover_blocks(a, perm_);
  blocks_.assign(ranges.size(), BandBlock());
  for (std::size_t bi = 0; bi < ranges.size(); ++bi)
    blocks_[bi].analyze(a, perm_, inv_, ranges[bi]);
  flops_scratch_.assign(blocks_.size(), 0);
  factor_event_ = Profiler::instance().event_id("landau:factor");
  solve_event_ = Profiler::instance().event_id("landau:solve");
  ++analysis_count_;
}

void BlockBandSolver::invalidate() {
  perm_.clear();
  inv_.clear();
  blocks_.clear();
  flops_scratch_.clear();
  bandwidth_ = 0;
}

void BlockBandSolver::factor(const CsrMatrix& a) {
  LANDAU_ASSERT(analyzed(), "call analyze() before factor()");
  LANDAU_ASSERT(a.rows() == perm_.size(), "matrix size changed since analyze()");
  // Each diagonal block (one species' subsystem, §III-G) factors
  // independently; on a GPU each would occupy one or more SMs.
  dispatch_blocks(pool_, blocks_.size(), [this, &a](std::size_t bi) {
    blocks_[bi].load(a);
    flops_scratch_[bi] = blocks_[bi].lu().factor_lu();
  });
  std::int64_t flops = 0, bytes = 0;
  for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
    flops += flops_scratch_[bi];
    // Value scatter reads the block's CSR values once; the in-place LU
    // streams the band storage through once more (read + write).
    bytes += static_cast<std::int64_t>(blocks_[bi].nnz()) * 8 +
             static_cast<std::int64_t>(blocks_[bi].lu().data().size()) * 8 * 2;
  }
  Profiler::instance().add_work(factor_event_, flops, bytes);
}

void BlockBandSolver::solve(const Vec& b, Vec& x) {
  LANDAU_ASSERT(analyzed(), "call analyze() before solve()");
  LANDAU_ASSERT(b.size() == perm_.size() && x.size() == perm_.size(), "solve size mismatch");
  dispatch_blocks(pool_, blocks_.size(), [this, &b](std::size_t bi) {
    BandBlock& blk = blocks_[bi];
    blk.gather_rhs(b, perm_);
    blk.lu().solve(blk.rhs(), blk.rhs()); // in place in the workspace
  });
  // Scatter back serially: x may alias b, so all reads happen before writes.
  std::int64_t flops = 0, bytes = 0;
  for (auto& blk : blocks_) {
    blk.scatter_solution(x, perm_);
    flops += blk.lu().solve_flops();
    bytes += static_cast<std::int64_t>(blk.lu().data().size()) * 8 +
             static_cast<std::int64_t>(blk.size()) * 8 * 3;
  }
  Profiler::instance().add_work(solve_event_, flops, bytes);
}

} // namespace landau::la
