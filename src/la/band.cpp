#include "la/band.h"

#include <algorithm>
#include <cmath>

#include "la/rcm.h"
#include "util/error.h"

namespace landau::la {

BandMatrix BandMatrix::from_csr(const CsrMatrix& a, const std::vector<std::int32_t>& perm,
                                std::size_t row_begin, std::size_t row_end) {
  LANDAU_ASSERT(row_end <= perm.size() && row_begin <= row_end, "bad block range");
  const std::size_t n = row_end - row_begin;
  auto inv = invert_permutation(perm);
  auto rowptr = a.row_offsets();
  auto colind = a.col_indices();

  // First pass: band widths of the permuted block.
  std::size_t lbw = 0, ubw = 0;
  for (std::size_t pi = row_begin; pi < row_end; ++pi) {
    const auto i = static_cast<std::size_t>(perm[pi]);
    for (std::int32_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      const auto pj = static_cast<std::size_t>(inv[static_cast<std::size_t>(colind[k])]);
      LANDAU_ASSERT(pj >= row_begin && pj < row_end,
                    "matrix entry couples across block boundary: (" << pi << "," << pj << ")");
      if (pj < pi)
        lbw = std::max(lbw, pi - pj);
      else
        ubw = std::max(ubw, pj - pi);
    }
  }

  BandMatrix b(n, lbw, ubw);
  for (std::size_t pi = row_begin; pi < row_end; ++pi) {
    const auto i = static_cast<std::size_t>(perm[pi]);
    for (std::int32_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      const auto pj = static_cast<std::size_t>(inv[static_cast<std::size_t>(colind[k])]);
      b.at(pi - row_begin, pj - row_begin) = a.values()[k];
    }
  }
  return b;
}

std::int64_t BandMatrix::factor_lu() {
  // Outer-product banded LU without pivoting (Golub & Van Loan 4.3.1):
  // for each column k, scale the sub-column by 1/pivot and apply a B x B
  // rank-one update to the dense sub-block A(k+1:k+lbw, k+1:k+ubw).
  std::int64_t flops = 0;
  for (std::size_t k = 0; k < n_; ++k) {
    const double piv = at(k, k);
    if (std::abs(piv) < 1e-300) LANDAU_THROW("zero pivot in banded LU at row " << k);
    const double inv = 1.0 / piv;
    const std::size_t imax = std::min(n_ - 1, k + lbw_);
    const std::size_t jmax = std::min(n_ - 1, k + ubw_);
    for (std::size_t i = k + 1; i <= imax && i < n_; ++i) {
      const double m = at(i, k) * inv;
      at(i, k) = m;
      ++flops;
      for (std::size_t j = k + 1; j <= jmax; ++j) {
        at(i, j) -= m * at(k, j);
        flops += 2;
      }
    }
  }
  return flops;
}

void BandMatrix::solve(const Vec& b, Vec& x) const {
  LANDAU_ASSERT(b.size() == n_ && x.size() == n_, "band solve size mismatch");
  if (&x != &b) std::copy(b.begin(), b.end(), x.begin());
  // Forward: L (unit diagonal) y = b.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j0 = i > lbw_ ? i - lbw_ : 0;
    double s = x[i];
    for (std::size_t j = j0; j < i; ++j) s -= at(i, j) * x[j];
    x[i] = s;
  }
  // Backward: U x = y.
  for (std::size_t i = n_; i-- > 0;) {
    const std::size_t j1 = std::min(n_ - 1, i + ubw_);
    double s = x[i];
    for (std::size_t j = i + 1; j <= j1; ++j) s -= at(i, j) * x[j];
    x[i] = s / at(i, i);
  }
}

void BandMatrix::mult(const Vec& x, Vec& y) const {
  LANDAU_ASSERT(x.size() == n_ && y.size() == n_, "band mult size mismatch");
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j0 = i > lbw_ ? i - lbw_ : 0;
    const std::size_t j1 = std::min(n_ - 1, i + ubw_);
    double s = 0.0;
    for (std::size_t j = j0; j <= j1; ++j) s += at(i, j) * x[j];
    y[i] = s;
  }
}

void BlockBandSolver::analyze(const CsrMatrix& a) {
  perm_ = rcm_ordering(a);
  inv_ = invert_permutation(perm_);
  bandwidth_ = permuted_bandwidth(a, perm_);

  // RCM emits each connected component contiguously; find the boundaries.
  std::int32_t nc = 0;
  auto comp = connected_components(a, &nc);
  blocks_.clear();
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= perm_.size(); ++i) {
    const bool boundary = (i == perm_.size()) ||
                          comp[static_cast<std::size_t>(perm_[i])] !=
                              comp[static_cast<std::size_t>(perm_[begin])];
    if (boundary) {
      Block blk;
      blk.begin = begin;
      blk.end = i;
      blocks_.push_back(std::move(blk));
      begin = i;
    }
  }
  LANDAU_ASSERT(blocks_.size() == static_cast<std::size_t>(nc),
                "RCM did not emit components contiguously");
}

void BlockBandSolver::factor(const CsrMatrix& a) {
  LANDAU_ASSERT(analyzed(), "call analyze() before factor()");
  LANDAU_ASSERT(a.rows() == perm_.size(), "matrix size changed since analyze()");
  // Each diagonal block (one species' subsystem, §III-G) factors
  // independently; on a GPU each would occupy one or more SMs.
  for (auto& blk : blocks_) {
    blk.lu = BandMatrix::from_csr(a, perm_, blk.begin, blk.end);
    blk.lu.factor_lu();
  }
}

void BlockBandSolver::solve(const Vec& b, Vec& x) const {
  LANDAU_ASSERT(b.size() == perm_.size() && x.size() == perm_.size(), "solve size mismatch");
  Vec pb, px;
  for (const auto& blk : blocks_) {
    const std::size_t n = blk.end - blk.begin;
    pb.resize(n);
    px.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      pb[i] = b[static_cast<std::size_t>(perm_[blk.begin + i])];
    blk.lu.solve(pb, px);
    for (std::size_t i = 0; i < n; ++i)
      x[static_cast<std::size_t>(perm_[blk.begin + i])] = px[i];
  }
}

} // namespace landau::la
