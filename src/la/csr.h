#pragma once
// Compressed sparse row matrix with the two assembly paths described in the
// paper (§III-F):
//  * the traditional MatSetValues path: dense element blocks added into a
//    preallocated pattern (with an atomic variant modeling GPU assembly), and
//  * the COO path: a fixed coordinate list set once ("preallocation"), then
//    repeated re-assembly from a value array with a precomputed gather.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "exec/annotations.h"
#include "la/dense.h"
#include "la/vec.h"
#include "util/error.h"

namespace landau::la {

/// Sparsity pattern: sorted column indices per row. Built from couplings
/// (e.g. element closures) before any values exist.
class SparsityPattern {
public:
  explicit SparsityPattern(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
    lists_.resize(rows);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Declare that entry (i,j) may be nonzero.
  void add(std::size_t i, std::size_t j) {
    LANDAU_CHECK_RANGE(i, rows_);
    LANDAU_CHECK_RANGE(j, cols_);
    lists_[i].push_back(static_cast<std::int32_t>(j));
  }

  /// Declare all-to-all coupling among a dof set (one element's closure).
  void add_clique(std::span<const std::int32_t> dofs) {
    for (auto i : dofs)
      for (auto j : dofs) add(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
  }

  /// Sort/unique each row; must be called before building a matrix.
  void compress();

  const std::vector<std::int32_t>& row(std::size_t i) const { return lists_[i]; }
  std::size_t nnz() const;

private:
  std::size_t rows_, cols_;
  std::vector<std::vector<std::int32_t>> lists_;
  friend class CsrMatrix;
};

/// CSR matrix with fixed pattern and mutable values.
class CsrMatrix {
public:
  CsrMatrix() = default;
  explicit CsrMatrix(const SparsityPattern& pattern);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  std::span<const std::int32_t> row_offsets() const { return rowptr_; }
  std::span<const std::int32_t> col_indices() const { return colind_; }
  std::span<const double> values() const { return values_; }
  std::span<double> values() { return values_; }

  void zero_entries() { std::fill(values_.begin(), values_.end(), 0.0); }

  /// Index of entry (i,j) in the values array; throws if not in the pattern.
  std::size_t entry_index(std::size_t i, std::size_t j) const;
  /// Like entry_index but returns npos when absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find_entry(std::size_t i, std::size_t j) const noexcept;

  double get(std::size_t i, std::size_t j) const;
  void add(std::size_t i, std::size_t j, double v) { values_[entry_index(i, j)] += v; }
  /// Atomic add for concurrent assembly (models GPU atomicAdd on doubles).
  LANDAU_DEVICE void add_atomic(std::size_t i, std::size_t j, double v);

  /// MatSetValues(ADD_VALUES): add a dense block at (rows x cols).
  void add_values(std::span<const std::int32_t> rows, std::span<const std::int32_t> cols,
                  const DenseMatrix& block);
  void add_values_atomic(std::span<const std::int32_t> rows, std::span<const std::int32_t> cols,
                         const DenseMatrix& block);

  /// y = A x
  void mult(const Vec& x, Vec& y) const;
  /// y += A x
  void mult_add(const Vec& x, Vec& y) const;

  /// B = a*A + B for matrices with identical patterns (AXPY, SAME_NONZERO).
  void axpy(double a, const CsrMatrix& x);
  void scale(double a) {
    for (double& v : values_) v *= a;
  }
  /// Add s to every diagonal entry (diagonal must be in the pattern).
  void shift_diagonal(double s);

  DenseMatrix to_dense() const;

  /// Max |j - i| over stored entries: matrix bandwidth.
  std::size_t bandwidth() const;

  /// No NaN/±Inf among the stored values (the paranoid-mode Jacobian audit).
  bool all_finite() const { return la::all_finite(values()); }

private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::int32_t> rowptr_;
  std::vector<std::int32_t> colind_;
  std::vector<double> values_;
};

/// COO assembly: the coordinate list is fixed once (the analog of PETSc's
/// MatSetPreallocationCOO), after which assemble() scatters a value array into
/// a CSR matrix built over the union pattern (MatSetValuesCOO).
class CooAssembler {
public:
  CooAssembler(std::size_t rows, std::size_t cols, std::vector<std::int32_t> coo_i,
               std::vector<std::int32_t> coo_j);

  std::size_t coo_size() const { return perm_.size(); }

  /// The CSR matrix this assembler targets (pattern only until assembled).
  const CsrMatrix& matrix() const { return mat_; }
  CsrMatrix& matrix() { return mat_; }

  /// Zero the matrix and scatter-add values (aligned with the coordinate
  /// list given at construction) into it.
  void assemble(std::span<const double> values);

private:
  CsrMatrix mat_;
  std::vector<std::size_t> perm_; // coo index -> csr value index
};

} // namespace landau::la
