#pragma once
// Reverse Cuthill–McKee ordering (Cuthill & McKee 1969). The paper's band
// solver relies on RCM to minimize bandwidth; on multi-species Landau
// Jacobians RCM also naturally exposes the block-diagonal species structure
// because the species blocks are disconnected components of the matrix graph.

#include <cstdint>
#include <vector>

#include "la/csr.h"

namespace landau::la {

/// Compute the RCM permutation of the symmetrized graph of A.
/// Returns perm with perm[new_index] = old_index.
std::vector<std::int32_t> rcm_ordering(const CsrMatrix& a);

/// Inverse of a permutation (old_index -> new_index).
std::vector<std::int32_t> invert_permutation(const std::vector<std::int32_t>& perm);

/// Build the symmetrically permuted matrix B = P A P^T where row/col i of B is
/// row/col perm[i] of A.
CsrMatrix permute_symmetric(const CsrMatrix& a, const std::vector<std::int32_t>& perm);

/// Bandwidth of A under permutation perm (without forming the permuted matrix).
std::size_t permuted_bandwidth(const CsrMatrix& a, const std::vector<std::int32_t>& perm);

/// Connected components of the symmetrized matrix graph; returns component id
/// per row. Multi-species Landau Jacobians have one component per species
/// (times mesh connectivity), which the block band solver exploits.
std::vector<std::int32_t> connected_components(const CsrMatrix& a, std::int32_t* n_components);

} // namespace landau::la
