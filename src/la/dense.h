#pragma once
// Small dense matrix with LU factorization (partial pivoting). Used for
// element-local work, as the reference linear solver in tests, and as the
// fallback direct solver for tiny systems.

#include <cstddef>
#include <vector>

#include "la/vec.h"
#include "util/error.h"

namespace landau::la {

/// Row-major dense matrix.
class DenseMatrix {
public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double value = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  double operator()(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(std::size_t i) { return data_.data() + i * cols_; }
  const double* row(std::size_t i) const { return data_.data() + i * cols_; }

  void zero() { std::fill(data_.begin(), data_.end(), 0.0); }

  /// y = A x
  void mult(const Vec& x, Vec& y) const;
  /// y += A x
  void mult_add(const Vec& x, Vec& y) const;
  /// y = A^T x
  void mult_transpose(const Vec& x, Vec& y) const;

  double norm_frobenius() const;

private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with scaled partial pivoting of a square dense matrix;
/// keeps the factors and pivot sequence for repeated solves. Pivots are
/// chosen by |a_ik| / max_j |a_ij| so badly row-scaled systems (Landau
/// Jacobians span many orders of magnitude across AMR levels) stay
/// backward stable.
class DenseLU {
public:
  explicit DenseLU(DenseMatrix a);

  std::size_t size() const { return lu_.rows(); }

  /// Solve A x = b (b and x may alias).
  void solve(const Vec& b, Vec& x) const;

  /// Determinant sign * magnitude (for diagnostics).
  double determinant() const;

private:
  DenseMatrix lu_;
  std::vector<int> pivots_;
  int pivot_sign_ = 1;
};

} // namespace landau::la
