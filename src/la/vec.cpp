#include "la/vec.h"

#include <algorithm>

namespace landau::la {

bool all_finite(std::span<const double> v) {
  constexpr std::size_t chunk = 4096;
  for (std::size_t start = 0; start < v.size(); start += chunk) {
    const std::size_t end = std::min(start + chunk, v.size());
    double acc = 0.0;
    for (std::size_t i = start; i < end; ++i) acc += v[i] * 0.0;
    if (!(acc == 0.0)) return false;
  }
  return true;
}

void Vec::axpy(double a, const Vec& x) {
  LANDAU_ASSERT(x.size() == size(), "axpy size mismatch " << x.size() << " vs " << size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += a * x[i];
}

void Vec::aypx(double a, const Vec& x) {
  LANDAU_ASSERT(x.size() == size(), "aypx size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] = a * data_[i] + x[i];
}

void Vec::axpby(double a, const Vec& x, double b) {
  LANDAU_ASSERT(x.size() == size(), "axpby size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] = a * x[i] + b * data_[i];
}

void Vec::scale(double a) {
  for (double& v : data_) v *= a;
}

double Vec::dot(const Vec& x) const {
  LANDAU_ASSERT(x.size() == size(), "dot size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) s += data_[i] * x[i];
  return s;
}

double Vec::norm_inf() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Vec::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

} // namespace landau::la
