#include "la/band_device.h"

#include <algorithm>
#include <cmath>

#include "la/rcm.h"
#include "util/error.h"

namespace landau::la {

void device_band_factor(exec::ThreadPool& pool, std::span<BandMatrix*> systems,
                        exec::KernelCounters* counters) {
  const exec::Dim3 block{64, 1, 1};
  exec::launch(
      pool, static_cast<int>(systems.size()), block,
      [&](exec::Block& blk) {
        exec::CounterScope scope(blk.counters());
        BandMatrix& a = *systems[static_cast<std::size_t>(blk.block_idx())];
        const std::size_t n = a.size();
        const std::size_t lbw = a.lower_bandwidth();
        const std::size_t ubw = a.upper_bandwidth();
        // Outer-product banded LU: the k loop is sequential (each pivot
        // column depends on the previous update); rows of the rank-1 update
        // are independent and stride across the lanes.
        for (std::size_t k = 0; k < n; ++k) {
          const double piv = a.at(k, k);
          if (std::abs(piv) < 1e-300) LANDAU_THROW("zero pivot in device band LU at row " << k);
          const double inv = 1.0 / piv;
          const std::size_t imax = std::min(n - 1, k + lbw);
          const std::size_t jmax = std::min(n - 1, k + ubw);
          blk.threads([&](exec::ThreadIdx t) {
            for (std::size_t i = k + 1 + static_cast<std::size_t>(t.x); i <= imax && i < n;
                 i += static_cast<std::size_t>(blk.block_dim().x)) {
              const double m = a.at(i, k) * inv;
              a.at(i, k) = m;
              for (std::size_t j = k + 1; j <= jmax; ++j) a.at(i, j) -= m * a.at(k, j);
            }
          });
          blk.sync(); // grid-group sync in the hardware version (§III-G)
          scope.flops(static_cast<std::int64_t>(imax - k) * (1 + 2 * static_cast<std::int64_t>(jmax - k)));
        }
        scope.dram(static_cast<std::int64_t>(n) * static_cast<std::int64_t>(lbw + ubw + 1) * 8 * 2);
      },
      counters);
}

void device_band_solve(exec::ThreadPool& pool, std::span<BandMatrix* const> systems,
                       std::span<Vec*> x, exec::KernelCounters* counters) {
  LANDAU_ASSERT(systems.size() == x.size(), "batch size mismatch");
  const exec::Dim3 block{32, 1, 1};
  exec::launch(
      pool, static_cast<int>(systems.size()), block,
      [&](exec::Block& blk) {
        exec::CounterScope scope(blk.counters());
        const BandMatrix& a = *systems[static_cast<std::size_t>(blk.block_idx())];
        Vec& v = *x[static_cast<std::size_t>(blk.block_idx())];
        const std::size_t n = a.size();
        const std::size_t lbw = a.lower_bandwidth();
        const std::size_t ubw = a.upper_bandwidth();
        auto regs = blk.registers<double>();

        // Forward substitution: row i's dot product over its band is
        // computed lane-parallel, combined with the shuffle butterfly.
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t j0 = i > lbw ? i - lbw : 0;
          blk.threads([&](exec::ThreadIdx t) {
            double s = 0.0;
            for (std::size_t j = j0 + static_cast<std::size_t>(t.x); j < i;
                 j += static_cast<std::size_t>(blk.block_dim().x))
              s += a.at(i, j) * v[j];
            regs[static_cast<std::size_t>(t.flat)] = s;
          });
          blk.shfl_xor_sum_x(regs);
          blk.threads([&](exec::ThreadIdx t) {
            if (t.flat == 0) v[i] -= regs[0];
          });
          blk.sync();
        }
        // Backward substitution with U.
        for (std::size_t i = n; i-- > 0;) {
          const std::size_t j1 = std::min(n - 1, i + ubw);
          blk.threads([&](exec::ThreadIdx t) {
            double s = 0.0;
            for (std::size_t j = i + 1 + static_cast<std::size_t>(t.x); j <= j1;
                 j += static_cast<std::size_t>(blk.block_dim().x))
              s += a.at(i, j) * v[j];
            regs[static_cast<std::size_t>(t.flat)] = s;
          });
          blk.shfl_xor_sum_x(regs);
          blk.threads([&](exec::ThreadIdx t) {
            if (t.flat == 0) v[i] = (v[i] - regs[0]) / a.at(i, i);
          });
          blk.sync();
        }
        scope.flops(static_cast<std::int64_t>(n) * static_cast<std::int64_t>(lbw + ubw + 2) * 2);
      },
      counters);
}

void DeviceBlockBandSolver::analyze(const CsrMatrix& a) {
  perm_ = rcm_ordering(a);
  std::int32_t nc = 0;
  auto comp = connected_components(a, &nc);
  blocks_.clear();
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= perm_.size(); ++i) {
    const bool boundary = (i == perm_.size()) ||
                          comp[static_cast<std::size_t>(perm_[i])] !=
                              comp[static_cast<std::size_t>(perm_[begin])];
    if (boundary) {
      blocks_.push_back({begin, i, BandMatrix()});
      begin = i;
    }
  }
}

void DeviceBlockBandSolver::factor(const CsrMatrix& a) {
  LANDAU_ASSERT(analyzed(), "call analyze() before factor()");
  std::vector<BandMatrix*> batch;
  for (auto& blk : blocks_) {
    blk.lu = BandMatrix::from_csr(a, perm_, blk.begin, blk.end);
    batch.push_back(&blk.lu);
  }
  device_band_factor(*pool_, batch);
}

void DeviceBlockBandSolver::solve(const Vec& b, Vec& x) {
  LANDAU_ASSERT(b.size() == perm_.size() && x.size() == perm_.size(), "solve size mismatch");
  std::vector<Vec> rhs(blocks_.size());
  std::vector<Vec*> ptrs;
  std::vector<BandMatrix*> mats;
  for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
    const auto& blk = blocks_[bi];
    rhs[bi].resize(blk.end - blk.begin);
    for (std::size_t i = 0; i < rhs[bi].size(); ++i)
      rhs[bi][i] = b[static_cast<std::size_t>(perm_[blk.begin + i])];
    ptrs.push_back(&rhs[bi]);
    mats.push_back(&blocks_[bi].lu);
  }
  device_band_solve(*pool_, {mats.data(), mats.size()}, {ptrs.data(), ptrs.size()});
  for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
    const auto& blk = blocks_[bi];
    for (std::size_t i = 0; i < rhs[bi].size(); ++i)
      x[static_cast<std::size_t>(perm_[blk.begin + i])] = rhs[bi][i];
  }
}

} // namespace landau::la
