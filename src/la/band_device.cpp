#include "la/band_device.h"

#include <algorithm>
#include <cmath>

#include "exec/annotations.h"
#include "la/rcm.h"
#include "util/error.h"
#include "util/profiler.h"

namespace landau::la {

void device_band_factor(exec::ThreadPool& pool, std::span<BandMatrix*> systems,
                        exec::KernelCounters* counters) {
  namespace check = exec::check;
  const exec::Dim3 block{64, 1, 1};
  // Each block factors its own matrix, so the checker sees per-block-disjoint
  // global buffers; the refs vector exists only in checked mode — the clean
  // path stays allocation-free.
  check::KernelScope chk("la:band-factor");
  std::vector<check::BufferRef<double>> arefs;
  if (chk.active()) {
    arefs.reserve(systems.size());
    for (BandMatrix* m : systems) arefs.push_back(chk.out(m->data(), "band.a"));
  }
  exec::launch(
      pool, static_cast<int>(systems.size()), block,
      LANDAU_KERNEL [&](exec::Block& blk) {
        exec::CounterScope scope(blk.counters());
        BandMatrix& a = *systems[static_cast<std::size_t>(blk.block_idx())];
        check::checked_span<double> av =
            arefs.empty() ? check::checked_span<double>(a.data())
                          : blk.view(arefs[static_cast<std::size_t>(blk.block_idx())]);
        const std::size_t n = a.size();
        const std::size_t lbw = a.lower_bandwidth();
        const std::size_t ubw = a.upper_bandwidth();
        // Outer-product banded LU: the k loop is sequential (each pivot
        // column depends on the previous update); rows of the rank-1 update
        // are independent and stride across the lanes.
        for (std::size_t k = 0; k < n; ++k) {
          const double piv = av[a.index(k, k)];
          if (std::abs(piv) < 1e-300) LANDAU_THROW("zero pivot in device band LU at row " << k);
          const double inv = 1.0 / piv;
          const std::size_t imax = std::min(n - 1, k + lbw);
          const std::size_t jmax = std::min(n - 1, k + ubw);
          blk.threads([&](exec::ThreadIdx t) {
            for (std::size_t i = k + 1 + static_cast<std::size_t>(t.x); i <= imax && i < n;
                 i += static_cast<std::size_t>(blk.block_dim().x)) {
              const double m = av[a.index(i, k)] * inv;
              av[a.index(i, k)] = m;
              for (std::size_t j = k + 1; j <= jmax; ++j)
                av[a.index(i, j)] -= m * av[a.index(k, j)];
            }
          });
          blk.sync(); // grid-group sync in the hardware version (§III-G)
          scope.flops(static_cast<std::int64_t>(imax - k) * (1 + 2 * static_cast<std::int64_t>(jmax - k)));
        }
        scope.dram(static_cast<std::int64_t>(n) * static_cast<std::int64_t>(lbw + ubw + 1) * 8 * 2);
      },
      counters, &chk, "la:band-factor");
  chk.finish();
}

void device_band_solve(exec::ThreadPool& pool, std::span<BandMatrix* const> systems,
                       std::span<Vec*> x, exec::KernelCounters* counters) {
  LANDAU_ASSERT(systems.size() == x.size(), "batch size mismatch");
  namespace check = exec::check;
  const exec::Dim3 block{32, 1, 1};
  check::KernelScope chk("la:band-solve");
  std::vector<check::BufferRef<const double>> arefs;
  std::vector<check::BufferRef<double>> vrefs;
  if (chk.active()) {
    arefs.reserve(systems.size());
    vrefs.reserve(x.size());
    for (const BandMatrix* m : systems)
      arefs.push_back(chk.in(std::span<const double>(m->data()), "band.a"));
    for (Vec* v : x) vrefs.push_back(chk.out(v->span(), "band.rhs"));
  }
  exec::launch(
      pool, static_cast<int>(systems.size()), block,
      LANDAU_KERNEL [&](exec::Block& blk) {
        exec::CounterScope scope(blk.counters());
        const auto b = static_cast<std::size_t>(blk.block_idx());
        const BandMatrix& a = *systems[b];
        Vec& vv = *x[b];
        check::checked_span<const double> av =
            arefs.empty() ? check::checked_span<const double>(a.data()) : blk.view(arefs[b]);
        check::checked_span<double> v =
            vrefs.empty() ? check::checked_span<double>(vv.span()) : blk.view(vrefs[b]);
        const std::size_t n = a.size();
        const std::size_t lbw = a.lower_bandwidth();
        const std::size_t ubw = a.upper_bandwidth();
        auto regs = blk.registers<double>("regs");

        // Forward substitution: row i's dot product over its band is
        // computed lane-parallel, combined with the shuffle butterfly.
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t j0 = i > lbw ? i - lbw : 0;
          blk.threads([&](exec::ThreadIdx t) {
            double s = 0.0;
            for (std::size_t j = j0 + static_cast<std::size_t>(t.x); j < i;
                 j += static_cast<std::size_t>(blk.block_dim().x))
              s += av[a.index(i, j)] * v[j];
            regs[static_cast<std::size_t>(t.flat)] = s;
          });
          blk.shfl_xor_sum_x(regs);
          blk.threads([&](exec::ThreadIdx t) {
            if (t.flat == 0) v[i] -= regs[0];
          });
          blk.sync();
        }
        // Backward substitution with U.
        for (std::size_t i = n; i-- > 0;) {
          const std::size_t j1 = std::min(n - 1, i + ubw);
          blk.threads([&](exec::ThreadIdx t) {
            double s = 0.0;
            for (std::size_t j = i + 1 + static_cast<std::size_t>(t.x); j <= j1;
                 j += static_cast<std::size_t>(blk.block_dim().x))
              s += av[a.index(i, j)] * v[j];
            regs[static_cast<std::size_t>(t.flat)] = s;
          });
          blk.shfl_xor_sum_x(regs);
          blk.threads([&](exec::ThreadIdx t) {
            if (t.flat == 0) v[i] = (v[i] - regs[0]) / av[a.index(i, i)];
          });
          blk.sync();
        }
        scope.flops(static_cast<std::int64_t>(n) * static_cast<std::int64_t>(lbw + ubw + 2) * 2);
        scope.dram(static_cast<std::int64_t>(n) * static_cast<std::int64_t>(lbw + ubw + 1) * 8 +
                   static_cast<std::int64_t>(n) * 8 * 3);
      },
      counters, &chk, "la:band-solve");
  chk.finish();
}

void DeviceBlockBandSolver::analyze(const CsrMatrix& a) {
  perm_ = rcm_ordering(a);
  inv_ = invert_permutation(perm_);
  // Shared block discovery: validates that the ordering emits each graph
  // component contiguously (the host path's assertion) — a non-contiguous
  // ordering would silently build cross-coupled blocks.
  const auto ranges = discover_blocks(a, perm_);
  blocks_.assign(ranges.size(), BandBlock());
  mats_.resize(blocks_.size());
  rhs_.resize(blocks_.size());
  for (std::size_t bi = 0; bi < ranges.size(); ++bi) {
    blocks_[bi].analyze(a, perm_, inv_, ranges[bi]);
    mats_[bi] = &blocks_[bi].lu();
    rhs_[bi] = &blocks_[bi].rhs();
  }
  factor_event_ = Profiler::instance().event_id("landau:factor");
  solve_event_ = Profiler::instance().event_id("landau:solve");
  ++analysis_count_;
}

void DeviceBlockBandSolver::invalidate() {
  perm_.clear();
  inv_.clear();
  blocks_.clear();
  mats_.clear();
  rhs_.clear();
}

void DeviceBlockBandSolver::factor(const CsrMatrix& a) {
  LANDAU_ASSERT(analyzed(), "call analyze() before factor()");
  LANDAU_ASSERT(a.rows() == perm_.size(), "matrix size changed since analyze()");
  const std::int64_t flops0 = counters_.flops.load();
  const std::int64_t dram0 = counters_.dram_bytes.load();
  // Host-side value scatter through the cached maps (no band-width
  // rediscovery, no allocation), then one batched device launch.
  for (auto& blk : blocks_) blk.load(a);
  device_band_factor(*pool_, {mats_.data(), mats_.size()}, &counters_);
  Profiler::instance().add_work(factor_event_, counters_.flops.load() - flops0,
                                counters_.dram_bytes.load() - dram0);
}

void DeviceBlockBandSolver::solve(const Vec& b, Vec& x) {
  LANDAU_ASSERT(analyzed(), "call analyze() before solve()");
  LANDAU_ASSERT(b.size() == perm_.size() && x.size() == perm_.size(), "solve size mismatch");
  const std::int64_t flops0 = counters_.flops.load();
  const std::int64_t dram0 = counters_.dram_bytes.load();
  for (auto& blk : blocks_) blk.gather_rhs(b, perm_);
  device_band_solve(*pool_, {mats_.data(), mats_.size()}, {rhs_.data(), rhs_.size()},
                    &counters_);
  // Scatter back after all solves so x may alias b.
  for (auto& blk : blocks_) blk.scatter_solution(x, perm_);
  Profiler::instance().add_work(solve_event_, counters_.flops.load() - flops0,
                                counters_.dram_bytes.load() - dram0);
}

} // namespace landau::la
