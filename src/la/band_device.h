#pragma once
// The paper's custom CUDA band solver (§III-G), in the emulated CUDA
// programming model: a batch of independent banded systems — one per
// species block, or one per spatial vertex in the batched collision advance
// the conclusion describes — is factored and solved with one thread block
// per system. Within a block:
//
//  * factorization: the outer-product update of column k parallelizes over
//    rows across the block's lanes, with a barrier per pivot column (the
//    hardware version uses grid-group sync to spread one system over
//    several SMs; the emulation's phase barriers play that role),
//  * triangular solves: each row's dot product is computed lane-parallel
//    and combined with the warp-shuffle butterfly.
//
// Produces bitwise-comparable factors to the serial BandMatrix::factor_lu.

#include <span>
#include <vector>

#include "exec/counters.h"
#include "exec/cuda_sim.h"
#include "exec/thread_pool.h"
#include "la/band.h"
#include "la/csr.h"
#include "la/vec.h"

namespace landau::la {

/// Factor a batch of band matrices in place, one emulated thread block per
/// system.
void device_band_factor(exec::ThreadPool& pool, std::span<BandMatrix*> systems,
                        exec::KernelCounters* counters = nullptr);

/// Solve the factored systems against their right-hand sides (in place:
/// x[i] enters as b and leaves as the solution).
void device_band_solve(exec::ThreadPool& pool, std::span<BandMatrix* const> systems,
                       std::span<Vec*> x, exec::KernelCounters* counters = nullptr);

/// Drop-in replacement for BlockBandSolver running factor/solve through the
/// device model: RCM analysis on the host (amortized metadata, §III-F), then
/// each species block is one batch entry. Shares the symbolic machinery with
/// the host solver — the same validated block discovery, cached band widths
/// and CSR-value -> band-storage scatter maps — so factor() and solve() are
/// allocation-free after analyze() and re-analysis is only needed when the
/// nonzero structure changes.
class DeviceBlockBandSolver {
public:
  explicit DeviceBlockBandSolver(exec::ThreadPool& pool) : pool_(&pool) {}

  void analyze(const CsrMatrix& a);
  void invalidate();
  void factor(const CsrMatrix& a);
  void solve(const Vec& b, Vec& x);

  std::size_t n_blocks() const { return blocks_.size(); }
  bool analyzed() const { return !perm_.empty(); }
  long analysis_count() const { return analysis_count_; }

  /// Device-side work counters accumulated over factor()/solve() calls.
  const exec::KernelCounters& counters() const { return counters_; }

private:
  exec::ThreadPool* pool_;
  std::vector<std::int32_t> perm_;
  std::vector<std::int32_t> inv_;
  std::vector<BandBlock> blocks_;
  std::vector<BandMatrix*> mats_; // persistent batch views into blocks_
  std::vector<Vec*> rhs_;
  exec::KernelCounters counters_;
  long analysis_count_ = 0;
  int factor_event_ = -1, solve_event_ = -1;
};

} // namespace landau::la
