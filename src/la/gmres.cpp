#include "la/gmres.h"

#include <cmath>

#include "util/error.h"

namespace landau::la {

GmresResult gmres_solve(const CsrMatrix& a, const Vec& b, Vec& x, const GmresOptions& opts) {
  const std::size_t n = b.size();
  LANDAU_ASSERT(a.rows() == n && a.cols() == n && x.size() == n, "gmres size mismatch");
  const int m = opts.restart;

  // Jacobi preconditioner: M^{-1} = 1/diag(A).
  Vec dinv(n, 1.0);
  if (opts.jacobi_preconditioner) {
    for (std::size_t i = 0; i < n; ++i) {
      const double d = a.get(i, i);
      dinv[i] = d != 0.0 ? 1.0 / d : 1.0;
    }
  }
  auto precond = [&](Vec& v) {
    if (opts.jacobi_preconditioner)
      for (std::size_t i = 0; i < n; ++i) v[i] *= dinv[i];
  };

  GmresResult result;
  Vec r(n), w(n);
  std::vector<Vec> basis; // Krylov basis V
  std::vector<double> h(static_cast<std::size_t>((m + 1) * m), 0.0);
  std::vector<double> cs(m), sn(m), g(m + 1);
  auto H = [&](int i, int j) -> double& { return h[static_cast<std::size_t>(i * m + j)]; };

  a.mult(x, r);
  r.axpby(1.0, b, -1.0); // r = b - Ax
  precond(r);
  double beta = r.norm2();
  if (!std::isfinite(beta)) {
    // Poisoned inputs: leave x exactly as given (finite, defined) instead of
    // running Arnoldi on NaNs.
    result.breakdown = true;
    result.residual_norm = beta;
    return result;
  }
  const double target = std::max(opts.atol, opts.rtol * (beta > 0 ? beta : 1.0));
  Vec x_checkpoint = x; // last finite iterate, restored on breakdown

  while (result.iterations < opts.max_iterations) {
    if (beta <= target) {
      result.converged = true;
      break;
    }
    basis.assign(1, r);
    basis[0].scale(1.0 / beta);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;
    int k = 0;
    for (; k < m && result.iterations < opts.max_iterations; ++k, ++result.iterations) {
      a.mult(basis[static_cast<std::size_t>(k)], w);
      precond(w);
      // Modified Gram-Schmidt.
      for (int i = 0; i <= k; ++i) {
        H(i, k) = w.dot(basis[static_cast<std::size_t>(i)]);
        w.axpy(-H(i, k), basis[static_cast<std::size_t>(i)]);
      }
      H(k + 1, k) = w.norm2();
      if (H(k + 1, k) > 1e-300) {
        basis.push_back(w);
        basis.back().scale(1.0 / H(k + 1, k));
      }
      // Apply accumulated Givens rotations, then create a new one.
      for (int i = 0; i < k; ++i) {
        const double t = cs[i] * H(i, k) + sn[i] * H(i + 1, k);
        H(i + 1, k) = -sn[i] * H(i, k) + cs[i] * H(i + 1, k);
        H(i, k) = t;
      }
      const double denom = std::hypot(H(k, k), H(k + 1, k));
      cs[k] = H(k, k) / denom;
      sn[k] = H(k + 1, k) / denom;
      H(k, k) = denom;
      H(k + 1, k) = 0.0;
      g[k + 1] = -sn[k] * g[k];
      g[k] = cs[k] * g[k];
      if (std::abs(g[k + 1]) <= target) {
        ++k;
        ++result.iterations;
        break;
      }
      if (static_cast<std::size_t>(k + 2) > basis.size()) break; // breakdown: exact solution in span
    }
    // Solve the k x k triangular system and update x.
    std::vector<double> y(static_cast<std::size_t>(k));
    for (int i = k - 1; i >= 0; --i) {
      double s = g[i];
      for (int j = i + 1; j < k; ++j) s -= H(i, j) * y[static_cast<std::size_t>(j)];
      y[static_cast<std::size_t>(i)] = s / H(i, i);
    }
    for (int i = 0; i < k; ++i) x.axpy(y[static_cast<std::size_t>(i)], basis[static_cast<std::size_t>(i)]);

    a.mult(x, r);
    r.axpby(1.0, b, -1.0);
    precond(r);
    beta = r.norm2();
    if (!std::isfinite(beta) || !x.all_finite()) {
      // Breakdown mid-solve (e.g. an exactly-singular projected system): roll
      // x back to the last finite iterate so the caller never sees NaNs.
      x = x_checkpoint;
      result.breakdown = true;
      result.residual_norm = beta;
      return result;
    }
    x_checkpoint = x;
    if (beta <= target) {
      result.converged = true;
      break;
    }
  }
  result.residual_norm = beta;
  return result;
}

} // namespace landau::la
