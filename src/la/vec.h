#pragma once
// Dense vector with the BLAS-1 style operations the solver stack needs.
// Mirrors the subset of PETSc's Vec that the Landau time integrator exercises.

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "util/error.h"

namespace landau::la {

/// True iff every entry is finite (no NaN, no ±Inf). Branch-free inner scan
/// (x * 0.0 is 0 for finite x and NaN otherwise, so a chunk's accumulated sum
/// is 0 iff the chunk is clean) — auto-vectorizable — with an early exit
/// between chunks so a poisoned prefix of a large vector fails fast.
bool all_finite(std::span<const double> v);

/// Owning dense vector of doubles.
class Vec {
public:
  Vec() = default;
  explicit Vec(std::size_t n, double value = 0.0) : data_(n, value) {}
  explicit Vec(std::vector<double> data) : data_(std::move(data)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  void resize(std::size_t n, double value = 0.0) { data_.resize(n, value); }

  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }
  double& at(std::size_t i) { LANDAU_CHECK_RANGE(i, data_.size()); return data_[i]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::span<double> span() { return {data_.data(), data_.size()}; }
  std::span<const double> span() const { return {data_.data(), data_.size()}; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  void set(double value) { std::fill(data_.begin(), data_.end(), value); }
  void zero() { set(0.0); }

  /// y += a*x
  void axpy(double a, const Vec& x);
  /// y = a*y + x
  void aypx(double a, const Vec& x);
  /// y = a*x + b*y
  void axpby(double a, const Vec& x, double b);
  void scale(double a);
  double dot(const Vec& x) const;
  double norm2() const { return std::sqrt(dot(*this)); }
  double norm_inf() const;
  double sum() const;
  /// No NaN/±Inf entries (the step controller's state/residual guard).
  bool all_finite() const { return la::all_finite(span()); }

private:
  std::vector<double> data_;
};

} // namespace landau::la
