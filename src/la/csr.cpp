#include "la/csr.h"

#include <algorithm>
#include <atomic>

namespace landau::la {

void SparsityPattern::compress() {
  for (auto& row : lists_) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
}

std::size_t SparsityPattern::nnz() const {
  std::size_t n = 0;
  for (const auto& row : lists_) n += row.size();
  return n;
}

CsrMatrix::CsrMatrix(const SparsityPattern& pattern)
    : rows_(pattern.rows()), cols_(pattern.cols()) {
  rowptr_.resize(rows_ + 1, 0);
  for (std::size_t i = 0; i < rows_; ++i) {
    // Pattern rows must be compressed (sorted/unique).
    const auto& row = pattern.lists_[i];
    LANDAU_ASSERT(std::is_sorted(row.begin(), row.end()), "pattern not compressed (row " << i << ")");
    rowptr_[i + 1] = rowptr_[i] + static_cast<std::int32_t>(row.size());
  }
  colind_.reserve(static_cast<std::size_t>(rowptr_[rows_]));
  for (std::size_t i = 0; i < rows_; ++i)
    colind_.insert(colind_.end(), pattern.lists_[i].begin(), pattern.lists_[i].end());
  values_.assign(colind_.size(), 0.0);
}

std::size_t CsrMatrix::find_entry(std::size_t i, std::size_t j) const noexcept {
  const auto* begin = colind_.data() + rowptr_[i];
  const auto* end = colind_.data() + rowptr_[i + 1];
  const auto* it = std::lower_bound(begin, end, static_cast<std::int32_t>(j));
  if (it == end || *it != static_cast<std::int32_t>(j)) return npos;
  return static_cast<std::size_t>(rowptr_[i] + (it - begin));
}

std::size_t CsrMatrix::entry_index(std::size_t i, std::size_t j) const {
  LANDAU_CHECK_RANGE(i, rows_);
  const std::size_t k = find_entry(i, j);
  if (k == npos) LANDAU_THROW("entry (" << i << "," << j << ") not in sparsity pattern");
  return k;
}

double CsrMatrix::get(std::size_t i, std::size_t j) const {
  const std::size_t k = find_entry(i, j);
  return k == npos ? 0.0 : values_[k];
}

LANDAU_DEVICE void CsrMatrix::add_atomic(std::size_t i, std::size_t j, double v) {
  std::atomic_ref<double> ref(values_[entry_index(i, j)]);
  ref.fetch_add(v, std::memory_order_relaxed);
}

void CsrMatrix::add_values(std::span<const std::int32_t> rows,
                           std::span<const std::int32_t> cols, const DenseMatrix& block) {
  LANDAU_ASSERT(block.rows() == rows.size() && block.cols() == cols.size(),
                "add_values block shape mismatch");
  for (std::size_t bi = 0; bi < rows.size(); ++bi) {
    const std::size_t i = static_cast<std::size_t>(rows[bi]);
    for (std::size_t bj = 0; bj < cols.size(); ++bj)
      values_[entry_index(i, static_cast<std::size_t>(cols[bj]))] += block(bi, bj);
  }
}

void CsrMatrix::add_values_atomic(std::span<const std::int32_t> rows,
                                  std::span<const std::int32_t> cols, const DenseMatrix& block) {
  LANDAU_ASSERT(block.rows() == rows.size() && block.cols() == cols.size(),
                "add_values block shape mismatch");
  for (std::size_t bi = 0; bi < rows.size(); ++bi) {
    const std::size_t i = static_cast<std::size_t>(rows[bi]);
    for (std::size_t bj = 0; bj < cols.size(); ++bj) {
      std::atomic_ref<double> ref(values_[entry_index(i, static_cast<std::size_t>(cols[bj]))]);
      ref.fetch_add(block(bi, bj), std::memory_order_relaxed);
    }
  }
}

void CsrMatrix::mult(const Vec& x, Vec& y) const {
  LANDAU_ASSERT(x.size() == cols_ && y.size() == rows_, "csr mult size mismatch");
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::int32_t k = rowptr_[i]; k < rowptr_[i + 1]; ++k)
      s += values_[k] * x[static_cast<std::size_t>(colind_[k])];
    y[i] = s;
  }
}

void CsrMatrix::mult_add(const Vec& x, Vec& y) const {
  LANDAU_ASSERT(x.size() == cols_ && y.size() == rows_, "csr mult_add size mismatch");
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::int32_t k = rowptr_[i]; k < rowptr_[i + 1]; ++k)
      s += values_[k] * x[static_cast<std::size_t>(colind_[k])];
    y[i] += s;
  }
}

void CsrMatrix::axpy(double a, const CsrMatrix& x) {
  LANDAU_ASSERT(x.nnz() == nnz() && x.rows() == rows(), "axpy requires identical patterns");
  for (std::size_t k = 0; k < values_.size(); ++k) values_[k] += a * x.values_[k];
}

void CsrMatrix::shift_diagonal(double s) {
  for (std::size_t i = 0; i < rows_; ++i) values_[entry_index(i, i)] += s;
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix d(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::int32_t k = rowptr_[i]; k < rowptr_[i + 1]; ++k)
      d(i, static_cast<std::size_t>(colind_[k])) = values_[k];
  return d;
}

std::size_t CsrMatrix::bandwidth() const {
  std::size_t bw = 0;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::int32_t k = rowptr_[i]; k < rowptr_[i + 1]; ++k) {
      const auto j = static_cast<std::size_t>(colind_[k]);
      bw = std::max(bw, i > j ? i - j : j - i);
    }
  return bw;
}

CooAssembler::CooAssembler(std::size_t rows, std::size_t cols, std::vector<std::int32_t> coo_i,
                           std::vector<std::int32_t> coo_j) {
  LANDAU_ASSERT(coo_i.size() == coo_j.size(), "COO index arrays must have equal length");
  SparsityPattern pattern(rows, cols);
  for (std::size_t k = 0; k < coo_i.size(); ++k)
    pattern.add(static_cast<std::size_t>(coo_i[k]), static_cast<std::size_t>(coo_j[k]));
  pattern.compress();
  mat_ = CsrMatrix(pattern);
  perm_.resize(coo_i.size());
  for (std::size_t k = 0; k < coo_i.size(); ++k)
    perm_[k] = mat_.entry_index(static_cast<std::size_t>(coo_i[k]),
                                static_cast<std::size_t>(coo_j[k]));
}

void CooAssembler::assemble(std::span<const double> values) {
  LANDAU_ASSERT(values.size() == perm_.size(), "COO value array length mismatch");
  mat_.zero_entries();
  auto v = mat_.values();
  for (std::size_t k = 0; k < perm_.size(); ++k) v[perm_[k]] += values[k];
}

} // namespace landau::la
