// Figure 4: computed eta = E/J versus the Spitzer eta as a function of the
// ion effective charge Z. The paper sweeps Z = 1..128 on a 176-cell Q3 mesh
// and finds the FP-Landau resistivity tracks Spitzer (about 1% low at Z=1,
// drifting at very large Z where the solver is under-converged).
//
// Default sweep keeps the runtime budget of a benchmark run; pass
// -z_list 1,2,4,...,128 -ion_mass 0 for the full physical configuration.

#include <cstdio>

#include "common.h"
#include "util/logging.h"
#include "quench/spitzer.h"

using namespace landau;
using namespace landau::bench;
using namespace landau::quench;

int main(int argc, char** argv) {
  // Keep bench output clean: Newton tolerance warnings are expected with the
  // capped iteration budget (throughput-style runs).
  Logger::instance().set_level(LogLevel::Error);
  Options opts;
  opts.parse(argc, argv);
  const auto z_list = opts.get_list<double>("z_list", {1.0, 4.0}, "Z values to sweep");
  const double ion_mass = opts.get<double>("ion_mass", 25.0,
                                           "ion mass (m_e; 0 = physical 2*Z*1836)");
  const double e_z = opts.get<double>("e_field", 2e-3, "applied E (normalized)");
  const double dt = opts.get<double>("dt", 1.5, "time step");
  const int max_steps = opts.get<int>("max_steps", 30, "step budget per Z");
  const double cpt = opts.get<double>("cells_per_thermal", 0.8, "AMR target");
  const int max_levels = opts.get<int>("max_levels", 5, "AMR depth cap");
  const std::string csv = opts.get<std::string>("csv", "fig4_spitzer.csv", "CSV output");
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  TableWriter table("Fig. 4: eta = E/J vs Spitzer eta as a function of Z");
  table.header({"Z", "eta computed", "eta Spitzer", "ratio", "steps", "steady"});

  for (double z : z_list) {
    auto species = SpeciesSet::electron_ion(z);
    if (ion_mass > 0) species[1].mass = ion_mass;
    LandauOptions lopts;
    lopts.order = 3;
    lopts.radius = 5.0;
    lopts.cells_per_thermal = cpt;
    lopts.max_levels = max_levels;
    lopts.n_workers = 1;
    LandauOperator op(species, lopts);

    NewtonOptions newton;
    newton.rtol = 1e-6;
    newton.max_iterations = 15;
    const auto res = measure_resistivity(op, e_z, dt, max_steps, 2e-3,
                                         LinearSolverKind::BandLU, newton);
    const double eta_sp = spitzer_eta(z);
    table.add_row().cell(z, 0).cell(res.eta, 5).cell(eta_sp, 5).cell(res.eta / eta_sp, 4)
        .cell(res.steps).cell(res.converged ? "yes" : "no");
    std::printf("Z=%-4g eta/eta_Spitzer = %.4f (%zu cells)\n", z, res.eta / eta_sp,
                op.forest().n_leaves());
  }
  std::printf("%s", table.str().c_str());
  if (!csv.empty()) {
    table.write_csv(csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  std::printf("\npaper: computed eta tracks Spitzer across Z (about 1%% low at Z=1 on a\n"
              "176-cell mesh). Reproduced shape: ratio near 1 and roughly flat in Z.\n");
  return 0;
}
