// Google-benchmark microbenchmarks of the hot kernels: elliptic integrals,
// the 2D Landau tensor, the inner-integral point kernel, banded LU, RCM,
// sparse matvec, and the full element kernel on each back-end.

#include <benchmark/benchmark.h>

#include <random>

#include "core/kernel_math.h"
#include "core/landau_tensor.h"
#include "core/operator.h"
#include "la/band.h"
#include "la/rcm.h"
#include "util/special_math.h"

using namespace landau;

static void BM_EllipticKE(benchmark::State& state) {
  double m = 0.3, K, E;
  for (auto _ : state) {
    elliptic_ke(m, &K, &E);
    benchmark::DoNotOptimize(K + E);
    m = 0.1 + 0.8 * (m - 0.1 < 0.79 ? m - 0.099 : 0.0); // wander in (0,1)
  }
}
BENCHMARK(BM_EllipticKE);

static void BM_LandauTensor2D(benchmark::State& state) {
  Tensor2 uk, ud;
  double r = 1.0;
  for (auto _ : state) {
    landau_tensor_2d(r, 0.5, 0.7, -0.3, &uk, &ud);
    benchmark::DoNotOptimize(uk.m[0][0] + ud.m[1][1]);
    r = r < 3.0 ? r + 1e-3 : 0.5;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LandauTensor2D);

static void BM_InnerPoint(benchmark::State& state) {
  const int ns = static_cast<int>(state.range(0));
  std::vector<double> f(static_cast<std::size_t>(ns) * 8, 0.5), q2(static_cast<std::size_t>(ns), 1.0),
      qm(static_cast<std::size_t>(ns), 0.1);
  detail::InnerAccum acc;
  for (auto _ : state) {
    detail::inner_point(1.0, 0.5, 0.7, -0.3, 0.01, f.data(), f.data(), f.data(), 8, ns,
                        q2.data(), qm.data(), &acc);
    benchmark::DoNotOptimize(acc.gd00);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InnerPoint)->Arg(1)->Arg(2)->Arg(10);

static void BM_BandLUFactor(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t bw = 12;
  la::BandMatrix proto(n, bw, bw);
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1, 1);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = (i > bw ? i - bw : 0); j <= std::min(n - 1, i + bw); ++j)
      proto.at(i, j) = i == j ? 30.0 : dist(rng);
  for (auto _ : state) {
    la::BandMatrix b = proto;
    benchmark::DoNotOptimize(b.factor_lu());
  }
}
BENCHMARK(BM_BandLUFactor)->Arg(200)->Arg(800);

static void BM_RcmOrdering(benchmark::State& state) {
  const std::size_t n = 500;
  la::SparsityPattern p(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = (i > 4 ? i - 4 : 0); j <= std::min(n - 1, i + 4); ++j) p.add(i, j);
  p.compress();
  la::CsrMatrix a(p);
  for (auto _ : state) {
    auto perm = la::rcm_ordering(a);
    benchmark::DoNotOptimize(perm.data());
  }
}
BENCHMARK(BM_RcmOrdering);

static void BM_JacobianKernel(benchmark::State& state) {
  const auto backend = static_cast<Backend>(state.range(0));
  SpeciesSet electron(
      {{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0}});
  LandauOptions lopts;
  lopts.order = 3;
  lopts.radius = 4.0;
  lopts.cells_per_thermal = 0.6;
  lopts.max_levels = 3;
  lopts.backend = backend;
  lopts.n_workers = 1;
  LandauOperator op(electron, lopts);
  op.pack(op.maxwellian_state());
  la::CsrMatrix j = op.new_matrix();
  for (auto _ : state) {
    j.zero_entries();
    op.add_collision(j);
    benchmark::DoNotOptimize(j.values().data());
  }
  state.SetLabel(backend_name(backend));
  state.counters["cells"] = static_cast<double>(op.forest().n_leaves());
}
BENCHMARK(BM_JacobianKernel)
    ->Arg(static_cast<int>(Backend::Cpu))
    ->Arg(static_cast<int>(Backend::CudaSim))
    ->Arg(static_cast<int>(Backend::KokkosSim))
    ->Unit(benchmark::kMillisecond);

static void BM_MassKernel(benchmark::State& state) {
  SpeciesSet electron(
      {{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0}});
  LandauOptions lopts;
  lopts.order = 3;
  lopts.radius = 4.0;
  lopts.cells_per_thermal = 0.6;
  lopts.max_levels = 3;
  lopts.n_workers = 1;
  LandauOperator op(electron, lopts);
  op.pack(op.maxwellian_state());
  la::CsrMatrix j = op.new_matrix();
  for (auto _ : state) {
    j.zero_entries();
    op.add_mass_kernel(j, 1.0);
    benchmark::DoNotOptimize(j.values().data());
  }
}
BENCHMARK(BM_MassKernel)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
