// Table IV: roofline placement of the Jacobian and mass kernels.
//
// NSight Compute is replaced by the exact FLOP/byte instrumentation threaded
// through the emulated kernels (DESIGN.md): arithmetic intensity is a
// property of the algorithm and reproduces directly. The obs roofline
// reporter places each kernel twice — against *this host's* measured peaks
// (FMA + streaming-bandwidth microbenchmarks, obs::calibrate_peaks) for a
// real achieved-fraction column, and against the V100 model (7.8 TF/s DFMA,
// 890 GB/s) for the paper's Table IV view.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.h"
#include "obs/roofline.h"

using namespace landau;
using namespace landau::bench;

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  // A larger problem (the paper uses 320 cells) so the counters integrate a
  // representative mix of elements.
  opts.set("cells_per_thermal", opts.get<double>("cells_per_thermal", 0.6, ""));
  const double budget = opts.get<double>("calibration_budget", 0.2, "peak-calibration seconds");
  auto lopts = perf_mesh_options(opts, Backend::CudaSim);
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  LandauOperator op(perf_species(true), lopts);
  std::printf("problem: %zu cells, %zu dofs/species, %d species\n", op.forest().n_leaves(),
              op.n_dofs_per_species(), op.n_species());

  la::Vec f = op.maxwellian_state();
  op.pack(f);
  la::CsrMatrix j = op.new_matrix();

  exec::KernelCounters jac, mass;
  Stopwatch w1;
  op.add_collision(j, &jac);
  const double t_jac = w1.seconds();
  Stopwatch w2;
  op.add_mass_kernel(j, 1.0, &mass);
  const double t_mass = w2.seconds();

  const auto host = obs::calibrate_peaks(budget);
  std::printf("host peaks (measured in %.2f s): %.2f Gflop/s FMA, %.2f GB/s stream\n",
              host.calibration_seconds, host.fma_gflops, host.stream_gbs);

  const std::vector<obs::RooflineEntry> entries = {
      obs::RooflineEntry::from_counters("Jacobian", jac, t_jac),
      obs::RooflineEntry::from_counters("Mass", mass, t_mass),
  };
  const auto v100 = exec::v100();
  std::printf("%s", obs::roofline_report(entries, host, v100).c_str());
  std::printf("\nV100 roofline knee: %.1f flops/byte. Paper: Jacobian AI 15.8 (53%% of peak,\n"
              "FP64-pipe bound), mass AI 1.8 (17%%, L1-latency bound). The contrast — the\n"
              "Jacobian far above the knee, the mass kernel far below — is the reproduced\n"
              "result; absolute AI differs with the traffic model (see EXPERIMENTS.md).\n",
              v100.roofline_knee());
  // Shared-memory traffic ratio: the inner integral reads shared, not DRAM.
  std::printf("Jacobian shared/DRAM traffic ratio: %.1f (inner integral served from shared)\n",
              static_cast<double>(jac.shared_bytes.load(std::memory_order_relaxed)) /
                  std::max<std::int64_t>(1, jac.dram_bytes.load(std::memory_order_relaxed)));

  const auto jac_host = obs::place(entries[0], host.fma_gflops, host.stream_gbs);
  const auto mass_host = obs::place(entries[1], host.fma_gflops, host.stream_gbs);
  BenchReport report("table4_roofline");
  report.metric("jacobian.ai", jac_host.ai, "flops/byte", "none");
  report.metric("mass.ai", mass_host.ai, "flops/byte", "none");
  report.metric("jacobian.host_gflops", jac_host.achieved_gflops, "Gflop/s", "higher");
  report.metric("jacobian.seconds", t_jac, "s", "lower");
  report.metric("mass.seconds", t_mass, "s", "lower");
  report.metric("host.fma_gflops", host.fma_gflops, "Gflop/s", "none");
  report.metric("host.stream_gbs", host.stream_gbs, "GB/s", "none");
  return 0;
}
