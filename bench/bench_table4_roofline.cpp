// Table IV: roofline placement of the Jacobian and mass kernels.
//
// NSight Compute is replaced by the exact FLOP/byte instrumentation threaded
// through the emulated kernels (DESIGN.md): arithmetic intensity is a
// property of the algorithm and reproduces directly. The % roofline column
// evaluates each kernel's AI against the V100 roofline (7.8 TF/s DFMA,
// 890 GB/s), assuming the paper's measured 66% FP64 pipe utilization for the
// compute-bound Jacobian and memory-path limits for the mass kernel.

#include <algorithm>
#include <cstdio>

#include "common.h"

using namespace landau;
using namespace landau::bench;

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  // A larger problem (the paper uses 320 cells) so the counters integrate a
  // representative mix of elements.
  opts.set("cells_per_thermal", opts.get<double>("cells_per_thermal", 0.6, ""));
  auto lopts = perf_mesh_options(opts, Backend::CudaSim);
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  LandauOperator op(perf_species(true), lopts);
  std::printf("problem: %zu cells, %zu dofs/species, %d species\n", op.forest().n_leaves(),
              op.n_dofs_per_species(), op.n_species());

  la::Vec f = op.maxwellian_state();
  op.pack(f);
  la::CsrMatrix j = op.new_matrix();

  exec::KernelCounters jac, mass;
  Stopwatch w1;
  op.add_collision(j, &jac);
  const double t_jac = w1.seconds();
  Stopwatch w2;
  op.add_mass_kernel(j, 1.0, &mass);
  const double t_mass = w2.seconds();

  const auto v100 = exec::v100();
  const double knee = v100.roofline_knee();

  auto report = [&](const char* name, const exec::KernelCounters& c, double host_seconds) {
    const double ai = c.arithmetic_intensity();
    // Roofline-attainable fraction of peak at this AI.
    const double attainable = std::min(1.0, ai / knee);
    return std::tuple<double, double, const char*>{
        ai, attainable, ai >= knee ? "FP64 pipe (compute)" : "memory path"};
    (void)name;
    (void)host_seconds;
  };

  TableWriter table("Table IV: roofline data for the Jacobian and mass kernels (V100 model)");
  table.header({"kernel", "AI (flops/byte)", "roofline-attainable %", "bottleneck",
                "host time (s)", "Gflop"});
  {
    auto [ai, att, bn] = report("Jacobian", jac, t_jac);
    table.add_row().cell("Jacobian").cell(ai, 1).cell(100 * att, 0).cell(bn).cell(t_jac, 3).cell(
        static_cast<double>(jac.flops.load()) * 1e-9, 2);
  }
  {
    auto [ai, att, bn] = report("Mass", mass, t_mass);
    table.add_row().cell("Mass").cell(ai, 1).cell(100 * att, 0).cell(bn).cell(t_mass, 3).cell(
        static_cast<double>(mass.flops.load()) * 1e-9, 2);
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nV100 roofline knee: %.1f flops/byte. Paper: Jacobian AI 15.8 (53%% of peak,\n"
              "FP64-pipe bound), mass AI 1.8 (17%%, L1-latency bound). The contrast — the\n"
              "Jacobian far above the knee, the mass kernel far below — is the reproduced\n"
              "result; absolute AI differs with the traffic model (see EXPERIMENTS.md).\n",
              knee);
  // Shared-memory traffic ratio: the inner integral reads shared, not DRAM.
  std::printf("Jacobian shared/DRAM traffic ratio: %.1f (inner integral served from shared)\n",
              static_cast<double>(jac.shared_bytes.load()) /
                  std::max<std::int64_t>(1, jac.dram_bytes.load()));
  return 0;
}
