#pragma once
// Shared harness for the paper-reproduction benchmarks: the §V performance
// problem (electrons + deuterium + eight tungsten charge states), component
// time measurement via the profiler, and the calibration data that feeds the
// schedule simulator for the node-level throughput tables.
//
// Two calibration sources for the simulator's per-iteration segment times:
//  * paper: the single-process component times of Table VII (documents that
//    the queueing model regenerates Tables II/III/V from the paper's own
//    serial measurements), and
//  * host: times measured from this build's emulated kernels, scaled to the
//    target device by peak-throughput ratios (the substitution path when no
//    GPU exists).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/operator.h"
#include "util/logging.h"
#include "exec/device.h"
#include "exec/schedule_sim.h"
#include "obs/json.h"
#include "quench/model.h"
#include "solver/implicit.h"
#include "util/options.h"
#include "util/profiler.h"
#include "util/table_writer.h"

namespace landau::bench {

/// Machine-readable benchmark output: every bench binary registers its headline
/// numbers here and a `BENCH_<name>.json` file is written when the report is
/// destroyed (or on write()). tools/bench_compare.py diffs two such files
/// against a noise threshold, so CI can gate on throughput regressions.
///
/// Schema (version 1):
///   {"bench": "<name>", "schema": 1,
///    "env": {"hardware_threads": N, "build": "<type>"},
///    "metrics": {"<metric>": {"value": x, "unit": "<unit>",
///                             "compare": "higher"|"lower"|"none"}}}
///
/// `compare` tells bench_compare which direction is a regression: "higher"
/// means larger is better (throughput), "lower" means smaller is better
/// (latency), "none" marks context values (problem sizes) that are checked
/// for equality but never gated on.
class BenchReport {
public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}
  BenchReport(const BenchReport&) = delete;
  ~BenchReport() {
    if (!written_) write();
  }

  void metric(const std::string& key, double value, const std::string& unit,
              const std::string& compare = "higher") {
    obs::JsonValue m = obs::JsonValue::object();
    m.set("value", value);
    m.set("unit", unit);
    m.set("compare", compare);
    metrics_.set(key, std::move(m));
  }

  /// Output path: $LANDAU_BENCH_DIR/BENCH_<name>.json (cwd by default).
  std::string path() const {
    const char* dir = std::getenv("LANDAU_BENCH_DIR");
    std::string p = dir && *dir ? std::string(dir) + "/" : std::string();
    return p + "BENCH_" + name_ + ".json";
  }

  void write() {
    written_ = true;
    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("bench", name_);
    doc.set("schema", 1);
    obs::JsonValue env = obs::JsonValue::object();
    env.set("hardware_threads", static_cast<long long>(std::thread::hardware_concurrency()));
#ifdef NDEBUG
    env.set("build", "release");
#else
    env.set("build", "debug");
#endif
    doc.set("env", std::move(env));
    doc.set("metrics", std::move(metrics_));
    const std::string p = path();
    if (FILE* fp = std::fopen(p.c_str(), "w")) {
      const std::string text = doc.dump(2);
      std::fwrite(text.data(), 1, text.size(), fp);
      std::fputc('\n', fp);
      std::fclose(fp);
      std::printf("wrote %s\n", p.c_str());
    } else {
      LANDAU_WARN("bench report: cannot open '" << p << "'");
    }
    metrics_ = obs::JsonValue::object();
  }

private:
  std::string name_;
  obs::JsonValue metrics_ = obs::JsonValue::object();
  bool written_ = false;
};

/// The §V test problem. With `reduced` the mass hierarchy is compressed so
/// the inner-integral size stays host-friendly; the species structure
/// (10 species, 3 thermal-velocity clusters, quasi-neutral) is unchanged.
inline SpeciesSet perf_species(bool reduced = true) {
  auto species = SpeciesSet::tungsten_plasma();
  if (reduced) {
    species[1].mass = 100.0;
    for (int s = 2; s < species.size(); ++s) species[s].mass = 1600.0;
  }
  return species;
}

inline LandauOptions perf_mesh_options(Options& opts, Backend backend) {
  LandauOptions lopts;
  lopts.order = 3;
  lopts.radius = 5.0;
  lopts.base_levels = 1;
  lopts.cells_per_thermal = opts.get<double>("cells_per_thermal", 0.45, "AMR target");
  lopts.max_levels = opts.get<int>("max_levels", 6, "AMR depth cap");
  lopts.backend = backend;
  lopts.n_workers = static_cast<unsigned>(opts.get<int>("workers", 1, "emulated SMs"));
  return lopts;
}

/// Per-Newton-iteration component times (seconds), Table VII's columns.
struct ComponentTimes {
  double total = 0;  // full implicit step work per iteration
  double landau = 0; // Landau matrix construction (kernel + metadata)
  double kernel = 0; // device-side Jacobian kernel
  double factor = 0;
  double solve = 0;
  int iterations = 0;
  double seconds = 0; // wall time of the measurement
};

/// Run `steps` implicit steps and report profiler-derived per-iteration
/// component times.
inline ComponentTimes measure_components(LandauOperator& op, int steps, double dt,
                                         double newton_rtol = 1e-6, int max_iterations = 5) {
  auto& prof = Profiler::instance();
  // Cost measurement only: cap the quasi-Newton iteration count (the paper's
  // throughput metric deliberately factors out solver tolerance, §V) and
  // silence non-convergence warnings.
  const LogLevel saved_level = Logger::instance().level();
  Logger::instance().set_level(LogLevel::Error);
  NewtonOptions nopts;
  nopts.rtol = newton_rtol;
  nopts.max_iterations = max_iterations;
  ImplicitIntegrator integrator(op, nopts);
  la::Vec f = op.maxwellian_state();
  // Warm-up step: first CPU assembly fixes matrix metadata (§III-F) and the
  // band solver runs its RCM analysis; both are amortized in production.
  integrator.step(f, dt);
  prof.reset();
  Stopwatch watch;
  for (int s = 0; s < steps; ++s) integrator.step(f, dt);
  const double wall = watch.seconds();

  ComponentTimes ct;
  ct.iterations = static_cast<int>(prof.count("landau:matrix"));
  if (ct.iterations == 0) ct.iterations = 1;
  const double n = ct.iterations;
  ct.total = wall / n;
  ct.landau = (prof.seconds("landau:matrix") + prof.seconds("landau:pack")) / n;
  ct.kernel = prof.seconds("landau:jacobian-kernel") / n;
  ct.factor = prof.seconds("landau:factor") / n;
  ct.solve = prof.seconds("landau:solve") / n;
  ct.seconds = wall;
  Logger::instance().set_level(saved_level);
  return ct;
}

/// Table VII (CUDA column) single-process component times from the paper,
/// normalized to seconds per Newton iteration. The paper reports totals for
/// a 100-step run with ~2,000 Newton iterations (throughput 141.5 it/s per
/// process at 1 proc/core => 7.07 ms/iteration; components scale by their
/// share of the 14.3 s total).
struct PaperCalibration {
  double total, landau, kernel, factor, solve;
};
inline PaperCalibration paper_cuda_calibration() {
  // Shares of Table VII row "CUDA": total 14.3, Landau 3.3 (kernel 2.9),
  // factor 8.4, solve 0.8 — scaled to a 7.07 ms iteration.
  const double it = 7.07e-3;
  return {it, it * 3.3 / 14.3, it * 2.9 / 14.3, it * 8.4 / 14.3, it * 0.8 / 14.3};
}
inline PaperCalibration paper_kokkos_calibration() {
  // Row "Kokkos-CUDA": total 15.4, Landau 4.1 (kernel 3.2), factor 8.7, 0.8.
  const double it = 7.07e-3 * 15.4 / 14.3;
  return {it, it * 4.1 / 15.4, it * 3.2 / 15.4, it * 8.7 / 15.4, it * 0.8 / 15.4};
}
inline PaperCalibration paper_hip_calibration() {
  // Table V's 1 core/GPU x 1 proc/core cell (88 it/s across 4 GPUs) implies
  // ~45 ms per Newton iteration per process; Table VII's HIP row splits that
  // 23.1-second run as Landau 10.9 (kernel 10.2), factor 5.9, solve 0.5.
  const double it = 45e-3;
  // Kernel share nudged to the Table V saturation level (see EXPERIMENTS.md).
  return {it, it * 10.9 / 23.1, 18e-3, it * 5.9 / 23.1, it * 0.5 / 23.1};
}

/// Build the schedule-simulator workload from component times: the CPU-side
/// work (factor + solve + metadata) runs on the process's core; the kernel
/// runs on the GPU with one block per element.
inline exec::ProcessWork make_work(double cpu_seconds, double gpu_seconds, int blocks,
                                   int iterations) {
  exec::ProcessWork w;
  w.iteration = {{exec::ResourceKind::Core, cpu_seconds, 1},
                 {exec::ResourceKind::Gpu, gpu_seconds, blocks}};
  w.n_iterations = iterations;
  return w;
}

inline exec::MachineModel summit_model() {
  exec::MachineModel m;
  m.name = "Summit (6 V100 + 42 P9 cores)";
  m.n_gpus = 6;
  m.cores = 7;
  m.hw_threads_per_core = 4;
  m.smt.throughput = {0.0, 1.0, 1.24, 1.28, 1.30};
  m.gpu.n_sms = 80;
  m.gpu.blocks_per_sm = 8;
  m.gpu.max_resident = 48;
  m.gpu.oversub_penalty = 0.15;
  m.gpu.launch_overhead = 15e-6;
  return m;
}

inline exec::MachineModel spock_model() {
  exec::MachineModel m;
  m.name = "Spock (4 MI100 + 64-core EPYC)";
  m.n_gpus = 4;
  m.cores = 8; // cores per GPU used in Table V
  m.hw_threads_per_core = 2;
  m.smt.throughput = {0.0, 1.0, 1.45}; // Rome SMT-2 is effective on this mix
  m.gpu.n_sms = 120;
  // The MI100 ROCm stack of the paper did not overlap co-resident kernels
  // effectively (§V-D1): aggregate kernel throughput saturates quickly
  // (blocks_per_sm = 1 -> one 80-block kernel nearly fills the pool) and the
  // scheduler degrades outright when many kernels pile up (the Table V
  // rollover at 16 procs/GPU).
  m.gpu.blocks_per_sm = 1;
  m.gpu.max_resident = 12;
  m.gpu.oversub_penalty = 0.3;
  m.gpu.launch_overhead = 30e-6;
  return m;
}

} // namespace landau::bench
