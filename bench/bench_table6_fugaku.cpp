// Table VI: Jacobian-construction and total time on one A64FX (Fugaku) node
// versus #processes x threads/process, with the Kokkos-OpenMP back-end.
//
// Two parts:
//  1. a real thread-scaling measurement of THIS build's Kokkos-style kernel
//     over worker counts (league members -> OpenMP threads) — on a 1-core
//     container the speedup is flat, which is reported honestly;
//  2. the schedule-model regeneration of Table VI's structure: the Jacobian
//     thread-scales perfectly (the paper's top row: 19.3/38.1/75.3/150 s for
//     8/4/2/1 threads), while the residual "rest" of the solver shares node
//     memory bandwidth and grows with the process count (the total column).

#include <cstdio>
#include <thread>

#include "common.h"

using namespace landau;
using namespace landau::bench;

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const int steps = opts.get<int>("steps", 1, "host measurement steps");
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  // --- Part 1: host thread scaling of the Kokkos-style kernel -------------
  BenchReport report("table6_fugaku");
  {
    TableWriter table("host thread scaling of the Kokkos-sim Jacobian kernel (this machine)");
    table.header({"workers", "jacobian (s)", "speedup"});
    auto species = perf_species(true);
    double t1 = 0.0, t_last = 0.0, speedup_last = 1.0;
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned wkr = 1; wkr <= std::min(8u, 2 * hw); wkr *= 2) {
      auto lopts = perf_mesh_options(opts, Backend::KokkosSim);
      lopts.n_workers = wkr;
      LandauOperator op(species, lopts);
      op.pack(op.maxwellian_state());
      la::CsrMatrix j = op.new_matrix();
      Stopwatch w;
      for (int s = 0; s < steps; ++s) {
        j.zero_entries();
        op.add_collision(j);
      }
      const double t = w.seconds() / steps;
      if (wkr == 1) t1 = t;
      t_last = t;
      speedup_last = t1 / t;
      table.add_row().cell(static_cast<int>(wkr)).cell(t, 3).cell(t1 / t, 2);
    }
    std::printf("%s(hardware threads available here: %u)\n\n", table.str().c_str(), hw);
    report.metric("jacobian.serial_seconds", t1, "s", "lower");
    report.metric("jacobian.max_workers_seconds", t_last, "s", "lower");
    report.metric("jacobian.speedup", speedup_last, "ratio", "higher");
  }

  // --- Part 2: Table VI from the machine model ----------------------------
  // Calibration from the paper's own diagonal: 32 cores, 208 Jacobian
  // constructions in the 10-step problem; serial Jacobian work 150 s per
  // process at 1 thread, "rest" ~4.4 s per process plus bandwidth sharing.
  const double t_jac_serial = 150.0;
  const double rest_serial = 4.4;
  exec::MachineModel fugaku;
  fugaku.name = "Fugaku node (A64FX, 32 of 48 cores)";
  fugaku.n_gpus = 1; // unused
  fugaku.cores = 32;
  fugaku.hw_threads_per_core = 1;
  fugaku.membw_capacity = 6.0; // processes sharing the HBM beyond this slow down

  TableWriter table("Table VI: Jacobian construction and total time (s), one Fugaku node");
  table.header({"#processes", "8 thr", "4 thr", "2 thr", "1 thr", "total (diag)"});
  for (int procs : {4, 8, 16, 32}) {
    auto row = table.add_row();
    row.cell(procs);
    for (int thr : {8, 4, 2, 1}) {
      if (procs * thr > 32) {
        row.cell("-");
        continue;
      }
      // Jacobian thread-scales perfectly (the paper's observation).
      row.cell(t_jac_serial / thr, 1);
    }
    // Total on the diagonal (procs * thr = 32): Jacobian + bandwidth-shared
    // rest simulated with the PS model.
    const int thr = 32 / procs;
    exec::ProcessWork w;
    w.iteration = {{exec::ResourceKind::Core, t_jac_serial / thr, 1},
                   {exec::ResourceKind::Bandwidth, rest_serial, 1}};
    w.n_iterations = 1;
    const auto r = exec::simulate_throughput(fugaku, w, procs, 1);
    if (procs == 32) report.metric("diag.total_32proc_seconds", r.makespan, "s", "none");
    row.cell(r.makespan, 1);
  }
  std::printf("%s", table.str().c_str());
  std::printf("\npaper: jac 19.3/38.1/75.3/150 with 8/4/2/1 threads (4 procs); totals\n"
              "25.1/45.9/87.0/169.4 on the 32-core diagonal. Shape to reproduce: perfect\n"
              "inverse thread scaling of the Jacobian; totals growing with process count\n"
              "because the rest of the solver does not thread-scale.\n");
  return 0;
}
