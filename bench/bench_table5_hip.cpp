// Table V: Kokkos-HIP throughput on a Spock-like node (4 MI100 + EPYC),
// including the oversubscription rollover at 16 processes/GPU and the
// atomics ablation explaining MI100 underperformance (§V-D1).
//
// Two parts:
//  1. an ablation measured on THIS host: GPU-style assembly with lock-free
//     FP64 atomicAdd (V100 path) vs striped-mutex "software atomics" (the
//     MI100's lack of hardware FP64 global atomics) — the measured penalty
//     feeds the kernel-time calibration;
//  2. the schedule simulation of Table V from the paper-calibrated HIP
//     component times under the Spock machine model.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "common.h"

using namespace landau;
using namespace landau::bench;

namespace {

/// Striped-mutex emulation of software atomics: every add locks one of 64
/// address-hashed mutexes (the CAS-loop software fallback serializes and
/// adds latency on real MI100 hardware).
class SoftwareAtomicAdder {
public:
  void add(double* target, double v) {
    std::lock_guard<std::mutex> lock(mutexes_[(reinterpret_cast<std::uintptr_t>(target) >> 3) % 64]);
    *target += v;
  }

private:
  std::mutex mutexes_[64];
};

} // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const int iterations = opts.get<int>("iterations", 60, "iterations per simulated process");
  const int reps = opts.get<int>("atomics_reps", 200, "ablation repetitions");
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  // --- Part 1: atomics ablation -------------------------------------------
  // Concurrent writers contending on a small hot set: lock-free FP64
  // fetch-add (the V100's hardware atomics path) vs mutex-striped software
  // adds (the MI100 fallback). On a many-core host the penalty is large; on
  // a 1-core container contention is scheduler-driven and the measured ratio
  // is a lower bound (recorded as such in EXPERIMENTS.md).
  std::vector<double> values(256, 0.0);
  const int n_threads = 4;
  auto contend = [&](auto&& add_fn) {
    std::vector<std::thread> threads;
    Stopwatch w;
    for (int t = 0; t < n_threads; ++t)
      threads.emplace_back([&, t] {
        std::size_t idx = static_cast<std::size_t>(t) * 63;
        for (int r = 0; r < reps * 1024; ++r) {
          add_fn(&values[idx % values.size()], 1.0);
          idx += 13;
        }
      });
    for (auto& th : threads) th.join();
    return w.seconds();
  };
  const double t_hw = contend([](double* p, double v) {
    std::atomic_ref<double> ref(*p);
    ref.fetch_add(v, std::memory_order_relaxed);
  });
  SoftwareAtomicAdder sw;
  const double t_sw = contend([&sw](double* p, double v) { sw.add(p, v); });
  const double atomics_penalty = t_sw / t_hw;
  std::printf("atomics ablation (%d writers): hardware-style %.3f s, software-style %.3f s -> "
              "penalty %.2fx\n",
              n_threads, t_hw, t_sw, atomics_penalty);

  // --- Part 2: Table V ------------------------------------------------------
  const auto cal = paper_hip_calibration();
  auto machine = spock_model();
  const double cpu = cal.total - cal.kernel;

  TableWriter table("Table V: Kokkos-HIP, MI100 node, Newton iterations / sec");
  table.header({"procs/core \\ cores/GPU", "1", "2", "4", "8"});
  double peak = 0.0, at_8x1 = 0.0, at_8x2 = 0.0;
  for (int ppc : {1, 2}) {
    auto row = table.add_row();
    row.cell(ppc);
    for (int cores : {1, 2, 4, 8}) {
      const auto work = make_work(cpu, cal.kernel, 80, iterations);
      const auto r = exec::simulate_throughput(machine, work, cores, ppc);
      peak = std::max(peak, r.iterations_per_second);
      if (cores == 8 && ppc == 1) at_8x1 = r.iterations_per_second;
      if (cores == 8 && ppc == 2) at_8x2 = r.iterations_per_second;
      row.cell(static_cast<long long>(r.iterations_per_second + 0.5));
    }
  }
  std::printf("%s", table.str().c_str());

  BenchReport report("table5_hip");
  report.metric("hip.peak_it_per_s", peak, "iterations/s", "higher");
  report.metric("hip.rollover_8x2_over_8x1", at_8x1 > 0 ? at_8x2 / at_8x1 : 0.0, "ratio", "none");
  report.metric("atomics_penalty", atomics_penalty, "ratio", "none");
  std::printf("\npaper (Table V): 88/169/281/353 at 1 proc/core; 154/272/341/241 at 2 — note the\n"
              "rollover at 8 cores x 2 procs. The simulated table must show the same rollover\n"
              "(throughput at 8x2 below 8x1) driven by the kernel-co-residency penalty.\n"
              "Measured software-atomics penalty (%.2fx) is part of why the MI100 kernel is\n"
              "~5x slower than V100 normalized to peak (§V-D1).\n",
              atomics_penalty);
  return 0;
}
