// The batched, zero-reallocation linear-solve path (§III-G + the batched
// direct solvers of Adams/Wang/Knepley, arXiv:2209.03228):
//
//  1. allocation audit: after analyze(), repeated factor()+solve() calls on
//     the host solver must hit the heap zero times — the symbolic phase
//     (band widths, scatter maps, workspaces) is fully amortized,
//  2. legacy vs cached numeric phase: the old path re-ran band-width
//     discovery + reallocation + CSR scatter (BandMatrix::from_csr) every
//     Newton iteration; the cached path is a value copy + in-place LU,
//  3. serial vs batched: the species blocks factor/solve independently, so
//     the host solver batches them over exec::ThreadPool workers exactly
//     like the device path batches them over emulated SMs,
//  4. end to end: Newton iterations/second of the implicit integrator on the
//     Table-I 10-species e/D/W problem.
//
// Results are recorded in EXPERIMENTS.md.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "common.h"
#include "exec/thread_pool.h"
#include "la/band.h"
#include "la/band_device.h"
#include "la/rcm.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new/delete in this binary is
// counted so the zero-allocation claim is audited, not asserted.
namespace {
std::atomic<long> g_allocs{0};
}

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace landau;
using namespace landau::bench;

namespace {

/// Species-style block-diagonal test system: `blocks` independent banded
/// subsystems of size `block_n` and half-bandwidth `bw`.
la::CsrMatrix block_system(std::size_t blocks, std::size_t block_n, std::size_t bw) {
  la::SparsityPattern p(blocks * block_n, blocks * block_n);
  for (std::size_t b = 0; b < blocks; ++b)
    for (std::size_t i = 0; i < block_n; ++i)
      for (std::size_t j = (i > bw ? i - bw : 0); j <= std::min(block_n - 1, i + bw); ++j)
        p.add(b * block_n + i, b * block_n + j);
  p.compress();
  la::CsrMatrix a(p);
  unsigned state = 12345;
  auto rnd = [&state]() {
    state = state * 1664525u + 1013904223u;
    return static_cast<double>(state) / 4294967296.0 - 0.5;
  };
  for (std::size_t b = 0; b < blocks; ++b)
    for (std::size_t i = 0; i < block_n; ++i)
      for (std::size_t j = (i > bw ? i - bw : 0); j <= std::min(block_n - 1, i + bw); ++j)
        a.add(b * block_n + i, b * block_n + j,
              i == j ? 4.0 * static_cast<double>(bw) + 1.0 : rnd());
  return a;
}

/// The pre-refactor numeric phase: re-run from_csr (band-width discovery +
/// allocation + CSR scatter) and factor serially, every call.
double legacy_factor_solve(const la::CsrMatrix& a, const std::vector<std::int32_t>& perm,
                           const std::vector<la::BlockRange>& ranges, const la::Vec& b,
                           la::Vec& x, int repeats) {
  Stopwatch w;
  for (int r = 0; r < repeats; ++r) {
    la::Vec pb, px;
    for (const auto& blk : ranges) {
      auto lu = la::BandMatrix::from_csr(a, perm, blk.begin, blk.end);
      lu.factor_lu();
      const std::size_t n = blk.end - blk.begin;
      pb.resize(n);
      px.resize(n);
      for (std::size_t i = 0; i < n; ++i)
        pb[i] = b[static_cast<std::size_t>(perm[blk.begin + i])];
      lu.solve(pb, px);
      for (std::size_t i = 0; i < n; ++i)
        x[static_cast<std::size_t>(perm[blk.begin + i])] = px[i];
    }
  }
  return w.seconds();
}

double cached_factor_solve(la::BlockBandSolver& solver, const la::CsrMatrix& a, const la::Vec& b,
                           la::Vec& x, int repeats) {
  Stopwatch w;
  for (int r = 0; r < repeats; ++r) {
    solver.factor(a);
    solver.solve(b, x);
  }
  return w.seconds();
}

} // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const int workers = opts.get<int>("workers", 4, "pool workers for the batched paths");
  const int repeats = opts.get<int>("repeats", 50, "factor+solve repetitions per row");
  const int steps = opts.get<int>("steps", 3, "implicit steps for the end-to-end row");
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  // --- 1. allocation audit ---------------------------------------------------
  // 10 species-style blocks (the §V problem's structure), serial solver: the
  // numeric phase must not touch the heap.
  {
    auto a = block_system(10, 400, 12);
    la::Vec b(a.rows(), 1.0), x(a.rows());
    la::BlockBandSolver solver;
    solver.analyze(a);
    solver.factor(a); // warm: first factor after analyze
    solver.solve(b, x);
    const long before = g_allocs.load();
    for (int r = 0; r < repeats; ++r) {
      solver.factor(a);
      solver.solve(b, x);
    }
    const long after = g_allocs.load();
    std::printf("allocation audit: %d x (factor+solve) on 10 blocks of n=400 -> %ld heap "
                "allocations (%s)\n\n",
                repeats, after - before, after == before ? "OK, zero" : "FAIL");
  }

  // --- 2./3. legacy vs cached vs batched ------------------------------------
  TableWriter table("Batched band solver: factor+solve wall time, " +
                    std::to_string(repeats) + " repeats");
  table.header({"blocks", "n/block", "bw", "legacy serial (s)", "cached serial (s)",
                "cached batched (s)", "speedup cached", "speedup batched"});
  exec::ThreadPool pool(static_cast<unsigned>(workers));
  for (const auto& [blocks, block_n, bw] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{4, 800, 12},
        std::tuple<std::size_t, std::size_t, std::size_t>{10, 400, 12},
        std::tuple<std::size_t, std::size_t, std::size_t>{10, 800, 24}}) {
    auto a = block_system(blocks, block_n, bw);
    la::Vec b(a.rows(), 1.0), x(a.rows());

    la::BlockBandSolver serial;
    serial.analyze(a);
    const auto perm = la::rcm_ordering(a);
    const auto ranges = la::discover_blocks(a, perm);
    const double t_legacy = legacy_factor_solve(a, perm, ranges, b, x, repeats);
    serial.factor(a); // warm
    const double t_cached = cached_factor_solve(serial, a, b, x, repeats);

    la::BlockBandSolver batched(&pool);
    batched.analyze(a);
    batched.factor(a); // warm
    const double t_batched = cached_factor_solve(batched, a, b, x, repeats);

    table.add_row()
        .cell(static_cast<long long>(blocks))
        .cell(static_cast<long long>(block_n))
        .cell(static_cast<long long>(bw))
        .cell(t_legacy, 4)
        .cell(t_cached, 4)
        .cell(t_batched, 4)
        .cell(t_legacy / t_cached, 2)
        .cell(t_legacy / t_batched, 2);
  }
  std::printf("%s\n", table.str().c_str());

  // --- 4. end to end: Newton iterations/second ------------------------------
  // The Table-I 10-species e/D/W problem (reduced masses keep the host-side
  // inner integral tractable); the §V throughput metric.
  {
    TableWriter t2("Implicit step throughput, 10-species Table-I problem (band LU)");
    t2.header({"solver pool", "Newton its", "factor (ms/it)", "solve (ms/it)", "its/s"});
    for (const unsigned w : {1u, static_cast<unsigned>(workers)}) {
      auto species = perf_species();
      auto lopts = perf_mesh_options(opts, Backend::CudaSim);
      lopts.n_workers = w;
      LandauOperator op(species, lopts);
      auto ct = measure_components(op, steps, 0.5);
      const double its_per_s = ct.iterations / ct.seconds;
      t2.add_row()
          .cell(static_cast<long long>(w))
          .cell(static_cast<long long>(ct.iterations))
          .cell(1e3 * ct.factor, 3)
          .cell(1e3 * ct.solve, 3)
          .cell(its_per_s, 1);
    }
    std::printf("%s\n", t2.str().c_str());
  }

  std::printf("Notes: 'legacy serial' re-runs BandMatrix::from_csr (band-width discovery +\n"
              "reallocation + CSR scatter) every factor, the pre-refactor behavior. 'cached'\n"
              "reuses the symbolic phase: factor is a value scatter + in-place LU, solve\n"
              "reuses persistent permuted-RHS workspaces. 'batched' additionally spreads the\n"
              "independent species blocks over %d pool workers, the host mirror of the\n"
              "device batch. Batched dispatch enqueues O(workers) task objects per call\n"
              "(the thread-pool handoff), independent of matrix size; the solver data path\n"
              "itself is allocation-free as the audit shows.\n",
              workers);
  return 0;
}
