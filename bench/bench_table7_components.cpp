// Table VII: component times of the collision advance — total, Landau matrix
// construction (with the kernel share), LU factorization and solve — for
// each back-end, measured for real on this host from the profiler, next to
// the paper's device numbers.

#include <cstdio>

#include "common.h"

using namespace landau;
using namespace landau::bench;

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const int steps = opts.get<int>("steps", 2, "measured steps per back-end");
  const double dt = opts.get<double>("dt", 0.5, "time step");
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  auto species = perf_species(true);
  TableWriter table(
      "Table VII: per-Newton-iteration component times (ms) on this host, by back-end");
  table.header({"back-end", "total", "Landau", "(kernel)", "factor", "solve", "iters"});

  BenchReport report("table7_components");
  for (Backend be : {Backend::Cpu, Backend::CudaSim, Backend::KokkosSim}) {
    auto lopts = perf_mesh_options(opts, be);
    LandauOperator op(species, lopts);
    const auto ct = measure_components(op, steps, dt);
    table.add_row().cell(backend_name(be)).cell(ct.total * 1e3, 2).cell(ct.landau * 1e3, 2)
        .cell(ct.kernel * 1e3, 2).cell(ct.factor * 1e3, 2).cell(ct.solve * 1e3, 2)
        .cell(ct.iterations);
    const std::string prefix = backend_name(be);
    report.metric(prefix + ".total_ms", ct.total * 1e3, "ms", "lower");
    report.metric(prefix + ".kernel_ms", ct.kernel * 1e3, "ms", "lower");
    report.metric(prefix + ".factor_ms", ct.factor * 1e3, "ms", "lower");
    report.metric(prefix + ".solve_ms", ct.solve * 1e3, "ms", "lower");
  }
  std::printf("%s", table.str().c_str());
  std::printf("\npaper (Table VII, seconds per 100-step run):\n"
              "  CUDA         total 14.3, Landau 3.3 (kernel 2.9), factor 8.4, solve 0.8\n"
              "  Kokkos-CUDA  total 15.4, Landau 4.1 (kernel 3.2), factor 8.7, solve 0.8\n"
              "  Kokkos-HIP   total 23.1, Landau 10.9 (kernel 10.2), factor 5.9, solve 0.5\n"
              "  Fugaku       total 250.7, Landau 215.1 (kernel 209.5), factor 16.1, solve 1.5\n"
              "Shapes to reproduce: the kernel dominates the Landau time (>=80%%); the CUDA\n"
              "formulation is modestly faster than Kokkos; factor+solve are the other major\n"
              "cost (on this host the emulated kernel is CPU-bound, so its share is larger).\n");
  return 0;
}
