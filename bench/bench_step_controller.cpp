// Clean-path overhead of the failure-recovering StepController: the same
// sequence of implicit steps is run twice from the same initial state — once
// calling ImplicitIntegrator::step() directly, once through
// StepController::advance() with a fixed dt (growth = 1), which adds the
// pre-step snapshot copy, the post-step all_finite() scan, and the
// accept/reject bookkeeping. The acceptance bar is < 1% overhead, so the
// controller can stay on for every production run.
//
// The two paths are interleaved round-robin across `repeats` rounds so slow
// drift (thermal throttling, background load) hits both equally. Results are
// recorded in EXPERIMENTS.md.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "solver/step_controller.h"

using namespace landau;
using namespace landau::bench;

namespace {

double run_direct(ImplicitIntegrator& integrator, const la::Vec& f0, double dt, int nsteps) {
  la::Vec f = f0;
  Stopwatch w;
  for (int s = 0; s < nsteps; ++s) integrator.step(f, dt);
  return w.seconds();
}

double run_controller(StepController& controller, const la::Vec& f0, int nsteps) {
  la::Vec f = f0;
  Stopwatch w;
  for (int s = 0; s < nsteps; ++s) controller.advance(f);
  return w.seconds();
}

} // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const int nsteps = opts.get<int>("nsteps", 6, "implicit steps per timed run");
  const int repeats = opts.get<int>("repeats", 4, "interleaved rounds per problem");
  const double dt = opts.get<double>("dt", 0.25, "time step");
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  TableWriter table("StepController clean-path overhead vs direct integrator.step()");
  table.header({"problem", "dofs", "steps x rounds", "direct (s)", "controller (s)",
                "overhead"});

  struct Case {
    const char* name;
    SpeciesSet species;
    LandauOptions lopts;
  };
  std::vector<Case> cases;
  {
    // Small single-species relaxation: the per-step work is smallest here, so
    // the O(n) snapshot + finite-scan overhead is at its *most* visible.
    SpeciesSet e({{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0,
                   .temperature = 1.0}});
    LandauOptions l;
    l.order = 2;
    l.base_levels = 1;
    l.max_levels = 3;
    cases.push_back({"e relaxation", e, l});
  }
  {
    // Two-species quench-style problem: representative production step cost.
    auto sp = SpeciesSet::electron_deuterium();
    sp[1].mass = 25.0;
    LandauOptions l;
    l.order = 2;
    l.radius = 4.5;
    l.base_levels = 1;
    l.cells_per_thermal = 0.8;
    l.max_levels = 4;
    cases.push_back({"e/D quench mesh", sp, l});
  }

  for (auto& c : cases) {
    LandauOperator op(c.species, c.lopts);
    ImplicitIntegrator integrator(op);
    StepControllerOptions copts;
    copts.dt_initial = dt;
    copts.growth = 1.0; // fixed dt: both paths do the same physics
    StepController controller(integrator, copts);
    const la::Vec f0 = op.maxwellian_state();

    // Warm both paths once (symbolic analysis, first-touch allocations).
    run_direct(integrator, f0, dt, 1);
    run_controller(controller, f0, 1);

    double t_direct = 0.0, t_controller = 0.0;
    for (int r = 0; r < repeats; ++r) {
      t_direct += run_direct(integrator, f0, dt, nsteps);
      t_controller += run_controller(controller, f0, nsteps);
    }
    const double overhead = (t_controller - t_direct) / t_direct;
    char pct[32];
    std::snprintf(pct, sizeof pct, "%+.2f%%", 1e2 * overhead);
    table.add_row()
        .cell(c.name)
        .cell(static_cast<long long>(op.n_total()))
        .cell(std::to_string(nsteps) + " x " + std::to_string(repeats))
        .cell(t_direct, 3)
        .cell(t_controller, 3)
        .cell(pct);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Controller work per accepted step: one state snapshot copy, one all_finite()\n"
              "scan, and accept bookkeeping — all O(n) against the O(n*bw^2) factor and\n"
              "O(n*bw) solve inside every Newton iteration. Acceptance bar: < 1%%.\n");
  return 0;
}
