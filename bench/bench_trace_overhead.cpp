// Tracer overhead: the cost of the observability layer measured two ways.
//
//  1. Micro: nanoseconds per TraceSpan with tracing disabled (the null-check
//     clean path — this is the cost every instrumented call site pays in a
//     production run) and enabled (two clock reads + one ring write).
//  2. Macro: the same implicit-step loop on a small operator timed with
//     tracing off and on; the relative slowdown of the traced run is the
//     number EXPERIMENTS.md tables (< 2% target — spans are coarse, one per
//     kernel launch / solver phase, so the per-span cost never accumulates).

#include <cstdio>

#include "common.h"
#include "obs/trace.h"

using namespace landau;
using namespace landau::bench;

namespace {

double measure_steps(LandauOperator& op, int steps, double dt) {
  NewtonOptions nopts;
  nopts.max_iterations = 4;
  ImplicitIntegrator integrator(op, nopts);
  la::Vec f = op.maxwellian_state();
  integrator.step(f, dt); // warm-up: metadata fix-up + RCM analysis
  Stopwatch w;
  for (int s = 0; s < steps; ++s) integrator.step(f, dt);
  return w.seconds();
}

} // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const int steps = opts.get<int>("steps", 6, "implicit steps per timed run");
  const int reps = opts.get<int>("span_reps", 2000000, "micro-benchmark span constructions");
  const double dt = opts.get<double>("dt", 0.5, "time step");
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }
  const LogLevel saved_level = Logger::instance().level();
  Logger::instance().set_level(LogLevel::Error);

  auto& tracer = obs::Tracer::instance();
  tracer.set_path(""); // keep the at-exit writer quiet in this benchmark
  tracer.disable();

  // --- Micro: per-span cost --------------------------------------------------
  double ns_disabled = 0.0, ns_enabled = 0.0;
  {
    Stopwatch w;
    for (int i = 0; i < reps; ++i) obs::TraceSpan span("bench:noop");
    ns_disabled = w.seconds() * 1e9 / reps;
  }
  tracer.enable();
  {
    Stopwatch w;
    for (int i = 0; i < reps; ++i) obs::TraceSpan span("bench:noop");
    ns_enabled = w.seconds() * 1e9 / reps;
  }
  tracer.disable();
  tracer.clear();

  // --- Macro: implicit-step loop --------------------------------------------
  SpeciesSet species = SpeciesSet::electron_deuterium();
  species[1].mass = 25.0;
  LandauOptions lopts;
  lopts.order = 2;
  lopts.radius = 4.5;
  lopts.base_levels = 1;
  lopts.cells_per_thermal = 0.8;
  lopts.max_levels = 5;
  lopts.backend = Backend::CudaSim;
  lopts.n_workers = 2;
  LandauOperator op(species, lopts);

  const double t_off = measure_steps(op, steps, dt);
  tracer.enable();
  const double t_on = measure_steps(op, steps, dt);
  tracer.disable();
  const double overhead_pct = t_off > 0 ? 100.0 * (t_on - t_off) / t_off : 0.0;
  const std::int64_t spans = static_cast<std::int64_t>(tracer.snapshot().size());
  tracer.clear();
  Logger::instance().set_level(saved_level);

  TableWriter table("tracer overhead");
  table.header({"measurement", "value"});
  table.add_row().cell("disabled span (ns)").cell(ns_disabled, 2);
  table.add_row().cell("enabled span (ns)").cell(ns_enabled, 2);
  table.add_row().cell("step loop, tracing off (s)").cell(t_off, 4);
  table.add_row().cell("step loop, tracing on (s)").cell(t_on, 4);
  table.add_row().cell("overhead (%)").cell(overhead_pct, 2);
  table.add_row().cell("spans recorded").cell(static_cast<long long>(spans));
  std::printf("%s", table.str().c_str());
  std::printf("\ntarget: < 2%% overhead with tracing ON (spans are per kernel launch and\n"
              "solver phase, not per element); the disabled path must stay at the cost of\n"
              "one relaxed atomic load.\n");

  BenchReport report("trace_overhead");
  report.metric("span_disabled_ns", ns_disabled, "ns", "lower");
  report.metric("span_enabled_ns", ns_enabled, "ns", "lower");
  report.metric("step_overhead_pct", overhead_pct, "%", "lower");
  report.metric("spans_recorded", static_cast<double>(spans), "spans", "none");
  return 0;
}
