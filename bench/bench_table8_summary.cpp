// Table VIII: throughput summary across machines/languages — peak Newton
// iterations/second and normalized kernel performance relative to
// Summit/CUDA. The node-level numbers come from the calibrated schedule
// simulation (Tables II/III/V/VI benches); the kernel ratio additionally
// reports this host's real measured CUDA-sim vs Kokkos-sim ratio.

#include <cstdio>

#include "common.h"

using namespace landau;
using namespace landau::bench;

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const int iterations = opts.get<int>("iterations", 60, "iterations per simulated process");
  const int steps = opts.get<int>("steps", 1, "host kernel-ratio measurement steps");
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  auto peak = [&](const exec::MachineModel& m, const PaperCalibration& cal, int cores,
                  int ppc) {
    const auto work = make_work(cal.total - cal.kernel, cal.kernel, 80, iterations);
    return exec::simulate_throughput(m, work, cores, ppc).iterations_per_second;
  };

  const auto cuda = paper_cuda_calibration();
  const auto kokkos = paper_kokkos_calibration();
  const auto hip = paper_hip_calibration();
  const double p_cuda = peak(summit_model(), cuda, 7, 3);
  const double p_kokkos = peak(summit_model(), kokkos, 7, 3);
  const double p_hip = peak(spock_model(), hip, 8, 1);

  TableWriter table("Table VIII: throughput and normalized kernel performance");
  table.header({"machine / language", "N it/s (sim)", "N it/s (paper)", "kernel % of CUDA"});
  table.add_row().cell("Summit / CUDA").cell(static_cast<long long>(p_cuda)).cell(7005).cell(100);
  // Kernel ratios from the paper's same-iteration-count component runs
  // (Table VII): 2.9 s CUDA vs 3.2 s Kokkos-CUDA vs 10.2 s HIP; the HIP
  // ratio is additionally normalized by the V100/MI100 peak ratio (§V-D1).
  table.add_row().cell("Summit / Kokkos-CUDA").cell(static_cast<long long>(p_kokkos)).cell(6193)
      .cell(static_cast<long long>(100 * 2.9 / 3.2));
  table.add_row().cell("Spock / Kokkos-HIP").cell(static_cast<long long>(p_hip)).cell(353).cell(
      static_cast<long long>(100 * (2.9 / 10.2) * (7.8 / 11.5)));
  table.add_row().cell("Fugaku / Kokkos-OMP").cell("39 (Table VI)").cell(39).cell(12);
  std::printf("%s", table.str().c_str());

  // This host's real measured CUDA-formulation vs Kokkos-formulation ratio.
  auto species = perf_species(true);
  double t_cuda = 0.0, t_kokkos = 0.0;
  for (Backend be : {Backend::CudaSim, Backend::KokkosSim}) {
    auto lopts = perf_mesh_options(opts, be);
    LandauOperator op(species, lopts);
    op.pack(op.maxwellian_state());
    la::CsrMatrix j = op.new_matrix();
    // Warm-up, then measure.
    op.add_collision(j);
    Stopwatch w;
    for (int s = 0; s < steps; ++s) {
      j.zero_entries();
      op.add_collision(j);
    }
    (be == Backend::CudaSim ? t_cuda : t_kokkos) = w.seconds() / steps;
  }
  std::printf("\nthis host, emulated kernels: CUDA-style %.3f s, Kokkos-style %.3f s\n"
              "-> Kokkos at %.0f%% of CUDA (paper: ~90%% on V100; the gap there comes from\n"
              "   abstraction overhead the emulation only partially reproduces)\n",
              t_cuda, t_kokkos, 100.0 * t_cuda / t_kokkos);

  BenchReport report("table8_summary");
  report.metric("sim.cuda_peak_it_per_s", p_cuda, "iterations/s", "higher");
  report.metric("sim.kokkos_peak_it_per_s", p_kokkos, "iterations/s", "higher");
  report.metric("sim.hip_peak_it_per_s", p_hip, "iterations/s", "higher");
  report.metric("host.cuda_kernel_seconds", t_cuda, "s", "lower");
  report.metric("host.kokkos_kernel_seconds", t_kokkos, "s", "lower");
  report.metric("host.kokkos_over_cuda", t_kokkos > 0 ? t_cuda / t_kokkos : 0.0, "ratio", "none");
  return 0;
}
