// Overhead of the device memory-model checker (src/exec/check.h): wall time
// of the emulated-CUDA Jacobian assembly and of the batched device band
// factor+solve, with the checker disabled, enabled, and enabled with the
// schedule shuffler (which re-runs every launch in a random block order).
//
// The disabled configuration is the shipped clean path — every checker hook
// degenerates to a null-pointer test, so its time is the baseline the
// checked runs are normalized against. Results go in EXPERIMENTS.md.

#include <chrono>
#include <cstdio>

#include "common.h"
#include "exec/check.h"
#include "la/band_device.h"

using namespace landau;
using namespace landau::bench;
namespace check = landau::exec::check;

namespace {

double seconds_per(int reps, const std::function<void()>& f) {
  f(); // warm up (allocations, page faults)
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() / reps;
}

struct Config {
  const char* name;
  bool enabled, shuffle;
};

} // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const int reps = opts.get<int>("reps", 5, "repetitions per configuration");
  const int workers = opts.get<int>("workers", 2, "emulated SMs");
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  auto species = SpeciesSet::electron_deuterium();
  species[1].mass = 25.0;
  LandauOptions lopts;
  lopts.order = 2;
  lopts.radius = 4.0;
  lopts.base_levels = 1;
  lopts.cells_per_thermal = 0.8;
  lopts.max_levels = 4;
  lopts.backend = Backend::CudaSim;
  lopts.n_workers = static_cast<unsigned>(workers);
  LandauOperator op(species, lopts);
  la::Vec f = op.maxwellian_state();
  op.pack(f);
  la::CsrMatrix j = op.new_matrix();
  exec::ThreadPool pool(static_cast<unsigned>(workers));
  JacobianContext ctx;
  ctx.init(op.space(), op.species(), op.ip_data());

  la::DeviceBlockBandSolver solver(pool);
  op.add_mass_kernel(j, 1.0);
  solver.analyze(j);
  la::Vec b(j.rows(), 1.0), x(j.rows());

  std::printf("device-check overhead: %zu cells, %zu dofs, %d workers, %d reps\n",
              op.space().n_cells(), j.rows(), workers, reps);
  std::printf("%-14s %14s %14s %14s %14s\n", "config", "jacobian [s]", "overhead",
              "factor+solve [s]", "overhead");

  const Config configs[] = {
      {"off", false, false}, {"checked", true, false}, {"checked+shuffle", true, true}};
  const check::CheckOptions saved = check::options();
  double base_jac = 0.0, base_band = 0.0;
  for (const Config& c : configs) {
    check::options() = saved;
    check::options().enabled = c.enabled;
    check::options().shuffle = c.shuffle;
    const double t_jac =
        seconds_per(reps, [&] { assemble_landau_jacobian(Backend::CudaSim, pool, ctx, j); });
    const double t_band = seconds_per(reps, [&] {
      solver.factor(j);
      solver.solve(b, x);
    });
    if (!c.enabled) {
      base_jac = t_jac;
      base_band = t_band;
    }
    std::printf("%-14s %14.4f %13.2fx %14.4f %13.2fx\n", c.name, t_jac, t_jac / base_jac,
                t_band, t_band / base_band);
  }
  check::options() = saved;
  const long reports = check::DeviceChecker::instance().total();
  std::printf("checker reports on the shipped kernels: %ld (expected 0)\n", reports);
  return reports == 0 ? 0 : 1;
}
