// Figure 5: profiles of the thermal quench model — normalized electron
// density n_e, current J, electric field E and electron temperature T_e as
// functions of time (electron-electron collision times), from the experiment
// with initial E = 0.5 E_c and 5x cold-plasma mass injection.

#include <cstdio>

#include "common.h"
#include "util/logging.h"

using namespace landau;
using namespace landau::bench;
using namespace landau::quench;

int main(int argc, char** argv) {
  // Keep bench output clean: Newton tolerance warnings are expected with the
  // capped iteration budget (throughput-style runs).
  Logger::instance().set_level(LogLevel::Error);
  Options opts;
  opts.parse(argc, argv);
  QuenchOptions qopts;
  qopts.dt = opts.get<double>("dt", 0.5, "time step");
  qopts.max_steps = opts.get<int>("max_steps", 40, "steps");
  qopts.e_initial_over_ec = opts.get<double>("e0_over_ec", 0.5, "initial E / E_c");
  qopts.te_ev = opts.get<double>("te_ev", 3000.0, "reference T_e (eV)");
  qopts.source.total_injected = opts.get<double>("injected", 5.0, "injected density / n0");
  qopts.source.t_start = opts.get<double>("pulse_start", 0.5, "pulse start");
  qopts.source.duration = opts.get<double>("pulse_duration", 10.0, "pulse duration");
  qopts.source.cold_temperature = opts.get<double>("cold_t", 0.05, "injected T / T_e0");
  qopts.newton.rtol = opts.get<double>("newton_rtol", 1e-6, "Newton tolerance");
  qopts.newton.max_iterations = opts.get<int>("newton_max_it", 12, "Newton iteration cap");
  const double ion_mass = opts.get<double>("ion_mass", 50.0, "ion mass (m_e)");
  const std::string csv = opts.get<std::string>("csv", "fig5_quench.csv", "CSV output");

  auto species = SpeciesSet::electron_deuterium();
  if (ion_mass > 0) species[1].mass = ion_mass;
  LandauOptions lopts;
  lopts.order = 3;
  lopts.radius = 5.0;
  lopts.cells_per_thermal = opts.get<double>("cells_per_thermal", 0.7, "AMR target");
  lopts.max_levels = opts.get<int>("max_levels", 5, "AMR depth cap");
  lopts.n_workers = 1;
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  LandauOperator op(species, lopts);
  std::printf("quench problem: %zu cells, %zu dofs/species\n", op.forest().n_leaves(),
              op.n_dofs_per_species());
  QuenchModel model(op, qopts);
  const auto result = model.run();

  TableWriter table("Fig. 5: thermal quench profiles (normalized)");
  table.header({"t", "n_e", "J", "E", "T_e", "tail_frac", "phase"});
  for (const auto& s : result.history)
    table.add_row().cell(s.t, 2).cell(s.n_e, 4).cell(s.j_z, 5).cell(s.e_z, 6).cell(s.t_e, 4)
        .cell(s.runaway_fraction, 6).cell(s.quench_phase ? "quench" : "spitzer");
  std::printf("%s", table.str().c_str());
  std::printf("switchover step %d, injected mass %.3f (target %.3f)\n", result.switchover_step,
              result.mass_injected, qopts.source.total_injected);
  if (!csv.empty()) {
    table.write_csv(csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  std::printf("\npaper (Fig. 5) shapes: n_e ramps by the prescribed source (exact mass\n"
              "accounting); T_e collapses during injection then slowly reheats by Ohmic\n"
              "drive; E rises with Spitzer eta as T_e drops; J decays resistively.\n");
  return 0;
}
