// Tables II and III: node throughput (Newton iterations/second) on a
// Summit-like node, CUDA and Kokkos-CUDA back-ends, versus cores/GPU and
// processes/core.
//
// The machine's wall-clock scaling cannot be measured on this host (no GPU,
// one core); per DESIGN.md the *schedule* is simulated: each MPI process is
// a repeating (CPU work, GPU kernel) sequence whose per-iteration durations
// come from either the paper's own single-process component measurements
// (Table VII, default) or this build's measured kernels scaled by device
// peak ratios (-calibration host). The processor-sharing model (SMT curve,
// MPS kernel co-residency) then produces the full table.

#include <algorithm>
#include <cstdio>

#include "common.h"

using namespace landau;
using namespace landau::bench;

namespace {

double run_table(const char* title, const PaperCalibration& cal, int blocks, int iterations) {
  auto machine = summit_model();
  TableWriter table(title);
  table.header({"procs/core \\ cores/GPU", "1", "2", "3", "5", "7"});
  const double cpu = cal.total - cal.kernel;
  double peak = 0.0;
  for (int ppc : {1, 2, 3}) {
    auto row = table.add_row();
    row.cell(ppc);
    for (int cores : {1, 2, 3, 5, 7}) {
      const auto work = make_work(cpu, cal.kernel, blocks, iterations);
      const auto r = exec::simulate_throughput(machine, work, cores, ppc);
      peak = std::max(peak, r.iterations_per_second);
      row.cell(static_cast<long long>(r.iterations_per_second + 0.5));
    }
  }
  std::printf("%s\n", table.str().c_str());
  return peak;
}

} // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const std::string calibration =
      opts.get<std::string>("calibration", "paper", "segment times: paper|host");
  const int iterations = opts.get<int>("iterations", 60, "iterations per simulated process");
  const int blocks = opts.get<int>("blocks", 80, "elements per kernel (grid size)");
  const int steps = opts.get<int>("steps", 2, "host measurement steps (host calibration)");

  PaperCalibration cuda_cal = paper_cuda_calibration();
  PaperCalibration kokkos_cal = paper_kokkos_calibration();

  if (calibration == "host") {
    // Measure this build's kernels on the §V problem, then scale to V100:
    // the Jacobian kernel is compute bound (Table IV), so device time =
    // host flops / (paper-achieved 4.15 TF/s); CPU-side work scales by a
    // nominal single-core ratio of 1 (reported as-is).
    auto species = perf_species(true);
    for (Backend be : {Backend::CudaSim, Backend::KokkosSim}) {
      auto lopts = perf_mesh_options(opts, be);
      LandauOperator op(species, lopts);
      exec::KernelCounters counters;
      op.pack(op.maxwellian_state());
      la::CsrMatrix j = op.new_matrix();
      op.add_collision(j, &counters);
      const auto ct = measure_components(op, steps, 0.5);
      const double gpu_time = static_cast<double>(counters.flops.load()) / 4.15e12;
      PaperCalibration cal{ct.total - ct.kernel + gpu_time, ct.landau, gpu_time, ct.factor,
                           ct.solve};
      std::printf("[host calibration %s] kernel %.3f ms (host %.3f ms), cpu %.3f ms/iter\n",
                  backend_name(be), gpu_time * 1e3, ct.kernel * 1e3,
                  (ct.total - ct.kernel) * 1e3);
      if (be == Backend::CudaSim)
        cuda_cal = cal;
      else
        kokkos_cal = cal;
    }
  }
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  const double peak_cuda = run_table("Table II: CUDA back-end, V100 node, Newton iterations / sec",
                                     cuda_cal, blocks, iterations);
  const double peak_kokkos =
      run_table("Table III: Kokkos-CUDA back-end, V100 node, Newton iterations / sec", kokkos_cal,
                blocks, iterations);
  BenchReport report("table2_3_throughput");
  report.metric("cuda.peak_it_per_s", peak_cuda, "iterations/s", "higher");
  report.metric("kokkos.peak_it_per_s", peak_kokkos, "iterations/s", "higher");
  report.metric("kokkos_over_cuda", peak_cuda > 0 ? peak_kokkos / peak_cuda : 0.0, "ratio",
                "none");
  std::printf("paper: Table II peak 7,005 it/s (7 cores, 3 procs/core); Table III peak 6,193.\n"
              "Kokkos/CUDA ratio at peak: paper 0.88; the same ratio here follows from the\n"
              "calibrated kernel times.\n");
  return 0;
}
