// Figures 1 and 3: the adapted velocity-space meshes.
//
//  * Fig. 3 — a single-species Maxwellian on a 5 v_th domain resolved by
//    about 20 cells (the complexity anchor for Table I's discussion),
//  * Fig. 1 — the electron-deuterium mesh: the same electron-scale grid plus
//    deep refinement around the origin where the deuterium lives.
//
// Prints the mesh statistics and writes VTK files (mesh outlines with
// refinement levels, plus the nodal electron/deuterium distributions) that
// load in VisIt/ParaView — the same artifacts behind the paper's plots.

#include <cmath>
#include <cstdio>

#include "core/operator.h"
#include "util/options.h"
#include "util/table_writer.h"
#include "util/vtk.h"

using namespace landau;

namespace {

struct MeshStats {
  std::size_t cells, dofs, min_level, max_level;
  double h_min, h_max;
};

MeshStats stats_of(const LandauOperator& op) {
  MeshStats s{op.forest().n_leaves(), op.n_dofs_per_species(), 99, 0, 1e30, 0};
  for (const auto& lf : op.forest().leaves()) {
    s.min_level = std::min(s.min_level, static_cast<std::size_t>(lf.level));
    s.max_level = std::max(s.max_level, static_cast<std::size_t>(lf.level));
    s.h_min = std::min(s.h_min, lf.box.dx());
    s.h_max = std::max(s.h_max, lf.box.dx());
  }
  return s;
}

} // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const bool write_files = opts.get<bool>("vtk", true, "write VTK mesh/field files");
  const double ion_mass = opts.get<double>("ion_mass", 2.0 * 1836.15, "ion mass (m_e)");
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  TableWriter table("Figs. 1 & 3: adapted velocity meshes");
  table.header({"mesh", "cells", "dofs", "levels", "h_min", "h_max"});

  // --- Fig. 3: single-species Maxwellian, ~20 cells -------------------------
  {
    SpeciesSet electron(
        {{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0}});
    LandauOptions lopts;
    lopts.order = 3;
    lopts.radius = 5.0 * electron[0].thermal_speed(); // 5 v_th domain (Fig. 3)
    lopts.cells_per_thermal = 0.5;
    lopts.max_levels = 4;
    LandauOperator op(electron, lopts);
    const auto s = stats_of(op);
    table.add_row().cell("Fig.3 Maxwellian").cell(static_cast<long long>(s.cells))
        .cell(static_cast<long long>(s.dofs))
        .cell(std::to_string(s.min_level) + "-" + std::to_string(s.max_level))
        .cell(s.h_min, 3).cell(s.h_max, 3);
    if (write_files) {
      la::Vec f = op.maxwellian_state();
      la::Vec fe(std::vector<double>(op.block(f, 0).begin(), op.block(f, 0).end()));
      write_vtk_mesh("fig3_mesh.vtk", op.space());
      write_vtk("fig3_maxwellian.vtk", op.space(), fe, "f_e");
    }
    std::printf("Fig. 3 target: ~20 cells on a 5 v_th domain (got %zu)\n", s.cells);
  }

  // --- Fig. 1: electron-deuterium mesh --------------------------------------
  {
    auto species = SpeciesSet::electron_deuterium();
    species[1].mass = ion_mass;
    LandauOptions lopts;
    lopts.order = 3;
    lopts.radius = 5.0 * species[0].thermal_speed();
    lopts.cells_per_thermal = 0.5;
    lopts.max_levels = 12;
    LandauOperator op(species, lopts);
    const auto s = stats_of(op);
    table.add_row().cell("Fig.1 e-D plasma").cell(static_cast<long long>(s.cells))
        .cell(static_cast<long long>(s.dofs))
        .cell(std::to_string(s.min_level) + "-" + std::to_string(s.max_level))
        .cell(s.h_min, 5).cell(s.h_max, 3);
    if (write_files) {
      la::Vec f = op.maxwellian_state();
      la::Vec fe(std::vector<double>(op.block(f, 0).begin(), op.block(f, 0).end()));
      la::Vec fd(std::vector<double>(op.block(f, 1).begin(), op.block(f, 1).end()));
      write_vtk_mesh("fig1_mesh.vtk", op.space());
      write_vtk("fig1_electron.vtk", op.space(), fe, "f_e");
      write_vtk("fig1_deuterium.vtk", op.space(), fd, "f_D");
    }
    std::printf("Fig. 1: deuterium detail refined %zu levels below the electron scale\n",
                s.max_level - s.min_level);
  }

  std::printf("%s", table.str().c_str());
  if (write_files)
    std::printf("\nwrote fig3_mesh.vtk, fig3_maxwellian.vtk, fig1_mesh.vtk, "
                "fig1_electron.vtk, fig1_deuterium.vtk (VisIt/ParaView)\n");
  return 0;
}
