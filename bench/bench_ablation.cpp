// Ablations of the design choices the paper motivates:
//
//  * SoA vs AoS integration-point layout (§III-E: data is transposed into
//    structure-of-arrays for GPUs, from the arrays-of-structures used on
//    vector architectures),
//  * atomic vs plain global assembly (§III-F),
//  * the custom band LU vs dense LU vs GMRES for the multi-species Jacobian
//    (§III-G: general sparse direct solvers target larger problems).

#include <cstdio>
#include <vector>

#include "common.h"
#include "core/kernel_math.h"
#include "la/band.h"
#include "la/band_device.h"
#include "la/dense.h"
#include "la/gmres.h"

using namespace landau;
using namespace landau::bench;

namespace {

/// AoS mirror of IPData: one interleaved record per integration point.
struct AosPacked {
  int ns = 0;
  std::size_t n = 0, stride = 0;
  std::vector<double> data; // [n][3 + 3*ns]: r,z,w,f...,dfr...,dfz...
  void build(const IPData& ip) {
    ns = ip.n_species;
    n = ip.n;
    stride = 3 + 3 * static_cast<std::size_t>(ns);
    data.resize(n * stride);
    for (std::size_t j = 0; j < n; ++j) {
      double* rec = data.data() + j * stride;
      rec[0] = ip.r[j];
      rec[1] = ip.z[j];
      rec[2] = ip.w[j];
      for (int s = 0; s < ns; ++s) {
        rec[3 + s] = ip.f_at(s, j);
        rec[3 + ns + s] = ip.dfr_at(s, j);
        rec[3 + 2 * ns + s] = ip.dfz_at(s, j);
      }
    }
  }
};

double run_inner_soa(const IPData& ip, const JacobianContext& ctx, int reps) {
  detail::InnerAccum acc;
  Stopwatch w;
  for (int r = 0; r < reps; ++r)
    for (std::size_t i = 0; i < ip.n; i += 16)
      for (std::size_t j = 0; j < ip.n; ++j)
        detail::inner_point(ip.r[i], ip.z[i], ip.r[j], ip.z[j], ip.w[j], &ip.f[j], &ip.dfr[j],
                            &ip.dfz[j], ip.n, ip.n_species, ctx.q2.data(), ctx.q2_over_m.data(),
                            &acc);
  volatile double sink = acc.gd00;
  (void)sink;
  return w.seconds();
}

double run_inner_aos(const AosPacked& aos, const IPData& ip, const JacobianContext& ctx,
                     int reps) {
  detail::InnerAccum acc;
  const int ns = aos.ns;
  Stopwatch w;
  for (int r = 0; r < reps; ++r)
    for (std::size_t i = 0; i < aos.n; i += 16)
      for (std::size_t j = 0; j < aos.n; ++j) {
        const double* rec = aos.data.data() + j * aos.stride;
        detail::inner_point(ip.r[i], ip.z[i], rec[0], rec[1], rec[2], rec + 3,
                            rec + 3 + ns, rec + 3 + 2 * ns, 1, ns, ctx.q2.data(),
                            ctx.q2_over_m.data(), &acc);
      }
  volatile double sink = acc.gd00;
  (void)sink;
  return w.seconds();
}

} // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const int reps = opts.get<int>("reps", 2, "inner-loop repetitions");
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  auto species = perf_species(true);
  auto lopts = perf_mesh_options(opts, Backend::CudaSim);
  LandauOperator op(species, lopts);
  la::Vec f = op.maxwellian_state();
  op.pack(f);
  JacobianContext ctx;
  ctx.init(op.space(), op.species(), op.ip_data());

  TableWriter table("design-choice ablations (this host)");
  table.header({"ablation", "variant", "seconds", "relative"});

  // --- SoA vs AoS ----------------------------------------------------------
  {
    AosPacked aos;
    aos.build(op.ip_data());
    const double t_soa = run_inner_soa(op.ip_data(), ctx, reps);
    const double t_aos = run_inner_aos(aos, op.ip_data(), ctx, reps);
    table.add_row().cell("IP layout").cell("SoA (GPU)").cell(t_soa, 3).cell(1.0, 2);
    table.add_row().cell("IP layout").cell("AoS (vector)").cell(t_aos, 3).cell(t_aos / t_soa, 2);
  }

  // --- atomic vs plain assembly --------------------------------------------
  {
    la::CsrMatrix j = op.new_matrix();
    JacobianContext c2 = ctx;
    exec::ThreadPool pool(1);
    c2.atomic_assembly = true;
    Stopwatch w1;
    assemble_landau_jacobian(Backend::CudaSim, pool, c2, j);
    const double t_atomic = w1.seconds();
    j.zero_entries();
    c2.atomic_assembly = false;
    Stopwatch w2;
    assemble_landau_jacobian(Backend::CudaSim, pool, c2, j);
    const double t_plain = w2.seconds();
    table.add_row().cell("assembly").cell("atomicAdd").cell(t_atomic, 3).cell(1.0, 2);
    table.add_row().cell("assembly").cell("plain add").cell(t_plain, 3).cell(
        t_plain / t_atomic, 2);
  }

  // --- linear solvers -------------------------------------------------------
  // Dense LU is O(n^3): compare on a two-species subset problem so the
  // reference stays tractable; the band solvers handle the full system.
  {
    auto two = SpeciesSet::electron_deuterium();
    two[1].mass = 100.0;
    auto l2 = perf_mesh_options(opts, Backend::CudaSim);
    LandauOperator op2(two, l2);
    op2.pack(op2.maxwellian_state());
    la::CsrMatrix j = op2.new_matrix();
    op2.add_collision(j);
    // Newton-like system: M - dt C.
    la::CsrMatrix sys = op2.new_matrix();
    sys.axpy(1.0, op2.mass());
    sys.axpy(-0.1, j);
    la::Vec b(op2.n_total(), 1.0), x(op2.n_total());

    la::BlockBandSolver band;
    Stopwatch w1;
    band.analyze(sys);
    band.factor(sys);
    band.solve(b, x);
    const double t_band = w1.seconds();
    table.add_row().cell("solver").cell("block band LU").cell(t_band, 3).cell(1.0, 2);

    exec::ThreadPool dev_pool(1);
    la::DeviceBlockBandSolver dev(dev_pool);
    Stopwatch w1b;
    dev.analyze(sys);
    dev.factor(sys);
    dev.solve(b, x);
    const double t_dev = w1b.seconds();
    table.add_row().cell("solver").cell("device band LU").cell(t_dev, 3).cell(t_dev / t_band, 2);

    Stopwatch w2;
    la::DenseLU dense(sys.to_dense());
    dense.solve(b, x);
    const double t_dense = w2.seconds();
    table.add_row().cell("solver").cell("dense LU").cell(t_dense, 3).cell(t_dense / t_band, 2);

    Stopwatch w3;
    x.zero();
    la::GmresOptions gopts;
    gopts.rtol = 1e-10;
    la::gmres_solve(sys, b, x, gopts);
    const double t_gmres = w3.seconds();
    table.add_row().cell("solver").cell("GMRES(Jacobi)").cell(t_gmres, 3).cell(
        t_gmres / t_band, 2);
  }

  std::printf("%s", table.str().c_str());
  std::printf("\nNotes: on a GPU the SoA layout additionally enables coalescing (the paper's\n"
              "motivation); on this scalar host the layouts are near parity. The band LU's\n"
              "advantage over dense grows with problem size (O(n b^2) vs O(n^3)).\n");
  return 0;
}
