// Table I: cost of the Landau operator for the 10-species e/D/W plasma as a
// function of the number of velocity grids (§III-H).
//
// The three configurations are *real operators* of this library:
//   1 grid  — LandauOperator: all species share one wide-range mesh,
//   3 grids — MultiGridLandauOperator with the paper's clustering rule
//             (species within 2x thermal speed share a grid): e | D | 8 W,
//   10 grids — MultiGridLandauOperator with per-species grids.
// Counted quantities: total integration points N, Landau tensor evaluations
// N^2, and equations n. Paper: N = 1184/960/3200, n = 8050/1930/1930.

#include <cstdio>

#include "common.h"
#include "core/multigrid.h"
#include "core/operator.h"
#include "util/options.h"
#include "util/table_writer.h"

using namespace landau;

int main(int argc, char** argv) {
  Options opts;
  opts.parse(argc, argv);
  const bool full = opts.get<bool>("full_mass", true, "physical W/D masses");
  LandauOptions lopts;
  lopts.order = 3;
  lopts.radius = 5.0 * std::sqrt(kPi / 4.0); // five thermal radii of the electrons
  lopts.base_levels = 1;
  lopts.cells_per_thermal = opts.get<double>("cells_per_thermal", 0.45, "AMR target");
  lopts.max_levels = opts.get<int>("max_levels", 14, "AMR depth cap");
  lopts.n_workers = 0;
  if (opts.help_requested()) {
    std::printf("%s", opts.help_text().c_str());
    return 0;
  }

  auto species = SpeciesSet::tungsten_plasma();
  if (!full) {
    species[1].mass = 100.0;
    for (int s = 2; s < species.size(); ++s) species[s].mass = 1600.0;
  }
  std::printf("thermal speeds (v0): e %.4f, D %.4f, W %.5f\n", species[0].thermal_speed(),
              species[1].thermal_speed(), species[2].thermal_speed());

  TableWriter table("Table I: Landau operator cost for 10 species vs number of grids");
  table.header({"# grids", "N int. points", "# Landau tensors (N^2)", "n equations"});
  auto n2 = [](std::size_t n) {
    return static_cast<long long>(n) * static_cast<long long>(n);
  };

  bench::BenchReport report("table1_grids");
  {
    LandauOperator one(species, lopts);
    table.add_row().cell(1).cell(static_cast<long long>(one.space().n_ips()))
        .cell(n2(one.space().n_ips())).cell(static_cast<long long>(one.n_total()));
    std::printf("1 grid: %zu cells\n", one.forest().n_leaves());
    report.metric("grids1.n_ips", static_cast<double>(one.space().n_ips()), "points", "none");
    report.metric("grids1.n_equations", static_cast<double>(one.n_total()), "equations", "none");
  }
  {
    MultiGridLandauOperator mg(species, lopts, 2.0); // the paper's clustering
    table.add_row().cell(mg.n_grids()).cell(static_cast<long long>(mg.n_ips_total()))
        .cell(n2(mg.n_ips_total())).cell(static_cast<long long>(mg.n_total()));
    std::printf("%d grids: clusters", mg.n_grids());
    for (int g = 0; g < mg.n_grids(); ++g)
      std::printf(" |g%d: %zu species, %zu cells", g, mg.grid(g).species.size(),
                  mg.grid(g).forest.n_leaves());
    std::printf("\n");
    report.metric("grids3.n_ips", static_cast<double>(mg.n_ips_total()), "points", "none");
    report.metric("grids3.n_equations", static_cast<double>(mg.n_total()), "equations", "none");
  }
  {
    MultiGridLandauOperator pg(species, lopts, 0.99); // one grid per species
    table.add_row().cell(pg.n_grids()).cell(static_cast<long long>(pg.n_ips_total()))
        .cell(n2(pg.n_ips_total())).cell(static_cast<long long>(pg.n_total()));
    report.metric("grids10.n_ips", static_cast<double>(pg.n_ips_total()), "points", "none");
  }
  std::printf("%s", table.str().c_str());
  std::printf("\npaper (Table I): 1184 -> 1.4M tensors, 8050 eq | 960 -> 0.9M, 1930 |"
              " 3200 -> 10.2M, 1930\nShape: clustered grids minimize both the solve size"
              " and the tensor count.\n");
  return 0;
}
