#!/usr/bin/env python3
"""Compare two BENCH_<name>.json files against a noise threshold.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--threshold PCT]
    bench_compare.py --self-test

Each file follows the schema written by bench::BenchReport (bench/common.h):

    {"bench": "<name>", "schema": 1,
     "env": {...},
     "metrics": {"<metric>": {"value": x, "unit": "<unit>",
                              "compare": "higher"|"lower"|"none"}}}

For every metric present in both files with compare != "none", the relative
change candidate/baseline is computed; a change in the *worse* direction
(lower for "higher"-is-better metrics, higher for "lower"-is-better ones)
beyond the threshold (default 10%) is a regression and the script exits
nonzero. Improvements and "none" metrics are reported but never gated on.
Metrics present in only one file are warned about (schema drift), not gated.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "metrics" not in doc:
        raise SystemExit(f"{path}: not a bench report (no 'metrics' object)")
    if doc.get("schema") != 1:
        raise SystemExit(f"{path}: unsupported schema {doc.get('schema')!r}")
    return doc


def compare(baseline, candidate, threshold_pct):
    """Return (lines, regressions) comparing two parsed bench reports."""
    lines = []
    regressions = []
    base_metrics = baseline["metrics"]
    cand_metrics = candidate["metrics"]
    if baseline.get("bench") != candidate.get("bench"):
        lines.append(
            f"warning: comparing different benches "
            f"({baseline.get('bench')!r} vs {candidate.get('bench')!r})"
        )
    for name in base_metrics.keys() | cand_metrics.keys():
        if name not in base_metrics:
            lines.append(f"warning: metric '{name}' only in candidate")
            continue
        if name not in cand_metrics:
            lines.append(f"warning: metric '{name}' only in baseline")
            continue
        b, c = base_metrics[name], cand_metrics[name]
        direction = b.get("compare", "none")
        bv, cv = float(b["value"]), float(c["value"])
        unit = b.get("unit", "")
        if bv == 0.0:
            delta_pct = 0.0 if cv == 0.0 else float("inf")
        else:
            delta_pct = 100.0 * (cv - bv) / abs(bv)
        tag = "  "
        if direction == "higher" and delta_pct < -threshold_pct:
            tag = "REGRESSION"
            regressions.append(name)
        elif direction == "lower" and delta_pct > threshold_pct:
            tag = "REGRESSION"
            regressions.append(name)
        elif direction != "none" and abs(delta_pct) > threshold_pct:
            tag = "improved"
        lines.append(
            f"{name:40s} {bv:14.6g} -> {cv:14.6g} {unit:14s} "
            f"{delta_pct:+8.2f}%  [{direction}] {tag}"
        )
    return sorted(lines), regressions


def self_test(threshold_pct):
    """Synthetic pass/fail: a within-noise diff must pass, an injected >10%
    throughput regression must fail, and a latency regression must fail."""
    def report(**values):
        return {
            "bench": "selftest",
            "schema": 1,
            "env": {},
            "metrics": {
                "throughput": {
                    "value": values["thr"], "unit": "it/s", "compare": "higher"},
                "latency": {
                    "value": values["lat"], "unit": "ms", "compare": "lower"},
                "problem_size": {
                    "value": values["size"], "unit": "cells", "compare": "none"},
            },
        }

    base = report(thr=100.0, lat=10.0, size=64)

    _, reg = compare(base, report(thr=98.0, lat=10.3, size=64), threshold_pct)
    assert not reg, f"within-noise diff flagged: {reg}"

    _, reg = compare(base, report(thr=80.0, lat=10.0, size=64), threshold_pct)
    assert reg == ["throughput"], f"throughput regression missed: {reg}"

    _, reg = compare(base, report(thr=100.0, lat=15.0, size=64), threshold_pct)
    assert reg == ["latency"], f"latency regression missed: {reg}"

    # "none" metrics never gate, however large the change.
    _, reg = compare(base, report(thr=100.0, lat=10.0, size=9999), threshold_pct)
    assert not reg, f"'none' metric gated: {reg}"

    # Improvements never gate.
    _, reg = compare(base, report(thr=200.0, lat=1.0, size=64), threshold_pct)
    assert not reg, f"improvement gated: {reg}"

    print("bench_compare self-test: ok")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?", help="baseline BENCH_*.json")
    ap.add_argument("candidate", nargs="?", help="candidate BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="noise threshold in percent (default 10)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the synthetic pass/fail checks and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.threshold)
    if not args.baseline or not args.candidate:
        ap.error("baseline and candidate files are required (or --self-test)")

    baseline = load(args.baseline)
    candidate = load(args.candidate)
    lines, regressions = compare(baseline, candidate, args.threshold)
    print(f"bench: {baseline.get('bench')}  threshold: {args.threshold:g}%")
    for line in lines:
        print(line)
    if regressions:
        print(f"FAIL: {len(regressions)} regression(s): {', '.join(regressions)}")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
