#!/usr/bin/env bash
# Full verification matrix: tier-1 tests, the three sanitizer builds over the
# concurrency-sensitive subset, the device memory-model checker validation
# suite (with the checker force-enabled through the environment), and
# clang-tidy when available.
#
# Usage: tools/check.sh [build-dir]   (default: build-check)
#
# Each stage is independent; the script stops at the first failure. Expect
# the whole matrix to take a while on one core — the sanitizer stages each
# rebuild the library.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${1:-build-check}
JOBS=${JOBS:-2}

echo "== tier-1: full test suite (${BUILD}) =="
cmake -S . -B "${BUILD}" >/dev/null
cmake --build "${BUILD}" -j "${JOBS}"
ctest --test-dir "${BUILD}" --output-on-failure

echo "== analysis: device memory-model checker (LANDAU_CHECK_DEVICE=1) =="
LANDAU_CHECK_DEVICE=1 ctest --test-dir "${BUILD}" -L analysis --output-on-failure

for SAN in thread address undefined; do
  echo "== sanitize: ${SAN} =="
  cmake -S . -B "${BUILD}-${SAN}" -DLANDAU_SANITIZE="${SAN}" >/dev/null
  cmake --build "${BUILD}-${SAN}" -j "${JOBS}" --target landau_sanitize_tests
  ctest --test-dir "${BUILD}-${SAN}" -L sanitize --output-on-failure
done

echo "== lint: clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --build "${BUILD}" --target lint
else
  echo "clang-tidy not installed: skipped"
fi

echo "== all checks passed =="
