#!/usr/bin/env bash
# Full verification matrix: tier-1 tests, the three sanitizer builds over the
# concurrency-sensitive subset, the device memory-model checker validation
# suite (with the checker force-enabled through the environment), the
# telemetry stage (a short traced quench run whose Chrome-trace JSON and
# NDJSON step log are schema-validated, plus the bench_compare self-test),
# and the static stage: landau-lint over the annotated kernel layer plus
# clang-tidy when available.
#
# Usage: tools/check.sh [build-dir]   (default: build-check)
#
# Each stage is independent; the script stops at the first failure. Expect
# the whole matrix to take a while on one core — the sanitizer stages each
# rebuild the library.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${1:-build-check}
JOBS=${JOBS:-2}

echo "== tier-1: full test suite (${BUILD}) =="
cmake -S . -B "${BUILD}" >/dev/null
cmake --build "${BUILD}" -j "${JOBS}"
ctest --test-dir "${BUILD}" --output-on-failure

echo "== analysis: device memory-model checker (LANDAU_CHECK_DEVICE=1) =="
LANDAU_CHECK_DEVICE=1 ctest --test-dir "${BUILD}" -L analysis --output-on-failure

echo "== telemetry: traced quench run + schema validation =="
if command -v python3 >/dev/null 2>&1; then
  TELEMETRY_DIR="${BUILD}/telemetry"
  rm -rf "${TELEMETRY_DIR}" && mkdir -p "${TELEMETRY_DIR}"
  "${BUILD}/examples/thermal_quench" -max_steps 5 -ion_mass 25 \
    -landau_cells_per_thermal 0.8 -landau_max_levels 5 \
    -landau_trace "${TELEMETRY_DIR}/trace.json" \
    -landau_step_log "${TELEMETRY_DIR}/steps.ndjson" >/dev/null
  python3 - "${TELEMETRY_DIR}/trace.json" "${TELEMETRY_DIR}/steps.ndjson" <<'EOF'
import json, sys
trace_path, steps_path = sys.argv[1], sys.argv[2]
with open(trace_path) as f:
    events = json.load(f)
assert isinstance(events, list) and events, "trace is not a non-empty JSON array"
for e in events:
    for key in ("name", "ph", "ts", "dur", "pid", "tid"):
        assert key in e, f"trace event missing '{key}': {e}"
    assert e["ph"] == "X", f"unexpected event phase {e['ph']!r}"
names = {e["name"] for e in events}
assert any(n.startswith("landau:") for n in names), f"no landau:* spans in {sorted(names)[:10]}"
with open(steps_path) as f:
    lines = [json.loads(line) for line in f if line.strip()]
assert len(lines) >= 6, f"expected >= 6 step records, got {len(lines)}"
for rec in lines:
    for key in ("kind", "step", "t", "dt", "newton_iterations",
                "gmres_iterations_total", "rejections", "n_e", "j_z", "e_z",
                "t_e", "phase"):
        assert key in rec, f"step record missing '{key}': {rec}"
print(f"telemetry ok: {len(events)} spans, {len(lines)} step records")
EOF
  python3 tools/bench_compare.py --self-test
else
  echo "python3 not installed: skipped"
fi

for SAN in thread address undefined; do
  echo "== sanitize: ${SAN} =="
  cmake -S . -B "${BUILD}-${SAN}" -DLANDAU_SANITIZE="${SAN}" >/dev/null
  cmake --build "${BUILD}-${SAN}" -j "${JOBS}" --target landau_sanitize_tests
  ctest --test-dir "${BUILD}-${SAN}" -L sanitize --output-on-failure
done

echo "== static: landau-lint + clang-tidy =="
LINT_KERNELS="skipped (python3 not installed)"
CLANG_TIDY="skipped (clang-tidy not installed)"
if command -v python3 >/dev/null 2>&1; then
  cmake --build "${BUILD}" --target lint-kernels
  LINT_KERNELS="clean"
fi
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --build "${BUILD}" --target lint
  CLANG_TIDY="clean"
fi
echo "static: landau-lint ${LINT_KERNELS}, clang-tidy ${CLANG_TIDY}"

echo "== all checks passed =="
