#!/usr/bin/env python3
"""landau-lint: annotation-driven static analyzer for the emulated-CUDA kernel layer.

The repo's kernels are written against a CPU emulation of the CUDA
hierarchical model (src/exec/cuda_sim.h, src/exec/kokkos_sim.h). Being plain
C++, the emulator silently accepts whole bug classes that nvcc / the Kokkos
compilers reject at build time on real hardware. This tool closes that gap
statically, keyed off the annotation vocabulary in src/exec/annotations.h
(LANDAU_KERNEL / LANDAU_DEVICE / LANDAU_HOST_ONLY / LANDAU_CROSS_BLOCK).

Checks (each individually toggleable with --disable/--enable):

  barrier-divergence  blk.sync()/team_barrier() lexically under a control
                      construct whose condition depends on thread identity,
                      or inside a per-thread phase lambda. Deadlocks on real
                      hardware; invisible in the emulator, which runs phases
                      sequentially.
  capture             device regions must not reference LANDAU_HOST_ONLY
                      names and must not declare host containers
                      (std::vector & friends) — a per-block host allocation
                      that would not compile under nvcc.
  atomics             stores into LANDAU_CROSS_BLOCK-marked global buffers
                      (the COO/CSR assembly targets of paper §III-F) must go
                      through an atomic add path, never a raw subscript store.
  shared-bounds       provable out-of-bounds affine indexing of
                      constant-extent shared-memory tiles.
  launch-hygiene      every exec::launch / kokkos::parallel_for site carries
                      the LANDAU_KERNEL marker and a span-name string
                      literal; shared/register allocations are named; literal
                      Dim3 x-extents are powers of two when the kernel uses
                      the warp-shuffle butterfly.
  fp-hygiene          raw ==/!= on doubles and std::pow(x, integer-constant)
                      in device code.

Frontends: `--frontend clang` lexes each file with libclang using flags from
the exported compile_commands.json; `--frontend tokens` uses the built-in
lexer; `auto` (default) tries libclang and falls back to the built-in lexer.
Both feed the same analysis engine, so findings are identical modulo lexing
fidelity; the fallback never produces a spurious failure, it just lexes
without preprocessing. Exit code: 0 = clean, 1 = findings, 2 = usage error.
"""

import argparse
import json
import os
import re
import sys
import time

ALL_CHECKS = [
    "barrier-divergence",
    "capture",
    "atomics",
    "shared-bounds",
    "launch-hygiene",
    "fp-hygiene",
]

HOST_CONTAINERS = {
    "vector", "string", "map", "unordered_map", "set", "unordered_set",
    "deque", "list", "multimap", "multiset", "function",
}

BARRIER_CALLEES = {"sync", "team_barrier"}
PHASE_CALLEES = {"threads", "team_range", "vector_range", "vector_reduce"}
ATOMIC_CALLEES = {"add_atomic", "atomicAdd", "atomic_add", "fetch_add"}


# ----------------------------------------------------------------------------
# Tokenization
# ----------------------------------------------------------------------------

class Token:
    __slots__ = ("kind", "value", "line")

    def __init__(self, kind, value, line):
        self.kind = kind      # 'id' | 'num' | 'str' | 'chr' | 'punct'
        self.value = value
        self.line = line

    def __repr__(self):
        return f"{self.kind}:{self.value}@{self.line}"


_PUNCTS = [
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",
]


def lex(text):
    """Built-in C++ lexer: comments and literals handled, preprocessor lines
    kept as tokens (we key off macro names, which is the point)."""
    toks = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            line += text.count("\n", i, j)
            i = j
            continue
        if c == '"' or text.startswith('R"', i):
            if text.startswith('R"', i):  # raw string R"delim( ... )delim"
                m = re.match(r'R"([^(\s]*)\(', text[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    j = text.find(close, i + m.end())
                    j = n if j < 0 else j + len(close)
                else:
                    j = i + 2
            else:
                j = i + 1
                while j < n and text[j] != '"':
                    j += 2 if text[j] == "\\" else 1
                j = min(j + 1, n)
            toks.append(Token("str", text[i:j], line))
            line += text.count("\n", i, j)
            i = j
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            toks.append(Token("chr", text[i:j], line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            while j < n and (text[j].isalnum() or text[j] in "._'" or
                             (text[j] in "+-" and j > i and text[j - 1] in "eEpP")):
                j += 1
            toks.append(Token("num", text[i:j].replace("'", ""), line))
            i = j
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            # Digit separators inside numbers were handled above; here a char
            # literal prefix like u8'x' is rare enough to ignore.
            toks.append(Token("id", text[i:j], line))
            i = j
            continue
        if c == "#":  # preprocessor: skip to end of (continued) line
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    j = n
                    break
                if text[k - 1] == "\\" if k > 0 else False:
                    line += 1
                    j = k + 1
                    continue
                j = k
                break
            i = j
            continue
        for p in _PUNCTS:
            if text.startswith(p, i):
                toks.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            toks.append(Token("punct", c, line))
            i += 1
    return toks


def build_match_map(toks):
    """Map index of every ( [ { to the index of its matching closer."""
    match = {}
    stack = []
    openers = {"(": ")", "[": "]", "{": "}"}
    for i, t in enumerate(toks):
        if t.kind != "punct":
            continue
        if t.value in openers:
            stack.append((i, openers[t.value]))
        elif t.value in ")]}":
            while stack:
                j, want = stack.pop()
                if want == t.value:
                    match[j] = i
                    break
    return match


def match_angle(toks, i):
    """i points at '<' opening a template argument list; return index of the
    matching '>' (token-level heuristic: balanced, stops at ';')."""
    depth = 0
    for j in range(i, len(toks)):
        v = toks[j].value
        if v == "<":
            depth += 1
        elif v in (">", ">>"):
            depth -= 2 if v == ">>" else 1
            if depth <= 0:
                return j
        elif v in (";", "{"):
            return None
    return None


def split_args(toks, lo, hi):
    """Split toks[lo:hi] (inside one call's parens) at top-level commas."""
    args, depth, start = [], 0, lo
    for i in range(lo, hi):
        v = toks[i].value
        if toks[i].kind == "punct":
            if v in "([{":
                depth += 1
            elif v in ")]}":
                depth -= 1
            elif v == "," and depth == 0:
                args.append((start, i))
                start = i + 1
    if start < hi:
        args.append((start, hi))
    return args


def snippet(toks, lo, hi, limit=40):
    s = " ".join(t.value for t in toks[lo:hi])
    return s if len(s) <= limit else s[: limit - 3] + "..."


def is_float_literal(tok):
    if tok.kind != "num":
        return False
    v = tok.value.lower()
    if v.startswith("0x"):
        return "p" in v
    return "." in v or "e" in v


def int_literal(tok):
    if tok.kind != "num":
        return None
    v = tok.value.lower().rstrip("ul")
    try:
        return int(v, 0)
    except ValueError:
        return None


# ----------------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------------

class Finding:
    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def text(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"

    def sort_key(self):
        return (self.path, self.line, self.check, self.message)


# ----------------------------------------------------------------------------
# Per-file analysis
# ----------------------------------------------------------------------------

class Region:
    """One device region: a LANDAU_KERNEL lambda body or a LANDAU_DEVICE
    function body. (lo, hi) are token indices of the braces, exclusive."""

    def __init__(self, kind, name, lo, hi, block_param=None):
        self.kind = kind          # 'kernel' | 'device-fn'
        self.name = name
        self.lo = lo
        self.hi = hi
        self.block_param = block_param


class FileLint:
    def __init__(self, path, toks, checks, host_only_names, report):
        self.path = path
        self.toks = toks
        self.checks = checks
        self.host_only = host_only_names
        self.report = report
        self.match = build_match_map(toks)
        self.consts = self._collect_constexpr_ints()
        self.regions = []
        self.cross_block_refs = set()

    def tv(self, i):
        return self.toks[i].value if 0 <= i < len(self.toks) else ""

    def _collect_constexpr_ints(self):
        env = {}
        toks = self.toks
        for i, t in enumerate(toks):
            if t.value == "constexpr" and t.kind == "id":
                # constexpr <type...> NAME = <int literal> ;
                j = i + 1
                while j < len(toks) and toks[j].value not in ("=", ";", "{"):
                    j += 1
                if self.tv(j) == "=" and toks[j - 1].kind == "id":
                    val = int_literal(toks[j + 1]) if j + 1 < len(toks) else None
                    if val is not None and self.tv(j + 2) == ";":
                        env[toks[j - 1].value] = val
        return env

    # -- region discovery ---------------------------------------------------

    def discover(self):
        toks = self.toks
        i = 0
        while i < len(toks):
            v = toks[i].value
            if v == "LANDAU_CROSS_BLOCK":
                name = self._decl_name_before(i)
                if name:
                    self.cross_block_refs.add(name)
            elif v == "LANDAU_KERNEL":
                end = self._kernel_region(i)
                if end:
                    i = end
                    continue
            elif v == "LANDAU_DEVICE":
                end = self._device_fn_region(i)
                if end:
                    i = end
                    continue
            i += 1

    def _decl_name_before(self, i):
        """Backward scan from token i to the start of the statement, then the
        identifier directly before the first '=' is the declared name."""
        j = i
        while j > 0 and self.tv(j) not in (";", "{", "}"):
            j -= 1
        for k in range(j, i):
            if self.tv(k) == "=" and self.toks[k - 1].kind == "id":
                return self.toks[k - 1].value
        return None

    def _kernel_region(self, i):
        toks = self.toks
        j = i + 1
        if self.tv(j) != "[":
            return None
        cap_end = self.match.get(j)
        if cap_end is None:
            return None
        k = cap_end + 1
        block_param = None
        if self.tv(k) == "(":
            pend = self.match.get(k)
            ids = [t.value for t in toks[k + 1:pend] if t.kind == "id"]
            if ids:
                block_param = ids[-1]
            k = pend + 1
        while k < len(toks) and self.tv(k) != "{":
            if self.tv(k) == ";":
                return None
            k += 1
        body_end = self.match.get(k)
        if body_end is None:
            return None
        name = f"kernel@{toks[i].line}"
        self.regions.append(Region("kernel", name, k + 1, body_end, block_param))
        return body_end

    def _device_fn_region(self, i):
        toks = self.toks
        j = i + 1
        while j < len(toks) and self.tv(j) not in ("(", ";", "{"):
            j += 1
        if self.tv(j) != "(" or toks[j - 1].kind != "id":
            return None
        name = toks[j - 1].value
        pend = self.match.get(j)
        if pend is None:
            return None
        k = pend + 1
        while k < len(toks) and self.tv(k) not in ("{", ";"):
            k += 1
        if self.tv(k) != "{":
            return None  # declaration only
        body_end = self.match.get(k)
        if body_end is None:
            return None
        self.regions.append(Region("device-fn", name, k + 1, body_end))
        return body_end

    # -- driver -------------------------------------------------------------

    def run(self):
        self.discover()
        if "launch-hygiene" in self.checks:
            self.check_launch_sites()
        for r in self.regions:
            phases = self._phase_lambda_ranges(r)
            thread_dep = self._thread_dependent_names(r, phases)
            if "barrier-divergence" in self.checks:
                self.check_barriers(r, phases, thread_dep)
            if "capture" in self.checks:
                self.check_capture(r)
            if "atomics" in self.checks:
                self.check_atomics(r)
            if "shared-bounds" in self.checks:
                self.check_shared_bounds(r)
            if "launch-hygiene" in self.checks:
                self.check_alloc_names(r)
            if "fp-hygiene" in self.checks:
                self.check_fp(r)

    def emit(self, line, check, message):
        self.report.append(Finding(self.path, line, check, message))

    # -- phase lambdas and thread identity ----------------------------------

    def _phase_lambda_ranges(self, region):
        """[(lo, hi, params)] for lambdas passed to .threads/.team_range/..."""
        out = []
        i = region.lo
        while i < region.hi:
            if (self.toks[i].kind == "id" and self.toks[i].value in PHASE_CALLEES
                    and self.tv(i - 1) in (".", "->") and self.tv(i + 1) == "("):
                call_end = self.match.get(i + 1, region.hi)
                j = i + 2
                while j < call_end:
                    if self.tv(j) == "[":
                        cap_end = self.match.get(j)
                        if cap_end is None:
                            break
                        k = cap_end + 1
                        params = []
                        if self.tv(k) == "(":
                            pend = self.match.get(k)
                            for a_lo, a_hi in split_args(self.toks, k + 1, pend):
                                ids = [t.value for t in self.toks[a_lo:a_hi]
                                       if t.kind == "id"]
                                if ids:
                                    params.append(ids[-1])
                            k = pend + 1
                        while k < call_end and self.tv(k) != "{":
                            k += 1
                        bend = self.match.get(k)
                        if bend is not None:
                            out.append((k + 1, bend, params))
                        break
                    j += 1
                i = call_end
                continue
            i += 1
        return out

    def _thread_dependent_names(self, region, phases):
        """Identifiers carrying thread identity: phase-lambda parameters plus
        anything assigned from an expression mentioning one (forward pass)."""
        dep = {"threadIdx"}
        for _, _, params in phases:
            dep.update(params)
        toks = self.toks
        for _ in range(2):  # two passes handle simple chains
            i = region.lo
            while i < region.hi:
                if (self.tv(i) in ("=", "+=", "-=") and toks[i - 1].kind == "id"
                        and self.tv(i - 2) != "["):
                    j = i + 1
                    rhs_dep = False
                    while j < region.hi and self.tv(j) not in (";", "{"):
                        if toks[j].kind == "id" and toks[j].value in dep:
                            rhs_dep = True
                        j += 1
                    if rhs_dep:
                        dep.add(toks[i - 1].value)
                    i = j
                    continue
                i += 1
        return dep

    # -- check: barrier-divergence ------------------------------------------

    def _cond_ranges(self, region):
        """[(scope_lo, scope_hi, cond_lo, cond_hi)] for if/while/for within
        the region, where scope covers the controlled statement(s)."""
        out = []
        toks = self.toks
        i = region.lo
        while i < region.hi:
            v = toks[i].value
            if toks[i].kind == "id" and v in ("if", "while", "for") and self.tv(i + 1) == "(":
                pend = self.match.get(i + 1)
                if pend is None:
                    i += 1
                    continue
                clo, chi = i + 2, pend
                if v == "for":
                    semis = [j for j in range(i + 2, pend)
                             if self.tv(j) == ";" and self._depth_between(i + 2, j) == 0]
                    if len(semis) >= 2:
                        clo, chi = semis[0] + 1, semis[1]
                k = pend + 1
                if self.tv(k) == "{":
                    scope_hi = self.match.get(k, region.hi)
                    scope_lo = k + 1
                else:
                    scope_lo = k
                    while k < region.hi and self.tv(k) != ";":
                        if self.tv(k) == "{":
                            k = self.match.get(k, region.hi)
                        k += 1
                    scope_hi = k
                out.append((scope_lo, scope_hi, clo, chi))
                # else branch inherits the same condition
                j = scope_hi + 1 if self.tv(scope_hi) == "}" else scope_hi + 1
                if self.tv(j) == "else":
                    k = j + 1
                    if self.tv(k) == "{":
                        out.append((k + 1, self.match.get(k, region.hi), clo, chi))
            i += 1
        return out

    def _depth_between(self, lo, i):
        d = 0
        for j in range(lo, i):
            v = self.tv(j)
            if v in "([{":
                d += 1
            elif v in ")]}":
                d -= 1
        return d

    def check_barriers(self, region, phases, thread_dep):
        conds = self._cond_ranges(region)
        toks = self.toks
        for i in range(region.lo, region.hi):
            if (toks[i].kind == "id" and toks[i].value in BARRIER_CALLEES
                    and self.tv(i - 1) in (".", "->") and self.tv(i + 1) == "("):
                in_phase = any(lo <= i < hi for lo, hi, _ in phases)
                if in_phase:
                    self.emit(toks[i].line, "barrier-divergence",
                              f"barrier '{toks[i].value}' inside per-thread phase lambda")
                    continue
                for scope_lo, scope_hi, clo, chi in conds:
                    if scope_lo <= i < scope_hi:
                        if any(t.kind == "id" and t.value in thread_dep
                               for t in toks[clo:chi]):
                            self.emit(
                                toks[i].line, "barrier-divergence",
                                f"barrier '{toks[i].value}' under thread-dependent "
                                f"condition '{snippet(toks, clo, chi)}'")
                            break

    # -- check: capture ------------------------------------------------------

    def check_capture(self, region):
        toks = self.toks
        for i in range(region.lo, region.hi):
            if toks[i].kind != "id":
                continue
            v = toks[i].value
            if v in self.host_only:
                self.emit(toks[i].line, "capture",
                          f"host-only name '{v}' referenced in device region "
                          f"'{region.name}'")
            elif (v in HOST_CONTAINERS and self.tv(i - 1) == "::"
                  and self.tv(i - 2) == "std"):
                self.emit(toks[i].line, "capture",
                          f"host container 'std::{v}' declared in device region "
                          f"'{region.name}'")

    # -- check: atomics -------------------------------------------------------

    def _cross_block_views(self, region):
        """Names bound inside the region to views of LANDAU_CROSS_BLOCK refs:
        `auto NAME = ....view(REF)` or `checked_span<T> NAME(REF, ...)`."""
        views = set()
        toks = self.toks
        for i in range(region.lo, region.hi):
            if toks[i].kind == "id" and toks[i].value in self.cross_block_refs:
                name = self._decl_name_before(i)
                if name:
                    views.add(name)
                else:
                    # constructor form: NAME ( REF ... )
                    j = i - 1
                    while j > region.lo and self.tv(j) not in ("(", ",", ";"):
                        j -= 1
                    if self.tv(j) == "(" and toks[j - 1].kind == "id":
                        views.add(toks[j - 1].value)
        views -= self.cross_block_refs
        return views

    def check_atomics(self, region):
        views = self._cross_block_views(region)
        if not views:
            return
        toks = self.toks
        for i in range(region.lo, region.hi):
            if toks[i].kind == "id" and toks[i].value in views and self.tv(i + 1) == "[":
                close = self.match.get(i + 1)
                if close is None:
                    continue
                nxt = self.tv(close + 1)
                if nxt in ("=", "+=", "-=", "*=", "/=") or nxt in ("++", "--") \
                        or self.tv(i - 1) in ("++", "--"):
                    self.emit(toks[i].line, "atomics",
                              f"non-atomic store through cross-block view "
                              f"'{toks[i].value}' (route through an atomic add, "
                              f"paper §III-F)")

    # -- check: shared-bounds -------------------------------------------------

    def _assignment_env(self, region):
        env = {}
        toks = self.toks
        for i in range(region.lo, region.hi):
            if self.tv(i) == "=" and toks[i - 1].kind == "id" and self.tv(i + 1) != "=":
                j = i + 1
                while j < region.hi and self.tv(j) != ";":
                    if self.tv(j) in "([{":
                        j = self.match.get(j, region.hi)
                    j += 1
                name = toks[i - 1].value
                env[name] = None if name in env else (i + 1, j)
        return {k: v for k, v in env.items() if v}

    def _loop_max_env(self, region, assign_env):
        """Loop variable -> max value, for fully resolvable bounds."""
        env = {}
        toks = self.toks
        i = region.lo
        while i < region.hi:
            if toks[i].kind == "id" and toks[i].value == "for" and self.tv(i + 1) == "(":
                pend = self.match.get(i + 1)
                if pend:
                    semis = [j for j in range(i + 2, pend)
                             if self.tv(j) == ";" and self._depth_between(i + 2, j) == 0]
                    if len(semis) >= 2:
                        clo, chi = semis[0] + 1, semis[1]
                        m = None
                        for j in range(clo, chi):
                            if self.tv(j) in ("<", "<="):
                                if toks[j - 1].kind == "id":
                                    bound = self._eval(j + 1, chi, assign_env, {}, 0)
                                    if bound is not None:
                                        m = (toks[j - 1].value,
                                             bound if self.tv(j) == "<=" else bound - 1)
                                break
                        if m:
                            name, val = m
                            env[name] = None if name in env and env[name] != val else val
            i += 1
        return {k: v for k, v in env.items() if v is not None}

    def _eval(self, lo, hi, assign_env, loop_env, depth):
        """Exact integer evaluation of a token slice; None if not provable."""
        if depth > 8 or lo >= hi:
            return None
        toks = self.toks
        # strip static_cast<T>( x ) and outer parens
        if toks[lo].value == "static_cast":
            a = match_angle(toks, lo + 1)
            if a is not None and self.tv(a + 1) == "(" and self.match.get(a + 1) == hi - 1:
                return self._eval(a + 2, hi - 1, assign_env, loop_env, depth + 1)
        if toks[lo].value == "(" and self.match.get(lo) == hi - 1:
            return self._eval(lo + 1, hi - 1, assign_env, loop_env, depth + 1)
        # std::min<...>(a, b, ...) — exact only if every argument is exact
        base = lo
        if self.tv(lo) == "std" and self.tv(lo + 1) == "::":
            base = lo + 2
        if self.tv(base) == "min":
            j = base + 1
            if self.tv(j) == "<":
                a = match_angle(toks, j)
                j = a + 1 if a is not None else j
            if self.tv(j) == "(" and self.match.get(j) == hi - 1:
                vals = [self._eval(alo, ahi, assign_env, loop_env, depth + 1)
                        for alo, ahi in split_args(toks, j + 1, hi - 1)]
                return min(vals) if vals and all(v is not None for v in vals) else None
        # binary +, -, * at top level (rightmost +/- first, then *)
        for ops in (("+", "-"), ("*",)):
            d = 0
            for j in range(hi - 1, lo - 1, -1):
                v = self.tv(j)
                if v in ")]}":
                    d += 1
                elif v in "([{":
                    d -= 1
                elif d == 0 and v in ops and j > lo and (
                        toks[j - 1].kind in ("num", "id") or self.tv(j - 1) in (")", "]")):
                    a = self._eval(lo, j, assign_env, loop_env, depth + 1)
                    b = self._eval(j + 1, hi, assign_env, loop_env, depth + 1)
                    if a is None or b is None:
                        return None
                    return a + b if v == "+" else a - b if v == "-" else a * b
        if hi - lo == 1:
            t = toks[lo]
            if t.kind == "num":
                return int_literal(t)
            if t.kind == "id":
                if t.value in loop_env:
                    return loop_env[t.value]
                if t.value in self.consts:
                    return self.consts[t.value]
                if t.value in assign_env:
                    alo, ahi = assign_env[t.value]
                    return self._eval(alo, ahi, assign_env, loop_env, depth + 1)
        return None

    def check_shared_bounds(self, region):
        toks = self.toks
        assign_env = self._assignment_env(region)
        loop_env = self._loop_max_env(region, assign_env)
        shared = {}  # name -> exact extent
        for i in range(region.lo, region.hi):
            if (toks[i].kind == "id" and toks[i].value in ("shared", "team_scratch")
                    and self.tv(i - 1) in (".", "->")):
                a = match_angle(toks, i + 1) if self.tv(i + 1) == "<" else None
                call = (a + 1) if a is not None else (i + 1)
                if self.tv(call) != "(":
                    continue
                pend = self.match.get(call)
                args = split_args(toks, call + 1, pend)
                if not args:
                    continue
                extent = self._eval(args[0][0], args[0][1], assign_env, {}, 0)
                name = self._decl_name_before(i)
                if extent is not None and name:
                    shared[name] = extent
        if not shared:
            return
        for i in range(region.lo, region.hi):
            if toks[i].kind == "id" and toks[i].value in shared and self.tv(i + 1) == "[":
                close = self.match.get(i + 1)
                if close is None:
                    continue
                mx = self._eval(i + 2, close, assign_env, loop_env, 0)
                if mx is not None and mx >= shared[toks[i].value]:
                    self.emit(toks[i].line, "shared-bounds",
                              f"index '{snippet(toks, i + 2, close)}' (max {mx}) out of "
                              f"bounds for shared buffer '{toks[i].value}' "
                              f"(extent {shared[toks[i].value]})")

    # -- check: launch-hygiene ------------------------------------------------

    def check_launch_sites(self):
        toks = self.toks
        has_shfl_kernel = any(
            toks[i].value == "shfl_xor_sum_x"
            for r in self.regions for i in range(r.lo, r.hi))
        for i, t in enumerate(toks):
            if (t.kind == "id" and t.value in ("launch", "parallel_for")
                    and self.tv(i - 1) == "::" and self.tv(i + 1) == "("):
                pend = self.match.get(i + 1)
                if pend is None:
                    continue
                if self.tv(pend + 1) != ";":
                    continue  # definition (`) {`) rather than a call statement
                inner = toks[i + 2:pend]
                if not any(x.value == "LANDAU_KERNEL" for x in inner):
                    self.emit(t.line, "launch-hygiene",
                              "launch site missing LANDAU_KERNEL annotation on its "
                              "kernel lambda")
                args = split_args(toks, i + 2, pend)
                named = any(hi - lo == 1 and toks[lo].kind == "str"
                            for lo, hi in args)
                if not named:
                    self.emit(t.line, "launch-hygiene",
                              "launch missing span-name string literal argument")
            # literal Dim3 x-extent must be a power of two when the file's
            # kernels use the warp-shuffle butterfly
            if (t.kind == "id" and t.value == "Dim3" and has_shfl_kernel
                    and self.tv(i + 2) == "{"):
                x = int_literal(toks[i + 3]) if i + 3 < len(toks) else None
                if x is not None and (x <= 0 or x & (x - 1)):
                    self.emit(t.line, "launch-hygiene",
                              f"Dim3 x-extent {x} is not a power of two but a kernel "
                              f"in this file uses shfl_xor_sum_x")

    def check_alloc_names(self, region):
        toks = self.toks
        for i in range(region.lo, region.hi):
            if (toks[i].kind == "id"
                    and toks[i].value in ("shared", "team_scratch", "registers")
                    and self.tv(i - 1) in (".", "->")):
                # The allocation methods are always templated on the element
                # type; a plain call (e.g. CounterScope::shared(bytes)) is a
                # different method that happens to share the name.
                a = match_angle(toks, i + 1) if self.tv(i + 1) == "<" else None
                if a is None:
                    continue
                call = a + 1
                if self.tv(call) != "(":
                    continue
                pend = self.match.get(call)
                args = split_args(toks, call + 1, pend)
                if not any(hi - lo == 1 and toks[lo].kind == "str" for lo, hi in args):
                    self.emit(toks[i].line, "launch-hygiene",
                              f"unnamed '{toks[i].value}' allocation in device region "
                              f"'{region.name}' (pass a name literal)")

    # -- check: fp-hygiene ----------------------------------------------------

    def check_fp(self, region):
        toks = self.toks
        doubles = set()
        for i in range(region.lo, region.hi):
            if toks[i].value == "double" and toks[i + 1].kind == "id":
                doubles.add(toks[i + 1].value)
        for i in range(region.lo, region.hi):
            v = self.tv(i)
            if v in ("==", "!="):
                prev_t, next_t = toks[i - 1], toks[i + 1]
                fp = (is_float_literal(prev_t) or is_float_literal(next_t)
                      or (prev_t.kind == "id" and prev_t.value in doubles)
                      or (next_t.kind == "id" and next_t.value in doubles))
                if fp:
                    self.emit(toks[i].line, "fp-hygiene",
                              f"floating-point '{v}' in device code (use a tolerance, "
                              f"or landau::fp::exact_eq for an intentional bitwise "
                              f"compare)")
            elif toks[i].kind == "id" and v == "pow" and self.tv(i + 1) == "(":
                pend = self.match.get(i + 1)
                if pend is None:
                    continue
                args = split_args(toks, i + 2, pend)
                if len(args) == 2:
                    lo, hi = args[1]
                    sl = slice(lo + 1, hi) if self.tv(lo) == "-" else slice(lo, hi)
                    rng = toks[sl]
                    if len(rng) == 1 and int_literal(rng[0]) is not None:
                        self.emit(toks[i].line, "fp-hygiene",
                                  f"std::pow with integer exponent "
                                  f"{snippet(toks, lo, hi)} in device code (use "
                                  f"explicit multiplies)")


# ----------------------------------------------------------------------------
# Frontends
# ----------------------------------------------------------------------------

def load_clang(compile_commands):
    """Return (tokenize_fn, note) using libclang, or (None, reason)."""
    try:
        from clang import cindex  # noqa: F401
    except ImportError as e:
        return None, f"python clang bindings unavailable ({e})"
    try:
        from clang.cindex import Index, TokenKind
        index = Index.create()
    except Exception as e:  # missing libclang.so, version mismatch, ...
        return None, f"libclang unavailable ({e})"

    flags_by_file = {}
    if compile_commands and os.path.exists(compile_commands):
        try:
            with open(compile_commands) as f:
                for entry in json.load(f):
                    args = entry.get("arguments") or entry.get("command", "").split()
                    keep = [a for a in args[1:] if a.startswith(("-I", "-D", "-std"))]
                    flags_by_file[os.path.abspath(
                        os.path.join(entry["directory"], entry["file"]))] = keep
        except Exception:
            pass

    kind_map = {
        TokenKind.IDENTIFIER: "id",
        TokenKind.KEYWORD: "id",
        TokenKind.LITERAL: "num",
        TokenKind.PUNCTUATION: "punct",
    }

    def tokenize(path, text):
        flags = flags_by_file.get(os.path.abspath(path), ["-std=c++20"])
        tu = index.parse(path, args=flags,
                         options=0x40 | 0x01)  # keep-going, detailed-preproc
        toks = []
        for t in tu.get_tokens(extent=tu.cursor.extent):
            kind = kind_map.get(t.kind)
            if kind is None:  # comments
                continue
            v = t.spelling
            if kind == "num" and (v.startswith('"') or v.startswith("'")
                                  or v.startswith('R"')):
                kind = "str" if '"' in v[:2] or v.startswith('R"') else "chr"
            toks.append(Token(kind, v, t.location.line))
        return toks

    return tokenize, "libclang"


def gather_files(paths, compile_commands):
    files = []
    seen = set()
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith((".cpp", ".cc", ".h", ".hpp")):
                        files.append(os.path.join(root, name))
        elif os.path.isfile(p):
            files.append(p)
        else:
            print(f"landau-lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    if not paths and compile_commands and os.path.exists(compile_commands):
        with open(compile_commands) as f:
            for entry in json.load(f):
                files.append(os.path.abspath(
                    os.path.join(entry["directory"], entry["file"])))
    out = []
    for f in files:
        rp = os.path.normpath(f)
        if rp not in seen:
            seen.add(rp)
            out.append(rp)
    return out


def collect_host_only(token_streams):
    """Names annotated LANDAU_HOST_ONLY anywhere in the scanned tree."""
    names = set()
    for toks in token_streams.values():
        for i, t in enumerate(toks):
            if t.value == "LANDAU_HOST_ONLY" and i + 1 < len(toks):
                nxt = toks[i + 1]
                if nxt.kind == "id":
                    names.add(nxt.value)
                else:
                    # function form: LANDAU_HOST_ONLY <type...> name(
                    for j in range(i + 1, min(i + 8, len(toks))):
                        if toks[j].value == "(" and toks[j - 1].kind == "id":
                            names.add(toks[j - 1].value)
                            break
    names.discard("LANDAU_HOST_ONLY")
    return names


def main(argv=None):
    ap = argparse.ArgumentParser(prog="landau-lint", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", help="files or directories to lint")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json (flags for the clang frontend; "
                         "file list when no paths are given)")
    ap.add_argument("--frontend", choices=["auto", "clang", "tokens"], default="auto")
    ap.add_argument("--disable", default="", metavar="CHECKS",
                    help="comma-separated checks to turn off")
    ap.add_argument("--enable", default="", metavar="CHECKS",
                    help="comma-separated checks to run exclusively")
    ap.add_argument("--format", choices=["text", "json"], default="text")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("--quiet", action="store_true", help="suppress summary line")
    args = ap.parse_args(argv)

    if args.list_checks:
        print("\n".join(ALL_CHECKS))
        return 0

    checks = set(ALL_CHECKS)
    for name in filter(None, args.enable.split(",")):
        if name not in ALL_CHECKS:
            print(f"landau-lint: unknown check '{name}'", file=sys.stderr)
            return 2
    if args.enable:
        checks = set(filter(None, args.enable.split(",")))
    for name in filter(None, args.disable.split(",")):
        if name not in ALL_CHECKS:
            print(f"landau-lint: unknown check '{name}'", file=sys.stderr)
            return 2
        checks.discard(name)

    files = gather_files(args.paths, args.compile_commands)
    if not files:
        print("landau-lint: nothing to lint (pass paths or --compile-commands)",
              file=sys.stderr)
        return 2

    t0 = time.monotonic()
    tokenize, note = None, None
    if args.frontend in ("auto", "clang"):
        tokenize, note = load_clang(args.compile_commands)
        if tokenize is None and args.frontend == "clang":
            print(f"landau-lint: --frontend clang requested but {note}",
                  file=sys.stderr)
            return 2
    frontend = "clang" if tokenize else "tokens"

    streams = {}
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"landau-lint: cannot read {path}: {e}", file=sys.stderr)
            return 2
        if tokenize:
            try:
                streams[path] = tokenize(path, text)
                continue
            except Exception as e:
                # graceful per-file degradation, never a spurious failure
                print(f"landau-lint: clang frontend failed on {path} ({e}); "
                      f"using built-in lexer", file=sys.stderr)
        streams[path] = lex(text)

    host_only = collect_host_only(streams)
    findings = []
    for path, toks in streams.items():
        FileLint(path, toks, checks, host_only, findings).run()
    findings.sort(key=Finding.sort_key)

    if args.format == "json":
        print(json.dumps([{"file": f.path, "line": f.line, "check": f.check,
                           "message": f.message} for f in findings], indent=2))
    else:
        for f in findings:
            print(f.text())
    if not args.quiet:
        dt = time.monotonic() - t0
        n_files = len({f.path for f in findings})
        print(f"landau-lint: {len(findings)} finding(s) in {n_files} file(s); "
              f"scanned {len(files)} files in {dt:.2f}s "
              f"[frontend={frontend}{'' if frontend == 'clang' else f', {note}' if note else ''}]",
              file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
