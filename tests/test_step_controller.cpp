// The recovery matrix of the failure-recovering time-advance layer: every
// injected fault class (Newton divergence, stagnation, NaN in rhs/state,
// linear-solver throw) must be recovered by the StepController, checkpoints
// must round-trip bit-exactly, and a quench run killed mid-scenario must
// resume to the same history as an uninterrupted run.
//
// Faults are injected through the deterministic FaultInjector
// (LANDAU_FAULT_SPEC grammar); each test arms it programmatically and clears
// it on teardown so fixtures stay independent.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "quench/model.h"
#include "solver/step_controller.h"
#include "util/checkpoint.h"
#include "util/robustness.h"

using namespace landau;

namespace {

/// Tiny single-species electron problem: step cost is milliseconds, Newton
/// converges in a couple of iterations from a Maxwellian.
LandauOperator make_small_op() {
  SpeciesSet electron(
      {{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0}});
  LandauOptions opts;
  opts.order = 2;
  opts.base_levels = 1;
  opts.max_levels = 2;
  opts.n_workers = 1; // serial assembly is bit-deterministic (replay tests)
  return LandauOperator(electron, opts);
}

/// Reduced two-species quench problem (cf. test_quench.cpp, coarsened one
/// level): with the options below the Spitzer->quench switchover lands at
/// step 13. Serial workers keep the run bit-deterministic — parallel CSR
/// assembly uses atomic adds whose order depends on thread timing.
LandauOperator make_quench_op() {
  auto species = SpeciesSet::electron_deuterium();
  species[1].mass = 25.0;
  LandauOptions opts;
  opts.order = 2;
  opts.radius = 4.5;
  opts.base_levels = 1;
  opts.cells_per_thermal = 0.8;
  opts.max_levels = 4;
  opts.n_workers = 1;
  return LandauOperator(species, opts);
}

quench::QuenchOptions quench_opts() {
  quench::QuenchOptions q;
  q.dt = 0.5;
  q.max_steps = 18;
  q.e_initial_over_ec = 0.5;
  q.te_ev = 3000.0;
  q.equilibrium_tol = 5e-3;
  q.min_equilibrium_steps = 2;
  q.source.total_injected = 3.0;
  q.source.t_start = 0.5;
  q.source.duration = 5.0;
  q.source.cold_temperature = 0.05;
  q.newton.rtol = 1e-6;
  return q;
}

class StepControllerTest : public ::testing::Test {
protected:
  void SetUp() override { FaultInjector::instance().clear(); }
  void TearDown() override {
    FaultInjector::instance().clear();
    robustness().paranoid = false;
  }
};

using QuenchRecovery = StepControllerTest;
using CheckpointFile = StepControllerTest;

bool same_history(const quench::QuenchResult& a, const quench::QuenchResult& b, double tol) {
  if (a.history.size() != b.history.size()) return false;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const auto& x = a.history[i];
    const auto& y = b.history[i];
    if (std::abs(x.t - y.t) > tol || std::abs(x.n_e - y.n_e) > tol ||
        std::abs(x.j_z - y.j_z) > tol || std::abs(x.e_z - y.e_z) > tol ||
        std::abs(x.t_e - y.t_e) > tol || std::abs(x.runaway_fraction - y.runaway_fraction) > tol ||
        x.quench_phase != y.quench_phase)
      return false;
  }
  return true;
}

} // namespace

TEST_F(StepControllerTest, CleanPathAcceptsAndKeepsDt) {
  LandauOperator op = make_small_op();
  ImplicitIntegrator integrator(op);
  StepControllerOptions copts;
  copts.dt_initial = 0.25;
  copts.growth = 1.0; // isolate the no-failure path
  StepController controller(integrator, copts);
  la::Vec f = op.maxwellian_state();
  for (int s = 0; s < 3; ++s) {
    const auto adv = controller.advance(f);
    EXPECT_TRUE(adv.step.converged);
    EXPECT_EQ(adv.rejections, 0);
    EXPECT_DOUBLE_EQ(adv.dt, 0.25);
  }
  EXPECT_EQ(controller.total_accepted(), 3);
  EXPECT_EQ(controller.total_rejected(), 0);
  EXPECT_TRUE(f.all_finite());
}

TEST_F(StepControllerTest, HalvesDtOnInjectedDivergence) {
  LandauOperator op = make_small_op();
  ImplicitIntegrator integrator(op);
  StepControllerOptions copts;
  copts.dt_initial = 0.5;
  copts.growth = 1.0;
  StepController controller(integrator, copts);
  la::Vec f = op.maxwellian_state();

  // Attempts 0 and 1 are clean; attempt 2 diverges (state perturbed), the
  // controller must roll back and re-attempt at dt/2.
  FaultInjector::instance().configure("newton_diverge@step=2");
  controller.advance(f);
  controller.advance(f);
  const auto adv = controller.advance(f);
  EXPECT_EQ(adv.rejections, 1);
  EXPECT_TRUE(adv.step.converged);
  EXPECT_DOUBLE_EQ(adv.dt, 0.25); // halved
  EXPECT_EQ(controller.total_rejected(), 1);
  EXPECT_EQ(FaultInjector::instance().fired_count(), 1);
  EXPECT_TRUE(f.all_finite());
}

TEST_F(StepControllerTest, GrowsDtBackAfterEasySteps) {
  LandauOperator op = make_small_op();
  ImplicitIntegrator integrator(op);
  StepControllerOptions copts;
  copts.dt_initial = 0.25;
  copts.dt_max = 1.0;
  copts.growth = 2.0;
  copts.easy_streak = 2;
  copts.easy_newton_threshold = 100; // quasi-Newton takes tens of iterations
  StepController controller(integrator, copts);
  la::Vec f = op.maxwellian_state();

  controller.advance(f);
  controller.advance(f); // streak of 2 -> dt 0.5
  EXPECT_DOUBLE_EQ(controller.dt(), 0.5);
  controller.advance(f);
  controller.advance(f); // streak of 2 -> dt 1.0
  EXPECT_DOUBLE_EQ(controller.dt(), 1.0);
  controller.advance(f);
  controller.advance(f); // capped at dt_max
  EXPECT_DOUBLE_EQ(controller.dt(), 1.0);
}

TEST_F(StepControllerTest, RecoversFromNanInRhs) {
  LandauOperator op = make_small_op();
  ImplicitIntegrator integrator(op);
  StepControllerOptions copts;
  copts.dt_initial = 0.25;
  copts.growth = 1.0;
  StepController controller(integrator, copts);
  la::Vec f = op.maxwellian_state();

  FaultInjector::instance().configure("nan@rhs@step=1");
  controller.advance(f);
  const auto adv = controller.advance(f);
  EXPECT_GE(adv.rejections, 1);
  EXPECT_TRUE(adv.step.converged);
  EXPECT_TRUE(f.all_finite());
}

TEST_F(StepControllerTest, RecoversFromNanInState) {
  LandauOperator op = make_small_op();
  ImplicitIntegrator integrator(op);
  StepControllerOptions copts;
  copts.dt_initial = 0.25;
  copts.growth = 1.0;
  StepController controller(integrator, copts);
  la::Vec f = op.maxwellian_state();

  FaultInjector::instance().configure("nan@state@step=1");
  controller.advance(f);
  const auto adv = controller.advance(f);
  EXPECT_GE(adv.rejections, 1);
  EXPECT_TRUE(adv.step.converged);
  EXPECT_TRUE(f.all_finite());
}

TEST_F(StepControllerTest, RecoversFromSolverThrow) {
  LandauOperator op = make_small_op();
  ImplicitIntegrator integrator(op);
  StepControllerOptions copts;
  copts.dt_initial = 0.25;
  copts.growth = 1.0;
  StepController controller(integrator, copts);
  la::Vec f = op.maxwellian_state();

  FaultInjector::instance().configure("throw@factor@step=0,throw@solve@step=2");
  const auto a0 = controller.advance(f); // factor throw, retried
  EXPECT_EQ(a0.rejections, 1);
  EXPECT_TRUE(a0.step.converged);
  const auto a1 = controller.advance(f); // solve throw, retried
  EXPECT_EQ(a1.rejections, 1);
  EXPECT_TRUE(a1.step.converged);
  EXPECT_EQ(FaultInjector::instance().fired_count(), 2);
  EXPECT_TRUE(f.all_finite());
}

TEST_F(StepControllerTest, StagnationIsRejectedThenRetried) {
  LandauOperator op = make_small_op();
  ImplicitIntegrator integrator(op);
  StepControllerOptions copts;
  copts.dt_initial = 0.25;
  copts.growth = 1.0;
  StepController controller(integrator, copts);
  la::Vec f = op.maxwellian_state();

  FaultInjector::instance().configure("stagnate@newton@step=0");
  const auto adv = controller.advance(f);
  EXPECT_EQ(adv.rejections, 1);
  EXPECT_TRUE(adv.step.converged);
  EXPECT_FALSE(adv.accepted_stagnated);
}

TEST_F(StepControllerTest, PersistentStagnationAcceptedOnExhaust) {
  LandauOperator op = make_small_op();
  ImplicitIntegrator integrator(op);
  StepControllerOptions copts;
  copts.dt_initial = 0.25;
  copts.growth = 1.0;
  copts.max_retries = 2;
  StepController controller(integrator, copts);
  la::Vec f = op.maxwellian_state();

  // Every attempt of this advance stagnates; the exhaustion escape hatch must
  // accept the final stagnated step instead of killing the run.
  FaultInjector::instance().configure(
      "stagnate@newton@step=0,stagnate@newton@step=1,stagnate@newton@step=2");
  const auto adv = controller.advance(f);
  EXPECT_EQ(adv.rejections, 2);
  EXPECT_TRUE(adv.accepted_stagnated);
  EXPECT_TRUE(adv.step.stagnated);
  EXPECT_FALSE(adv.step.converged);
}

TEST_F(StepControllerTest, RetryExhaustionThrowsAndRollsBack) {
  LandauOperator op = make_small_op();
  ImplicitIntegrator integrator(op);
  StepControllerOptions copts;
  copts.dt_initial = 0.25;
  copts.growth = 1.0;
  copts.max_retries = 2;
  StepController controller(integrator, copts);
  la::Vec f = op.maxwellian_state();
  const la::Vec f0 = f;

  FaultInjector::instance().configure(
      "throw@factor@step=0,throw@factor@step=1,throw@factor@step=2");
  EXPECT_THROW(controller.advance(f), landau::Error);
  // The state must be left at the pre-step snapshot, bit-identical.
  ASSERT_EQ(f.size(), f0.size());
  for (std::size_t i = 0; i < f.size(); ++i) ASSERT_EQ(f[i], f0[i]);
  EXPECT_EQ(controller.total_accepted(), 0);
  EXPECT_EQ(controller.total_rejected(), 3);
}

TEST_F(StepControllerTest, DtFloorBoundsBackoff) {
  LandauOperator op = make_small_op();
  ImplicitIntegrator integrator(op);
  StepControllerOptions copts;
  copts.dt_initial = 0.25;
  copts.dt_min = 0.2;
  copts.growth = 1.0;
  StepController controller(integrator, copts);
  la::Vec f = op.maxwellian_state();

  FaultInjector::instance().configure("newton_diverge@step=0");
  const auto adv = controller.advance(f);
  EXPECT_EQ(adv.rejections, 1);
  EXPECT_DOUBLE_EQ(adv.dt, 0.2); // clamped at dt_min, not 0.125
}

TEST_F(StepControllerTest, TransientFaultWithUnitBackoffIsBitIdenticalToCleanRun) {
  // A throw during factorization leaves the state untouched, so with
  // backoff = 1 (retry at the same dt) the recovered trajectory must be
  // bit-identical to a clean run — the "recovers where physics permits"
  // acceptance criterion.
  StepControllerOptions copts;
  copts.dt_initial = 0.25;
  copts.growth = 1.0;
  copts.backoff = 1.0;

  la::Vec f_clean;
  {
    LandauOperator op = make_small_op();
    ImplicitIntegrator integrator(op);
    StepController controller(integrator, copts);
    f_clean = op.maxwellian_state();
    for (int s = 0; s < 4; ++s) controller.advance(f_clean);
  }
  la::Vec f_fault;
  {
    LandauOperator op = make_small_op();
    ImplicitIntegrator integrator(op);
    StepController controller(integrator, copts);
    f_fault = op.maxwellian_state();
    FaultInjector::instance().configure("throw@factor@step=2,stagnate@newton@step=4");
    long rejected = 0;
    for (int s = 0; s < 4; ++s) rejected += controller.advance(f_fault).rejections;
    EXPECT_EQ(rejected, 2);
  }
  ASSERT_EQ(f_clean.size(), f_fault.size());
  for (std::size_t i = 0; i < f_clean.size(); ++i) ASSERT_EQ(f_clean[i], f_fault[i]);
}

TEST_F(StepControllerTest, ParanoidModeCleanRunUnaffected) {
  LandauOperator op = make_small_op();
  ImplicitIntegrator integrator(op);
  StepControllerOptions copts;
  copts.dt_initial = 0.25;
  StepController controller(integrator, copts);
  la::Vec f = op.maxwellian_state();
  robustness().paranoid = true;
  const auto adv = controller.advance(f);
  EXPECT_TRUE(adv.step.converged);
  EXPECT_EQ(adv.rejections, 0);
}

TEST_F(StepControllerTest, PersistedStateRoundTrips) {
  LandauOperator op = make_small_op();
  ImplicitIntegrator integrator(op);
  StepControllerOptions copts;
  copts.dt_initial = 0.5;
  copts.dt_max = 2.0;
  copts.growth = 2.0;
  copts.easy_streak = 3;
  StepController a(integrator, copts);
  la::Vec f = op.maxwellian_state();
  a.advance(f);
  a.advance(f); // easy_count mid-streak: 2 of 3

  StepController b(integrator, copts);
  b.restore_state(a.save_state());
  EXPECT_DOUBLE_EQ(b.dt(), a.dt());
  EXPECT_EQ(b.total_accepted(), a.total_accepted());
  EXPECT_EQ(b.total_rejected(), a.total_rejected());
  const auto sa = a.save_state();
  const auto sb = b.save_state();
  EXPECT_EQ(sa.easy_count, sb.easy_count);
}

TEST_F(CheckpointFile, ScalarAndVectorRoundTrip) {
  const std::string path = testing::TempDir() + "ckpt_roundtrip.bin";
  util::CheckpointWriter w;
  w.put_f64(3.14159);
  w.put_i64(-42);
  la::Vec v(5);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = 0.1 * static_cast<double>(i) - 0.7;
  w.put_vec(v.span());
  w.save(path);

  util::CheckpointReader r(path);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.14159);
  EXPECT_EQ(r.get_i64(), -42);
  const la::Vec u = r.get_vec();
  ASSERT_EQ(u.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(u[i], v[i]);
  EXPECT_TRUE(r.exhausted());
  std::remove(path.c_str());
}

TEST_F(CheckpointFile, TypeTagMismatchThrows) {
  const std::string path = testing::TempDir() + "ckpt_tag.bin";
  util::CheckpointWriter w;
  w.put_i64(7);
  w.save(path);
  util::CheckpointReader r(path);
  EXPECT_THROW(r.get_f64(), landau::Error);
  std::remove(path.c_str());
}

TEST_F(CheckpointFile, CorruptionIsDetected) {
  const std::string path = testing::TempDir() + "ckpt_corrupt.bin";
  util::CheckpointWriter w;
  w.put_f64(1.0);
  w.put_f64(2.0);
  w.save(path);

  // Flip one payload byte: the checksum must catch it.
  {
    std::fstream fs(path, std::ios::in | std::ios::out | std::ios::binary);
    fs.seekp(-2, std::ios::end);
    char c;
    fs.seekg(-2, std::ios::end);
    fs.get(c);
    fs.seekp(-2, std::ios::end);
    fs.put(static_cast<char>(c ^ 0x5a));
  }
  EXPECT_THROW(util::CheckpointReader r(path), landau::Error);
  std::remove(path.c_str());
}

TEST_F(CheckpointFile, TruncationIsDetected) {
  const std::string path = testing::TempDir() + "ckpt_trunc.bin";
  util::CheckpointWriter w;
  la::Vec v(64, 1.25);
  w.put_vec(v.span());
  w.save(path);
  std::filesystem::resize_file(path, 40);
  EXPECT_THROW(util::CheckpointReader r(path), landau::Error);
  std::remove(path.c_str());
}

TEST_F(CheckpointFile, MissingFileThrowsAndExistsReports) {
  const std::string path = testing::TempDir() + "ckpt_missing.bin";
  std::remove(path.c_str());
  EXPECT_FALSE(util::checkpoint_exists(path));
  EXPECT_THROW(util::CheckpointReader r(path), landau::Error);
}

TEST_F(QuenchRecovery, FaultDrillsCompleteWithSameSwitchoverPhysics) {
  // A quench run with a transient solver throw and an injected stagnation
  // must complete with the same switchover physics as the clean run —
  // bit-identical here because throws/stagnation leave the state untouched
  // and backoff = 1 retries at the same dt.
  LandauOperator op_clean = make_quench_op();
  auto qopts = quench_opts();
  qopts.max_steps = 12;
  qopts.controller.backoff = 1.0;
  quench::QuenchModel clean(op_clean, qopts);
  const auto r_clean = clean.run();

  LandauOperator op_fault = make_quench_op();
  quench::QuenchModel faulted(op_fault, qopts);
  FaultInjector::instance().configure("throw@factor@step=3,stagnate@newton@step=7");
  const auto r_fault = faulted.run();

  EXPECT_EQ(FaultInjector::instance().fired_count(), 2);
  EXPECT_EQ(r_fault.total_rejections, 2);
  EXPECT_EQ(r_fault.switchover_step, r_clean.switchover_step);
  EXPECT_TRUE(same_history(r_clean, r_fault, 0.0)) << "recovered run diverged from clean run";
}

TEST_F(QuenchRecovery, NanFaultMidQuenchStillCompletes) {
  // A NaN injected into the state mid-transient forces a genuine dt backoff;
  // the trajectory differs from the clean run but the scenario must still
  // complete every step with finite diagnostics.
  LandauOperator op = make_quench_op();
  auto qopts = quench_opts();
  qopts.max_steps = 12;
  quench::QuenchModel model(op, qopts);
  FaultInjector::instance().configure("nan@state@step=6");
  const auto result = model.run();

  EXPECT_EQ(FaultInjector::instance().fired_count(), 1);
  EXPECT_GE(result.total_rejections, 1);
  EXPECT_EQ(result.history.size(), static_cast<std::size_t>(qopts.max_steps) + 1);
  for (const auto& s : result.history) {
    EXPECT_TRUE(std::isfinite(s.n_e) && std::isfinite(s.j_z) && std::isfinite(s.e_z) &&
                std::isfinite(s.t_e));
  }
  EXPECT_TRUE(model.state().all_finite());
}

TEST_F(QuenchRecovery, ResumeAfterKillMatchesUninterruptedRun) {
  const std::string path = testing::TempDir() + "quench_resume.ckpt";
  std::remove(path.c_str());

  // Uninterrupted reference run (no checkpointing so the file stays free for
  // the killed run).
  auto qopts = quench_opts();
  LandauOperator op_ref = make_quench_op();
  quench::QuenchModel ref(op_ref, qopts);
  const auto r_ref = ref.run();
  ASSERT_GE(r_ref.switchover_step, 0) << "scenario must reach the quench phase";

  // "Killed" run: checkpoints every 5 accepted steps, stops at step 16 — the
  // last checkpoint (step 15) is mid-quench, after the switchover.
  auto qkill = qopts;
  qkill.checkpoint_path = path;
  qkill.checkpoint_interval = 5;
  qkill.max_steps = 16;
  LandauOperator op_kill = make_quench_op();
  quench::QuenchModel killed(op_kill, qkill);
  const auto r_kill = killed.run();
  ASSERT_TRUE(util::checkpoint_exists(path));
  ASSERT_GE(r_kill.switchover_step, 0);
  ASSERT_LT(r_kill.switchover_step, 15) << "checkpoint must land after the switchover";

  // Resumed run: same options as the reference, continues from step 16.
  auto qres = qopts;
  qres.checkpoint_path = path;
  qres.checkpoint_interval = 5;
  qres.resume = true;
  LandauOperator op_res = make_quench_op();
  quench::QuenchModel resumed(op_res, qres);
  const auto r_res = resumed.run();

  EXPECT_TRUE(r_res.resumed);
  EXPECT_EQ(r_res.switchover_step, r_ref.switchover_step);
  EXPECT_NEAR(r_res.mass_injected, r_ref.mass_injected, 1e-12);
  ASSERT_EQ(r_res.history.size(), r_ref.history.size());
  EXPECT_TRUE(same_history(r_ref, r_res, 1e-12))
      << "resumed history must match the uninterrupted run within 1e-12";
  std::remove(path.c_str());
}
