#include <gtest/gtest.h>

#include <cmath>

#include "fem/quadrature.h"

using namespace landau::fem;

class GaussSweep : public ::testing::TestWithParam<int> {};

TEST_P(GaussSweep, WeightsSumToTwo) {
  const auto q = gauss_legendre(GetParam());
  double s = 0;
  for (double w : q.weights) s += w;
  EXPECT_NEAR(s, 2.0, 1e-14);
}

TEST_P(GaussSweep, ExactForPolynomialsUpToDegree2nMinus1) {
  const int n = GetParam();
  const auto q = gauss_legendre(n);
  for (int deg = 0; deg <= 2 * n - 1; ++deg) {
    double integral = 0;
    for (int i = 0; i < n; ++i)
      integral += q.weights[static_cast<std::size_t>(i)] *
                  std::pow(q.points[static_cast<std::size_t>(i)], deg);
    const double exact = (deg % 2 == 0) ? 2.0 / (deg + 1) : 0.0;
    EXPECT_NEAR(integral, exact, 1e-13) << "n=" << n << " deg=" << deg;
  }
}

TEST_P(GaussSweep, PointsSortedAndInterior) {
  const auto q = gauss_legendre(GetParam());
  for (std::size_t i = 0; i < q.points.size(); ++i) {
    EXPECT_GT(q.points[i], -1.0);
    EXPECT_LT(q.points[i], 1.0);
    if (i > 0) {
      EXPECT_GT(q.points[i], q.points[i - 1]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussSweep, ::testing::Values(1, 2, 3, 4, 5, 8, 12, 16));

TEST(TensorQuadrature, IntegratesSeparableExactly) {
  const auto q = tensor_quadrature(4);
  ASSERT_EQ(q.nq(), 16);
  // \int x^3 y^5 over the reference square = 0; \int x^2 y^4 = (2/3)(2/5).
  double i35 = 0, i24 = 0, area = 0;
  for (int k = 0; k < q.nq(); ++k) {
    const std::size_t i = static_cast<std::size_t>(k);
    i35 += q.w[i] * std::pow(q.x[i], 3) * std::pow(q.y[i], 5);
    i24 += q.w[i] * q.x[i] * q.x[i] * std::pow(q.y[i], 4);
    area += q.w[i];
  }
  EXPECT_NEAR(i35, 0.0, 1e-14);
  EXPECT_NEAR(i24, (2.0 / 3.0) * (2.0 / 5.0), 1e-14);
  EXPECT_NEAR(area, 4.0, 1e-13);
}

TEST(TensorQuadrature, Q3ElementHas16Points) {
  // The paper's Q3 elements use Nq = 16 integration points.
  EXPECT_EQ(tensor_quadrature(4).nq(), 16);
}
