// Seeded violations: atomics.
// Buffers registered through LANDAU_CROSS_BLOCK are written concurrently by
// multiple blocks (paper §III-F); every store must take an atomic-add path.
#include <span>

#include "exec/annotations.h"
#include "exec/check.h"
#include "exec/cuda_sim.h"

namespace exec = landau::exec;
namespace check = landau::exec::check;

void bad_atomics(exec::ThreadPool& pool, std::span<double> values) {
  check::KernelScope chk("corpus:atomics");
  auto ref_out = LANDAU_CROSS_BLOCK(chk.out(values, "coo.values"));
  exec::launch(
      pool, 4, {16, 1, 1},
      LANDAU_KERNEL [&](exec::Block& blk) {
        auto out = blk.view(ref_out);
        blk.threads([&](exec::ThreadIdx t) {
          const std::size_t i = static_cast<std::size_t>(t.flat);
          out[i] = 1.0;  // VIOLATION: raw store into a cross-block buffer
          out[i] += 2.0; // VIOLATION: read-modify-write without atomicity
        });
      },
      nullptr, &chk, "corpus:atomics");
  chk.finish();
}
