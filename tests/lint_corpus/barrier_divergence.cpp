// Seeded violations: barrier-divergence.
// A barrier reached by only part of a block deadlocks on hardware; the
// emulator, which runs phases sequentially on one worker, never notices.
#include "exec/annotations.h"
#include "exec/cuda_sim.h"

namespace exec = landau::exec;

void bad_barriers(exec::ThreadPool& pool) {
  exec::launch(
      pool, 4, {32, 4, 1},
      LANDAU_KERNEL [&](exec::Block& blk) {
        auto regs = blk.registers<double>("acc");
        blk.threads([&](exec::ThreadIdx t) {
          regs[static_cast<std::size_t>(t.flat)] = 1.0;
          blk.sync(); // VIOLATION: __syncthreads() inside a per-thread phase
        });
        int lane = 0;
        blk.threads([&](exec::ThreadIdx t) { lane = t.x; });
        if (lane > 0) {
          blk.sync(); // VIOLATION: barrier under a thread-dependent branch
        }
        blk.sync(); // ok: block-uniform top-level barrier
      },
      nullptr, nullptr, "corpus:barriers");
}
