// No seeded violations: exercises every construct the analyzer reasons
// about in its sanctioned form. Pins the zero-false-positive behavior — a
// finding on this file is an analyzer regression.
#include <cmath>
#include <span>

#include "exec/annotations.h"
#include "exec/check.h"
#include "exec/cuda_sim.h"
#include "la/csr.h"

namespace exec = landau::exec;
namespace check = landau::exec::check;

constexpr int kTile = 8;

LANDAU_DEVICE inline double scaled(double v, double s) { return v * s; }

void clean_kernel(exec::ThreadPool& pool, std::span<double> values, landau::la::CsrMatrix& j,
                  double exponent) {
  check::KernelScope chk("corpus:clean");
  auto ref_out = LANDAU_CROSS_BLOCK(chk.out(values, "csr.values"));
  const exec::Dim3 block{32, 2, 1}; // power-of-two lanes for the butterfly
  exec::launch(
      pool, 4, block,
      LANDAU_KERNEL [&](exec::Block& blk) {
        auto out = blk.view(ref_out);
        auto tile = blk.shared<double>(kTile, "tile");
        auto regs = blk.registers<double>("acc");
        blk.threads([&](exec::ThreadIdx t) {
          for (int i = t.x; i < kTile; i += blk.block_dim().x)
            tile[i] = scaled(1.0, 2.0); // bounded: i < kTile == extent
          regs[static_cast<std::size_t>(t.flat)] = tile[kTile - 1];
        });
        blk.sync(); // block-uniform barrier at phase boundary
        blk.shfl_xor_sum_x(regs);
        const double v = std::pow(regs[0], exponent); // runtime exponent: fine
        if (landau::fp::exact_eq(v, 0.0)) return;     // sanctioned exact compare
        blk.threads([&](exec::ThreadIdx t) {
          // Cross-block output written only through the atomic path (§III-F).
          if (t.flat == 0) j.add_atomic(0, 0, v);
        });
        (void)out;
      },
      nullptr, &chk, "corpus:clean");
  chk.finish();
}
