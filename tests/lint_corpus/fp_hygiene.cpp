// Seeded violations: fp-hygiene.
// Raw ==/!= on doubles (usually a missing tolerance) and std::pow with an
// integer constant exponent (an expensive transcendental for a multiply)
// in device code.
#include <cmath>

#include "exec/annotations.h"

LANDAU_DEVICE double bad_fp(double x, double y) {
  double a = x, b = y;
  if (a == 0.0) return 0.0; // VIOLATION: raw equality against a literal
  if (a != b) a = b;        // VIOLATION: raw inequality on doubles
  double s = std::pow(a, 2);  // VIOLATION: integer exponent
  s += std::pow(b, -3);       // VIOLATION: integer exponent (negative)
  s += std::pow(a, 1.5);      // ok: genuinely fractional exponent
  if (landau::fp::exact_eq(s, 0.0)) return 1.0; // ok: sanctioned bitwise compare
  return s;
}
