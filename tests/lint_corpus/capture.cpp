// Seeded violations: capture.
// Device regions must not touch LANDAU_HOST_ONLY names and must not declare
// host containers — per-block host allocations that nvcc would reject.
#include <vector>

#include "exec/annotations.h"
#include "exec/cuda_sim.h"

namespace exec = landau::exec;

/// Stand-in for the tree's host-side services (ThreadPool, Tracer, ...).
class LANDAU_HOST_ONLY FileLogger {
public:
  void log(double v);
};

void bad_capture(exec::ThreadPool& pool, FileLogger& logger) {
  exec::launch(
      pool, 2, {16, 1, 1},
      LANDAU_KERNEL [&](exec::Block& blk) {
        std::vector<double> scratch(16); // VIOLATION: host container in kernel
        scratch[0] = static_cast<double>(blk.block_idx());
        FileLogger local; // VIOLATION: host-only name referenced in kernel
        local.log(scratch[0]);
      },
      nullptr, nullptr, "corpus:capture");
  logger.log(0.0); // ok: host code may use host-only services freely
}
