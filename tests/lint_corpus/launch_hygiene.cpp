// Seeded violations: launch-hygiene.
// Launch sites must carry the LANDAU_KERNEL marker and a span-name string;
// allocations must be named; literal Dim3 x-extents must be powers of two
// when a kernel in the file uses the warp-shuffle butterfly.
#include "exec/annotations.h"
#include "exec/cuda_sim.h"

namespace exec = landau::exec;

void unnamed_allocs(exec::ThreadPool& pool) {
  const exec::Dim3 block{48, 1, 1}; // VIOLATION: 48 lanes can't run the butterfly
  exec::launch( // VIOLATION: no span-name string argument anywhere below
      pool, 8, block,
      LANDAU_KERNEL [&](exec::Block& blk) {
        auto regs = blk.registers<double>();    // VIOLATION: unnamed registers
        auto tile = blk.shared<double>(32);     // VIOLATION: unnamed shared
        blk.threads([&](exec::ThreadIdx t) {
          regs[static_cast<std::size_t>(t.flat)] = tile[0];
        });
        blk.shfl_xor_sum_x(regs);
      },
      nullptr, nullptr);
}

void unannotated(exec::ThreadPool& pool) {
  // The unmarked lambda means none of the device-region checks see its body.
  exec::launch( // VIOLATION: kernel lambda lacks the LANDAU_KERNEL marker
      pool, 8, {32, 1, 1}, [&](exec::Block& blk) { (void)blk; },
      nullptr, nullptr, "corpus:unannotated");
}
