// Seeded violations: shared-bounds.
// Provable out-of-bounds affine indexing of a constant-extent shared tile.
// The analyzer only flags indices it can bound exactly, so everything here
// is integer-literal / constexpr arithmetic.
#include "exec/annotations.h"
#include "exec/cuda_sim.h"

namespace exec = landau::exec;

constexpr int kTile = 16;

void bad_bounds(exec::ThreadPool& pool) {
  exec::launch(
      pool, 2, {16, 1, 1},
      LANDAU_KERNEL [&](exec::Block& blk) {
        auto tile = blk.shared<double>(kTile, "tile");
        blk.threads([&](exec::ThreadIdx t) {
          (void)t;
          for (int i = 0; i <= kTile; ++i)
            tile[i] = 0.0; // VIOLATION: i reaches kTile, one past the end
        });
        blk.sync();
        tile[kTile + 1] = 1.0; // VIOLATION: provably past the end
        tile[kTile - 1] = 1.0; // ok: last valid slot
      },
      nullptr, nullptr, "corpus:bounds");
}
