#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "exec/cuda_sim.h"

using namespace landau::exec;

TEST(CudaSim, LaunchCoversGridAndThreads) {
  ThreadPool pool(2);
  const int grid = 7;
  const Dim3 block{4, 4, 1};
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(grid * block.size()));
  launch(pool, grid, block, [&](Block& blk) {
    blk.threads([&](ThreadIdx t) {
      hits[static_cast<std::size_t>(blk.block_idx() * blk.num_threads() + t.flat)].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(CudaSim, SharedMemoryVisibleAcrossPhases) {
  ThreadPool pool(1);
  std::vector<double> out(4, 0.0);
  launch(pool, 4, Dim3{8, 1, 1}, [&](Block& blk) {
    auto shared = blk.shared<double>(8);
    blk.threads([&](ThreadIdx t) { shared[static_cast<std::size_t>(t.x)] = t.x + 1.0; });
    blk.sync();
    blk.threads([&](ThreadIdx t) {
      if (t.x == 0) {
        double s = 0;
        for (double v : shared) s += v;
        out[static_cast<std::size_t>(blk.block_idx())] = s;
      }
    });
  });
  for (double v : out) EXPECT_DOUBLE_EQ(v, 36.0);
}

TEST(CudaSim, RegisterFilePersistsAcrossPhases) {
  ThreadPool pool(0);
  double result = 0.0;
  launch(pool, 1, Dim3{4, 2, 1}, [&](Block& blk) {
    auto regs = blk.registers<double>();
    blk.threads([&](ThreadIdx t) { regs[static_cast<std::size_t>(t.flat)] = t.x * 10.0 + t.y; });
    blk.sync();
    blk.threads([&](ThreadIdx t) {
      if (t.flat == 0)
        for (auto r : regs) result += r;
    });
  });
  // sum over x of (10x + y) for x in 0..3, y in 0..1 = (0+10+20+30)*2 + 4*1
  EXPECT_DOUBLE_EQ(result, 124.0);
}

TEST(CudaSim, ShuffleXorSumReducesEachRow) {
  ThreadPool pool(0);
  std::vector<double> row_sums(4, 0.0);
  launch(pool, 1, Dim3{8, 4, 1}, [&](Block& blk) {
    auto regs = blk.registers<double>();
    blk.threads([&](ThreadIdx t) { regs[static_cast<std::size_t>(t.flat)] = t.x + 100.0 * t.y; });
    blk.shfl_xor_sum_x(regs);
    blk.threads([&](ThreadIdx t) {
      if (t.x == 0) row_sums[static_cast<std::size_t>(t.y)] = regs[static_cast<std::size_t>(t.flat)];
    });
  });
  // Each row sums x=0..7 plus 8*100*y.
  for (int y = 0; y < 4; ++y) EXPECT_DOUBLE_EQ(row_sums[static_cast<std::size_t>(y)], 28.0 + 800.0 * y);
}

TEST(CudaSim, ShuffleGivesSameResultToEveryLane) {
  // On hardware every lane ends with the same reduced value; the emulation
  // must preserve that (the Landau kernel reads it from all threads).
  ThreadPool pool(0);
  bool all_equal = true;
  launch(pool, 1, Dim3{16, 1, 1}, [&](Block& blk) {
    auto regs = blk.registers<double>();
    blk.threads([&](ThreadIdx t) { regs[static_cast<std::size_t>(t.flat)] = t.x * t.x; });
    blk.shfl_xor_sum_x(regs);
    blk.threads([&](ThreadIdx t) {
      if (regs[static_cast<std::size_t>(t.flat)] != regs[0]) all_equal = false;
    });
  });
  EXPECT_TRUE(all_equal);
}

TEST(CudaSim, ShuffleRequiresPowerOfTwoWidth) {
  ThreadPool pool(0);
  EXPECT_THROW(
      launch(pool, 1, Dim3{6, 1, 1},
             [&](Block& blk) {
               auto regs = blk.registers<double>();
               blk.shfl_xor_sum_x(regs);
             }),
      landau::Error);
}

TEST(CudaSim, ShuffleReducesStructTypes) {
  struct Pair {
    double a = 0, b = 0;
    Pair& operator+=(const Pair& o) {
      a += o.a;
      b += o.b;
      return *this;
    }
  };
  ThreadPool pool(0);
  Pair total;
  launch(pool, 1, Dim3{4, 1, 1}, [&](Block& blk) {
    auto regs = blk.registers<Pair>();
    blk.threads([&](ThreadIdx t) {
      regs[static_cast<std::size_t>(t.flat)] = Pair{static_cast<double>(t.x), 2.0 * t.x};
    });
    blk.shfl_xor_sum_x(regs);
    blk.threads([&](ThreadIdx t) {
      if (t.flat == 0) total = regs[0];
    });
  });
  EXPECT_DOUBLE_EQ(total.a, 6.0);
  EXPECT_DOUBLE_EQ(total.b, 12.0);
}

TEST(CudaSim, ArenaAlignsOveralignedTypes) {
  // The vector chunks backing the arena are only aligned to max_align_t, so
  // alignas(64) tile types must be aligned from the chunk's actual base
  // address, not the bump offset alone.
  struct alignas(64) Tile {
    double v[8];
  };
  Arena arena(256); // small chunks force frequent new-chunk paths
  for (int i = 0; i < 16; ++i) {
    auto d = arena.alloc<double>(3); // mis-align the bump offset
    auto t = arena.alloc<Tile>(2);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.data()) % alignof(Tile), 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double), 0u);
    t[0].v[0] = static_cast<double>(i);
    EXPECT_DOUBLE_EQ(t[0].v[0], static_cast<double>(i));
  }
  // An allocation larger than the chunk size gets its own aligned chunk.
  auto big = arena.alloc<Tile>(8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big.data()) % alignof(Tile), 0u);
}

TEST(CudaSim, CountersAccumulateAcrossBlocks) {
  ThreadPool pool(2);
  KernelCounters counters;
  launch(
      pool, 10, Dim3{2, 2, 1},
      [&](Block& blk) {
        CounterScope scope(blk.counters());
        scope.flops(100);
        scope.dram(8);
      },
      &counters);
  EXPECT_EQ(counters.flops.load(), 1000);
  EXPECT_EQ(counters.dram_bytes.load(), 80);
  EXPECT_NEAR(counters.arithmetic_intensity(), 12.5, 1e-12);
}
