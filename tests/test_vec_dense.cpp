#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "la/dense.h"
#include "la/vec.h"

using landau::la::DenseLU;
using landau::la::DenseMatrix;
using landau::la::Vec;

TEST(Vec, Blas1Operations) {
  Vec x(4), y(4);
  for (std::size_t i = 0; i < 4; ++i) {
    x[i] = static_cast<double>(i + 1);
    y[i] = 1.0;
  }
  y.axpy(2.0, x); // y = 1 + 2x
  EXPECT_DOUBLE_EQ(y[3], 9.0);
  EXPECT_DOUBLE_EQ(x.dot(x), 1 + 4 + 9 + 16);
  EXPECT_DOUBLE_EQ(x.norm_inf(), 4.0);
  EXPECT_DOUBLE_EQ(x.sum(), 10.0);
  y.axpby(1.0, x, -1.0); // y = x - y
  EXPECT_DOUBLE_EQ(y[0], 1.0 - 3.0);
}

TEST(Vec, SizeMismatchThrows) {
  Vec x(3), y(4);
  EXPECT_THROW(y.axpy(1.0, x), landau::Error);
  EXPECT_THROW(y.dot(x), landau::Error);
}

TEST(Vec, AllFiniteDetectsEachNonFiniteKind) {
  Vec x(7, 1.0);
  EXPECT_TRUE(x.all_finite());
  x[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(x.all_finite());
  x[3] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(x.all_finite());
  x[3] = -std::numeric_limits<double>::infinity();
  EXPECT_FALSE(x.all_finite());
  x[3] = -std::numeric_limits<double>::max(); // huge but finite
  EXPECT_TRUE(x.all_finite());
}

TEST(Vec, AllFiniteEmptyAndSingleElement) {
  Vec empty(0);
  EXPECT_TRUE(empty.all_finite());
  Vec one(1, std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(one.all_finite());
}

TEST(Vec, AllFiniteLargeVectorAnyPosition) {
  // Larger than the scan's internal chunk, with the poison at the very start,
  // mid-chunk, and the final element (the positions a chunked scan can miss).
  const std::size_t n = 10000;
  for (std::size_t pos : {std::size_t{0}, std::size_t{4097}, n - 1}) {
    Vec x(n, 0.5);
    EXPECT_TRUE(x.all_finite());
    x[pos] = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(x.all_finite()) << "NaN at " << pos << " missed";
  }
}

TEST(Dense, MatVec) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 2) = 2;
  a(1, 1) = -1;
  Vec x(3);
  x[0] = 1;
  x[1] = 2;
  x[2] = 3;
  Vec y(2);
  a.mult(x, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  Vec yt(3);
  a.mult_transpose(y, yt);
  EXPECT_DOUBLE_EQ(yt[0], 7.0);
  EXPECT_DOUBLE_EQ(yt[1], 2.0);
  EXPECT_DOUBLE_EQ(yt[2], 14.0);
}

class DenseLUSweep : public ::testing::TestWithParam<int> {};

TEST_P(DenseLUSweep, SolvesRandomSystemsToMachinePrecision) {
  const int n = GetParam();
  std::mt19937 rng(42 + static_cast<unsigned>(n));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  DenseMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) a(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = dist(rng);
  // Diagonal boost for conditioning.
  for (int i = 0; i < n; ++i) a(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += n;
  Vec xref(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) xref[static_cast<std::size_t>(i)] = dist(rng);
  Vec b(static_cast<std::size_t>(n));
  a.mult(xref, b);

  DenseLU lu(a);
  Vec x(static_cast<std::size_t>(n));
  lu.solve(b, x);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], xref[static_cast<std::size_t>(i)], 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DenseLUSweep, ::testing::Values(1, 2, 5, 16, 33, 100));

TEST(DenseLU, PivotingHandlesZeroLeadingDiagonal) {
  DenseMatrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  DenseLU lu(a);
  Vec b(2), x(2);
  b[0] = 3;
  b[1] = 5;
  lu.solve(b, x);
  EXPECT_DOUBLE_EQ(x[0], 5.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-15);
}

TEST(DenseLU, SingularMatrixThrows) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(DenseLU lu(a), landau::Error);
}

TEST(DenseLU, SolveAliasingBAndX) {
  DenseMatrix a(3, 3);
  for (int i = 0; i < 3; ++i) a(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) = 2.0;
  a(0, 1) = 1.0;
  DenseLU lu(a);
  Vec b(3);
  b[0] = 4;
  b[1] = 2;
  b[2] = 2;
  lu.solve(b, b);
  EXPECT_NEAR(b[0], 1.5, 1e-14);
  EXPECT_NEAR(b[1], 1.0, 1e-14);
  EXPECT_NEAR(b[2], 1.0, 1e-14);
}
