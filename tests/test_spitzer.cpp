#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "quench/model.h"
#include "quench/spitzer.h"

using namespace landau;
using namespace landau::quench;

TEST(Spitzer, FOfZLimits) {
  // F(1) ~ 0.5129 (the classic Spitzer value), F -> 0.222/0.753 as Z -> inf.
  EXPECT_NEAR(spitzer_f(1.0), 0.51286, 1e-4);
  EXPECT_NEAR(spitzer_f(1e9), 0.222 / 0.753, 1e-4);
  EXPECT_GT(spitzer_f(1.0), spitzer_f(4.0)); // decreasing in Z
}

TEST(Spitzer, EtaScalesAsTMinus32) {
  const double e1 = spitzer_eta(1.0, 1.0);
  const double e2 = spitzer_eta(1.0, 4.0);
  EXPECT_NEAR(e2, e1 / 8.0, 1e-12);
}

TEST(Spitzer, EtaGrowsWithZ) {
  EXPECT_GT(spitzer_eta(4.0), spitzer_eta(1.0));
  EXPECT_GT(spitzer_eta(16.0), spitzer_eta(4.0));
}

TEST(Spitzer, CriticalFieldScales) {
  EXPECT_NEAR(critical_field(1000.0, 1.0) / critical_field(500.0, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(critical_field(1000.0, 2.0) / critical_field(1000.0, 1.0), 2.0, 1e-12);
}

TEST(Spitzer, DreicerFieldRelations) {
  // E_D / E_c = m_e c^2 / kT: enormous for thermal plasmas, which is why the
  // quench model needs the high-energy tail to seed runaways (§IV).
  const double te = 3000.0;
  EXPECT_NEAR(dreicer_field(te) / critical_field(te), 510998.95 / te, 1e-9 * (510998.95 / te));
  // Hotter local plasma lowers E_D (more electrons near the runaway region).
  EXPECT_LT(dreicer_field(te, 1.0, 2.0), dreicer_field(te, 1.0, 1.0));
  // Density raises both fields proportionally.
  EXPECT_NEAR(dreicer_field(te, 3.0) / dreicer_field(te, 1.0), 3.0, 1e-12);
}

TEST(SpitzerVerification, ComputedResistivityNearSpitzerZ1) {
  // The §IV-B verification on a reduced problem: an electron-ion plasma with
  // the ion mass lowered to 25 m_e so the mesh can resolve both species
  // quickly (Spitzer resistivity is ion-mass independent in the heavy-ion
  // limit up to O(sqrt(m_e/m_i)) corrections). The ion Maxwellian MUST be
  // resolved: an aliased ion distribution destroys the e-i friction and the
  // current runs away instead of equilibrating. The paper reports ~1%
  // agreement on a 176-cell production mesh; here we accept 10%.
  auto species = SpeciesSet::electron_deuterium();
  species[1].mass = 25.0;
  LandauOptions opts;
  opts.order = 3;
  opts.radius = 5.0;
  opts.base_levels = 1;
  opts.cells_per_thermal = 0.9;
  opts.max_levels = 5;
  opts.n_workers = 1;
  LandauOperator op(species, opts);
  // Sanity: the smallest cell resolves the ion thermal speed.
  double hmin = 1e30;
  for (const auto& lf : op.forest().leaves()) hmin = std::min(hmin, lf.box.dx());
  ASSERT_LE(hmin, species[1].thermal_speed() / 0.8);

  const double e_z = 5e-3; // small field: linear response regime
  NewtonOptions newton;
  newton.rtol = 1e-6;
  auto res = measure_resistivity(op, e_z, 1.0, 40, 2e-3, LinearSolverKind::BandLU, newton);
  ASSERT_NE(res.eta, 0.0);
  EXPECT_GT(res.j_z, 0.0); // electrons drift against E: positive current
  const double eta_sp = spitzer_eta(1.0);
  EXPECT_NEAR(res.eta / eta_sp, 1.0, 0.1)
      << "computed " << res.eta << " vs Spitzer " << eta_sp;
}
