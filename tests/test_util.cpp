#include <gtest/gtest.h>

#include <fstream>
#include <thread>

#include "util/profiler.h"
#include "util/table_writer.h"

using namespace landau;

TEST(Profiler, AccumulatesTimeAndCount) {
  auto& p = Profiler::instance();
  p.reset();
  const int id = p.event_id("test:event");
  for (int i = 0; i < 3; ++i) {
    ScopedEvent ev(id);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(p.count("test:event"), 3);
  EXPECT_GE(p.seconds("test:event"), 0.005);
  EXPECT_LT(p.seconds("test:event"), 1.0);
}

TEST(Profiler, NestedEventsBothAccumulate) {
  auto& p = Profiler::instance();
  p.reset();
  {
    ScopedEvent outer("test:outer");
    ScopedEvent inner("test:inner");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(p.count("test:outer"), 1);
  EXPECT_EQ(p.count("test:inner"), 1);
  EXPECT_GE(p.seconds("test:outer"), p.seconds("test:inner") * 0.9);
}

TEST(Profiler, UnknownEventReadsZero) {
  EXPECT_EQ(Profiler::instance().seconds("test:never-used"), 0.0);
  EXPECT_EQ(Profiler::instance().count("test:never-used"), 0);
}

TEST(Profiler, ResetZeroesAccumulators) {
  auto& p = Profiler::instance();
  {
    ScopedEvent ev("test:reset-me");
  }
  p.reset();
  EXPECT_EQ(p.count("test:reset-me"), 0);
}

TEST(Profiler, AddExternalTime) {
  auto& p = Profiler::instance();
  p.reset();
  p.add(p.event_id("test:external"), 1.5, 7);
  EXPECT_NEAR(p.seconds("test:external"), 1.5, 1e-6);
  EXPECT_EQ(p.count("test:external"), 7);
}

TEST(Profiler, ReportListsActiveEvents) {
  auto& p = Profiler::instance();
  p.reset();
  p.add(p.event_id("test:visible"), 0.25, 2);
  const auto report = p.report();
  EXPECT_NE(report.find("test:visible"), std::string::npos);
}

TEST(TableWriter, AlignsColumnsAndRendersCaption) {
  TableWriter t("my caption");
  t.header({"a", "long-column"});
  t.add_row().cell(1).cell("x");
  t.add_row().cell(12345).cell("yy");
  const auto s = t.str();
  EXPECT_NE(s.find("my caption"), std::string::npos);
  EXPECT_NE(s.find("long-column"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
}

TEST(TableWriter, RowWidthMismatchThrows) {
  TableWriter t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), landau::Error);
}

TEST(TableWriter, WritesCsv) {
  TableWriter t;
  t.header({"x", "y"});
  t.add_row().cell(1).cell(2.5, 1);
  const std::string path = "/tmp/landau_test_table.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x,y");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2.5");
}

TEST(TableWriter, NumericFormattingPrecision) {
  TableWriter t;
  t.add_row().cell(3.14159, 2);
  EXPECT_NE(t.str().find("3.14"), std::string::npos);
  EXPECT_EQ(t.str().find("3.142"), std::string::npos);
}
