// Back-end consistency and basic physics of the Landau Jacobian kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "core/operator.h"
#include "util/special_math.h"

using namespace landau;

namespace {

LandauOptions small_opts(Backend backend = Backend::Cpu) {
  LandauOptions o;
  o.order = 2; // keep kernel tests quick; Q3 covered in operator tests
  o.radius = 4.0;
  o.base_levels = 1;
  o.cells_per_thermal = 0.6;
  o.max_levels = 3;
  o.backend = backend;
  o.n_workers = 2;
  return o;
}

/// A clearly non-equilibrium two-bump state for one species.
double two_bump(double r, double z) {
  return maxwellian_rz(r, z, 0.6, 0.8, 1.0) + maxwellian_rz(r, z, 0.4, 0.5, -1.2);
}

} // namespace

TEST(Kernels, AllBackendsProduceTheSameJacobian) {
  auto species = SpeciesSet::electron_deuterium();
  // Reduce the mass ratio so the shared grid stays small for this test.
  species[1].mass = 25.0;
  LandauOperator op(species, small_opts());
  la::Vec f = op.maxwellian_state();
  op.pack(f);

  la::CsrMatrix j_cpu = op.new_matrix();
  la::CsrMatrix j_cuda = op.new_matrix();
  la::CsrMatrix j_kokkos = op.new_matrix();

  exec::ThreadPool pool(2);
  JacobianContext ctx;
  ctx.init(op.space(), op.species(), op.ip_data());
  assemble_landau_jacobian(Backend::Cpu, pool, ctx, j_cpu);
  assemble_landau_jacobian(Backend::CudaSim, pool, ctx, j_cuda);
  assemble_landau_jacobian(Backend::KokkosSim, pool, ctx, j_kokkos);

  double scale = 0.0;
  for (std::size_t k = 0; k < j_cpu.nnz(); ++k)
    scale = std::max(scale, std::abs(j_cpu.values()[k]));
  ASSERT_GT(scale, 0.0);
  for (std::size_t k = 0; k < j_cpu.nnz(); ++k) {
    EXPECT_NEAR(j_cuda.values()[k], j_cpu.values()[k], 1e-11 * scale);
    EXPECT_NEAR(j_kokkos.values()[k], j_cpu.values()[k], 1e-11 * scale);
  }
}

TEST(Kernels, JacobianIsBlockDiagonalAcrossSpecies) {
  auto species = SpeciesSet::electron_deuterium();
  species[1].mass = 25.0;
  LandauOperator op(species, small_opts());
  la::Vec f = op.maxwellian_state();
  op.pack(f);
  la::CsrMatrix j = op.new_matrix();
  op.add_collision(j);
  const std::size_t nf = op.n_dofs_per_species();
  auto rowptr = j.row_offsets();
  auto colind = j.col_indices();
  for (std::size_t i = 0; i < j.rows(); ++i)
    for (std::int32_t k = rowptr[i]; k < rowptr[i + 1]; ++k)
      EXPECT_EQ(i / nf, static_cast<std::size_t>(colind[k]) / nf)
          << "cross-species coupling at (" << i << "," << colind[k] << ")";
}

TEST(Kernels, MaxwellianIsNearEquilibrium) {
  // C(f_M) f_M must be small compared to C(g) g for a non-equilibrium g.
  SpeciesSet electron_only(
      {{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0}});
  auto opts = small_opts();
  opts.order = 3;
  opts.cells_per_thermal = 1.2;
  opts.max_levels = 3;
  LandauOperator op(electron_only, opts);

  la::Vec fm = op.maxwellian_state();
  op.pack(fm);
  la::CsrMatrix c = op.new_matrix();
  op.add_collision(c);
  la::Vec rm(op.n_total());
  c.mult(fm, rm);

  la::Vec g = op.project([](int, double r, double z) { return two_bump(r, z); });
  op.pack(g);
  c.zero_entries();
  op.add_collision(c);
  la::Vec rg(op.n_total());
  c.mult(g, rg);

  EXPECT_LT(rm.norm2(), 2e-2 * rg.norm2());
}

TEST(Kernels, CollisionAnnihilatesConstantsExactly) {
  // Column sums against the constant test function vanish: density moment of
  // C f is zero for any f (grad psi = 0 kills both terms).
  SpeciesSet electron_only(
      {{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0}});
  LandauOperator op(electron_only, small_opts());
  la::Vec g = op.project([](int, double r, double z) { return two_bump(r, z); });
  op.pack(g);
  la::CsrMatrix c = op.new_matrix();
  op.add_collision(c);
  la::Vec cf(op.n_total());
  c.mult(g, cf);
  // 1^T M^{-1}... the weak-form statement is sum_a psi_a(=1) . (C f)_a = 0
  // where the coefficient vector of psi=1 is all ones.
  double s = 0.0, amax = 0.0;
  for (std::size_t i = 0; i < cf.size(); ++i) {
    s += cf[i];
    amax = std::max(amax, std::abs(cf[i]));
  }
  EXPECT_NEAR(s, 0.0, 1e-10 * std::max(amax, 1e-30) * static_cast<double>(cf.size()));
}

TEST(Kernels, CountersReportComputeBoundJacobian) {
  SpeciesSet electron_only(
      {{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0}});
  LandauOperator op(electron_only, small_opts(Backend::CudaSim));
  la::Vec f = op.maxwellian_state();
  op.pack(f);
  la::CsrMatrix j = op.new_matrix();
  exec::KernelCounters jac_counters, mass_counters;
  op.add_collision(j, &jac_counters);
  op.add_mass_kernel(j, 1.0, &mass_counters);
  // The paper's Table IV contrast: Jacobian AI >> mass AI.
  EXPECT_GT(jac_counters.arithmetic_intensity(), 4.0);
  EXPECT_LT(mass_counters.arithmetic_intensity(), 2.5);
  EXPECT_GT(jac_counters.arithmetic_intensity(), 4.0 * mass_counters.arithmetic_intensity());
}

TEST(Kernels, MassKernelMatchesHostMassMatrix) {
  auto species = SpeciesSet::electron_deuterium();
  species[1].mass = 25.0;
  LandauOperator op(species, small_opts(Backend::CudaSim));
  la::Vec f = op.maxwellian_state();
  op.pack(f);
  la::CsrMatrix m_kernel = op.new_matrix();
  op.add_mass_kernel(m_kernel, 1.0);
  const auto& m_host = op.mass();
  double scale = 0.0;
  for (std::size_t k = 0; k < m_host.nnz(); ++k)
    scale = std::max(scale, std::abs(m_host.values()[k]));
  for (std::size_t k = 0; k < m_host.nnz(); ++k)
    EXPECT_NEAR(m_kernel.values()[k], m_host.values()[k], 1e-12 * scale);
}

TEST(Kernels, CooAssemblyMatchesTraditionalPath) {
  // §III-F: the COO interface must produce exactly the same matrix as the
  // MatSetValues-style path, without the CPU first-assembly step and without
  // atomics (disjoint slots per element).
  auto species = SpeciesSet::electron_deuterium();
  species[1].mass = 25.0;
  LandauOperator op(species, small_opts());
  la::Vec f = op.project([](int s, double r, double z) {
    return two_bump(r, z) * (s == 0 ? 1.0 : 0.7);
  });
  op.pack(f);

  la::CsrMatrix direct = op.new_matrix();
  op.add_collision(direct);

  exec::ThreadPool pool(2);
  JacobianContext ctx;
  ctx.init(op.space(), op.species(), op.ip_data());
  CooJacobianAssembler coo(op.space(), op.n_species());
  coo.assemble(Backend::CudaSim, pool, ctx);
  const auto& m = coo.matrix();

  ASSERT_EQ(m.nnz(), direct.nnz());
  double scale = 0.0;
  for (std::size_t k = 0; k < direct.nnz(); ++k)
    scale = std::max(scale, std::abs(direct.values()[k]));
  for (std::size_t k = 0; k < direct.nnz(); ++k)
    EXPECT_NEAR(m.values()[k], direct.values()[k], 1e-12 * scale);

  // Reassembly about a different state matches a fresh direct assembly.
  la::Vec g = op.maxwellian_state();
  op.pack(g);
  JacobianContext ctx2;
  ctx2.init(op.space(), op.species(), op.ip_data());
  coo.assemble(Backend::KokkosSim, pool, ctx2);
  la::CsrMatrix direct2 = op.new_matrix();
  op.add_collision(direct2);
  for (std::size_t k = 0; k < direct2.nnz(); ++k)
    EXPECT_NEAR(coo.matrix().values()[k], direct2.values()[k], 1e-12 * scale);
}

TEST(Kernels, AdvectionShiftsMomentumNotDensity) {
  SpeciesSet electron_only(
      {{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0}});
  LandauOperator op(electron_only, small_opts());
  la::Vec f = op.maxwellian_state();
  op.pack(f);
  la::CsrMatrix a = op.new_matrix();
  op.add_advection(a, 0.3);
  la::Vec af(op.n_total());
  a.mult(f, af);
  // Density moment of A f ~ 0 (boundary flux only); momentum moment nonzero.
  double density_rate = 0.0;
  for (std::size_t i = 0; i < af.size(); ++i) density_rate += af[i];
  la::Vec z_fn = op.project([](int, double, double z) { return z; });
  EXPECT_GT(std::abs(z_fn.dot(af)), 1e-6);
  EXPECT_LT(std::abs(density_rate), 1e-6 * std::abs(z_fn.dot(af)));
}
