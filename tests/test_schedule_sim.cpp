#include <gtest/gtest.h>

#include "exec/schedule_sim.h"

using namespace landau::exec;

namespace {

MachineModel summit_like() {
  MachineModel m;
  m.name = "summit";
  m.n_gpus = 6;
  m.cores = 7;
  m.hw_threads_per_core = 4;
  m.gpu.n_sms = 80;
  m.gpu.max_resident = 48;
  m.gpu.oversub_penalty = 0.15;
  m.gpu.launch_overhead = 20e-6;
  return m;
}

ProcessWork typical_work(int iters = 50) {
  ProcessWork w;
  // Per Newton iteration: CPU metadata+factor+solve then the GPU kernel.
  w.iteration = {{ResourceKind::Core, 4e-3, 1}, {ResourceKind::Gpu, 1e-3, 80}};
  w.n_iterations = iters;
  return w;
}

} // namespace

TEST(ScheduleSim, SingleProcessBaseline) {
  auto m = summit_like();
  auto w = typical_work(10);
  auto r = simulate_throughput(m, w, 1, 1);
  // 6 processes (one per GPU), each iteration ~5 ms => ~1200 iters/s total.
  EXPECT_NEAR(r.iterations_per_second, 6.0 / 5.02e-3, 30.0);
}

TEST(ScheduleSim, ThroughputScalesWithCores) {
  auto m = summit_like();
  auto w = typical_work(20);
  const double t1 = simulate_throughput(m, w, 1, 1).iterations_per_second;
  const double t7 = simulate_throughput(m, w, 7, 1).iterations_per_second;
  // CPU-dominated workload: near-linear scaling with cores (paper Table II).
  EXPECT_GT(t7, 5.5 * t1);
  EXPECT_LT(t7, 7.5 * t1);
}

TEST(ScheduleSim, SecondHardwareThreadGivesModestGain) {
  auto m = summit_like();
  auto w = typical_work(20);
  const double p1 = simulate_throughput(m, w, 7, 1).iterations_per_second;
  const double p2 = simulate_throughput(m, w, 7, 2).iterations_per_second;
  const double p3 = simulate_throughput(m, w, 7, 3).iterations_per_second;
  EXPECT_GT(p2, 1.05 * p1); // consistent gain
  EXPECT_LT(p2, 1.45 * p1); // but modest (SMT curve)
  EXPECT_GE(p3, 0.95 * p2); // third thread roughly flat or slightly up
}

TEST(ScheduleSim, OversubscribedGpuRollsOver) {
  // Model a Spock-like GPU whose scheduler degrades with many resident
  // kernels: throughput must roll over, as in paper Table V at 16 procs/GPU.
  MachineModel m = summit_like();
  m.n_gpus = 4;
  m.cores = 8;
  m.gpu.max_resident = 8;
  m.gpu.oversub_penalty = 1.0;
  ProcessWork w;
  w.iteration = {{ResourceKind::Core, 1e-3, 1}, {ResourceKind::Gpu, 4e-3, 120}};
  w.n_iterations = 20;
  const double t8x1 = simulate_throughput(m, w, 8, 1).iterations_per_second;
  const double t8x2 = simulate_throughput(m, w, 8, 2).iterations_per_second;
  EXPECT_LT(t8x2, t8x1);
}

TEST(ScheduleSim, GpuBoundWorkSaturatesEarly) {
  auto m = summit_like();
  ProcessWork w;
  // One kernel already fills the resident-block capacity (80 SMs x 8).
  w.iteration = {{ResourceKind::Core, 1e-4, 1}, {ResourceKind::Gpu, 5e-3, 640}};
  w.n_iterations = 20;
  const double t1 = simulate_throughput(m, w, 1, 1).iterations_per_second;
  const double t7 = simulate_throughput(m, w, 7, 1).iterations_per_second;
  // One kernel already fills the GPU: scaling must be far from linear.
  EXPECT_LT(t7, 3.0 * t1);
}

TEST(ScheduleSim, BandwidthSharingSlowsManyProcesses) {
  MachineModel m = summit_like();
  m.n_gpus = 1;
  m.cores = 4;
  m.membw_capacity = 2.0;
  ProcessWork w;
  w.iteration = {{ResourceKind::Bandwidth, 1e-3, 1}};
  w.n_iterations = 10;
  const double t1 = simulate_throughput(m, w, 1, 1).makespan;
  const double t4 = simulate_throughput(m, w, 4, 1).makespan;
  // 4 processes on capacity 2 take ~2x longer per process.
  EXPECT_NEAR(t4 / t1, 2.0, 0.2);
}

TEST(ScheduleSim, MakespanAccountsAllIterations) {
  auto m = summit_like();
  m.n_gpus = 1;
  auto w = typical_work(5);
  auto r = simulate_throughput(m, w, 2, 2);
  // 4 processes x 5 iterations in total.
  EXPECT_NEAR(r.iterations_per_second * r.makespan, 20.0, 1e-6);
}

TEST(ScheduleSim, GpuUtilizationReported) {
  auto m = summit_like();
  m.n_gpus = 1;
  ProcessWork w;
  w.iteration = {{ResourceKind::Gpu, 1e-3, 80}};
  w.n_iterations = 10;
  auto r = simulate_throughput(m, w, 1, 1);
  EXPECT_GT(r.gpu_busy_fraction, 0.99);
}
