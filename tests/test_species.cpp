#include <gtest/gtest.h>

#include <cmath>

#include "core/species.h"

using namespace landau;

TEST(Species, ElectronThetaIsPiOverFour) {
  Species e{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0};
  EXPECT_NEAR(e.theta(), kPi / 4.0, 1e-15);
  EXPECT_NEAR(e.thermal_speed(), std::sqrt(kPi) / 2.0, 1e-15);
}

TEST(Species, ThermalSpeedScalesWithMassAndTemperature) {
  Species a{.name = "a", .mass = 4.0, .charge = 1.0, .density = 1.0, .temperature = 1.0};
  Species b{.name = "b", .mass = 1.0, .charge = 1.0, .density = 1.0, .temperature = 4.0};
  EXPECT_NEAR(a.thermal_speed(), 0.5 * std::sqrt(kPi) / 2.0, 1e-14);
  EXPECT_NEAR(b.thermal_speed(), 2.0 * std::sqrt(kPi) / 2.0, 1e-14);
}

TEST(SpeciesSet, CollisionPrefactorIsChargeSquaredProduct) {
  auto set = SpeciesSet::electron_ion(4.0);
  EXPECT_DOUBLE_EQ(set.nu(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(set.nu(0, 1), 16.0);
  EXPECT_DOUBLE_EQ(set.nu(1, 1), 256.0);
}

TEST(SpeciesSet, ElectronIonIsQuasiNeutral) {
  for (double z : {1.0, 2.0, 8.0, 64.0}) {
    auto set = SpeciesSet::electron_ion(z);
    double charge = 0.0;
    for (const auto& sp : set) charge += sp.density * sp.charge;
    EXPECT_NEAR(charge, 0.0, 1e-14);
    EXPECT_NEAR(set.z_eff(), z, 1e-12);
  }
}

TEST(SpeciesSet, TungstenPlasmaHasTenSpeciesAndNeutrality) {
  auto set = SpeciesSet::tungsten_plasma();
  EXPECT_EQ(set.size(), 10);
  double charge = 0.0;
  for (const auto& sp : set) charge += sp.density * sp.charge;
  EXPECT_NEAR(charge, 0.0, 1e-12);
  // Thermal velocities are well separated: electron >> D >> W.
  EXPECT_GT(set[0].thermal_speed(), 20 * set[1].thermal_speed());
  EXPECT_GT(set[1].thermal_speed(), 5 * set[2].thermal_speed());
}

TEST(SpeciesSet, ZEffOfDeuteriumPlasmaIsOne) {
  EXPECT_NEAR(SpeciesSet::electron_deuterium().z_eff(), 1.0, 1e-14);
}
