#include <gtest/gtest.h>

#include <cmath>

#include "util/special_math.h"

using landau::elliptic_ke;
using landau::kPi;
using landau::maxwellian_rz;

TEST(Elliptic, KnownValuesAtZero) {
  double K, E;
  elliptic_ke(0.0, &K, &E);
  EXPECT_NEAR(K, kPi / 2, 1e-15);
  EXPECT_NEAR(E, kPi / 2, 1e-15);
}

TEST(Elliptic, ReferenceValueAtHalf) {
  // K(0.5) = 1.85407467730137..., E(0.5) = 1.35064388104768... (parameter m).
  double K, E;
  elliptic_ke(0.5, &K, &E);
  EXPECT_NEAR(K, 1.8540746773013719, 1e-12);
  EXPECT_NEAR(E, 1.3506438810476755, 1e-12);
}

TEST(Elliptic, LegendreRelation) {
  // E(m)K(1-m) + E(1-m)K(m) - K(m)K(1-m) = pi/2 for all m in (0,1).
  for (double m : {0.1, 0.3, 0.5, 0.77, 0.93}) {
    double K1, E1, K2, E2;
    elliptic_ke(m, &K1, &E1);
    elliptic_ke(1.0 - m, &K2, &E2);
    EXPECT_NEAR(E1 * K2 + E2 * K1 - K1 * K2, kPi / 2, 1e-12) << "m=" << m;
  }
}

TEST(Elliptic, AgreesWithDirectQuadrature) {
  // Compare with midpoint quadrature of the defining integrals.
  for (double m : {0.05, 0.25, 0.6, 0.9, 0.99}) {
    const int n = 200000;
    double Kq = 0.0, Eq = 0.0;
    for (int i = 0; i < n; ++i) {
      const double t = (i + 0.5) * (kPi / 2) / n;
      const double s = 1.0 - m * std::sin(t) * std::sin(t);
      Kq += 1.0 / std::sqrt(s);
      Eq += std::sqrt(s);
    }
    Kq *= (kPi / 2) / n;
    Eq *= (kPi / 2) / n;
    double K, E;
    elliptic_ke(m, &K, &E);
    EXPECT_NEAR(K, Kq, 1e-8) << "m=" << m;
    EXPECT_NEAR(E, Eq, 1e-8) << "m=" << m;
  }
}

TEST(Elliptic, NearOneLimitFinite) {
  double K, E;
  elliptic_ke(1.0 - 1e-12, &K, &E);
  EXPECT_TRUE(std::isfinite(K));
  EXPECT_NEAR(E, 1.0, 1e-5); // E(1) = 1
  EXPECT_GT(K, 10.0);        // K diverges logarithmically
}

TEST(Maxwellian, NormalizationIn3V) {
  // \int f d^3v = n with d^3v = 2 pi r dr dz: check by quadrature.
  const double n0 = 2.5, theta = 0.7;
  const int nr = 400, nz = 800;
  const double rmax = 8.0, zmax = 8.0;
  double sum = 0.0;
  for (int i = 0; i < nr; ++i)
    for (int j = 0; j < nz; ++j) {
      const double r = (i + 0.5) * rmax / nr;
      const double z = -zmax + (j + 0.5) * 2 * zmax / nz;
      sum += 2 * kPi * r * maxwellian_rz(r, z, n0, theta) * (rmax / nr) * (2 * zmax / nz);
    }
  EXPECT_NEAR(sum, n0, 5e-4 * n0); // midpoint-rule truncation dominates
}

TEST(Maxwellian, EnergyMoment) {
  // \int v^2 f d^3v = (3/2) n theta for this parameterization.
  const double n0 = 1.0, theta = 1.3;
  const int nr = 400, nz = 800;
  const double rmax = 10.0, zmax = 10.0;
  double sum = 0.0;
  for (int i = 0; i < nr; ++i)
    for (int j = 0; j < nz; ++j) {
      const double r = (i + 0.5) * rmax / nr;
      const double z = -zmax + (j + 0.5) * 2 * zmax / nz;
      sum += 2 * kPi * r * (r * r + z * z) * maxwellian_rz(r, z, n0, theta) * (rmax / nr) *
             (2 * zmax / nz);
    }
  EXPECT_NEAR(sum, 1.5 * n0 * theta, 2e-3);
}

TEST(Maxwellian, DriftShiftsZCentroid) {
  const double vz0 = 0.8;
  EXPECT_GT(maxwellian_rz(0.1, vz0, 1.0, 1.0, vz0), maxwellian_rz(0.1, 0.0, 1.0, 1.0, vz0));
}
