// Validation of the device memory-model checker (ctest -L analysis).
//
// Two kinds of tests: seeded-bug tests that plant a CUDA-semantics error
// (missing atomicAdd, dropped __syncthreads, read of unpacked device data,
// out-of-bounds index) and assert the checker reports it with the right
// provenance, and clean-run tests that drive the shipped kernels through a
// full implicit step in strict mode and assert zero reports.

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "core/operator.h"
#include "exec/cuda_sim.h"
#include "quench/model.h"
#include "solver/implicit.h"

using namespace landau;
namespace check = landau::exec::check;

namespace {

LandauOptions small_opts(Backend backend = Backend::CudaSim) {
  LandauOptions o;
  o.order = 2;
  o.radius = 4.0;
  o.base_levels = 1;
  o.cells_per_thermal = 0.6;
  o.max_levels = 3;
  o.backend = backend;
  o.n_workers = 2;
  return o;
}

LandauOperator make_small_op(Backend backend = Backend::CudaSim) {
  auto species = SpeciesSet::electron_deuterium();
  species[1].mass = 25.0; // reduced mass ratio keeps the shared grid small
  return LandauOperator(species, small_opts(backend));
}

/// First report matching (category, kernel); null if none.
const check::Report* find_report(const std::vector<check::Report>& reports, const char* category,
                                 const std::string& kernel) {
  for (const auto& r : reports)
    if (r.category == category && r.kernel == kernel) return &r;
  return nullptr;
}

class DeviceCheck : public ::testing::Test {
protected:
  void SetUp() override {
    saved_ = check::options();
    check::options() = check::CheckOptions{};
    check::options().enabled = true;
    check::DeviceChecker::instance().clear();
  }
  void TearDown() override {
    check::options() = saved_;
    check::DeviceChecker::instance().clear();
  }
  check::CheckOptions saved_;
};

} // namespace

// ---------------------------------------------------------------------------
// Mini-kernel seeded bugs
// ---------------------------------------------------------------------------

TEST_F(DeviceCheck, IntraBlockSharedRaceHasFullProvenance) {
  exec::ThreadPool pool(1);
  check::KernelScope chk("test:intra-race");
  exec::launch(
      pool, 1, exec::Dim3{4, 1, 1},
      [&](exec::Block& blk) {
        auto s = blk.shared<double>(1, "accum");
        // All four threads of phase 0 write the same shared word.
        blk.threads([&](exec::ThreadIdx t) { s[0] = static_cast<double>(t.x); });
      },
      nullptr, &chk);
  chk.finish();

  auto& dc = check::DeviceChecker::instance();
  EXPECT_GE(dc.count(check::kIntraBlockRace), 1);
  const auto reports = dc.reports();
  const check::Report* r = find_report(reports, check::kIntraBlockRace, "test:intra-race");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->buffer, "accum");
  EXPECT_EQ(r->index, 0u);
  EXPECT_EQ(r->block, 0);
  EXPECT_EQ(r->phase, 0);
  EXPECT_NE(r->thread, check::kUniformThread);
  EXPECT_NE(r->prev_thread, check::kUniformThread);
  EXPECT_NE(r->thread, r->prev_thread);
}

TEST_F(DeviceCheck, SyncSeparatedAccessesAreNotARace) {
  exec::ThreadPool pool(1);
  check::KernelScope chk("test:sync-clean");
  exec::launch(
      pool, 2, exec::Dim3{8, 1, 1},
      [&](exec::Block& blk) {
        auto s = blk.shared<double>(8, "tile");
        blk.threads([&](exec::ThreadIdx t) { s[static_cast<std::size_t>(t.x)] = t.x + 1.0; });
        blk.sync();
        blk.threads([&](exec::ThreadIdx t) {
          double sum = 0.0;
          for (std::size_t j = 0; j < 8; ++j) sum += s[j];
          s.raw()[static_cast<std::size_t>(t.x)] = sum; // raw: outside the model
        });
      },
      nullptr, &chk);
  chk.finish();
  EXPECT_EQ(check::DeviceChecker::instance().total(), 0);
}

TEST_F(DeviceCheck, UninitializedSharedReadIsReported) {
  exec::ThreadPool pool(1);
  check::KernelScope chk("test:uninit-shared");
  exec::launch(
      pool, 1, exec::Dim3{2, 1, 1},
      [&](exec::Block& blk) {
        auto s = blk.shared<double>(2, "tile");
        // __shared__ memory has no defined initial value on hardware, even
        // though the emulation's arena zero-fills.
        blk.threads([&](exec::ThreadIdx t) {
          const double v = s[static_cast<std::size_t>(t.x)];
          (void)v;
        });
      },
      nullptr, &chk);
  chk.finish();
  auto& dc = check::DeviceChecker::instance();
  EXPECT_GE(dc.count(check::kUninitRead), 1);
  const auto reports = dc.reports();
  const check::Report* r = find_report(reports, check::kUninitRead, "test:uninit-shared");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->buffer, "tile");
}

TEST_F(DeviceCheck, OutOfBoundsIndexIsReportedNotFatal) {
  exec::ThreadPool pool(1);
  check::KernelScope chk("test:oob");
  exec::launch(
      pool, 1, exec::Dim3{1, 1, 1},
      [&](exec::Block& blk) {
        auto s = blk.shared<double>(4, "buf");
        blk.threads([&](exec::ThreadIdx) {
          s[6] = 1.0; // write past the end: redirected to a sink, then reported
          const double v = s[7];
          (void)v;
        });
      },
      nullptr, &chk);
  chk.finish();
  auto& dc = check::DeviceChecker::instance();
  EXPECT_GE(dc.count(check::kOutOfBounds), 2);
  const auto reports = dc.reports();
  const check::Report* r = find_report(reports, check::kOutOfBounds, "test:oob");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->buffer, "buf");
  EXPECT_NE(r->detail.find("out of range"), std::string::npos);
}

TEST_F(DeviceCheck, RegisterIsolationViolationIsReported) {
  exec::ThreadPool pool(1);
  check::KernelScope chk("test:regs");
  exec::launch(
      pool, 1, exec::Dim3{4, 1, 1},
      [&](exec::Block& blk) {
        auto regs = blk.registers<double>("regs");
        // A thread writing a neighbor's register slot has no hardware
        // equivalent — shuffles are the only sanctioned exchange.
        blk.threads([&](exec::ThreadIdx t) {
          regs[static_cast<std::size_t>((t.flat + 1) % blk.num_threads())] = 1.0;
        });
      },
      nullptr, &chk);
  chk.finish();
  auto& dc = check::DeviceChecker::instance();
  EXPECT_GE(dc.count(check::kRegisterIsolation), 1);
  const auto reports = dc.reports();
  const check::Report* r = find_report(reports, check::kRegisterIsolation, "test:regs");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->buffer, "regs");
  EXPECT_NE(r->detail.find("shfl"), std::string::npos);
}

TEST_F(DeviceCheck, StrictModeThrowsFromFinish) {
  check::options().strict = true;
  exec::ThreadPool pool(1);
  check::KernelScope chk("test:strict");
  exec::launch(
      pool, 1, exec::Dim3{4, 1, 1},
      [&](exec::Block& blk) {
        auto s = blk.shared<double>(1, "accum");
        blk.threads([&](exec::ThreadIdx t) { s[0] = static_cast<double>(t.x); });
      },
      nullptr, &chk);
  EXPECT_THROW(chk.finish(), landau::Error);
}

// ---------------------------------------------------------------------------
// Schedule shuffling
// ---------------------------------------------------------------------------

TEST(ScheduleShuffler, SeededPermutationIsDeterministicAndValid) {
  check::ScheduleShuffler a(123), b(123), c(456);
  const auto pa = a.permutation(17);
  const auto pb = b.permutation(17);
  EXPECT_EQ(pa, pb);
  EXPECT_NE(pa, c.permutation(17));
  std::vector<bool> seen(17, false);
  for (std::size_t i : pa) {
    ASSERT_LT(i, 17u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST_F(DeviceCheck, ShuffleFlagsOrderDependentKernel) {
  check::options().shuffle = true;
  exec::ThreadPool pool(0); // inline execution: natural order is 0..n-1
  std::vector<double> out(1, 0.0);
  check::KernelScope chk("test:order", /*concurrent_blocks=*/false);
  auto ref = chk.out(std::span<double>(out), "fold");
  exec::launch(
      pool, 8, exec::Dim3{1, 1, 1},
      [&](exec::Block& blk) {
        auto v = blk.view(ref);
        // Non-commutative fold: any non-identity block order changes out[0].
        v[0] = (static_cast<double>(v[0]) + 1.0) * (blk.block_idx() + 2.0);
      },
      nullptr, &chk);
  chk.finish();
  EXPECT_GE(check::DeviceChecker::instance().count(check::kOrderDependent), 1);
  // The diff restores the natural-order result for the caller.
  double expect = 0.0;
  for (int b = 0; b < 8; ++b) expect = (expect + 1.0) * (b + 2.0);
  EXPECT_DOUBLE_EQ(out[0], expect);
}

TEST_F(DeviceCheck, ShuffleLeavesDeterministicKernelClean) {
  check::options().shuffle = true;
  exec::ThreadPool pool(2);
  std::vector<double> out(8, 0.0);
  check::KernelScope chk("test:deterministic");
  auto ref = chk.out(std::span<double>(out), "out");
  exec::launch(
      pool, 8, exec::Dim3{1, 1, 1},
      [&](exec::Block& blk) {
        auto v = blk.view(ref);
        v[static_cast<std::size_t>(blk.block_idx())] = 1.5 * blk.block_idx();
      },
      nullptr, &chk);
  chk.finish();
  EXPECT_EQ(check::DeviceChecker::instance().total(), 0);
  for (int b = 0; b < 8; ++b) EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(b)], 1.5 * b);
}

// ---------------------------------------------------------------------------
// Seeded bugs in the shipped Jacobian kernel
// ---------------------------------------------------------------------------

TEST_F(DeviceCheck, DroppedSyncInJacobianKernelIsDetected) {
  check::options().drop_sync = 0; // model a forgotten __syncthreads()
  LandauOperator op = make_small_op();
  la::Vec f = op.maxwellian_state();
  op.pack(f);
  la::CsrMatrix j = op.new_matrix();
  exec::ThreadPool pool(2);
  JacobianContext ctx;
  ctx.init(op.space(), op.species(), op.ip_data());
  assemble_landau_jacobian(Backend::CudaSim, pool, ctx, j);

  auto& dc = check::DeviceChecker::instance();
  EXPECT_GE(dc.count(check::kIntraBlockRace), 1);
  const auto reports = dc.reports();
  const check::Report* r = find_report(reports, check::kIntraBlockRace, "landau:jacobian-cuda");
  ASSERT_NE(r, nullptr);
  // The collapsed phase merges the tile load with its consumers.
  EXPECT_NE(r->thread, r->prev_thread);
  EXPECT_GE(r->phase, 0);
  EXPECT_GE(r->block, 0);
}

TEST_F(DeviceCheck, NonAtomicAssemblyIsAnInterBlockRace) {
  LandauOperator op = make_small_op();
  la::Vec f = op.maxwellian_state();
  op.pack(f);
  la::CsrMatrix j = op.new_matrix();
  exec::ThreadPool pool(2);
  JacobianContext ctx;
  ctx.init(op.space(), op.species(), op.ip_data());
  ctx.atomic_assembly = false; // the §III-F bug: plain += into shared rows
  assemble_landau_jacobian(Backend::CudaSim, pool, ctx, j);

  auto& dc = check::DeviceChecker::instance();
  EXPECT_GE(dc.count(check::kInterBlockRace), 1);
  const auto reports = dc.reports();
  const check::Report* r = find_report(reports, check::kInterBlockRace, "landau:jacobian-cuda");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->buffer, "csr.values");
  EXPECT_NE(r->detail.find("atomicAdd"), std::string::npos);
  EXPECT_NE(r->block, r->prev_block);
}

TEST_F(DeviceCheck, UninitInputBufferReadIsReported) {
  check::options().uninit_input = "ip.f"; // model reading unpacked device data
  LandauOperator op = make_small_op();
  la::Vec f = op.maxwellian_state();
  op.pack(f);
  la::CsrMatrix j = op.new_matrix();
  exec::ThreadPool pool(2);
  JacobianContext ctx;
  ctx.init(op.space(), op.species(), op.ip_data());
  assemble_landau_jacobian(Backend::CudaSim, pool, ctx, j);

  auto& dc = check::DeviceChecker::instance();
  EXPECT_GE(dc.count(check::kUninitRead), 1);
  const auto reports = dc.reports();
  const check::Report* r = find_report(reports, check::kUninitRead, "landau:jacobian-cuda");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->buffer, "ip.f");
}

// ---------------------------------------------------------------------------
// Clean runs: the shipped kernels under strict mode
// ---------------------------------------------------------------------------

TEST_F(DeviceCheck, AllBackendsAssembleCleanUnderStrict) {
  check::options().strict = true;
  LandauOperator op = make_small_op();
  la::Vec f = op.maxwellian_state();
  op.pack(f);
  exec::ThreadPool pool(2);
  JacobianContext ctx;
  ctx.init(op.space(), op.species(), op.ip_data());
  for (Backend be : {Backend::Cpu, Backend::CudaSim, Backend::KokkosSim}) {
    la::CsrMatrix j = op.new_matrix();
    EXPECT_NO_THROW(assemble_landau_jacobian(be, pool, ctx, j)) << backend_name(be);
  }
  EXPECT_EQ(check::DeviceChecker::instance().total(), 0);
}

TEST_F(DeviceCheck, RelaxationStepRunsCleanUnderStrict) {
  // Full implicit step: Jacobian + mass kernels, device band factor/solve.
  check::options().strict = true;
  LandauOperator op = make_small_op();
  la::Vec f = op.maxwellian_state();
  ImplicitIntegrator integ(op, {}, LinearSolverKind::DeviceBandLU);
  EXPECT_NO_THROW(integ.step(f, 0.1));
  EXPECT_EQ(check::DeviceChecker::instance().total(), 0);
}

TEST_F(DeviceCheck, QuenchStepRunsCleanUnderStrict) {
  check::options().strict = true;
  LandauOperator op = make_small_op();
  quench::QuenchOptions q;
  q.dt = 0.5;
  q.max_steps = 1;
  q.newton.rtol = 1e-6;
  q.linear = LinearSolverKind::DeviceBandLU;
  quench::QuenchModel model(op, q);
  EXPECT_NO_THROW(model.run());
  EXPECT_EQ(check::DeviceChecker::instance().total(), 0);
}
