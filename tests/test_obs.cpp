// Observability subsystem: span tracer (nesting, thread merge, Chrome-trace
// export parsed back through the JSON parser), metrics registry (bucket
// edges, stable handles), the NDJSON step-log schema on a short quench run,
// and the bench_compare tool's pass/fail behavior on synthetic regressions.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <sys/wait.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/roofline.h"
#include "obs/trace.h"
#include "quench/model.h"
#include "util/error.h"
#include "util/profiler.h"

using namespace landau;

namespace {

/// Tracing state is global; each tracer test starts from a clean slate and
/// leaves tracing off.
struct TracerGuard {
  TracerGuard() {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().clear();
  }
  ~TracerGuard() {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().clear();
  }
};

LandauOperator make_small_op() {
  auto species = SpeciesSet::electron_deuterium();
  species[1].mass = 25.0; // reduced mass ratio for test speed
  LandauOptions opts;
  opts.order = 2;
  opts.radius = 4.5;
  opts.base_levels = 1;
  opts.cells_per_thermal = 0.8;
  opts.max_levels = 5;
  opts.n_workers = 2;
  return LandauOperator(species, opts);
}

} // namespace

// ---------------------------------------------------------------------------
// JSON value model
// ---------------------------------------------------------------------------

TEST(ObsJson, RoundTripPreservesStructureAndOrder) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("name", "landau \"quoted\"\n");
  doc.set("count", 42);
  doc.set("pi", 3.25);
  doc.set("flag", true);
  doc.set("nothing", obs::JsonValue());
  obs::JsonValue arr = obs::JsonValue::array();
  arr.push_back(1);
  arr.push_back(-2.5);
  arr.push_back("x");
  doc.set("seq", std::move(arr));

  const obs::JsonValue back = obs::JsonValue::parse(doc.dump());
  ASSERT_TRUE(back.is_object());
  EXPECT_EQ(back.find("name")->as_string(), "landau \"quoted\"\n");
  EXPECT_EQ(back.find("count")->as_int(), 42);
  EXPECT_DOUBLE_EQ(back.find("pi")->as_double(), 3.25);
  EXPECT_TRUE(back.find("flag")->as_bool());
  EXPECT_TRUE(back.find("nothing")->is_null());
  ASSERT_EQ(back.find("seq")->size(), 3u);
  EXPECT_EQ((*back.find("seq"))[0].as_int(), 1);
  // Insertion order survives serialization (diffable output).
  EXPECT_EQ(back.members()[0].first, "name");
  EXPECT_EQ(back.members()[5].first, "seq");
}

TEST(ObsJson, NonFiniteSerializesAsNull) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("bad", std::nan(""));
  const obs::JsonValue back = obs::JsonValue::parse(doc.dump());
  EXPECT_TRUE(back.find("bad")->is_null());
}

TEST(ObsJson, ParseRejectsMalformedInput) {
  EXPECT_THROW(obs::JsonValue::parse("{\"a\": }"), Error);
  EXPECT_THROW(obs::JsonValue::parse("[1, 2"), Error);
  EXPECT_THROW(obs::JsonValue::parse("{} trailing"), Error);
}

// ---------------------------------------------------------------------------
// Span tracer
// ---------------------------------------------------------------------------

TEST(ObsTrace, DisabledTracerRecordsNothing) {
  TracerGuard guard;
  {
    obs::TraceSpan outer("outer");
    obs::TraceSpan inner("inner");
  }
  EXPECT_TRUE(obs::Tracer::instance().snapshot().empty());
}

TEST(ObsTrace, NestingReconstructedInSelfTimeTree) {
  TracerGuard guard;
  auto& tracer = obs::Tracer::instance();
  tracer.enable();
  {
    obs::TraceSpan outer("outer");
    { obs::TraceSpan inner("inner"); }
    { obs::TraceSpan inner("inner"); }
  }
  tracer.disable();

  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 3u);

  const obs::SpanTreeNode root = tracer.build_tree();
  ASSERT_EQ(root.children.size(), 1u);
  const auto& outer = root.children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.count, 1);
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(outer.children[0].name, "inner");
  EXPECT_EQ(outer.children[0].count, 2);
  // Self time excludes child time.
  EXPECT_LE(outer.self_ns, outer.total_ns);
  EXPECT_GE(outer.total_ns, outer.children[0].total_ns);
}

TEST(ObsTrace, ThreadsMergeByNamePath) {
  TracerGuard guard;
  auto& tracer = obs::Tracer::instance();
  tracer.enable();
  auto work = [] {
    obs::TraceSpan outer("worker");
    obs::TraceSpan inner("phase");
  };
  std::thread t1(work), t2(work);
  t1.join();
  t2.join();
  tracer.disable();

  const obs::SpanTreeNode root = tracer.build_tree();
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].name, "worker");
  EXPECT_EQ(root.children[0].count, 2); // merged across the two threads
  ASSERT_EQ(root.children[0].children.size(), 1u);
  EXPECT_EQ(root.children[0].children[0].count, 2);

  // The raw records carry distinct thread ids.
  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 4u);
  std::set<int> tids;
  for (const auto& r : records) tids.insert(r.tid);
  EXPECT_EQ(tids.size(), 2u);
}

TEST(ObsTrace, ChromeTraceParsesBackWithArgs) {
  TracerGuard guard;
  auto& tracer = obs::Tracer::instance();
  tracer.enable();
  {
    obs::TraceSpan span("kernel", {{"grid", 80}, {"block_x", 16}, {"ai", 15.75}});
  }
  tracer.disable();

  const obs::JsonValue doc = obs::JsonValue::parse(tracer.chrome_trace().dump());
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.size(), 1u);
  const obs::JsonValue& e = doc[0];
  EXPECT_EQ(e.find("name")->as_string(), "kernel");
  EXPECT_EQ(e.find("ph")->as_string(), "X");
  EXPECT_TRUE(e.find("ts")->is_number());
  EXPECT_TRUE(e.find("dur")->is_number());
  EXPECT_GE(e.find("dur")->as_double(), 0.0);
  ASSERT_NE(e.find("args"), nullptr);
  EXPECT_EQ(e.find("args")->find("grid")->as_int(), 80);
  EXPECT_DOUBLE_EQ(e.find("args")->find("ai")->as_double(), 15.75);
}

TEST(ObsTrace, ProfilerEventsBecomeSpansThroughHooks) {
  TracerGuard guard;
  auto& tracer = obs::Tracer::instance();
  tracer.enable();
  {
    ScopedEvent outer("obs-test:outer");
    ScopedEvent inner("obs-test:inner");
  }
  tracer.disable();

  const obs::SpanTreeNode root = tracer.build_tree();
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].name, "obs-test:outer");
  ASSERT_EQ(root.children[0].children.size(), 1u);
  EXPECT_EQ(root.children[0].children[0].name, "obs-test:inner");
}

TEST(ObsTrace, RingWrapKeepsMostRecentAndCountsDrops) {
  TracerGuard guard;
  auto& tracer = obs::Tracer::instance();
  tracer.set_ring_capacity(16);
  tracer.enable();
  std::thread([&] {
    // Fresh thread => fresh buffer picking up the small capacity.
    for (int i = 0; i < 40; ++i) obs::TraceSpan span("wrap");
  }).join();
  tracer.disable();
  EXPECT_GE(tracer.dropped(), 24);
  const auto records = tracer.snapshot();
  EXPECT_EQ(records.size(), 16u);
  tracer.set_ring_capacity(1u << 15);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(ObsMetrics, HistogramBucketEdges) {
  obs::Histogram h("test.hist", {1.0, 2.0, 4.0});
  // Bucket i counts x <= edges[i] (first match); the last bucket is overflow.
  h.observe(0.5);  // <= 1         -> bucket 0
  h.observe(1.0);  // <= 1 (edge)  -> bucket 0
  h.observe(1.5);  // <= 2         -> bucket 1
  h.observe(4.0);  // <= 4 (edge)  -> bucket 2
  h.observe(99.0); // > 4          -> overflow
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 1);
  EXPECT_EQ(h.bucket(3), 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 99.0);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.bucket(3), 0);
}

TEST(ObsMetrics, RegistryHandlesAreStableAndSerialized) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& c1 = reg.counter("obs-test.counter");
  obs::Counter& c2 = reg.counter("obs-test.counter");
  EXPECT_EQ(&c1, &c2); // get-or-create returns the same handle
  c1.reset();
  c1.inc(3);
  reg.gauge("obs-test.gauge").set(2.5);
  reg.histogram("obs-test.hist", {1.0}).observe(0.5);

  const obs::JsonValue doc = obs::JsonValue::parse(reg.to_json().dump());
  EXPECT_EQ(doc.find("counters")->find("obs-test.counter")->as_int(), 3);
  EXPECT_DOUBLE_EQ(doc.find("gauges")->find("obs-test.gauge")->as_double(), 2.5);
  const obs::JsonValue* h = doc.find("histograms")->find("obs-test.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->find("count")->as_int(), 1);
  EXPECT_EQ(h->find("buckets")->size(), 2u); // one edge + overflow
}

// ---------------------------------------------------------------------------
// Roofline
// ---------------------------------------------------------------------------

TEST(ObsRoofline, PlacementMath) {
  obs::RooflineEntry e;
  e.kernel = "test";
  e.flops = 1600;
  e.dram_bytes = 100; // AI = 16
  e.seconds = 1e-6;   // 1.6 Gflop/s achieved
  // Peaks: 100 Gflop/s, 10 GB/s -> knee at 10 flops/byte; AI 16 is above.
  const auto p = obs::place(e, 100.0, 10.0);
  EXPECT_DOUBLE_EQ(p.ai, 16.0);
  EXPECT_TRUE(p.compute_bound);
  EXPECT_DOUBLE_EQ(p.attainable_fraction, 1.0);
  EXPECT_NEAR(p.achieved_gflops, 1.6, 1e-12);
  EXPECT_NEAR(p.pct_of_attainable, 1.6, 1e-9);

  e.dram_bytes = 1600; // AI = 1: memory bound, ceiling at 10% of peak
  const auto q = obs::place(e, 100.0, 10.0);
  EXPECT_FALSE(q.compute_bound);
  EXPECT_DOUBLE_EQ(q.attainable_fraction, 0.1);
}

// ---------------------------------------------------------------------------
// NDJSON step log on a short quench run
// ---------------------------------------------------------------------------

TEST(ObsStepLog, QuenchRunWritesSchemaCompliantNdjson) {
  const std::string path = "test_obs_steplog.ndjson";
  auto& log = obs::StepLog::instance();
  log.set_path(path);
  ASSERT_TRUE(log.active());

  LandauOperator op = make_small_op();
  quench::QuenchOptions q;
  q.dt = 0.5;
  q.max_steps = 5;
  q.e_initial_over_ec = 0.5;
  q.te_ev = 3000.0;
  q.newton.rtol = 1e-6;
  quench::QuenchModel model(op, q);
  const auto result = model.run();
  log.set_path(""); // close and flush
  ASSERT_EQ(result.history.size(), 6u); // initial state + 5 steps

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int n_lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    const obs::JsonValue rec = obs::JsonValue::parse(line); // throws if malformed
    ASSERT_TRUE(rec.is_object());
    for (const char* key : {"kind", "step", "t", "dt", "newton_iterations",
                            "gmres_iterations_total", "rejections", "n_e", "j_z", "e_z", "t_e",
                            "phase"})
      EXPECT_TRUE(rec.contains(key)) << "missing key '" << key << "' in: " << line;
    EXPECT_EQ(rec.find("kind")->as_string(), "quench");
    EXPECT_EQ(rec.find("step")->as_int(), n_lines);
    if (n_lines > 0) {
      EXPECT_GT(rec.find("dt")->as_double(), 0.0);
      EXPECT_GE(rec.find("newton_iterations")->as_int(), 1);
    }
    ++n_lines;
  }
  EXPECT_EQ(n_lines, 6);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// bench_compare.py pass/fail on synthetic regressions
// ---------------------------------------------------------------------------

namespace {

int run_cmd(const std::string& cmd) {
  const int rc = std::system(cmd.c_str());
  return rc < 0 ? rc : WEXITSTATUS(rc);
}

void write_bench_json(const std::string& path, double throughput, double latency) {
  obs::JsonValue metrics = obs::JsonValue::object();
  obs::JsonValue thr = obs::JsonValue::object();
  thr.set("value", throughput);
  thr.set("unit", "it/s");
  thr.set("compare", "higher");
  metrics.set("throughput", std::move(thr));
  obs::JsonValue lat = obs::JsonValue::object();
  lat.set("value", latency);
  lat.set("unit", "ms");
  lat.set("compare", "lower");
  metrics.set("latency", std::move(lat));
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("bench", "synthetic");
  doc.set("schema", 1);
  doc.set("env", obs::JsonValue::object());
  doc.set("metrics", std::move(metrics));
  std::ofstream(path) << doc.dump(2) << "\n";
}

} // namespace

TEST(ObsBenchCompare, SyntheticRegressionGating) {
  if (run_cmd("python3 --version > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "python3 not available";
  const std::string script = std::string(LANDAU_SOURCE_DIR) + "/tools/bench_compare.py";

  EXPECT_EQ(run_cmd("python3 " + script + " --self-test > /dev/null 2>&1"), 0);

  write_bench_json("obs_bench_base.json", 100.0, 10.0);
  write_bench_json("obs_bench_ok.json", 95.0, 10.4); // within the 10% noise band
  write_bench_json("obs_bench_bad.json", 80.0, 10.0); // 20% throughput regression

  const std::string compare = "python3 " + script + " obs_bench_base.json ";
  EXPECT_EQ(run_cmd(compare + "obs_bench_ok.json > /dev/null 2>&1"), 0);
  EXPECT_NE(run_cmd(compare + "obs_bench_bad.json > /dev/null 2>&1"), 0);
  // A tighter threshold flags the within-noise diff too.
  EXPECT_NE(run_cmd(compare + "obs_bench_ok.json --threshold 2 > /dev/null 2>&1"), 0);

  std::remove("obs_bench_base.json");
  std::remove("obs_bench_ok.json");
  std::remove("obs_bench_bad.json");
}
