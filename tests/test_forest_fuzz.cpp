// Property-based stress tests: random refinement patterns must always
// produce 2:1-balanced meshes on which the constrained FE space is
// H1-conforming and reproduces polynomials. Catches interaction bugs
// between balance, hanging-node chains and the dof map that hand-picked
// meshes miss.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "fem/fespace.h"
#include "mesh/forest.h"

using namespace landau;
using mesh::Box;
using mesh::Forest;

namespace {

Forest random_forest(unsigned seed, int rounds) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> xdist(0.0, 3.0), ydist(-3.0, 3.0), rdist(0.3, 1.2);
  Forest f(Box{0, -3, 3, 3}, 1, 2);
  f.refine_uniform(1);
  for (int round = 0; round < rounds; ++round) {
    const double cx = xdist(rng), cy = ydist(rng), rad = rdist(rng);
    f.refine_where([&](const Box& b, int level) {
      if (level >= 5) return false;
      const double d = std::hypot(b.cx() - cx, b.cy() - cy);
      return d < rad;
    });
  }
  f.balance();
  return f;
}

} // namespace

class ForestFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ForestFuzz, BalancedAfterRandomRefinement) {
  auto f = random_forest(GetParam(), 4);
  for (std::size_t i = 0; i < f.n_leaves(); ++i)
    for (int e = 0; e < 4; ++e) {
      auto nb = f.neighbor(i, static_cast<mesh::Edge>(e));
      if (nb.kind == Forest::NeighborInfo::Kind::Coarser) {
        EXPECT_EQ(f.leaf(static_cast<std::size_t>(nb.leaf)).level, f.leaf(i).level - 1);
      }
      if (nb.kind == Forest::NeighborInfo::Kind::Finer) {
        for (int c = 0; c < 2; ++c) {
          EXPECT_EQ(f.leaf(static_cast<std::size_t>(nb.finer_leaves[c])).level,
                    f.leaf(i).level + 1);
        }
      }
    }
}

TEST_P(ForestFuzz, AreaIsPreserved) {
  auto f = random_forest(GetParam(), 4);
  double area = 0;
  for (const auto& lf : f.leaves()) area += lf.box.dx() * lf.box.dy();
  EXPECT_NEAR(area, 18.0, 1e-9);
}

TEST_P(ForestFuzz, ConstrainedSpaceReproducesCubics) {
  auto f = random_forest(GetParam(), 3);
  fem::FESpace fes(f, 3);
  auto poly = [](double x, double y) {
    return 0.5 * x * x * x - x * x * y + 2.0 * y * y - 1.0;
  };
  la::Vec dofs = fes.interpolate(poly);
  // The interpolant must agree with the polynomial at every constrained
  // node (through its closure) and at random interior points of every cell.
  const auto& dm = fes.dofmap();
  std::vector<double> nodal(dm.n_nodes());
  dm.expand(dofs.span(), nodal);
  for (std::size_t n = 0; n < dm.n_nodes(); ++n) {
    const auto p = dm.position(static_cast<std::int32_t>(n));
    EXPECT_NEAR(nodal[n], poly(p[0], p[1]), 1e-10) << "node " << n;
  }
  // Random-point evaluation via basis tabulation.
  std::mt19937 rng(GetParam() * 7 + 1);
  std::uniform_real_distribution<double> unit(-0.95, 0.95);
  const auto& tab = fes.tabulation();
  std::vector<double> vals(static_cast<std::size_t>(tab.n_basis()));
  for (std::size_t c = 0; c < fes.n_cells(); c += 3) {
    const auto g = fes.geometry(c);
    const double rx = unit(rng), ry = unit(rng);
    tab.eval_basis(rx, ry, vals.data());
    double v = 0;
    const auto nodes = dm.cell_nodes(c);
    for (int b = 0; b < tab.n_basis(); ++b)
      v += vals[static_cast<std::size_t>(b)] *
           nodal[static_cast<std::size_t>(nodes[static_cast<std::size_t>(b)])];
    const double x = g.x0 + 0.5 * g.dx * (rx + 1.0);
    const double y = g.y0 + 0.5 * g.dy * (ry + 1.0);
    EXPECT_NEAR(v, poly(x, y), 1e-9);
  }
}

TEST_P(ForestFuzz, MassMatrixStaysSymmetricPositive) {
  auto f = random_forest(GetParam(), 3);
  fem::FESpace fes(f, 2);
  auto pattern = fes.sparsity();
  la::CsrMatrix m(pattern);
  fes.assemble_mass(m);
  la::Vec x(fes.n_dofs()), mx(fes.n_dofs());
  std::mt19937 rng(GetParam() + 99);
  std::uniform_real_distribution<double> dist(-1, 1);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = dist(rng);
  m.mult(x, mx);
  EXPECT_GT(x.dot(mx), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForestFuzz, ::testing::Values(11u, 23u, 37u, 51u, 68u));
