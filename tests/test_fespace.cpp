#include <gtest/gtest.h>

#include <cmath>

#include "fem/fespace.h"
#include "la/gmres.h"
#include "util/special_math.h"

using namespace landau;
using namespace landau::fem;
using mesh::Box;
using mesh::Forest;

namespace {

Forest quench_like_mesh(bool adapt) {
  Forest f(Box{0, -4, 4, 4}, 1, 2);
  f.refine_uniform(2);
  if (adapt) {
    f.refine_where([](const Box& b, int) { return std::hypot(b.cx(), b.cy()) < 1.5; });
    f.balance();
  }
  return f;
}

} // namespace

TEST(FESpace, GeometryFactorsForRectangles) {
  auto forest = quench_like_mesh(false);
  FESpace fes(forest, 3);
  for (std::size_t c = 0; c < fes.n_cells(); ++c) {
    const auto g = fes.geometry(c);
    EXPECT_NEAR(g.detj, 0.25 * g.dx * g.dy, 1e-15);
    EXPECT_NEAR(g.jinv[0] * g.dx, 2.0, 1e-15);
  }
}

TEST(FESpace, IpWeightsIntegrateDomainArea) {
  auto forest = quench_like_mesh(true);
  FESpace fes(forest, 3);
  std::vector<double> r(fes.n_ips()), z(fes.n_ips()), w(fes.n_ips());
  fes.ip_coordinates(r, z, w);
  double area = 0;
  for (double wi : w) area += wi;
  EXPECT_NEAR(area, 32.0, 1e-10); // [0,4] x [-4,4]
}

TEST(FESpace, EvalAtIpsReproducesInterpolatedPolynomial) {
  auto forest = quench_like_mesh(true);
  FESpace fes(forest, 3);
  auto f = [](double x, double y) { return x * x * y - 2.0 * y * y + 0.5; };
  auto fx = [](double x, double y) { return 2.0 * x * y; (void)y; };
  auto fy = [](double x, double y) { return x * x - 4.0 * y; };
  la::Vec dofs = fes.interpolate(f);
  std::vector<double> vals(fes.n_ips()), gr(fes.n_ips()), gz(fes.n_ips());
  std::vector<double> r(fes.n_ips()), z(fes.n_ips()), w(fes.n_ips());
  fes.eval_at_ips(dofs.span(), vals, gr, gz);
  fes.ip_coordinates(r, z, w);
  for (std::size_t ip = 0; ip < fes.n_ips(); ++ip) {
    EXPECT_NEAR(vals[ip], f(r[ip], z[ip]), 1e-10);
    EXPECT_NEAR(gr[ip], fx(r[ip], z[ip]), 1e-9);
    EXPECT_NEAR(gz[ip], fy(r[ip], z[ip]), 1e-9);
  }
}

TEST(FESpace, MomentComputesCylindricalIntegrals) {
  auto forest = quench_like_mesh(false);
  FESpace fes(forest, 3);
  // f = 1: moment with g=1 is the cylindrical volume 2*pi*(R^2/2)*H.
  la::Vec one = fes.interpolate([](double, double) { return 1.0; });
  const double vol = fes.moment(one.span(), [](double, double) { return 1.0; });
  EXPECT_NEAR(vol, 2 * kPi * (16.0 / 2) * 8.0, 1e-9);
}

TEST(FESpace, MaxwellianMomentsOnAdaptedMesh) {
  // Density and energy moments of a Maxwellian on the adapted mesh — the
  // resolution argument behind the paper's Fig. 3 (about 5 digits).
  auto forest = quench_like_mesh(true);
  FESpace fes(forest, 3);
  la::Vec fm = fes.interpolate([](double r, double z) { return maxwellian_rz(r, z, 1.0, 1.0); });
  const double n = fes.moment(fm.span(), [](double, double) { return 1.0; });
  const double e = fes.moment(fm.span(), [](double r, double z) { return r * r + z * z; });
  EXPECT_NEAR(n, 1.0, 2e-4);
  EXPECT_NEAR(e, 1.5, 1e-3);
}

TEST(FESpace, MassMatrixAgainstAnalyticL2Norm) {
  auto forest = quench_like_mesh(true);
  FESpace fes(forest, 3);
  auto pattern = fes.sparsity();
  la::CsrMatrix m(pattern);
  fes.assemble_mass(m);
  // x^T M x == \int f^2 dmu for the interpolant of a cubic f.
  auto f = [](double x, double y) { return x + 0.2 * y - 0.1 * x * y; };
  la::Vec dofs = fes.interpolate(f);
  la::Vec mx(fes.n_dofs());
  m.mult(dofs, mx);
  const double quad = dofs.dot(mx);
  const double viaMoment = fes.moment(dofs.span(), [&](double, double) { return 0.0; });
  (void)viaMoment;
  // Analytic \int (x + .2y - .1xy)^2 2 pi x dx dy over [0,4]x[-4,4].
  // Computed with high-order numeric quadrature here:
  double exact = 0;
  const int nn = 400;
  for (int i = 0; i < nn; ++i)
    for (int j = 0; j < nn; ++j) {
      const double x = (i + 0.5) * 4.0 / nn;
      const double y = -4.0 + (j + 0.5) * 8.0 / nn;
      exact += 2 * kPi * x * f(x, y) * f(x, y) * (4.0 / nn) * (8.0 / nn);
    }
  EXPECT_NEAR(quad, exact, 2e-3 * std::abs(exact));
}

TEST(FESpace, MassMatrixSymmetricPositive) {
  auto forest = quench_like_mesh(true);
  FESpace fes(forest, 2);
  auto pattern = fes.sparsity();
  la::CsrMatrix m(pattern);
  fes.assemble_mass(m);
  auto d = m.to_dense();
  for (std::size_t i = 0; i < d.rows(); ++i)
    for (std::size_t j = 0; j < i; ++j) EXPECT_NEAR(d(i, j), d(j, i), 1e-12);
  // Positive definiteness via x^T M x > 0 for random x.
  la::Vec x(fes.n_dofs()), mx(fes.n_dofs());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(3.0 + static_cast<double>(i));
  m.mult(x, mx);
  EXPECT_GT(x.dot(mx), 0.0);
}

class InterpolationOrder : public ::testing::TestWithParam<int> {};

TEST_P(InterpolationOrder, L2ErrorConvergesAtOrderKPlusOne) {
  // Interpolate a smooth non-polynomial function on uniformly refined meshes
  // and verify the L2 interpolation error decays like h^(k+1).
  const int k = GetParam();
  auto f = [](double x, double y) { return std::sin(1.3 * x) * std::exp(-0.4 * y); };
  std::vector<double> errors;
  for (int levels : {1, 2, 3}) {
    Forest forest(Box{0, -2, 2, 2}, 1, 2);
    forest.refine_uniform(levels);
    FESpace fes(forest, k);
    la::Vec dofs = fes.interpolate(f);
    std::vector<double> vals(fes.n_ips()), gr(fes.n_ips()), gz(fes.n_ips());
    std::vector<double> r(fes.n_ips()), z(fes.n_ips()), w(fes.n_ips());
    fes.eval_at_ips(dofs.span(), vals, gr, gz);
    fes.ip_coordinates(r, z, w);
    double err2 = 0.0;
    for (std::size_t ip = 0; ip < fes.n_ips(); ++ip)
      err2 += w[ip] * std::pow(vals[ip] - f(r[ip], z[ip]), 2);
    errors.push_back(std::sqrt(err2));
  }
  // Each refinement halves h: expect error ratios near 2^(k+1).
  const double expected = std::pow(2.0, k + 1);
  for (std::size_t i = 1; i < errors.size(); ++i) {
    const double ratio = errors[i - 1] / errors[i];
    EXPECT_GT(ratio, 0.6 * expected) << "order " << k << " step " << i;
    EXPECT_LT(ratio, 1.8 * expected) << "order " << k << " step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, InterpolationOrder, ::testing::Values(1, 2, 3));

TEST(FESpace, AtomicAssemblyMatchesSerial) {
  auto forest = quench_like_mesh(true);
  FESpace fes(forest, 2);
  auto pattern = fes.sparsity();
  la::CsrMatrix a(pattern), b(pattern);
  const int nb = fes.tabulation().n_basis();
  la::DenseMatrix ke(static_cast<std::size_t>(nb), static_cast<std::size_t>(nb));
  for (int i = 0; i < nb; ++i)
    for (int j = 0; j < nb; ++j)
      ke(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = 1.0 / (1.0 + i + j);
  for (std::size_t c = 0; c < fes.n_cells(); ++c) {
    fes.add_element_matrix(c, ke, a, /*atomic=*/false);
    fes.add_element_matrix(c, ke, b, /*atomic=*/true);
  }
  for (std::size_t k = 0; k < a.nnz(); ++k) EXPECT_DOUBLE_EQ(a.values()[k], b.values()[k]);
}
