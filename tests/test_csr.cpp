#include <gtest/gtest.h>

#include <array>
#include <limits>
#include <random>

#include "la/csr.h"

using landau::la::CooAssembler;
using landau::la::CsrMatrix;
using landau::la::DenseMatrix;
using landau::la::SparsityPattern;
using landau::la::Vec;

namespace {

CsrMatrix tridiag(std::size_t n) {
  SparsityPattern p(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    p.add(i, i);
    if (i > 0) p.add(i, i - 1);
    if (i + 1 < n) p.add(i, i + 1);
  }
  p.compress();
  CsrMatrix a(p);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(i, i, 2.0);
    if (i > 0) a.add(i, i - 1, -1.0);
    if (i + 1 < n) a.add(i, i + 1, -1.0);
  }
  return a;
}

} // namespace

TEST(Csr, PatternAndEntryLookup) {
  auto a = tridiag(5);
  EXPECT_EQ(a.nnz(), 13u);
  EXPECT_DOUBLE_EQ(a.get(2, 2), 2.0);
  EXPECT_DOUBLE_EQ(a.get(2, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.get(2, 4), 0.0); // outside pattern reads as zero
  EXPECT_THROW(a.add(0, 4, 1.0), landau::Error);
}

TEST(Csr, AllFiniteScansStoredValues) {
  auto a = tridiag(6);
  EXPECT_TRUE(a.all_finite());
  a.add(3, 2, std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(a.all_finite());
  auto b = tridiag(6);
  b.add(5, 5, std::numeric_limits<double>::infinity());
  EXPECT_FALSE(b.all_finite());
}

TEST(Csr, MatVecMatchesDense) {
  auto a = tridiag(8);
  auto d = a.to_dense();
  Vec x(8), y1(8), y2(8);
  for (std::size_t i = 0; i < 8; ++i) x[i] = std::sin(1.0 + static_cast<double>(i));
  a.mult(x, y1);
  d.mult(x, y2);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-15);
}

TEST(Csr, AddValuesBlock) {
  SparsityPattern p(4, 4);
  std::array<std::int32_t, 3> dofs = {0, 2, 3};
  p.add_clique(dofs);
  p.compress();
  CsrMatrix a(p);
  DenseMatrix blk(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) blk(i, j) = static_cast<double>(10 * i + j);
  a.add_values(dofs, dofs, blk);
  a.add_values(dofs, dofs, blk); // additive semantics
  EXPECT_DOUBLE_EQ(a.get(2, 3), 2 * 12.0);
  EXPECT_DOUBLE_EQ(a.get(3, 0), 2 * 20.0);
}

TEST(Csr, AtomicAddMatchesPlainAdd) {
  auto a = tridiag(6);
  auto b = tridiag(6);
  a.add(3, 2, 0.5);
  b.add_atomic(3, 2, 0.5);
  EXPECT_DOUBLE_EQ(a.get(3, 2), b.get(3, 2));
}

TEST(Csr, ShiftDiagonalAndAxpy) {
  auto a = tridiag(5);
  auto b = tridiag(5);
  a.axpy(2.0, b); // a = 3 * tridiag
  EXPECT_DOUBLE_EQ(a.get(2, 2), 6.0);
  a.shift_diagonal(1.0);
  EXPECT_DOUBLE_EQ(a.get(2, 2), 7.0);
  EXPECT_DOUBLE_EQ(a.get(2, 1), -3.0);
}

TEST(Csr, BandwidthOfTridiagonalIsOne) {
  EXPECT_EQ(tridiag(9).bandwidth(), 1u);
}

TEST(Coo, AssemblesDuplicatesAdditively) {
  // COO list with repeated coordinates: values must accumulate.
  std::vector<std::int32_t> ci = {0, 1, 1, 2, 0};
  std::vector<std::int32_t> cj = {0, 1, 1, 2, 1};
  CooAssembler coo(3, 3, ci, cj);
  std::vector<double> vals = {1.0, 2.0, 3.0, 4.0, 5.0};
  coo.assemble(vals);
  const auto& m = coo.matrix();
  EXPECT_DOUBLE_EQ(m.get(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.get(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.get(2, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.get(0, 1), 5.0);
}

TEST(Coo, ReassemblyZeroesFirst) {
  std::vector<std::int32_t> ci = {0, 1};
  std::vector<std::int32_t> cj = {0, 1};
  CooAssembler coo(2, 2, ci, cj);
  std::vector<double> v1 = {1.0, 1.0};
  coo.assemble(v1);
  std::vector<double> v2 = {7.0, 8.0};
  coo.assemble(v2);
  EXPECT_DOUBLE_EQ(coo.matrix().get(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(coo.matrix().get(1, 1), 8.0);
}

TEST(Coo, MatchesMatSetValuesPath) {
  // Assemble the same random element contributions through both interfaces.
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1, 1);
  const std::size_t n = 10;
  std::vector<std::array<std::int32_t, 3>> elements = {
      {0, 1, 2}, {2, 3, 4}, {4, 5, 6}, {6, 7, 8}, {8, 9, 0}, {1, 4, 7}};

  SparsityPattern p(n, n);
  for (auto& e : elements) p.add_clique(e);
  p.compress();
  CsrMatrix a(p);

  std::vector<std::int32_t> ci, cj;
  std::vector<double> vals;
  for (auto& e : elements) {
    DenseMatrix blk(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) {
        blk(i, j) = dist(rng);
        ci.push_back(e[i]);
        cj.push_back(e[j]);
        vals.push_back(blk(i, j));
      }
    a.add_values(e, e, blk);
  }
  CooAssembler coo(n, n, ci, cj);
  coo.assemble(vals);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(a.get(i, j), coo.matrix().get(i, j), 1e-15);
}
