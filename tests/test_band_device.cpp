#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "la/band_device.h"

using namespace landau;
using namespace landau::la;

namespace {

BandMatrix random_band(std::size_t n, std::size_t bw, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  BandMatrix b(n, bw, bw);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = (i > bw ? i - bw : 0); j <= std::min(n - 1, i + bw); ++j)
      b.at(i, j) = i == j ? 4.0 * static_cast<double>(bw) + 2.0 : dist(rng);
  return b;
}

} // namespace

TEST(DeviceBand, FactorMatchesSerialBitwise) {
  exec::ThreadPool pool(2);
  for (unsigned seed : {1u, 2u, 3u}) {
    BandMatrix serial = random_band(60, 5, seed);
    BandMatrix device = serial;
    serial.factor_lu();
    BandMatrix* ptr = &device;
    device_band_factor(pool, {&ptr, 1});
    for (std::size_t i = 0; i < 60; ++i)
      for (std::size_t j = (i > 5 ? i - 5 : 0); j <= std::min<std::size_t>(59, i + 5); ++j)
        EXPECT_EQ(device.at(i, j), serial.at(i, j)) << "(" << i << "," << j << ")";
  }
}

TEST(DeviceBand, SolveMatchesSerial) {
  exec::ThreadPool pool(2);
  BandMatrix a = random_band(80, 7, 11);
  BandMatrix lu = a;
  lu.factor_lu();
  Vec xref(80), b(80);
  for (std::size_t i = 0; i < 80; ++i) xref[i] = std::sin(0.3 * static_cast<double>(i));
  a.mult(xref, b);

  Vec x_serial(80);
  lu.solve(b, x_serial);

  Vec x_dev = b;
  BandMatrix* mat = &lu;
  Vec* xp = &x_dev;
  device_band_solve(pool, {&mat, 1}, {&xp, 1});
  for (std::size_t i = 0; i < 80; ++i) EXPECT_NEAR(x_dev[i], x_serial[i], 1e-12);
}

TEST(DeviceBand, BatchOfIndependentSystems) {
  // The batched advance the paper's conclusion describes: many independent
  // systems, one block per system, all correct.
  exec::ThreadPool pool(2);
  const int batch = 12;
  std::vector<BandMatrix> mats;
  std::vector<Vec> xs, refs;
  std::vector<BandMatrix*> mptr;
  std::vector<Vec*> xptr;
  for (int k = 0; k < batch; ++k) {
    const std::size_t n = 20 + 5 * static_cast<std::size_t>(k);
    BandMatrix a = random_band(n, 3, 100u + static_cast<unsigned>(k));
    Vec xref(n), b(n);
    for (std::size_t i = 0; i < n; ++i) xref[i] = std::cos(static_cast<double>(i) + k);
    a.mult(xref, b);
    mats.push_back(a);
    xs.push_back(b);
    refs.push_back(xref);
  }
  for (int k = 0; k < batch; ++k) {
    mptr.push_back(&mats[static_cast<std::size_t>(k)]);
    xptr.push_back(&xs[static_cast<std::size_t>(k)]);
  }
  device_band_factor(pool, {mptr.data(), mptr.size()});
  std::vector<BandMatrix*> cmptr(mptr.begin(), mptr.end());
  device_band_solve(pool, {cmptr.data(), cmptr.size()}, {xptr.data(), xptr.size()});
  for (int k = 0; k < batch; ++k)
    for (std::size_t i = 0; i < xs[static_cast<std::size_t>(k)].size(); ++i)
      EXPECT_NEAR(xs[static_cast<std::size_t>(k)][i], refs[static_cast<std::size_t>(k)][i], 1e-10)
          << "system " << k;
}

TEST(DeviceBand, BlockSolverMatchesCpuBlockSolver) {
  // Block-diagonal multi-species style system through both solvers.
  const std::size_t blocks = 4, bn = 25, bw = 3;
  SparsityPattern p(blocks * bn, blocks * bn);
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(-1, 1);
  for (std::size_t blk = 0; blk < blocks; ++blk)
    for (std::size_t i = 0; i < bn; ++i)
      for (std::size_t j = (i > bw ? i - bw : 0); j <= std::min(bn - 1, i + bw); ++j)
        p.add(blk * bn + i, blk * bn + j);
  p.compress();
  CsrMatrix a(p);
  for (std::size_t blk = 0; blk < blocks; ++blk)
    for (std::size_t i = 0; i < bn; ++i)
      for (std::size_t j = (i > bw ? i - bw : 0); j <= std::min(bn - 1, i + bw); ++j)
        a.add(blk * bn + i, blk * bn + j, i == j ? 15.0 : dist(rng));

  Vec xref(blocks * bn), b(blocks * bn);
  for (std::size_t i = 0; i < xref.size(); ++i) xref[i] = dist(rng);
  a.mult(xref, b);

  BlockBandSolver cpu;
  cpu.analyze(a);
  cpu.factor(a);
  Vec x_cpu(xref.size());
  cpu.solve(b, x_cpu);

  exec::ThreadPool pool(2);
  DeviceBlockBandSolver dev(pool);
  dev.analyze(a);
  EXPECT_EQ(dev.n_blocks(), blocks);
  dev.factor(a);
  Vec x_dev(xref.size());
  dev.solve(b, x_dev);

  for (std::size_t i = 0; i < xref.size(); ++i) {
    EXPECT_NEAR(x_cpu[i], xref[i], 1e-10);
    EXPECT_NEAR(x_dev[i], x_cpu[i], 1e-12);
  }
}

TEST(DeviceBand, CountersRecordFactorWork) {
  exec::ThreadPool pool(1);
  BandMatrix a = random_band(50, 4, 3);
  BandMatrix* ptr = &a;
  exec::KernelCounters counters;
  device_band_factor(pool, {&ptr, 1}, &counters);
  EXPECT_GT(counters.flops.load(), 0);
}
