#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "mesh/forest.h"

using namespace landau::mesh;

namespace {

Box velocity_domain() { return Box{0.0, -5.0, 5.0, 5.0}; }

double box_area(const Box& b) { return b.dx() * b.dy(); }

} // namespace

TEST(Forest, RootsTileTheDomain) {
  Forest f(velocity_domain(), 1, 2);
  ASSERT_EQ(f.n_leaves(), 2u);
  double area = 0;
  for (const auto& lf : f.leaves()) area += box_area(lf.box);
  EXPECT_NEAR(area, 50.0, 1e-12);
  // Roots of a 1x2 forest over [0,5]x[-5,5] are unit squares scaled by 5.
  EXPECT_NEAR(f.leaf(0).box.dy(), 5.0, 1e-12);
}

TEST(Forest, UniformRefinementQuadruplesCells) {
  Forest f(velocity_domain(), 1, 2);
  f.refine_uniform(3);
  EXPECT_EQ(f.n_leaves(), 2u * 64u);
  double area = 0;
  for (const auto& lf : f.leaves()) area += box_area(lf.box);
  EXPECT_NEAR(area, 50.0, 1e-10);
}

TEST(Forest, PredicateRefinementTargetsOrigin) {
  Forest f(velocity_domain(), 1, 2);
  f.refine_uniform(2);
  // Refine cells near the velocity-space origin (0, 0).
  auto near_origin = [](const Box& b, int level) {
    if (level >= 4) return false;
    const double r = std::hypot(std::max(0.0, b.x0), std::max(std::abs(b.cy()) - b.dy() / 2, 0.0));
    return r < 1.5;
  };
  while (f.refine_where(near_origin) > 0) {
  }
  f.balance();
  // Smallest cells must be near the origin, largest far away.
  double min_near = 1e30, min_far = 1e30;
  for (const auto& lf : f.leaves()) {
    const double d = std::hypot(lf.box.cx(), lf.box.cy());
    if (d < 1.0)
      min_near = std::min(min_near, lf.box.dx());
    else if (d > 4.0)
      min_far = std::min(min_far, lf.box.dx());
  }
  EXPECT_LT(min_near, min_far);
}

TEST(Forest, BalanceEnforcesTwoToOne) {
  Forest f(velocity_domain(), 1, 2);
  f.refine_uniform(1);
  // Deeply refine one corner cell to force imbalance.
  for (int pass = 0; pass < 4; ++pass)
    f.refine_where([&](const Box& b, int) { return b.x0 < 1e-9 && b.y0 < -5.0 + 1e-9; });
  f.balance();
  // Every edge neighbor differs by at most one level.
  for (std::size_t i = 0; i < f.n_leaves(); ++i)
    for (int e = 0; e < 4; ++e) {
      auto nb = f.neighbor(i, static_cast<Edge>(e));
      if (nb.kind == Forest::NeighborInfo::Kind::Same ||
          nb.kind == Forest::NeighborInfo::Kind::Coarser) {
        EXPECT_LE(std::abs(f.leaf(i).level - f.leaf(static_cast<std::size_t>(nb.leaf)).level), 1);
      } else if (nb.kind == Forest::NeighborInfo::Kind::Finer) {
        for (int c = 0; c < 2; ++c)
          EXPECT_EQ(f.leaf(static_cast<std::size_t>(nb.finer_leaves[c])).level, f.leaf(i).level + 1);
      }
    }
}

TEST(Forest, NeighborKindsConsistent) {
  Forest f(velocity_domain(), 1, 2);
  f.refine_uniform(2);
  f.refine_where([](const Box& b, int) { return b.cx() < 2.5 && b.cy() > 0; });
  f.balance();
  for (std::size_t i = 0; i < f.n_leaves(); ++i) {
    for (int e = 0; e < 4; ++e) {
      auto nb = f.neighbor(i, static_cast<Edge>(e));
      switch (nb.kind) {
        case Forest::NeighborInfo::Kind::Same: {
          // Reciprocity: my Same neighbor sees me as Same across the
          // opposite edge.
          const int opposite = (e % 2 == 0) ? e + 1 : e - 1;
          auto back = f.neighbor(static_cast<std::size_t>(nb.leaf), static_cast<Edge>(opposite));
          EXPECT_EQ(back.kind, Forest::NeighborInfo::Kind::Same);
          EXPECT_EQ(back.leaf, static_cast<int>(i));
          break;
        }
        case Forest::NeighborInfo::Kind::Finer: {
          EXPECT_GE(nb.finer_leaves[0], 0);
          EXPECT_GE(nb.finer_leaves[1], 0);
          break;
        }
        default:
          break;
      }
    }
  }
}

TEST(Forest, BoundaryEdgesReported) {
  Forest f(velocity_domain(), 1, 2);
  f.refine_uniform(1);
  int boundary_edges = 0;
  for (std::size_t i = 0; i < f.n_leaves(); ++i)
    for (int e = 0; e < 4; ++e)
      if (f.neighbor(i, static_cast<Edge>(e)).kind == Forest::NeighborInfo::Kind::Boundary)
        ++boundary_edges;
  // 2x4 grid of cells: perimeter has 2+2+4+4 = 12 boundary edges.
  EXPECT_EQ(boundary_edges, 12);
}

TEST(Forest, FindPointLocatesLeaves) {
  Forest f(velocity_domain(), 1, 2);
  f.refine_uniform(2);
  f.refine_where([](const Box& b, int) { return b.cx() < 1.0 && std::abs(b.cy()) < 1.0; });
  f.balance();
  for (const auto& p : std::vector<std::pair<double, double>>{{0.1, 0.1}, {4.9, -4.9}, {2.5, 3.3}}) {
    const int idx = f.find_point(p.first, p.second);
    ASSERT_GE(idx, 0);
    const auto& b = f.leaf(static_cast<std::size_t>(idx)).box;
    EXPECT_GE(p.first, b.x0 - 1e-12);
    EXPECT_LE(p.first, b.x1 + 1e-12);
    EXPECT_GE(p.second, b.y0 - 1e-12);
    EXPECT_LE(p.second, b.y1 + 1e-12);
  }
  EXPECT_EQ(f.find_point(-1.0, 0.0), -1);
}

TEST(Forest, LeafOrderingIsDeterministic) {
  Forest f1(velocity_domain(), 1, 2);
  Forest f2(velocity_domain(), 1, 2);
  for (Forest* f : {&f1, &f2}) {
    f->refine_uniform(2);
    f->refine_where([](const Box& b, int) { return std::hypot(b.cx(), b.cy()) < 2.0; });
    f->balance();
  }
  ASSERT_EQ(f1.n_leaves(), f2.n_leaves());
  for (std::size_t i = 0; i < f1.n_leaves(); ++i) {
    EXPECT_EQ(f1.leaf(i).level, f2.leaf(i).level);
    EXPECT_EQ(f1.leaf(i).gx, f2.leaf(i).gx);
    EXPECT_EQ(f1.leaf(i).gy, f2.leaf(i).gy);
  }
}

TEST(Forest, LeavesPartitionWithoutOverlap) {
  Forest f(velocity_domain(), 1, 2);
  f.refine_uniform(2);
  f.refine_where([](const Box& b, int) { return b.cy() > 2.0; });
  f.balance();
  // Sample many points; each lies in exactly one leaf.
  for (int i = 0; i < 200; ++i) {
    const double x = 5.0 * (i % 17) / 17.0 + 0.01;
    const double y = -5.0 + 10.0 * (i % 23) / 23.0 + 0.01;
    int containing = 0;
    for (const auto& lf : f.leaves())
      if (x >= lf.box.x0 && x < lf.box.x1 && y >= lf.box.y0 && y < lf.box.y1) ++containing;
    EXPECT_EQ(containing, 1) << "point (" << x << "," << y << ")";
  }
}
