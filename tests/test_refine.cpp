#include <gtest/gtest.h>

#include <cmath>

#include "fem/fespace.h"
#include "mesh/refine.h"
#include "util/special_math.h"

using namespace landau;
using namespace landau::mesh;

TEST(Refine, SingleSpeciesGridMatchesPaperScale) {
  // One Maxwellian at the electron thermal speed on a 5 v_th domain: the
  // paper's Fig. 3 configuration produces ~20 cells.
  VelocityMeshSpec spec;
  spec.radius = 5.0;
  spec.base_levels = 1;
  spec.thermal_speeds = {std::sqrt(kPi) / 2.0}; // ~0.886
  spec.cells_per_thermal = 0.5;                 // coarse single-species target
  auto forest = build_velocity_mesh(spec);
  EXPECT_GE(forest.n_leaves(), 14u);
  EXPECT_LE(forest.n_leaves(), 40u);
}

TEST(Refine, DisparateThermalSpeedsRefineDeeper) {
  VelocityMeshSpec one;
  one.radius = 5.0;
  one.thermal_speeds = {0.886};
  one.cells_per_thermal = 1.0;
  VelocityMeshSpec two = one;
  two.thermal_speeds = {0.886, 0.886 / 40.0}; // electron + heavy ion
  auto f1 = build_velocity_mesh(one);
  auto f2 = build_velocity_mesh(two);
  EXPECT_GT(f2.n_leaves(), f1.n_leaves());
  EXPECT_GT(f2.max_level(), f1.max_level());
}

TEST(Refine, SmallestCellsResolveSmallestSpecies) {
  VelocityMeshSpec spec;
  spec.radius = 5.0;
  spec.thermal_speeds = {0.886, 0.05};
  spec.cells_per_thermal = 1.0;
  auto forest = build_velocity_mesh(spec);
  double hmin = 1e30;
  for (const auto& lf : forest.leaves()) hmin = std::min(hmin, lf.box.dx());
  EXPECT_LE(hmin, 0.05 + 1e-12);
}

TEST(Refine, MeshIsBalancedAndUsableForFem) {
  VelocityMeshSpec spec;
  spec.radius = 4.0;
  spec.thermal_speeds = {0.886, 0.1};
  spec.cells_per_thermal = 0.8;
  auto forest = build_velocity_mesh(spec);
  // Building the FE space exercises the 2:1 invariants (it throws on
  // unbalanced meshes) and the constraint machinery.
  fem::FESpace fes(forest, 3);
  EXPECT_GT(fes.n_dofs(), 0u);
  // The integral of 1 over the domain must be the exact cylindrical volume.
  la::Vec one = fes.interpolate([](double, double) { return 1.0; });
  EXPECT_NEAR(fes.moment(one.span(), [](double, double) { return 1.0; }),
              2 * kPi * (16.0 / 2) * 8.0, 1e-8);
}

TEST(Refine, MaxLevelsCapRespected) {
  VelocityMeshSpec spec;
  spec.radius = 5.0;
  spec.thermal_speeds = {1e-4}; // would need ~16 levels
  spec.max_levels = 6;
  auto forest = build_velocity_mesh(spec);
  EXPECT_LE(forest.max_level(), 6);
}
