// The batched, zero-reallocation linear-solve path: cross-solver equivalence
// of Newton updates on a real multi-species Landau Jacobian, symbolic-phase
// reuse across refactorization (the §III-G amortization), the shared
// validated block discovery, and the integrator-level correctness fixes
// (honest convergence/stagnation reporting, GMRES options plumbing).

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/operator.h"
#include "la/band.h"
#include "la/band_device.h"
#include "la/dense.h"
#include "la/gmres.h"
#include "solver/implicit.h"
#include "util/logging.h"

using namespace landau;
using namespace landau::la;

namespace {

LandauOptions small_opts() {
  LandauOptions o;
  o.order = 3;
  o.radius = 4.0;
  o.base_levels = 1;
  o.cells_per_thermal = 0.8;
  o.max_levels = 3;
  o.backend = Backend::CudaSim;
  o.n_workers = 2;
  return o;
}

/// Block-diagonal banded matrix: `blocks` independent species-style systems.
CsrMatrix block_matrix(std::size_t blocks, std::size_t block_n, std::size_t bw, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::size_t n = blocks * block_n;
  SparsityPattern p(n, n);
  for (std::size_t b = 0; b < blocks; ++b)
    for (std::size_t i = 0; i < block_n; ++i)
      for (std::size_t j = (i > bw ? i - bw : 0); j <= std::min(block_n - 1, i + bw); ++j)
        p.add(b * block_n + i, b * block_n + j);
  p.compress();
  CsrMatrix a(p);
  for (std::size_t b = 0; b < blocks; ++b)
    for (std::size_t i = 0; i < block_n; ++i)
      for (std::size_t j = (i > bw ? i - bw : 0); j <= std::min(block_n - 1, i + bw); ++j)
        a.add(b * block_n + i, b * block_n + j, i == j ? 10.0 : dist(rng));
  return a;
}

double rel_err(const Vec& x, const Vec& ref) {
  Vec d = x;
  d.axpy(-1.0, ref);
  const double nr = ref.norm2();
  return nr > 0 ? d.norm2() / nr : d.norm2();
}

} // namespace

TEST(SolverEquivalence, NewtonUpdateMatchesAcrossAllFourSolvers) {
  // A real multi-species quasi-Newton system M - dt (C - A) from the Landau
  // operator, solved through every linear path of the integrator.
  auto species = SpeciesSet::electron_deuterium();
  species[1].mass = 25.0;
  LandauOperator op(species, small_opts());
  op.pack(op.maxwellian_state());
  CsrMatrix c = op.new_matrix();
  op.add_collision(c);
  op.add_advection(c, -0.05);
  CsrMatrix sys = op.new_matrix();
  sys.axpy(1.0, op.mass());
  sys.axpy(-0.1, c);

  const std::size_t n = op.n_total();
  Vec rhs(n);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = std::sin(0.01 * static_cast<double>(i) + 1.0);

  Vec x_dense(n);
  DenseLU dense(sys.to_dense());
  dense.solve(rhs, x_dense);

  // Host band solver, serial and batched over a pool.
  BlockBandSolver serial;
  serial.analyze(sys);
  serial.factor(sys);
  Vec x_serial(n);
  serial.solve(rhs, x_serial);
  EXPECT_LT(rel_err(x_serial, x_dense), 1e-10);

  exec::ThreadPool pool(4);
  BlockBandSolver batched(&pool);
  batched.analyze(sys);
  batched.factor(sys);
  Vec x_batched(n);
  batched.solve(rhs, x_batched);
  EXPECT_EQ(rel_err(x_batched, x_serial), 0.0); // same arithmetic, any schedule

  DeviceBlockBandSolver dev(pool);
  dev.analyze(sys);
  dev.factor(sys);
  Vec x_dev(n);
  dev.solve(rhs, x_dev);
  EXPECT_LT(rel_err(x_dev, x_dense), 1e-10);

  Vec x_gmres(n);
  GmresOptions gopts;
  gopts.rtol = 1e-14;
  gopts.max_iterations = 5000;
  const auto res = gmres_solve(sys, rhs, x_gmres, gopts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(rel_err(x_gmres, x_dense), 1e-10);
}

TEST(SolverReuse, RefactorAfterReassemblySkipsAnalysis) {
  // The quasi-Newton pattern: zero_entries() + reassembly with new values,
  // then factor() again — the cached symbolic phase must be reused and the
  // new factorization must be correct.
  auto a = block_matrix(4, 30, 3, 7);
  const auto a0 = a; // keep the first values

  exec::ThreadPool pool(2);
  BlockBandSolver host(&pool);
  DeviceBlockBandSolver dev(pool);
  host.analyze(a);
  dev.analyze(a);
  host.factor(a);
  dev.factor(a);

  // Reassemble with different values on the same pattern.
  std::vector<double> new_vals(a.values().begin(), a.values().end());
  for (auto& v : new_vals) v *= 1.5;
  a.zero_entries();
  for (std::size_t i = 0; i < new_vals.size(); ++i) a.values()[i] = new_vals[i];

  host.factor(a);
  dev.factor(a);
  EXPECT_EQ(host.analysis_count(), 1);
  EXPECT_EQ(dev.analysis_count(), 1);

  Vec xref(a.rows()), b(a.rows()), xh(a.rows()), xd(a.rows());
  for (std::size_t i = 0; i < xref.size(); ++i) xref[i] = std::cos(0.2 * static_cast<double>(i));
  a.mult(xref, b);
  host.solve(b, xh);
  dev.solve(b, xd);
  EXPECT_LT(rel_err(xh, xref), 1e-11);
  EXPECT_LT(rel_err(xd, xref), 1e-11);

  // invalidate() drops the cache; re-analysis is counted.
  host.invalidate();
  EXPECT_FALSE(host.analyzed());
  host.analyze(a);
  EXPECT_EQ(host.analysis_count(), 2);
}

TEST(SolverReuse, CachedFactorMatchesFromScratch) {
  // The scatter-map path must reproduce the legacy from_csr + factor result
  // exactly (same band shape, same arithmetic).
  auto a = block_matrix(3, 25, 2, 19);
  BlockBandSolver solver;
  solver.analyze(a);
  for (auto& v : a.values()) v += 0.25; // values the analysis never saw
  solver.factor(a);

  Vec xref(a.rows()), b(a.rows()), x(a.rows());
  for (std::size_t i = 0; i < xref.size(); ++i) xref[i] = 1.0 + static_cast<double>(i % 7);
  a.mult(xref, b);
  solver.solve(b, x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], xref[i], 1e-11);
}

TEST(DenseLUPivoting, BadlyRowScaledSystemStaysAccurate) {
  // Rows spanning ten orders of magnitude (AMR cell volumes do this): pivot
  // selection by raw magnitude loses the factorization; scaled partial
  // pivoting must keep the solve backward stable.
  const std::size_t n = 40;
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double scale = std::pow(10.0, -10.0 * static_cast<double>(i) / (n - 1));
    for (std::size_t j = 0; j < n; ++j) a(i, j) = scale * (i == j ? 8.0 : dist(rng));
  }
  Vec xref(n), b(n), x(n);
  for (std::size_t i = 0; i < n; ++i) xref[i] = std::sin(0.5 * static_cast<double>(i));
  a.mult(xref, b);
  DenseLU lu(a);
  lu.solve(b, x);
  EXPECT_LT(rel_err(x, xref), 1e-12);
}

TEST(BlockDiscovery, RejectsNonContiguousOrdering) {
  // An ordering that interleaves two components must be caught, not
  // silently built into cross-coupled blocks.
  auto a = block_matrix(2, 4, 1, 3);
  std::vector<std::int32_t> interleaved = {0, 4, 1, 5, 2, 6, 3, 7};
  EXPECT_THROW(discover_blocks(a, interleaved), landau::Error);

  std::vector<std::int32_t> contiguous = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto blocks = discover_blocks(a, contiguous);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].begin, 0u);
  EXPECT_EQ(blocks[0].end, 4u);
  EXPECT_EQ(blocks[1].begin, 4u);
  EXPECT_EQ(blocks[1].end, 8u);
}

TEST(ImplicitIntegrator, SymbolicAnalysisAmortizedAcrossSteps) {
  LandauOperator op(SpeciesSet({{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0,
                                 .temperature = 1.0}}),
                    small_opts());
  NewtonOptions nopts;
  nopts.rtol = 1e-6;
  ImplicitIntegrator integrator(op, nopts);
  la::Vec f = op.maxwellian_state();
  for (int s = 0; s < 3; ++s) integrator.step(f, 0.5);
  EXPECT_GE(integrator.total_newton_iterations(), 3L);
  EXPECT_EQ(integrator.band_analysis_count(), 1); // one symbolic phase, many factors
}

TEST(ImplicitIntegrator, StagnationIsReportedHonestly) {
  // Unreachable tolerance: the update hits the roundoff floor first. The
  // step must report stagnated = true and converged = false — not the old
  // behavior of claiming convergence.
  LandauOperator op(SpeciesSet({{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0,
                                 .temperature = 1.0}}),
                    small_opts());
  NewtonOptions nopts;
  nopts.rtol = 0.0;
  nopts.atol = 0.0;
  nopts.max_iterations = 60;
  const LogLevel saved = Logger::instance().level();
  Logger::instance().set_level(LogLevel::Error); // the stagnation warn is expected
  ImplicitIntegrator integrator(op, nopts);
  la::Vec f = op.maxwellian_state();
  const auto stats = integrator.step(f, 0.5);
  Logger::instance().set_level(saved);
  EXPECT_TRUE(stats.stagnated);
  EXPECT_FALSE(stats.converged);
  EXPECT_GT(stats.residual_norm, 0.0);
}

TEST(ImplicitIntegrator, GmresOptionsArePlumbedThrough) {
  // The GMRES branch must honor LinearSolverOptions instead of hard-coded
  // tolerances: with sane options it reproduces the band-LU step.
  auto species = SpeciesSet::electron_deuterium();
  species[1].mass = 25.0;
  LandauOperator op(species, small_opts());
  NewtonOptions nopts;
  nopts.rtol = 1e-8;

  la::Vec f_band = op.maxwellian_state();
  ImplicitIntegrator band(op, nopts, LinearSolverKind::BandLU);
  band.step(f_band, 0.3);

  LinearSolverOptions lsopts;
  lsopts.gmres_rtol = 1e-13;
  lsopts.gmres_max_iterations = 4000;
  la::Vec f_gmres = op.maxwellian_state();
  ImplicitIntegrator gmres(op, nopts, LinearSolverKind::Gmres, lsopts);
  EXPECT_EQ(gmres.linear_options().gmres_rtol, 1e-13);
  gmres.step(f_gmres, 0.3);

  EXPECT_LT(rel_err(f_gmres, f_band), 1e-8);
}
