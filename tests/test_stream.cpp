#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "exec/stream.h"

using namespace landau::exec;

TEST(Stream, PreservesFifoOrderWithinAStream) {
  ThreadPool pool(2);
  Stream stream(pool);
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 50; ++i)
    stream.enqueue([&, i] {
      std::lock_guard<std::mutex> lock(m);
      order.push_back(i);
    });
  stream.synchronize();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Stream, MultipleStreamsAllComplete) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  {
    Stream a(pool), b(pool), c(pool);
    for (int i = 0; i < 30; ++i) {
      a.enqueue([&] { count.fetch_add(1); });
      b.enqueue([&] { count.fetch_add(1); });
      c.enqueue([&] { count.fetch_add(1); });
    }
    a.synchronize();
    b.synchronize();
    c.synchronize();
  }
  EXPECT_EQ(count.load(), 90);
}

TEST(Stream, SynchronizeOnEmptyStreamReturnsImmediately) {
  ThreadPool pool(1);
  Stream stream(pool);
  stream.synchronize();
  EXPECT_EQ(stream.pending(), 0u);
}

TEST(Stream, DestructorDrainsPendingWork) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  {
    Stream stream(pool);
    for (int i = 0; i < 20; ++i)
      stream.enqueue([&] { count.fetch_add(1); });
    // No explicit synchronize: the destructor must wait.
  }
  EXPECT_EQ(count.load(), 20);
}

TEST(Stream, TasksChainAcrossSynchronize) {
  ThreadPool pool(1);
  Stream stream(pool);
  std::atomic<int> count{0};
  stream.enqueue([&] { count.fetch_add(1); });
  stream.synchronize();
  stream.enqueue([&] { count.fetch_add(1); });
  stream.synchronize();
  EXPECT_EQ(count.load(), 2);
}
