// Integration tests: implicit time stepping with conservation invariants,
// relaxation to Maxwellian, H-theorem, and two-species temperature
// equilibration — the physics the conservative discretization exists for.

#include <gtest/gtest.h>

#include <cmath>

#include "core/operator.h"
#include "solver/implicit.h"
#include "util/special_math.h"

using namespace landau;

namespace {

SpeciesSet electron_only() {
  return SpeciesSet(
      {{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0}});
}

LandauOptions test_opts() {
  LandauOptions o;
  o.order = 3;
  o.radius = 4.0;
  o.base_levels = 1;
  o.cells_per_thermal = 0.8;
  o.max_levels = 3;
  o.backend = Backend::CudaSim;
  o.n_workers = 2;
  return o;
}

/// Discrete entropy -\int f ln f dmu (quadrature on the FE space).
double entropy(const LandauOperator& op, const la::Vec& f, int s) {
  auto b = op.block(f, s);
  // moment() evaluates f at quadrature points internally through g... we
  // need f ln f, so compute via a projected ln f — instead use the moment of
  // the function evaluated from dof values directly:
  std::vector<double> vals(op.space().n_ips()), gr(op.space().n_ips()), gz(op.space().n_ips());
  std::vector<double> r(op.space().n_ips()), z(op.space().n_ips()), w(op.space().n_ips());
  op.space().eval_at_ips(b, vals, gr, gz);
  op.space().ip_coordinates(r, z, w);
  double h = 0.0;
  for (std::size_t ip = 0; ip < vals.size(); ++ip) {
    const double fv = std::max(vals[ip], 1e-300);
    h -= 2.0 * kPi * r[ip] * w[ip] * fv * std::log(fv);
  }
  return h;
}

} // namespace

TEST(Operator, MaxwellianStateHasCorrectMoments) {
  LandauOperator op(electron_only(), test_opts());
  la::Vec f = op.maxwellian_state();
  const auto m = op.moments(f, 0);
  EXPECT_NEAR(m.density, 1.0, 2e-2);
  EXPECT_NEAR(m.energy, 0.5 * 1.5 * (kPi / 4.0), 2e-2); // (m/2)(3/2) theta
  EXPECT_NEAR(m.momentum_z, 0.0, 1e-10);
  EXPECT_NEAR(op.electron_temperature(f), 1.0, 3e-2);
}

TEST(Operator, ConservationOverImplicitSteps) {
  LandauOperator op(electron_only(), test_opts());
  NewtonOptions nopts;
  nopts.rtol = 1e-10;
  ImplicitIntegrator integrator(op, nopts);

  // Anisotropic (bi-Maxwellian) initial state: far from equilibrium but
  // smooth and well resolved.
  la::Vec f = op.project([](int, double r, double z) {
    const double th_perp = 0.5, th_par = 1.2;
    return 1.0 / (std::pow(kPi, 1.5) * th_perp * std::sqrt(th_par)) *
           std::exp(-r * r / th_perp - z * z / th_par);
  });
  const auto m0 = op.moments(f, 0);
  for (int s = 0; s < 3; ++s) integrator.step(f, 0.5);
  const auto m1 = op.moments(f, 0);

  // The discrete tensor identities make these exact to solver tolerance.
  EXPECT_NEAR(m1.density, m0.density, 1e-9 * std::abs(m0.density));
  EXPECT_NEAR(m1.momentum_z, m0.momentum_z, 1e-9 * std::max(1.0, std::abs(m0.momentum_z)));
  EXPECT_NEAR(m1.energy, m0.energy, 1e-8 * std::abs(m0.energy));
}

TEST(Operator, RelaxationTowardIsotropy) {
  LandauOperator op(electron_only(), test_opts());
  NewtonOptions loose;
  loose.rtol = 1e-6;
  ImplicitIntegrator integrator(op, loose);
  la::Vec f = op.project([](int, double r, double z) {
    const double th_perp = 0.5, th_par = 1.2;
    return 1.0 / (std::pow(kPi, 1.5) * th_perp * std::sqrt(th_par)) *
           std::exp(-r * r / th_perp - z * z / th_par);
  });
  auto anisotropy = [&](const la::Vec& state) {
    auto b = op.block(state, 0);
    const double n = op.space().moment(b, [](double, double) { return 1.0; });
    const double tperp = op.space().moment(b, [](double r, double) { return r * r; }) / n;
    const double tpar = op.space().moment(b, [](double, double z) { return z * z; }) / n;
    return tpar / (0.5 * tperp); // 1 when isotropic (tperp has 2 dof)
  };
  const double a0 = anisotropy(f);
  for (int s = 0; s < 6; ++s) integrator.step(f, 0.5);
  const double a1 = anisotropy(f);
  EXPECT_GT(a0, 1.5);                       // initial state is anisotropic
  EXPECT_LT(std::abs(a1 - 1.0), 0.8 * std::abs(a0 - 1.0)); // moved toward 1
}

TEST(Operator, HTheoremEntropyNondecreasing) {
  LandauOperator op(electron_only(), test_opts());
  NewtonOptions loose;
  loose.rtol = 1e-6;
  ImplicitIntegrator integrator(op, loose);
  la::Vec f = op.project([](int, double r, double z) {
    return maxwellian_rz(r, z, 0.7, 0.9, 0.8) + maxwellian_rz(r, z, 0.3, 0.4, -0.9);
  });
  double h_prev = entropy(op, f, 0);
  for (int s = 0; s < 5; ++s) {
    integrator.step(f, 0.4);
    const double h = entropy(op, f, 0);
    EXPECT_GE(h, h_prev - 1e-8 * std::abs(h_prev)) << "step " << s;
    h_prev = h;
  }
}

TEST(Operator, TwoSpeciesTemperatureEquilibration) {
  // Electrons hot, light "ions" cold: collisions must pull the temperatures
  // together while conserving total energy.
  SpeciesSet sp({{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.3},
                 {.name = "i", .mass = 5.0, .charge = 1.0, .density = 1.0, .temperature = 0.5}});
  auto opts = test_opts();
  opts.cells_per_thermal = 1.0;
  opts.max_levels = 4;
  LandauOperator op(sp, opts);
  NewtonOptions loose;
  loose.rtol = 1e-6;
  ImplicitIntegrator integrator(op, loose);
  la::Vec f = op.maxwellian_state();

  auto temperature = [&](const la::Vec& state, int s) {
    auto b = op.block(state, s);
    const double n = op.space().moment(b, [](double, double) { return 1.0; });
    const double v2 = op.space().moment(b, [](double r, double z) { return r * r + z * z; }) / n;
    return (4.0 / kPi) * sp[s].mass * (2.0 / 3.0) * v2;
  };
  const double te0 = temperature(f, 0), ti0 = temperature(f, 1);
  const double etot0 = op.moments(f, 0).energy + op.moments(f, 1).energy;
  for (int s = 0; s < 4; ++s) integrator.step(f, 1.0);
  const double te1 = temperature(f, 0), ti1 = temperature(f, 1);
  const double etot1 = op.moments(f, 0).energy + op.moments(f, 1).energy;

  EXPECT_LT(te1 - ti1, te0 - ti0);      // gap shrinks
  EXPECT_LT(te1, te0 + 1e-12);          // hot species cools
  EXPECT_GT(ti1, ti0 - 1e-12);          // cold species heats
  // Energy conserved to Newton-residual accumulation (rtol 1e-6 per step).
  EXPECT_NEAR(etot1, etot0, 5e-6 * etot0);
}

TEST(Operator, NewtonConvergesLinearly) {
  // The frozen-coefficient quasi-Newton converges linearly (§III): expect a
  // roughly constant contraction factor, a moderate iteration count at
  // engineering tolerance, and more iterations for tighter tolerance.
  LandauOperator op(electron_only(), test_opts());
  la::Vec f0 = op.project(
      [](int, double r, double z) { return maxwellian_rz(r, z, 1.0, 0.6, 0.5); });

  NewtonOptions loose;
  loose.rtol = 1e-6;
  la::Vec fa = f0;
  ImplicitIntegrator ia(op, loose);
  const auto sa = ia.step(fa, 0.5);
  EXPECT_TRUE(sa.converged);
  EXPECT_LE(sa.newton_iterations, 25);
  EXPECT_GE(sa.newton_iterations, 1);

  NewtonOptions tight;
  tight.rtol = 1e-10;
  la::Vec fb = f0;
  ImplicitIntegrator ib(op, tight);
  const auto sb = ib.step(fb, 0.5);
  EXPECT_TRUE(sb.converged);
  EXPECT_GT(sb.newton_iterations, sa.newton_iterations); // linear, not quadratic
}

TEST(Operator, BandSolverSeesOneBlockPerSpecies) {
  SpeciesSet sp = SpeciesSet::electron_deuterium();
  sp[1].mass = 25.0;
  LandauOperator op(sp, test_opts());
  NewtonOptions loose;
  loose.rtol = 1e-5;
  ImplicitIntegrator integrator(op, loose);
  la::Vec f = op.maxwellian_state();
  integrator.step(f, 0.3);
  EXPECT_EQ(integrator.band_blocks(), 2u);
  EXPECT_LT(integrator.band_bandwidth(), op.n_dofs_per_species());
}

TEST(Operator, LinearSolversAgree) {
  LandauOperator op(electron_only(), test_opts());
  la::Vec f0 = op.project(
      [](int, double r, double z) { return maxwellian_rz(r, z, 1.0, 0.8, -0.4); });

  la::Vec f_band = f0, f_device = f0, f_dense = f0, f_gmres = f0;
  NewtonOptions nopts;
  nopts.rtol = 1e-8;
  ImplicitIntegrator band(op, nopts, LinearSolverKind::BandLU);
  band.step(f_band, 0.5);
  ImplicitIntegrator device(op, nopts, LinearSolverKind::DeviceBandLU);
  device.step(f_device, 0.5);
  ImplicitIntegrator dense(op, nopts, LinearSolverKind::DenseLU);
  dense.step(f_dense, 0.5);
  ImplicitIntegrator gmres(op, nopts, LinearSolverKind::Gmres);
  gmres.step(f_gmres, 0.5);

  for (std::size_t i = 0; i < f_band.size(); ++i) {
    EXPECT_NEAR(f_device[i], f_band[i], 1e-10 * std::max(1.0, std::abs(f_band[i])));
    EXPECT_NEAR(f_dense[i], f_band[i], 1e-7 * std::max(1.0, std::abs(f_band[i])));
    EXPECT_NEAR(f_gmres[i], f_band[i], 1e-5 * std::max(1.0, std::abs(f_band[i])));
  }
}
