#include <gtest/gtest.h>

#include <cmath>

#include "core/ip_data.h"
#include "fem/fespace.h"
#include "mesh/refine.h"
#include "util/special_math.h"

using namespace landau;

namespace {

fem::FESpace make_space(mesh::Forest& forest_out) {
  mesh::VelocityMeshSpec spec;
  spec.radius = 4.0;
  spec.thermal_speeds = {0.886};
  spec.cells_per_thermal = 0.8;
  spec.max_levels = 3;
  forest_out = mesh::build_velocity_mesh(spec);
  return fem::FESpace(forest_out, 3);
}

} // namespace

TEST(IPData, PackLayoutAndSizes) {
  mesh::Forest forest({0, -1, 1, 1}, 1, 2);
  auto fes = make_space(forest);
  la::Vec f1 = fes.interpolate([](double r, double z) { return r + z; });
  la::Vec f2 = fes.interpolate([](double r, double z) { return r - z; });
  std::vector<la::Vec> states = {f1, f2};
  IPData ip;
  pack_ip_data(fes, states, &ip);
  EXPECT_EQ(ip.n, fes.n_ips());
  EXPECT_EQ(ip.n_species, 2);
  EXPECT_EQ(ip.f.size(), 2 * ip.n);
  EXPECT_GT(ip.bytes(), 0u);
}

TEST(IPData, WeightsIncludeCylindricalFactor) {
  // sum_j w_j = \int r dr dz over the domain (measure without 2 pi).
  mesh::Forest forest({0, -1, 1, 1}, 1, 2);
  auto fes = make_space(forest);
  la::Vec f = fes.interpolate([](double, double) { return 1.0; });
  std::vector<la::Vec> states = {f};
  IPData ip;
  pack_ip_data(fes, states, &ip);
  double sum = 0;
  for (std::size_t j = 0; j < ip.n; ++j) sum += ip.w[j];
  // \int_0^4 r dr * \int_{-4}^{4} dz = 8 * 8 = 64.
  EXPECT_NEAR(sum, 64.0, 1e-9);
}

TEST(IPData, ValuesAndGradientsMatchFunction) {
  mesh::Forest forest({0, -1, 1, 1}, 1, 2);
  auto fes = make_space(forest);
  auto fn = [](double r, double z) { return r * r - 0.5 * z * r + 2.0; };
  la::Vec f = fes.interpolate(fn);
  std::vector<la::Vec> states = {f};
  IPData ip;
  pack_ip_data(fes, states, &ip);
  for (std::size_t j = 0; j < ip.n; ++j) {
    EXPECT_NEAR(ip.f_at(0, j), fn(ip.r[j], ip.z[j]), 1e-10);
    EXPECT_NEAR(ip.dfr_at(0, j), 2 * ip.r[j] - 0.5 * ip.z[j], 1e-9);
    EXPECT_NEAR(ip.dfz_at(0, j), -0.5 * ip.r[j], 1e-9);
  }
}

TEST(IPData, SpeciesMajorAddressing) {
  mesh::Forest forest({0, -1, 1, 1}, 1, 2);
  auto fes = make_space(forest);
  la::Vec a = fes.interpolate([](double, double) { return 3.0; });
  la::Vec b = fes.interpolate([](double, double) { return 7.0; });
  std::vector<la::Vec> states = {a, b};
  IPData ip;
  pack_ip_data(fes, states, &ip);
  for (std::size_t j = 0; j < ip.n; j += 7) {
    EXPECT_NEAR(ip.f_at(0, j), 3.0, 1e-12);
    EXPECT_NEAR(ip.f_at(1, j), 7.0, 1e-12);
  }
}

TEST(IPData, MismatchedStateSizeThrows) {
  mesh::Forest forest({0, -1, 1, 1}, 1, 2);
  auto fes = make_space(forest);
  std::vector<la::Vec> states = {la::Vec(3)};
  IPData ip;
  EXPECT_THROW(pack_ip_data(fes, states, &ip), landau::Error);
}
