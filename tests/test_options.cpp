#include <gtest/gtest.h>

#include "util/error.h"
#include "util/options.h"

using landau::Options;

TEST(Options, ParsesKeyValuePairs) {
  const char* argv[] = {"prog", "-n", "42", "-dt", "0.5", "-name", "quench"};
  Options o;
  o.parse(7, argv);
  EXPECT_EQ(o.get<int>("n", 0), 42);
  EXPECT_DOUBLE_EQ(o.get<double>("dt", 1.0), 0.5);
  EXPECT_EQ(o.get<std::string>("name", ""), "quench");
}

TEST(Options, DefaultsApplyWhenAbsent) {
  Options o;
  EXPECT_EQ(o.get<int>("missing", 7), 7);
  EXPECT_FALSE(o.has("missing"));
}

TEST(Options, BareFlagsAreTrueBooleans) {
  const char* argv[] = {"prog", "-verbose", "-n", "3"};
  Options o;
  o.parse(4, argv);
  EXPECT_TRUE(o.get<bool>("verbose", false));
  EXPECT_EQ(o.get<int>("n", 0), 3);
}

TEST(Options, NegativeNumbersAreValuesNotFlags) {
  const char* argv[] = {"prog", "-z0", "-5.5", "-k", "-3"};
  Options o;
  o.parse(5, argv);
  EXPECT_DOUBLE_EQ(o.get<double>("z0", 0.0), -5.5);
  EXPECT_EQ(o.get<int>("k", 0), -3);
}

TEST(Options, HelpFlagDetected) {
  const char* argv[] = {"prog", "-help"};
  Options o;
  o.parse(2, argv);
  EXPECT_TRUE(o.help_requested());
}

TEST(Options, ListOptionParsesCommaSeparated) {
  const char* argv[] = {"prog", "-masses", "1,2,183.84"};
  Options o;
  o.parse(3, argv);
  auto v = o.get_list<double>("masses", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[2], 183.84);
}

TEST(Options, RequireThrowsWhenMissing) {
  Options o;
  EXPECT_THROW(o.require<int>("absolutely_required"), landau::Error);
}

TEST(Options, BadValueThrows) {
  Options o;
  o.set("n", "not_a_number");
  EXPECT_THROW(o.get<int>("n", 0), landau::Error);
}

TEST(Options, PositionalArgumentThrows) {
  const char* argv[] = {"prog", "stray"};
  Options o;
  EXPECT_THROW(o.parse(2, argv), landau::Error);
}

TEST(Options, HelpTextListsDocumentedOptions) {
  Options o;
  o.get<int>("nsteps", 100, "number of steps");
  const auto text = o.help_text();
  EXPECT_NE(text.find("nsteps"), std::string::npos);
  EXPECT_NE(text.find("number of steps"), std::string::npos);
}

TEST(Options, ProgrammaticSetOverridesDefault) {
  Options o;
  o.set("order", 3);
  EXPECT_EQ(o.get<int>("order", 1), 3);
}
