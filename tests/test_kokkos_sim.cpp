#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "exec/kokkos_sim.h"

using namespace landau::exec;
namespace kk = landau::exec::kokkos;

TEST(KokkosSim, LeagueCoversAllMembers) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(23);
  kk::parallel_for(pool, kk::TeamPolicy{23, 4, 8},
                   [&](kk::TeamMember& m) { hits[static_cast<std::size_t>(m.league_rank())].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(KokkosSim, VectorReduceSumsScalars) {
  ThreadPool pool(0);
  double result = 0.0;
  kk::parallel_for(pool, kk::TeamPolicy{1, 1, 8}, [&](kk::TeamMember& m) {
    double sum = 0.0;
    m.vector_reduce(100, [](int i, double& acc) { acc += i; }, sum);
    result = sum;
  });
  EXPECT_DOUBLE_EQ(result, 4950.0);
}

TEST(KokkosSim, VectorReduceOnGeneralObjects) {
  // Kokkos supports reductions over C++ objects with a default constructor
  // and a join (operator+=) — the feature the paper highlights (§III-D).
  struct DK {
    double d[2][2] = {{0, 0}, {0, 0}};
    double k[2] = {0, 0};
    DK& operator+=(const DK& o) {
      for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j) d[i][j] += o.d[i][j];
      for (int i = 0; i < 2; ++i) k[i] += o.k[i];
      return *this;
    }
  };
  ThreadPool pool(0);
  DK result;
  kk::parallel_for(pool, kk::TeamPolicy{1, 1, 4}, [&](kk::TeamMember& m) {
    m.vector_reduce(
        10,
        [](int i, DK& acc) {
          acc.d[0][1] += i;
          acc.k[0] += 2.0 * i;
        },
        result);
  });
  EXPECT_DOUBLE_EQ(result.d[0][1], 45.0);
  EXPECT_DOUBLE_EQ(result.k[0], 90.0);
  EXPECT_DOUBLE_EQ(result.d[1][1], 0.0);
}

TEST(KokkosSim, TeamScratchIsPerMember) {
  ThreadPool pool(2);
  std::vector<double> out(8, 0.0);
  kk::parallel_for(pool, kk::TeamPolicy{8, 2, 2}, [&](kk::TeamMember& m) {
    auto scratch = m.team_scratch<double>(16);
    m.team_range(16, [&](int i) { scratch[static_cast<std::size_t>(i)] = m.league_rank() + i; });
    m.team_barrier();
    double s = 0;
    for (double v : scratch) s += v;
    out[static_cast<std::size_t>(m.league_rank())] = s;
  });
  for (int r = 0; r < 8; ++r)
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)], 16.0 * r + 120.0);
}

TEST(KokkosSim, NestedHierarchyMatchesManualLoop) {
  // league x team x vector triple loop accumulates the same total as a flat
  // loop (atomicity by per-member partials).
  ThreadPool pool(2);
  std::vector<double> partial(6, 0.0);
  kk::parallel_for(pool, kk::TeamPolicy{6, 3, 4}, [&](kk::TeamMember& m) {
    double mine = 0.0;
    m.team_range(3, [&](int t) {
      double s = 0.0;
      m.vector_reduce(4, [&](int v, double& acc) { acc += m.league_rank() * 100 + t * 10 + v; }, s);
      mine += s;
    });
    partial[static_cast<std::size_t>(m.league_rank())] = mine;
  });
  double total = 0;
  for (double p : partial) total += p;
  double expect = 0;
  for (int l = 0; l < 6; ++l)
    for (int t = 0; t < 3; ++t)
      for (int v = 0; v < 4; ++v) expect += l * 100 + t * 10 + v;
  EXPECT_DOUBLE_EQ(total, expect);
}
