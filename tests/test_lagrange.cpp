#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fem/lagrange.h"
#include "fem/tabulation.h"

using namespace landau::fem;

class LagrangeSweep : public ::testing::TestWithParam<int> {};

TEST_P(LagrangeSweep, KroneckerPropertyAtNodes) {
  const Lagrange1D basis(GetParam());
  for (int i = 0; i < basis.n_nodes(); ++i)
    for (int j = 0; j < basis.n_nodes(); ++j)
      EXPECT_NEAR(basis.eval(j, basis.nodes()[static_cast<std::size_t>(i)]), i == j ? 1.0 : 0.0,
                  1e-13);
}

TEST_P(LagrangeSweep, PartitionOfUnity) {
  const Lagrange1D basis(GetParam());
  for (double x : {-1.0, -0.7, -0.3, 0.0, 0.2, 0.55, 0.99, 1.0}) {
    double s = 0, ds = 0;
    for (int j = 0; j < basis.n_nodes(); ++j) {
      s += basis.eval(j, x);
      ds += basis.eval_deriv(j, x);
    }
    EXPECT_NEAR(s, 1.0, 1e-12);
    EXPECT_NEAR(ds, 0.0, 1e-11);
  }
}

TEST_P(LagrangeSweep, ReproducesPolynomialsOfItsOrder) {
  const int k = GetParam();
  const Lagrange1D basis(k);
  // Interpolate x^k at the nodes and check at off-node points.
  for (double x : {-0.9, -0.123, 0.4, 0.8}) {
    double interp = 0, dinterp = 0;
    for (int j = 0; j < basis.n_nodes(); ++j) {
      const double fj = std::pow(basis.nodes()[static_cast<std::size_t>(j)], k);
      interp += fj * basis.eval(j, x);
      dinterp += fj * basis.eval_deriv(j, x);
    }
    EXPECT_NEAR(interp, std::pow(x, k), 1e-12);
    EXPECT_NEAR(dinterp, k * std::pow(x, k - 1), 1e-10);
  }
}

TEST_P(LagrangeSweep, NodesSymmetricWithEndpoints) {
  const auto nodes = gauss_lobatto_nodes(GetParam());
  EXPECT_DOUBLE_EQ(nodes.front(), -1.0);
  EXPECT_DOUBLE_EQ(nodes.back(), 1.0);
  for (std::size_t i = 0; i < nodes.size(); ++i)
    EXPECT_DOUBLE_EQ(nodes[i], -nodes[nodes.size() - 1 - i]);
}

INSTANTIATE_TEST_SUITE_P(Orders, LagrangeSweep, ::testing::Values(1, 2, 3, 4, 6));

TEST(Lagrange, Q3NodesAreGllPoints) {
  // GLL nodes for k=3: {-1, -1/sqrt(5), 1/sqrt(5), 1}.
  const auto nodes = gauss_lobatto_nodes(3);
  EXPECT_NEAR(nodes[1], -1.0 / std::sqrt(5.0), 1e-14);
  EXPECT_NEAR(nodes[2], 1.0 / std::sqrt(5.0), 1e-14);
}

TEST(Tabulation, PartitionOfUnityAtQuadraturePoints) {
  for (int k : {1, 2, 3}) {
    const Tabulation tab(k);
    for (int q = 0; q < tab.n_quad(); ++q) {
      double s = 0, gx = 0, gy = 0;
      for (int b = 0; b < tab.n_basis(); ++b) {
        s += tab.B(q, b);
        gx += tab.E(q, b, 0);
        gy += tab.E(q, b, 1);
      }
      EXPECT_NEAR(s, 1.0, 1e-12);
      EXPECT_NEAR(gx, 0.0, 1e-11);
      EXPECT_NEAR(gy, 0.0, 1e-11);
    }
  }
}

TEST(Tabulation, GradientsDifferentiateTensorPolynomials) {
  const Tabulation tab(3);
  // Coefficients of f(x,y) = x^2 y at the nodes; check gradient tabulation.
  std::vector<double> coeff(static_cast<std::size_t>(tab.n_basis()));
  for (int b = 0; b < tab.n_basis(); ++b)
    coeff[static_cast<std::size_t>(b)] = tab.node_x(b) * tab.node_x(b) * tab.node_y(b);
  for (int q = 0; q < tab.n_quad(); ++q) {
    double v = 0, dx = 0, dy = 0;
    for (int b = 0; b < tab.n_basis(); ++b) {
      v += tab.B(q, b) * coeff[static_cast<std::size_t>(b)];
      dx += tab.E(q, b, 0) * coeff[static_cast<std::size_t>(b)];
      dy += tab.E(q, b, 1) * coeff[static_cast<std::size_t>(b)];
    }
    EXPECT_NEAR(v, tab.qx(q) * tab.qx(q) * tab.qy(q), 1e-12);
    EXPECT_NEAR(dx, 2 * tab.qx(q) * tab.qy(q), 1e-11);
    EXPECT_NEAR(dy, tab.qx(q) * tab.qx(q), 1e-11);
  }
}

TEST(Tabulation, EvalBasisMatchesTables) {
  const Tabulation tab(2);
  std::vector<double> vals(static_cast<std::size_t>(tab.n_basis()));
  for (int q = 0; q < tab.n_quad(); ++q) {
    tab.eval_basis(tab.qx(q), tab.qy(q), vals.data());
    for (int b = 0; b < tab.n_basis(); ++b)
      EXPECT_NEAR(vals[static_cast<std::size_t>(b)], tab.B(q, b), 1e-14);
  }
}
