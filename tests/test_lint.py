#!/usr/bin/env python3
"""Analysis-tier tests for landau-lint (run under `ctest -L analysis`).

Modes (pass as the single positional argument):

  corpus    every seeded-violation file in tests/lint_corpus/ produces
            exactly its golden findings (expected/<name>.txt), byte-for-byte,
            and the exit code matches (1 with findings, 0 for clean.cpp).
  tree      the real source tree lints clean: zero findings, exit 0.
  toggles   each check is disableable independently: with --disable CHECK the
            corpus loses exactly that check's findings and keeps the others;
            with --enable CHECK it reports only that check's findings.
            Also exercises --frontend tokens explicitly and --format json,
            and asserts the auto frontend degrades gracefully (a run never
            fails spuriously when libclang is absent).
  all       run every mode (default).

`--update-goldens` regenerates expected/*.txt after an intentional analyzer
change (not available from ctest; run by hand).
"""

import argparse
import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO, "tools", "lint", "landau_lint.py")
CORPUS = os.path.join(REPO, "tests", "lint_corpus")
EXPECTED = os.path.join(CORPUS, "expected")

ALL_CHECKS = [
    "barrier-divergence",
    "capture",
    "atomics",
    "shared-bounds",
    "launch-hygiene",
    "fp-hygiene",
]

# corpus file stem -> the check its seeded violations belong to
CHECK_OF = {
    "barrier_divergence": "barrier-divergence",
    "capture": "capture",
    "atomics": "atomics",
    "shared_bounds": "shared-bounds",
    "launch_hygiene": "launch-hygiene",
    "fp_hygiene": "fp-hygiene",
}

failures = []


def fail(msg):
    print(f"FAIL: {msg}")
    failures.append(msg)


def run_lint(*args):
    """Run the linter from the repo root so finding paths are repo-relative."""
    proc = subprocess.run(
        [sys.executable, LINT, *args],
        cwd=REPO, capture_output=True, text=True, timeout=120)
    return proc


def corpus_files():
    return sorted(
        f for f in os.listdir(CORPUS)
        if f.endswith(".cpp") and os.path.isfile(os.path.join(CORPUS, f)))


def rel(name):
    return os.path.join("tests", "lint_corpus", name)


def mode_corpus(update=False):
    for name in corpus_files():
        stem = name[:-4]
        proc = run_lint("--quiet", rel(name))
        golden_path = os.path.join(EXPECTED, stem + ".txt")
        if update:
            with open(golden_path, "w") as f:
                f.write(proc.stdout)
            print(f"updated {golden_path}")
            continue
        if not os.path.exists(golden_path):
            fail(f"{name}: missing golden {golden_path}")
            continue
        with open(golden_path) as f:
            golden = f.read()
        if proc.stdout != golden:
            fail(f"{name}: findings differ from golden\n--- expected\n"
                 f"{golden}--- actual\n{proc.stdout}")
        want_exit = 0 if not golden.strip() else 1
        if proc.returncode != want_exit:
            fail(f"{name}: exit code {proc.returncode}, expected {want_exit}")
        # Every line commented VIOLATION must be flagged: 100% seeded recall.
        with open(os.path.join(CORPUS, name)) as f:
            seeded = [i for i, text in enumerate(f, 1) if "VIOLATION" in text]
        flagged = {int(line.split(":")[1])
                   for line in proc.stdout.splitlines() if ":" in line}
        missed = [i for i in seeded if i not in flagged]
        if missed:
            fail(f"{name}: seeded violations on lines {missed} not flagged")
    if not update:
        print(f"corpus: {len(corpus_files())} files match their goldens")


def mode_tree():
    proc = run_lint("--quiet", "src")
    if proc.returncode != 0 or proc.stdout.strip():
        fail(f"real tree not lint-clean (exit {proc.returncode}):\n{proc.stdout}")
    else:
        print("tree: src/ lints clean")


def check_names(stdout):
    names = set()
    for line in stdout.splitlines():
        if "[" in line and "]" in line:
            names.add(line.split("[", 1)[1].split("]", 1)[0])
    return names


def mode_toggles():
    targets = [rel(f) for f in corpus_files()]
    base = run_lint("--quiet", *targets)
    base_checks = check_names(base.stdout)
    if base_checks != set(ALL_CHECKS):
        fail(f"corpus does not cover all checks: got {sorted(base_checks)}")
    for check in ALL_CHECKS:
        off = run_lint("--quiet", "--disable", check, *targets)
        got = check_names(off.stdout)
        if check in got:
            fail(f"--disable {check} still reports {check} findings")
        if got != base_checks - {check}:
            fail(f"--disable {check} altered other checks: {sorted(got)}")
        only = run_lint("--quiet", "--enable", check, *targets)
        got = check_names(only.stdout)
        if got != {check}:
            fail(f"--enable {check} reported {sorted(got)}")
    # Explicit tokens frontend: identical findings to the default run.
    toks = run_lint("--quiet", "--frontend", "tokens", *targets)
    if toks.stdout != base.stdout:
        fail("--frontend tokens differs from default frontend output")
    # Auto frontend degrades gracefully: exit is 0/1 (never a spurious 2)
    # whether or not libclang is installed, and the summary names a frontend.
    auto = run_lint(*targets)
    if auto.returncode not in (0, 1):
        fail(f"auto frontend failed spuriously (exit {auto.returncode}): "
             f"{auto.stderr}")
    if "frontend=" not in auto.stderr:
        fail(f"summary line missing frontend note: {auto.stderr}")
    # JSON output parses and agrees with the text finding count.
    js = run_lint("--quiet", "--format", "json", *targets)
    try:
        parsed = json.loads(js.stdout)
    except json.JSONDecodeError as e:
        fail(f"--format json output unparsable: {e}")
        parsed = []
    if len(parsed) != len([l for l in base.stdout.splitlines() if l.strip()]):
        fail("json finding count differs from text output")
    print("toggles: all checks independently disable/enable; "
          "frontends and json agree")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("mode", nargs="?", default="all",
                    choices=["corpus", "tree", "toggles", "all"])
    ap.add_argument("--update-goldens", action="store_true")
    args = ap.parse_args()

    if args.update_goldens:
        mode_corpus(update=True)
        return 0
    if args.mode in ("corpus", "all"):
        mode_corpus()
    if args.mode in ("tree", "all"):
        mode_tree()
    if args.mode in ("toggles", "all"):
        mode_toggles()
    if failures:
        print(f"{len(failures)} failure(s)")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
