#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "la/gmres.h"

using namespace landau::la;

namespace {

CsrMatrix laplacian_1d(std::size_t n) {
  SparsityPattern p(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    p.add(i, i);
    if (i > 0) p.add(i, i - 1);
    if (i + 1 < n) p.add(i, i + 1);
  }
  p.compress();
  CsrMatrix a(p);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(i, i, 2.0);
    if (i > 0) a.add(i, i - 1, -1.0);
    if (i + 1 < n) a.add(i, i + 1, -1.0);
  }
  return a;
}

} // namespace

TEST(Gmres, SolvesSpdLaplacian) {
  const std::size_t n = 50;
  auto a = laplacian_1d(n);
  Vec xref(n), b(n), x(n);
  for (std::size_t i = 0; i < n; ++i) xref[i] = std::sin(0.2 * static_cast<double>(i));
  a.mult(xref, b);
  auto res = gmres_solve(a, b, x);
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-7);
}

TEST(Gmres, NonsymmetricSystem) {
  const std::size_t n = 30;
  auto a = laplacian_1d(n);
  // Add asymmetric convection within the pattern.
  for (std::size_t i = 1; i < n; ++i) a.add(i, i - 1, 0.5);
  Vec xref(n), b(n), x(n);
  for (std::size_t i = 0; i < n; ++i) xref[i] = 1.0 / (1.0 + static_cast<double>(i));
  a.mult(xref, b);
  auto res = gmres_solve(a, b, x);
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-7);
}

TEST(Gmres, WarmStartConvergesImmediately) {
  const std::size_t n = 20;
  auto a = laplacian_1d(n);
  Vec xref(n), b(n);
  for (std::size_t i = 0; i < n; ++i) xref[i] = static_cast<double>(i);
  a.mult(xref, b);
  Vec x = xref; // exact initial guess
  auto res = gmres_solve(a, b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(Gmres, RestartPathStillConverges) {
  const std::size_t n = 100;
  auto a = laplacian_1d(n);
  Vec xref(n), b(n), x(n);
  for (std::size_t i = 0; i < n; ++i) xref[i] = std::cos(0.05 * static_cast<double>(i));
  a.mult(xref, b);
  GmresOptions opts;
  opts.restart = 10; // force restarts
  opts.max_iterations = 5000;
  auto res = gmres_solve(a, b, x, opts);
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-6);
}

TEST(Gmres, ReportsNonConvergenceWithinBudget) {
  const std::size_t n = 200;
  auto a = laplacian_1d(n);
  Vec b(n, 1.0), x(n);
  GmresOptions opts;
  opts.max_iterations = 3;
  opts.rtol = 1e-14;
  auto res = gmres_solve(a, b, x, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_GT(res.residual_norm, 0.0);
}

TEST(Gmres, NanMatrixLeavesInitialGuessUntouched) {
  // Failure contract: a non-finite initial residual reports breakdown and
  // returns without touching x, so the caller's guess stays usable.
  const std::size_t n = 10;
  auto a = laplacian_1d(n);
  a.add(4, 4, std::numeric_limits<double>::quiet_NaN());
  Vec b(n, 1.0), x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = 0.25 * static_cast<double>(i);
  const Vec x0 = x;
  auto res = gmres_solve(a, b, x);
  EXPECT_FALSE(res.converged);
  EXPECT_TRUE(res.breakdown);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x[i], x0[i]);
}

TEST(Gmres, NanRhsReportsBreakdownWithFiniteX) {
  const std::size_t n = 10;
  auto a = laplacian_1d(n);
  Vec b(n, 1.0), x(n);
  b[7] = std::numeric_limits<double>::quiet_NaN();
  auto res = gmres_solve(a, b, x);
  EXPECT_FALSE(res.converged);
  EXPECT_TRUE(res.breakdown);
  EXPECT_TRUE(x.all_finite()); // defined output even on failure
}

TEST(Gmres, CleanSolveReportsNoBreakdown) {
  const std::size_t n = 20;
  auto a = laplacian_1d(n);
  Vec xref(n), b(n), x(n);
  for (std::size_t i = 0; i < n; ++i) xref[i] = 1.0;
  a.mult(xref, b);
  auto res = gmres_solve(a, b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_FALSE(res.breakdown);
}
