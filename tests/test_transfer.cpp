// Field transfer, L2 projection and theta-scheme accuracy — the regridding
// and time-accuracy features layered on the core solver.

#include <gtest/gtest.h>

#include <cmath>

#include "core/operator.h"
#include "fem/transfer.h"
#include "mesh/refine.h"
#include "solver/implicit.h"
#include "util/special_math.h"

using namespace landau;
using mesh::Box;
using mesh::Forest;

namespace {

Forest base_mesh() {
  Forest f(Box{0, -3, 3, 3}, 1, 2);
  f.refine_uniform(2);
  return f;
}

} // namespace

TEST(Transfer, EvalPointMatchesInterpolatedFunction) {
  auto forest = base_mesh();
  fem::FESpace fes(forest, 3);
  auto fn = [](double r, double z) { return r * r - 0.3 * z + 1.0; };
  la::Vec dofs = fes.interpolate(fn);
  for (auto [r, z] : {std::pair{0.3, 0.7}, {1.9, -2.2}, {2.99, 2.99}, {0.0, 0.0}})
    EXPECT_NEAR(fem::eval_point(fes, dofs.span(), r, z), fn(r, z), 1e-10);
  EXPECT_EQ(fem::eval_point(fes, dofs.span(), 5.0, 0.0), 0.0); // outside
}

TEST(Transfer, RefinementIsExactForNestedSpaces) {
  auto coarse = base_mesh();
  fem::FESpace from(coarse, 3);
  la::Vec dofs = from.interpolate(
      [](double r, double z) { return maxwellian_rz(r, z, 1.0, 1.0); });

  Forest fine_forest = base_mesh();
  fine_forest.refine_uniform(1);
  fem::FESpace to(fine_forest, 3);
  la::Vec moved = fem::transfer(from, dofs.span(), to);
  // Transfer of an FE function to a nested refinement reproduces it exactly:
  // compare point values everywhere.
  for (auto [r, z] : {std::pair{0.11, 0.53}, {1.3, -1.7}, {2.5, 2.1}})
    EXPECT_NEAR(fem::eval_point(to, moved.span(), r, z),
                fem::eval_point(from, dofs.span(), r, z), 1e-11);
  // Moments preserved to interpolation accuracy.
  const double n0 = from.moment(dofs.span(), [](double, double) { return 1.0; });
  const double n1 = to.moment(moved.span(), [](double, double) { return 1.0; });
  EXPECT_NEAR(n1, n0, 1e-10 * std::abs(n0));
}

TEST(Transfer, GradientIndicatorTargetsSteepRegions) {
  auto forest = base_mesh();
  fem::FESpace fes(forest, 3);
  // Narrow bump near the origin.
  la::Vec dofs = fes.interpolate(
      [](double r, double z) { return std::exp(-(r * r + z * z) / 0.2); });
  auto indicator = fem::gradient_indicator(fes, dofs.span(), 0.05, 6);
  // Cells near the bump must be flagged; far cells must not.
  int near_flagged = 0, far_flagged = 0;
  for (const auto& lf : forest.leaves()) {
    const bool flagged = indicator(lf.box, lf.level);
    const double d = std::hypot(lf.box.cx(), lf.box.cy());
    if (d < 0.8 && flagged) ++near_flagged;
    if (d > 2.0 && flagged) ++far_flagged;
  }
  EXPECT_GT(near_flagged, 0);
  EXPECT_EQ(far_flagged, 0);
}

TEST(Transfer, RegridCyclePreservesSolution) {
  // The full regrid loop: evolve-ish state -> indicator -> refined mesh ->
  // transfer -> moments preserved.
  auto forest = base_mesh();
  fem::FESpace from(forest, 3);
  la::Vec dofs = from.interpolate([](double r, double z) {
    return maxwellian_rz(r, z, 1.0, 0.6) + maxwellian_rz(r, z, 0.2, 0.2, 1.5);
  });
  auto indicator = fem::gradient_indicator(from, dofs.span(), 0.02, 5);
  Forest refined = base_mesh();
  while (refined.refine_where(indicator) > 0) {
  }
  refined.balance();
  ASSERT_GT(refined.n_leaves(), forest.n_leaves());
  fem::FESpace to(refined, 3);
  la::Vec moved = fem::transfer(from, dofs.span(), to);
  for (auto g : {+0, +1}) {
    auto weight = [g](double r, double z) { return g == 0 ? 1.0 : r * r + z * z; };
    EXPECT_NEAR(to.moment(moved.span(), weight), from.moment(dofs.span(), weight),
                1e-9 * std::abs(from.moment(dofs.span(), weight)));
  }
}

TEST(Projection, L2ProjectionPreservesMomentsBetterThanInterpolation) {
  // On a coarse mesh the nodal interpolant of a narrow Maxwellian loses
  // density; the L2 projection preserves it to quadrature accuracy.
  Forest forest(Box{0, -3, 3, 3}, 1, 2);
  forest.refine_uniform(1); // very coarse: h = 1.5
  fem::FESpace fes(forest, 3);
  auto fn = [](double r, double z) { return maxwellian_rz(r, z, 1.0, 0.8); };
  la::Vec interp = fes.interpolate(fn);
  la::Vec proj = fes.project_l2(fn);
  // Reference density via direct quadrature of the analytic function.
  double n_exact = 0.0;
  {
    std::vector<double> r(fes.n_ips()), z(fes.n_ips()), w(fes.n_ips());
    fes.ip_coordinates(r, z, w);
    for (std::size_t ip = 0; ip < fes.n_ips(); ++ip)
      n_exact += 2 * kPi * r[ip] * w[ip] * fn(r[ip], z[ip]);
  }
  const double err_interp =
      std::abs(fes.moment(interp.span(), [](double, double) { return 1.0; }) - n_exact);
  const double err_proj =
      std::abs(fes.moment(proj.span(), [](double, double) { return 1.0; }) - n_exact);
  EXPECT_LT(err_proj, 1e-9);
  EXPECT_LT(err_proj, 0.1 * err_interp + 1e-12);
}

TEST(ThetaScheme, TrapezoidalIsSecondOrderInTime) {
  // Compare one-step errors against a fine-dt reference for an anisotropic
  // relaxation: halving dt must cut the theta=1/2 error ~4x but the
  // backward-Euler error only ~2x.
  SpeciesSet electron(
      {{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0}});
  LandauOptions lopts;
  lopts.order = 2;
  lopts.radius = 4.0;
  lopts.cells_per_thermal = 0.6;
  lopts.max_levels = 2;
  lopts.n_workers = 2;
  LandauOperator op(electron, lopts);
  la::Vec f0 = op.project([](int, double r, double z) {
    return 1.0 / (std::pow(kPi, 1.5) * 0.5 * std::sqrt(1.2)) *
           std::exp(-r * r / 0.5 - z * z / 1.2);
  });

  auto advance = [&](double theta, double dt, int steps) {
    NewtonOptions nopts;
    nopts.rtol = 1e-11;
    nopts.theta = theta;
    ImplicitIntegrator integ(op, nopts);
    la::Vec f = f0;
    for (int s = 0; s < steps; ++s) integ.step(f, dt);
    return f;
  };

  const double T = 0.8;
  la::Vec ref = advance(0.5, T / 16, 16);
  auto err = [&](const la::Vec& f) {
    la::Vec d = f;
    d.axpy(-1.0, ref);
    return d.norm2();
  };
  const double be_1 = err(advance(1.0, T / 2, 2));
  const double be_2 = err(advance(1.0, T / 4, 4));
  const double cn_1 = err(advance(0.5, T / 2, 2));
  const double cn_2 = err(advance(0.5, T / 4, 4));

  EXPECT_LT(cn_1, be_1);                  // trapezoidal more accurate outright
  EXPECT_GT(be_1 / be_2, 1.5);            // ~first order
  EXPECT_LT(be_1 / be_2, 3.0);
  EXPECT_GT(cn_1 / cn_2, 3.0);            // ~second order
}
