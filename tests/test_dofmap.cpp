#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "fem/dofmap.h"
#include "fem/fespace.h"
#include "mesh/forest.h"

using namespace landau;
using namespace landau::fem;
using mesh::Box;
using mesh::Forest;

namespace {

Forest conforming_mesh() {
  Forest f(Box{0, -2, 2, 2}, 1, 2);
  f.refine_uniform(2);
  return f;
}

Forest nonconforming_mesh() {
  Forest f(Box{0, -2, 2, 2}, 1, 2);
  f.refine_uniform(1);
  f.refine_where([](const Box& b, int) { return b.cx() < 1.0 && b.cy() > 0.0; });
  f.balance();
  return f;
}

} // namespace

class DofMapOrders : public ::testing::TestWithParam<int> {};

TEST_P(DofMapOrders, ConformingMeshCountsMatchTensorFormula) {
  const int k = GetParam();
  auto forest = conforming_mesh(); // uniform 4 x 8 grid of cells
  Tabulation tab(k);
  DofMap dm(forest, tab);
  EXPECT_EQ(dm.n_nodes(), static_cast<std::size_t>((4 * k + 1) * (8 * k + 1)));
  EXPECT_EQ(dm.n_free(), dm.n_nodes()); // no hanging nodes on a uniform mesh
}

TEST_P(DofMapOrders, SharedEdgeNodesHaveOneGlobalId) {
  const int k = GetParam();
  auto forest = conforming_mesh();
  Tabulation tab(k);
  DofMap dm(forest, tab);
  // Total (cell x local) incidences minus duplicates must equal n_nodes.
  std::set<std::int32_t> unique;
  for (std::size_t c = 0; c < dm.n_cells(); ++c)
    for (auto n : dm.cell_nodes(c)) unique.insert(n);
  EXPECT_EQ(unique.size(), dm.n_nodes());
}

TEST_P(DofMapOrders, HangingNodesAreConstrained) {
  const int k = GetParam();
  auto forest = nonconforming_mesh();
  Tabulation tab(k);
  DofMap dm(forest, tab);
  EXPECT_LT(dm.n_free(), dm.n_nodes()); // some nodes constrained
  // Constrained node closures: weights sum to 1 (preservation of constants).
  for (std::size_t n = 0; n < dm.n_nodes(); ++n) {
    double s = 0;
    for (const auto& [dof, w] : dm.closure(static_cast<std::int32_t>(n))) {
      (void)dof;
      s += w;
    }
    EXPECT_NEAR(s, 1.0, 1e-12) << "node " << n;
  }
}

TEST_P(DofMapOrders, Q3HangingNodeHasFourMasters) {
  const int k = GetParam();
  auto forest = nonconforming_mesh();
  Tabulation tab(k);
  DofMap dm(forest, tab);
  std::size_t n_constrained = 0;
  for (std::size_t n = 0; n < dm.n_nodes(); ++n) {
    if (!dm.is_constrained(static_cast<std::int32_t>(n))) continue;
    ++n_constrained;
    const auto closure = dm.closure(static_cast<std::int32_t>(n));
    // Up to k+1 masters per constrained dof (exactly 4 for Q3, §V-A1),
    // possibly more only through constraint chains.
    EXPECT_GE(closure.size(), 2u);
  }
  EXPECT_GT(n_constrained, 0u);
  (void)k;
}

INSTANTIATE_TEST_SUITE_P(Orders, DofMapOrders, ::testing::Values(1, 2, 3));

TEST(DofMap, ConstrainedInterpolationReproducesPolynomials) {
  // A global polynomial of the element order interpolated at the free nodes
  // must be reproduced exactly at every constrained node via its closure —
  // this validates the hanging-node weights across the refinement boundary.
  for (int k : {1, 2, 3}) {
    auto forest = nonconforming_mesh();
    FESpace fes(forest, k);
    const auto& dm = fes.dofmap();
    auto poly = [k](double x, double y) {
      return std::pow(0.3 * x - 0.7 * y + 0.2, k); // degree-k polynomial
    };
    la::Vec free = fes.interpolate(poly);
    std::vector<double> nodal(dm.n_nodes());
    dm.expand(free.span(), nodal);
    for (std::size_t n = 0; n < dm.n_nodes(); ++n) {
      const auto p = dm.position(static_cast<std::int32_t>(n));
      EXPECT_NEAR(nodal[n], poly(p[0], p[1]), 1e-11)
          << "order " << k << " node " << n << " at (" << p[0] << "," << p[1] << ")";
    }
  }
}

TEST(DofMap, ContinuityAcrossHangingInterface) {
  // Evaluate the FE function from the fine side and from the coarse side of
  // a non-conforming interface at shared physical points: values must agree.
  auto forest = nonconforming_mesh();
  FESpace fes(forest, 3);
  const auto& dm = fes.dofmap();
  const auto& tab = fes.tabulation();
  la::Vec free(fes.n_dofs());
  for (std::size_t i = 0; i < free.size(); ++i)
    free[i] = std::sin(static_cast<double>(i)); // arbitrary coefficients
  std::vector<double> nodal(dm.n_nodes());
  dm.expand(free.span(), nodal);

  auto eval_in_cell = [&](std::size_t c, double x, double y) {
    const auto g = fes.geometry(c);
    const double rx = 2.0 * (x - g.x0) / g.dx - 1.0;
    const double ry = 2.0 * (y - g.y0) / g.dy - 1.0;
    std::vector<double> vals(static_cast<std::size_t>(tab.n_basis()));
    tab.eval_basis(rx, ry, vals.data());
    double v = 0;
    const auto nodes = dm.cell_nodes(c);
    for (int b = 0; b < tab.n_basis(); ++b)
      v += vals[static_cast<std::size_t>(b)] * nodal[static_cast<std::size_t>(nodes[static_cast<std::size_t>(b)])];
    return v;
  };

  int checked = 0;
  for (std::size_t c = 0; c < fes.n_cells(); ++c) {
    for (int e = 0; e < 4; ++e) {
      auto nb = forest.neighbor(c, static_cast<mesh::Edge>(e));
      if (nb.kind != mesh::Forest::NeighborInfo::Kind::Coarser) continue;
      // Points strictly inside my edge.
      const auto& myb = forest.leaf(c).box;
      for (double t : {0.21, 0.5, 0.83}) {
        double x, y;
        switch (static_cast<mesh::Edge>(e)) {
          case mesh::Edge::XLow: x = myb.x0; y = myb.y0 + t * myb.dy(); break;
          case mesh::Edge::XHigh: x = myb.x1; y = myb.y0 + t * myb.dy(); break;
          case mesh::Edge::YLow: x = myb.x0 + t * myb.dx(); y = myb.y0; break;
          default: x = myb.x0 + t * myb.dx(); y = myb.y1; break;
        }
        const double vf = eval_in_cell(c, x, y);
        const double vc = eval_in_cell(static_cast<std::size_t>(nb.leaf), x, y);
        EXPECT_NEAR(vf, vc, 1e-10);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(DofMap, CellFreeDofsAreSortedUnique) {
  auto forest = nonconforming_mesh();
  Tabulation tab(3);
  DofMap dm(forest, tab);
  for (std::size_t c = 0; c < dm.n_cells(); ++c) {
    auto dofs = dm.cell_free_dofs(c);
    for (std::size_t i = 1; i < dofs.size(); ++i) EXPECT_LT(dofs[i - 1], dofs[i]);
    for (auto d : dofs) {
      EXPECT_GE(d, 0);
      EXPECT_LT(static_cast<std::size_t>(d), dm.n_free());
    }
  }
}

TEST(DofMap, ExpandRestrictAreTransposes) {
  auto forest = nonconforming_mesh();
  Tabulation tab(3);
  DofMap dm(forest, tab);
  // <expand(x), y>_nodes == <x, restrict(y)>_free for random x, y.
  la::Vec x(dm.n_free()), rx(dm.n_free(), 0.0);
  std::vector<double> y(dm.n_nodes()), ex(dm.n_nodes());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::cos(1.7 * static_cast<double>(i));
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = std::sin(0.3 * static_cast<double>(i));
  dm.expand(x.span(), ex);
  dm.restrict_add(y, rx.span());
  double lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < y.size(); ++i) lhs += ex[i] * y[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * rx[i];
  EXPECT_NEAR(lhs, rhs, 1e-10 * std::abs(lhs));
}
