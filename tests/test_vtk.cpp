#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "mesh/refine.h"
#include "util/special_math.h"
#include "util/vtk.h"

using namespace landau;

namespace {

fem::FESpace small_space(mesh::Forest& forest) {
  mesh::VelocityMeshSpec spec;
  spec.radius = 3.0;
  spec.thermal_speeds = {0.886};
  spec.cells_per_thermal = 0.6;
  spec.max_levels = 2;
  forest = mesh::build_velocity_mesh(spec);
  return fem::FESpace(forest, 3);
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

} // namespace

TEST(Vtk, FieldFileHasExpectedStructure) {
  mesh::Forest forest({0, -1, 1, 1}, 1, 2);
  auto fes = small_space(forest);
  la::Vec f = fes.interpolate([](double r, double z) { return maxwellian_rz(r, z, 1.0, 1.0); });
  const std::string path = "/tmp/landau_test_field.vtk";
  write_vtk(path, fes, f, "f_e");
  const auto content = slurp(path);
  EXPECT_NE(content.find("# vtk DataFile"), std::string::npos);
  EXPECT_NE(content.find("DATASET UNSTRUCTURED_GRID"), std::string::npos);
  EXPECT_NE(content.find("SCALARS f_e double 1"), std::string::npos);
  // Each Q3 cell contributes 9 linear quads.
  std::ostringstream cells;
  cells << "CELLS " << 9 * fes.n_cells();
  EXPECT_NE(content.find(cells.str()), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vtk, MeshFileRecordsLevels) {
  mesh::Forest forest({0, -1, 1, 1}, 1, 2);
  auto fes = small_space(forest);
  const std::string path = "/tmp/landau_test_mesh.vtk";
  write_vtk_mesh(path, fes);
  const auto content = slurp(path);
  EXPECT_NE(content.find("SCALARS level int 1"), std::string::npos);
  std::ostringstream pts;
  pts << "POINTS " << 4 * forest.n_leaves();
  EXPECT_NE(content.find(pts.str()), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vtk, FieldSizeMismatchThrows) {
  mesh::Forest forest({0, -1, 1, 1}, 1, 2);
  auto fes = small_space(forest);
  la::Vec wrong(3);
  EXPECT_THROW(write_vtk("/tmp/never.vtk", fes, wrong), landau::Error);
}
