// Full 3D velocity-space Landau operator: discretization sanity, exact
// conservation of density / all momentum components / energy (the plain 3D
// tensor is symmetric and annihilates v - vbar), Maxwellian equilibrium,
// back-end consistency and relaxation physics.

#include <gtest/gtest.h>

#include <cmath>

#include "landau3d/operator3d.h"
#include "solver/implicit.h"
#include "util/special_math.h"

using namespace landau;
using namespace landau::v3;

namespace {

// The 3D grid is uniform (no AMR), so the tests use a hot species whose
// thermal width spans a cell: temperature 2.5 -> theta ~ 1.96, vth ~ 1.4
// against h = 1.75 with Q3 nodes.
SpeciesSet electron_only() {
  return SpeciesSet(
      {{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 2.5}});
}

Landau3DOptions small3d(Backend be = Backend::CudaSim) {
  Landau3DOptions o;
  o.radius = 3.5;
  o.cells_per_dim = 4;
  o.order = 3;
  o.backend = be;
  o.n_workers = 2;
  return o;
}

double gauss3(double x, double y, double z, double n, double tx, double ty, double tz) {
  return n / (std::pow(kPi, 1.5) * std::sqrt(tx * ty * tz)) *
         std::exp(-x * x / tx - y * y / ty - z * z / tz);
}

} // namespace

TEST(Space3D, QuadratureIntegratesVolume) {
  Space3D space(2.0, 3, 2);
  la::Vec one = space.interpolate([](double, double, double) { return 1.0; });
  EXPECT_NEAR(space.moment(one.span(), [](double, double, double) { return 1.0; }), 64.0, 1e-10);
}

TEST(Space3D, ConformingDofCount) {
  Space3D space(1.0, 3, 2);
  // (3*2+1)^3 nodes.
  EXPECT_EQ(space.n_dofs(), 343u);
  EXPECT_EQ(space.n_cells(), 27u);
}

TEST(Space3D, EvalReproducesTriquadratic) {
  Space3D space(2.0, 3, 2);
  auto f = [](double x, double y, double z) { return x * x - y * z + 2.0 * z * z - 1.0; };
  la::Vec dofs = space.interpolate(f);
  std::vector<double> v(space.n_ips()), gx(space.n_ips()), gy(space.n_ips()), gz(space.n_ips());
  std::vector<double> x(space.n_ips()), y(space.n_ips()), z(space.n_ips()), w(space.n_ips());
  space.eval_at_ips(dofs.span(), v, gx, gy, gz);
  space.ip_coordinates(x, y, z, w);
  for (std::size_t ip = 0; ip < space.n_ips(); ip += 7) {
    EXPECT_NEAR(v[ip], f(x[ip], y[ip], z[ip]), 1e-11);
    EXPECT_NEAR(gx[ip], 2 * x[ip], 1e-10);
    EXPECT_NEAR(gy[ip], -z[ip], 1e-10);
    EXPECT_NEAR(gz[ip], -y[ip] + 4 * z[ip], 1e-10);
  }
}

TEST(Space3D, MassMatrixIntegratesL2Norm) {
  Space3D space(1.5, 2, 2);
  la::CsrMatrix m(space.sparsity());
  space.assemble_mass(m);
  auto f = [](double x, double y, double z) { return 1.0 + x - 0.5 * y * z; };
  la::Vec dofs = space.interpolate(f);
  la::Vec mx(space.n_dofs());
  m.mult(dofs, mx);
  // \int f^2 over [-1.5,1.5]^3 (f is triquadratic -> quadrature exact).
  double exact = 0;
  const int nn = 60;
  for (int i = 0; i < nn; ++i)
    for (int jj = 0; jj < nn; ++jj)
      for (int k = 0; k < nn; ++k) {
        const double x = -1.5 + (i + 0.5) * 3.0 / nn;
        const double y = -1.5 + (jj + 0.5) * 3.0 / nn;
        const double z = -1.5 + (k + 0.5) * 3.0 / nn;
        exact += f(x, y, z) * f(x, y, z) * std::pow(3.0 / nn, 3);
      }
  EXPECT_NEAR(dofs.dot(mx), exact, 2e-3 * exact);
}

TEST(Landau3D, MaxwellianMoments) {
  Landau3DOperator op(electron_only(), small3d());
  la::Vec f = op.maxwellian_state();
  const auto m = op.moments(f, 0);
  const double theta = op.species()[0].theta();
  EXPECT_NEAR(m.density, 1.0, 3e-2);
  EXPECT_NEAR(m.energy, 0.75 * theta, 3e-2 * 0.75 * theta + 2e-2);
  EXPECT_NEAR(m.momentum[2], 0.0, 1e-10);
}

TEST(Landau3D, BackendsAgree) {
  Landau3DOperator op_cpu(electron_only(), small3d(Backend::Cpu));
  Landau3DOperator op_cuda(electron_only(), small3d(Backend::CudaSim));
  la::Vec f = op_cpu.project([](int, double x, double y, double z) {
    return gauss3(x, y, z, 1.0, 1.3, 1.7, 2.2);
  });
  op_cpu.pack(f);
  op_cuda.pack(f);
  la::CsrMatrix j1 = op_cpu.new_matrix();
  la::CsrMatrix j2 = op_cuda.new_matrix();
  op_cpu.add_collision(j1);
  op_cuda.add_collision(j2);
  double scale = 0;
  for (std::size_t k = 0; k < j1.nnz(); ++k) scale = std::max(scale, std::abs(j1.values()[k]));
  for (std::size_t k = 0; k < j1.nnz(); ++k)
    EXPECT_NEAR(j2.values()[k], j1.values()[k], 1e-11 * scale);
}

TEST(Landau3D, MaxwellianNearEquilibrium) {
  Landau3DOperator op(electron_only(), small3d());
  la::Vec fm = op.maxwellian_state();
  op.pack(fm);
  la::CsrMatrix c = op.new_matrix();
  op.add_collision(c);
  la::Vec rm(op.n_total());
  c.mult(fm, rm);

  la::Vec g = op.project([](int, double x, double y, double z) {
    return gauss3(x, y, z, 1.0, 1.0, 1.8, 2.6);
  });
  op.pack(g);
  c.zero_entries();
  op.add_collision(c);
  la::Vec rg(op.n_total());
  c.mult(g, rg);
  EXPECT_LT(rm.norm2(), 0.05 * rg.norm2());
}

TEST(Landau3D, ExactConservationOfAllInvariants) {
  // 3D carries three momentum components; all are conserved to solver
  // tolerance along with density and energy.
  Landau3DOperator op(electron_only(), small3d());
  NewtonOptions tight;
  tight.rtol = 1e-10;
  ImplicitIntegrator integrator(op, tight);
  la::Vec f = op.project([](int, double x, double y, double z) {
    // Anisotropic and drifting in x and z.
    return gauss3(x - 0.3, y, z + 0.4, 1.0, 1.2, 1.8, 2.4);
  });
  const auto m0 = op.moments(f, 0);
  for (int s = 0; s < 2; ++s) integrator.step(f, 0.4);
  const auto m1 = op.moments(f, 0);
  EXPECT_NEAR(m1.density, m0.density, 1e-9);
  for (int d = 0; d < 3; ++d)
    EXPECT_NEAR(m1.momentum[d], m0.momentum[d], 1e-9 * std::max(1.0, std::abs(m0.momentum[d])))
        << "component " << d;
  EXPECT_NEAR(m1.energy, m0.energy, 1e-8 * m0.energy);
}

TEST(Landau3D, IsotropizationIn3D) {
  Landau3DOperator op(electron_only(), small3d());
  NewtonOptions loose;
  loose.rtol = 1e-6;
  ImplicitIntegrator integrator(op, loose);
  la::Vec f = op.project([](int, double x, double y, double z) {
    return gauss3(x, y, z, 1.0, 0.9, 1.6, 2.6);
  });
  auto temps = [&](const la::Vec& state) {
    auto b = op.block(state, 0);
    const double n = op.space().moment(b, [](double, double, double) { return 1.0; });
    const double tx = op.space().moment(b, [](double x, double, double) { return x * x; }) / n;
    const double tz = op.space().moment(b, [](double, double, double z) { return z * z; }) / n;
    return tz / tx;
  };
  const double a0 = temps(f);
  for (int s = 0; s < 3; ++s) integrator.step(f, 0.5);
  const double a1 = temps(f);
  EXPECT_GT(a0, 1.8);
  EXPECT_LT(std::abs(a1 - 1.0), 0.9 * std::abs(a0 - 1.0));
}

TEST(Landau3D, TwoSpeciesMomentumExchange) {
  SpeciesSet sp({{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 2.5},
                 {.name = "i", .mass = 2.0, .charge = 1.0, .density = 1.0, .temperature = 2.5}});
  auto opts = small3d();
  Landau3DOperator op(sp, opts);
  NewtonOptions loose;
  loose.rtol = 1e-7;
  ImplicitIntegrator integrator(op, loose);
  const double drifts[2] = {0.5, 0.0};
  la::Vec f = op.maxwellian_state(drifts);
  const double pe0 = op.moments(f, 0).momentum[2];
  const double pi0 = op.moments(f, 1).momentum[2];
  integrator.step(f, 0.6);
  const double pe1 = op.moments(f, 0).momentum[2];
  const double pi1 = op.moments(f, 1).momentum[2];
  EXPECT_LT(pe1, pe0);                                 // friction decelerates electrons
  EXPECT_GT(pi1, pi0);                                 // ions pick the momentum up
  EXPECT_NEAR(pe1 + pi1, pe0 + pi0, 1e-7 * std::abs(pe0)); // total conserved (Newton rtol)
}

TEST(Landau3D, AdvectionAcceleratesAlongZ) {
  Landau3DOperator op(electron_only(), small3d());
  la::Vec f = op.maxwellian_state();
  op.pack(f);
  la::CsrMatrix a = op.new_matrix();
  op.add_advection(a, 0.2);
  la::Vec af(op.n_total());
  a.mult(f, af);
  la::Vec zf = op.project([](int, double, double, double z) { return z; });
  EXPECT_GT(std::abs(zf.dot(af)), 1e-8); // momentum moment responds to E
  la::Vec one = op.project([](int, double, double, double) { return 1.0; });
  EXPECT_LT(std::abs(one.dot(af)), 1e-8 * std::abs(zf.dot(af))); // density does not
}
