#include <gtest/gtest.h>

#include <cmath>

#include "core/landau_tensor.h"
#include "util/special_math.h"

using namespace landau;

namespace {

struct PointPair {
  double r, z, rp, zp;
};

const PointPair kPairs[] = {
    {1.0, 0.5, 0.7, -0.3}, {0.2, 2.0, 1.5, 1.9},  {3.0, -1.0, 0.1, 0.0},
    {0.5, 0.0, 0.5, 1.0},  {2.0, 2.0, 2.0, -2.0}, {1e-3, 0.4, 1.2, 0.1},
    {1.2, 0.1, 1e-3, 0.4}, {0.9, 0.9, 1.1, 1.1},  {4.5, -3.0, 4.4, -3.1},
};

} // namespace

class TensorPairSweep : public ::testing::TestWithParam<int> {};

TEST_P(TensorPairSweep, ClosedFormMatchesAzimuthalQuadrature) {
  const auto& p = kPairs[GetParam()];
  Tensor2 uk, ud, uk_q, ud_q;
  landau_tensor_2d(p.r, p.z, p.rp, p.zp, &uk, &ud);
  landau_tensor_2d_quadrature(p.r, p.z, p.rp, p.zp, &uk_q, &ud_q, 200000);
  double scale = 0.0;
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j)
      scale = std::max({scale, std::abs(ud_q.m[i][j]), std::abs(uk_q.m[i][j])});
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) {
      EXPECT_NEAR(ud.m[i][j], ud_q.m[i][j], 1e-6 * scale) << "UD[" << i << "][" << j << "]";
      EXPECT_NEAR(uk.m[i][j], uk_q.m[i][j], 1e-6 * scale) << "UK[" << i << "][" << j << "]";
    }
}

INSTANTIATE_TEST_SUITE_P(Pairs, TensorPairSweep, ::testing::Range(0, 9));

TEST(LandauTensor, UDIsSymmetric) {
  for (const auto& p : kPairs) {
    Tensor2 uk, ud;
    landau_tensor_2d(p.r, p.z, p.rp, p.zp, &uk, &ud);
    EXPECT_DOUBLE_EQ(ud.m[0][1], ud.m[1][0]);
  }
}

TEST(LandauTensor, UDIsPositiveSemidefinite) {
  // The 3D tensor is PSD (scaled projection); its azimuthal average
  // restricted to the (r,z) block stays PSD.
  for (const auto& p : kPairs) {
    Tensor2 uk, ud;
    landau_tensor_2d(p.r, p.z, p.rp, p.zp, &uk, &ud);
    const double tr = ud.m[0][0] + ud.m[1][1];
    const double det = ud.m[0][0] * ud.m[1][1] - ud.m[0][1] * ud.m[1][0];
    EXPECT_GE(tr, -1e-12);
    EXPECT_GE(det, -1e-10 * tr * tr);
  }
}

TEST(LandauTensor, TranslationInvarianceInZ) {
  Tensor2 uk1, ud1, uk2, ud2;
  landau_tensor_2d(1.1, 0.3, 0.6, -0.2, &uk1, &ud1);
  landau_tensor_2d(1.1, 5.3, 0.6, 4.8, &uk2, &ud2);
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) {
      EXPECT_NEAR(uk1.m[i][j], uk2.m[i][j], 1e-13);
      EXPECT_NEAR(ud1.m[i][j], ud2.m[i][j], 1e-13);
    }
}

TEST(LandauTensor, DiagonalIsRegularizedToZero) {
  Tensor2 uk, ud;
  landau_tensor_2d(0.8, 0.2, 0.8, 0.2, &uk, &ud);
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) {
      EXPECT_EQ(uk.m[i][j], 0.0);
      EXPECT_EQ(ud.m[i][j], 0.0);
    }
}

TEST(LandauTensor, MomentumConservationIdentity) {
  // zhat . U^K(i,j) == zhat . U^D(j,i): the identity that makes the discrete
  // z-momentum exchange antisymmetric (hence conserved to roundoff).
  for (const auto& p : kPairs) {
    Tensor2 uk_ij, ud_ij, uk_ji, ud_ji;
    landau_tensor_2d(p.r, p.z, p.rp, p.zp, &uk_ij, &ud_ij);
    landau_tensor_2d(p.rp, p.zp, p.r, p.z, &uk_ji, &ud_ji);
    const double scale = std::abs(ud_ji.m[1][1]) + std::abs(ud_ji.m[1][0]) + 1e-30;
    EXPECT_NEAR(uk_ij.m[1][0], ud_ji.m[1][0], 1e-12 * scale);
    EXPECT_NEAR(uk_ij.m[1][1], ud_ji.m[1][1], 1e-12 * scale);
  }
}

TEST(LandauTensor, EnergyConservationIdentity) {
  // v_i . U^K(i,j) == v_j . U^D(j,i) (both columns): the identity behind
  // exact discrete energy conservation.
  for (const auto& p : kPairs) {
    Tensor2 uk_ij, ud_ij, uk_ji, ud_ji;
    landau_tensor_2d(p.r, p.z, p.rp, p.zp, &uk_ij, &ud_ij);
    landau_tensor_2d(p.rp, p.zp, p.r, p.z, &uk_ji, &ud_ji);
    for (int col = 0; col < 2; ++col) {
      const double lhs = p.r * uk_ij.m[0][col] + p.z * uk_ij.m[1][col];
      const double rhs = p.rp * ud_ji.m[0][col] + p.zp * ud_ji.m[1][col];
      const double scale = std::abs(lhs) + std::abs(rhs) + 1e-30;
      EXPECT_NEAR(lhs, rhs, 1e-11 * scale) << "col " << col;
    }
  }
}

TEST(LandauTensor3D, ProjectionAnnihilatesRelativeVelocity) {
  const std::array<double, 3> v{1.0, -0.5, 2.0}, vb{0.3, 0.8, -1.0};
  const auto u = landau_tensor_3d(v, vb);
  for (int i = 0; i < 3; ++i) {
    double s = 0;
    for (int j = 0; j < 3; ++j)
      s += u[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] * (v[static_cast<std::size_t>(j)] - vb[static_cast<std::size_t>(j)]);
    EXPECT_NEAR(s, 0.0, 1e-14);
  }
}

TEST(LandauTensor3D, SymmetricAndScalesInverseCube) {
  const std::array<double, 3> v{1.0, 0.0, 0.0}, vb{0.0, 0.0, 0.0};
  auto u1 = landau_tensor_3d(v, vb);
  auto u2 = landau_tensor_3d({2, 0, 0}, vb);
  EXPECT_NEAR(u1[1][1], 1.0, 1e-15);              // (|u|^2 - 0)/|u|^3 with |u|=1
  EXPECT_NEAR(u2[1][1], 1.0 / 2.0, 1e-15);        // 1/|u| scaling of transverse part
  EXPECT_DOUBLE_EQ(u1[0][1], u1[1][0]);
}

TEST(LandauTensor, AccurateOnBothSidesOfSeriesSwitchover) {
  // The closed elliptic forms hand over to small-s series at s = 1e-3; both
  // branches must match direct azimuthal quadrature near the switchover.
  const double z = 0.3, zp = -0.4, rp = 1.0;
  const double dz2 = (z - zp) * (z - zp);
  auto r_for_s = [&](double s) {
    double r = s; // fixed point of r = s (r^2 + rp^2 + dz^2) / (2 rp)
    for (int it = 0; it < 100; ++it) r = s * (r * r + rp * rp + dz2) / (2.0 * rp);
    return r;
  };
  for (double s : {2e-4, 0.9e-3, 1.1e-3, 5e-3}) {
    const double r = r_for_s(s);
    Tensor2 uk, ud, uk_q, ud_q;
    landau_tensor_2d(r, z, rp, zp, &uk, &ud);
    landau_tensor_2d_quadrature(r, z, rp, zp, &uk_q, &ud_q, 400000);
    double scale = 0.0;
    for (int i = 0; i < 2; ++i)
      for (int j = 0; j < 2; ++j)
        scale = std::max({scale, std::abs(ud_q.m[i][j]), std::abs(uk_q.m[i][j])});
    for (int i = 0; i < 2; ++i)
      for (int j = 0; j < 2; ++j) {
        EXPECT_NEAR(uk.m[i][j], uk_q.m[i][j], 1e-6 * scale) << "s=" << s;
        EXPECT_NEAR(ud.m[i][j], ud_q.m[i][j], 1e-6 * scale) << "s=" << s;
      }
  }
}
