#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "exec/thread_pool.h"

using landau::exec::ThreadPool;

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(257, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  int count = 0;
  pool.submit([&count] { ++count; }); // inline, no synchronization needed
  EXPECT_EQ(count, 1);
  pool.parallel_for(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 11);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ReusableAcrossRounds) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  for (int round = 0; round < 5; ++round)
    pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 5 * (99 * 100 / 2));
}
