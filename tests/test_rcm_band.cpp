#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "la/band.h"
#include "la/csr.h"
#include "la/dense.h"
#include "la/rcm.h"

using namespace landau::la;

namespace {

/// Random structurally-symmetric diagonally-dominant banded matrix.
CsrMatrix random_banded(std::size_t n, std::size_t bw, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  SparsityPattern p(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = (i > bw ? i - bw : 0); j <= std::min(n - 1, i + bw); ++j) p.add(i, j);
  p.compress();
  CsrMatrix a(p);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = (i > bw ? i - bw : 0); j <= std::min(n - 1, i + bw); ++j)
      a.add(i, j, i == j ? 4.0 * static_cast<double>(bw) + 1.0 : dist(rng));
  return a;
}

/// Block-diagonal matrix: `blocks` copies of a banded block, species-major —
/// the structure of the multi-species Landau Jacobian (§III-G).
CsrMatrix block_matrix(std::size_t blocks, std::size_t block_n, std::size_t bw, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::size_t n = blocks * block_n;
  SparsityPattern p(n, n);
  for (std::size_t b = 0; b < blocks; ++b)
    for (std::size_t i = 0; i < block_n; ++i)
      for (std::size_t j = (i > bw ? i - bw : 0); j <= std::min(block_n - 1, i + bw); ++j)
        p.add(b * block_n + i, b * block_n + j);
  p.compress();
  CsrMatrix a(p);
  for (std::size_t b = 0; b < blocks; ++b)
    for (std::size_t i = 0; i < block_n; ++i)
      for (std::size_t j = (i > bw ? i - bw : 0); j <= std::min(block_n - 1, i + bw); ++j)
        a.add(b * block_n + i, b * block_n + j, i == j ? 10.0 : dist(rng));
  return a;
}

} // namespace

TEST(Rcm, PermutationIsValid) {
  auto a = random_banded(30, 3, 1);
  auto perm = rcm_ordering(a);
  ASSERT_EQ(perm.size(), 30u);
  std::vector<bool> seen(30, false);
  for (auto p : perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 30);
    EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
    seen[static_cast<std::size_t>(p)] = true;
  }
}

TEST(Rcm, ReducesBandwidthOfShuffledBandedMatrix) {
  // Take a banded matrix, scramble it with a random permutation, and verify
  // RCM recovers a bandwidth close to the original.
  auto a = random_banded(60, 2, 3);
  std::vector<std::int32_t> shuffle(60);
  for (std::size_t i = 0; i < 60; ++i) shuffle[i] = static_cast<std::int32_t>(i);
  std::shuffle(shuffle.begin(), shuffle.end(), std::mt19937(99));
  auto scrambled = permute_symmetric(a, shuffle);
  EXPECT_GT(scrambled.bandwidth(), 10u);
  auto perm = rcm_ordering(scrambled);
  EXPECT_LE(permuted_bandwidth(scrambled, perm), 6u);
}

TEST(Rcm, DetectsSpeciesBlocksAsComponents) {
  auto a = block_matrix(10, 19, 2, 5);
  std::int32_t nc = 0;
  auto comp = connected_components(a, &nc);
  EXPECT_EQ(nc, 10);
  EXPECT_EQ(comp[0], comp[18]);
  EXPECT_NE(comp[0], comp[19]);
}

TEST(Band, InBandPredicate) {
  BandMatrix b(5, 1, 2);
  EXPECT_TRUE(b.in_band(2, 1));
  EXPECT_TRUE(b.in_band(2, 4));
  EXPECT_FALSE(b.in_band(2, 0));
  EXPECT_FALSE(b.in_band(0, 3));
}

class BandLUSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BandLUSweep, MatchesDenseLUOnRandomSystems) {
  const auto [n, bw] = GetParam();
  auto a = random_banded(static_cast<std::size_t>(n), static_cast<std::size_t>(bw),
                         static_cast<unsigned>(n * 100 + bw));
  // Identity permutation: matrix is already banded.
  std::vector<std::int32_t> identity(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) identity[static_cast<std::size_t>(i)] = i;
  auto band = BandMatrix::from_csr(a, identity, 0, static_cast<std::size_t>(n));
  EXPECT_LE(band.lower_bandwidth(), static_cast<std::size_t>(bw));

  Vec xref(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) xref[static_cast<std::size_t>(i)] = std::cos(static_cast<double>(i));
  a.mult(xref, b);

  band.factor_lu();
  Vec x(static_cast<std::size_t>(n));
  band.solve(b, x);

  DenseLU dense(a.to_dense());
  Vec xd(static_cast<std::size_t>(n));
  dense.solve(b, xd);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], xd[static_cast<std::size_t>(i)], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(SizesAndBandwidths, BandLUSweep,
                         ::testing::Combine(::testing::Values(5, 20, 64, 150),
                                            ::testing::Values(1, 3, 7)));

TEST(Band, FactorReportsFlopCount) {
  auto a = random_banded(20, 2, 11);
  std::vector<std::int32_t> identity(20);
  for (int i = 0; i < 20; ++i) identity[static_cast<std::size_t>(i)] = i;
  auto band = BandMatrix::from_csr(a, identity, 0, 20);
  EXPECT_GT(band.factor_lu(), 0);
}

TEST(Band, ZeroPivotThrows) {
  BandMatrix b(3, 1, 1);
  b.at(0, 0) = 1.0;
  b.at(1, 1) = 0.0; // becomes the pivot after the first elimination step
  b.at(2, 2) = 1.0;
  EXPECT_THROW(b.factor_lu(), landau::Error);
}

TEST(Band, NanPivotThrowsInsteadOfPropagating) {
  // A NaN pivot fails every < comparison, so a naive |piv| < eps check lets
  // it through and the factorization silently fills with NaNs; the negated
  // check must throw instead.
  BandMatrix b(3, 1, 1);
  b.at(0, 0) = 1.0;
  b.at(1, 1) = std::numeric_limits<double>::quiet_NaN();
  b.at(2, 2) = 1.0;
  EXPECT_THROW(b.factor_lu(), landau::Error);
}

TEST(Band, FromCsrRejectsCrossBlockCoupling) {
  // Extracting a block range that truncates couplings must be caught, not
  // silently dropped.
  SparsityPattern p(4, 4);
  for (std::size_t i = 0; i < 4; ++i) p.add(i, i);
  p.add(1, 3); // couples "block" [0,2) to [2,4)
  p.add(3, 1);
  p.compress();
  CsrMatrix a(p);
  for (std::size_t i = 0; i < 4; ++i) a.add(i, i, 1.0);
  a.add(1, 3, 0.5);
  a.add(3, 1, 0.5);
  std::vector<std::int32_t> identity = {0, 1, 2, 3};
  EXPECT_THROW(BandMatrix::from_csr(a, identity, 0, 2), landau::Error);
}

TEST(Band, MultNotValidAfterFactorButBeforeIsExact) {
  auto a = random_banded(12, 2, 77);
  std::vector<std::int32_t> identity(12);
  for (int i = 0; i < 12; ++i) identity[static_cast<std::size_t>(i)] = i;
  auto band = BandMatrix::from_csr(a, identity, 0, 12);
  Vec x(12, 1.0), y1(12), y2(12);
  band.mult(x, y1);
  a.mult(x, y2);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-14);
}

TEST(BlockBandSolver, SolvesMultiSpeciesBlockSystem) {
  auto a = block_matrix(10, 19, 2, 17); // 10 species, 19 dofs each
  BlockBandSolver solver;
  solver.analyze(a);
  EXPECT_EQ(solver.n_blocks(), 10u);
  solver.factor(a);

  Vec xref(190), b(190), x(190);
  for (std::size_t i = 0; i < 190; ++i) xref[i] = std::sin(0.1 * static_cast<double>(i));
  a.mult(xref, b);
  solver.solve(b, x);
  for (std::size_t i = 0; i < 190; ++i) EXPECT_NEAR(x[i], xref[i], 1e-11);
}

TEST(BlockBandSolver, RefactorWithNewValuesSamePattern) {
  auto a = block_matrix(3, 15, 2, 23);
  BlockBandSolver solver;
  solver.analyze(a);
  solver.factor(a);
  // Change values (same pattern), refactor, and verify the new solve.
  for (auto& v : a.values()) v *= 2.0;
  solver.factor(a);
  Vec xref(45), b(45), x(45);
  for (std::size_t i = 0; i < 45; ++i) xref[i] = 1.0 + static_cast<double>(i % 5);
  a.mult(xref, b);
  solver.solve(b, x);
  for (std::size_t i = 0; i < 45; ++i) EXPECT_NEAR(x[i], xref[i], 1e-11);
}

TEST(BlockBandSolver, SolveWithAliasedOutputMatchesSeparateOutput) {
  // Documented contract: solve(b, x) may be called with x aliasing b — every
  // block gathers its rhs into private workspace before any result is
  // scattered. The controller's retry path relies on this.
  auto a = block_matrix(4, 17, 2, 41);
  BlockBandSolver solver;
  solver.analyze(a);
  solver.factor(a);
  const std::size_t n = 4 * 17;
  Vec b(n), x(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = std::cos(0.3 * static_cast<double>(i));
  solver.solve(b, x);
  Vec inplace = b;
  solver.solve(inplace, inplace);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(inplace[i], x[i]);
}

TEST(BlockBandSolver, NanMatrixFactorThrowsAndRefactorRecovers) {
  auto a = block_matrix(3, 11, 1, 53);
  BlockBandSolver solver;
  solver.analyze(a);

  auto poisoned = a;
  poisoned.values()[poisoned.values().size() / 2] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(solver.factor(poisoned), landau::Error);

  // The solver object must stay usable: refactor with clean values and solve.
  solver.factor(a);
  const std::size_t n = 3 * 11;
  Vec xref(n), b(n), x(n);
  for (std::size_t i = 0; i < n; ++i) xref[i] = 1.0 + 0.1 * static_cast<double>(i);
  a.mult(xref, b);
  solver.solve(b, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-11);
}

TEST(BlockBandSolver, BandwidthReflectsRcm) {
  auto a = random_banded(40, 3, 31);
  BlockBandSolver solver;
  solver.analyze(a);
  EXPECT_LE(solver.bandwidth(), 8u);
}
