// Multi-grid operator tests (§III-H): clustering, cross-grid collision
// coupling, exact conservation across grids, and the cost trade-off of
// Table I realized by the actual operator.

#include <gtest/gtest.h>

#include <cmath>

#include "core/multigrid.h"
#include "solver/implicit.h"
#include "util/special_math.h"

using namespace landau;

namespace {

LandauOptions mg_opts() {
  LandauOptions o;
  o.order = 3;
  o.radius = 4.0; // in reference-thermal units; each grid rescales
  o.base_levels = 1;
  o.cells_per_thermal = 0.8;
  o.max_levels = 3;
  o.backend = Backend::CudaSim;
  o.n_workers = 2;
  return o;
}

/// Electrons plus a moderately heavy ion: two thermal-speed clusters.
SpeciesSet two_cluster_species() {
  return SpeciesSet(
      {{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0},
       {.name = "i", .mass = 36.0, .charge = 1.0, .density = 1.0, .temperature = 1.0}});
}

} // namespace

TEST(MultiGrid, ClustersByThermalSpeed) {
  MultiGridLandauOperator op(two_cluster_species(), mg_opts());
  EXPECT_EQ(op.n_grids(), 2);
  EXPECT_NE(op.grid_of_species(0), op.grid_of_species(1));
  // The ion grid is scaled down by the thermal-speed ratio (6x here).
  const double re = op.grid(op.grid_of_species(0)).radius;
  const double ri = op.grid(op.grid_of_species(1)).radius;
  EXPECT_NEAR(re / ri, 6.0, 1e-10);
}

TEST(MultiGrid, SimilarSpeciesShareAGrid) {
  SpeciesSet sp({{.name = "e", .mass = 1.0, .charge = -1.0, .density = 1.0, .temperature = 1.0},
                 {.name = "e2", .mass = 1.5, .charge = -1.0, .density = 0.5, .temperature = 1.0},
                 {.name = "i", .mass = 100.0, .charge = 2.0, .density = 0.75, .temperature = 1.0}});
  MultiGridLandauOperator op(sp, mg_opts());
  EXPECT_EQ(op.n_grids(), 2);
  EXPECT_EQ(op.grid_of_species(0), op.grid_of_species(1)); // within 2x
  EXPECT_NE(op.grid_of_species(0), op.grid_of_species(2));
}

TEST(MultiGrid, MaxwellianMomentsPerGrid) {
  MultiGridLandauOperator op(two_cluster_species(), mg_opts());
  la::Vec f = op.maxwellian_state();
  for (int s = 0; s < 2; ++s) {
    const auto m = op.moments(f, s);
    EXPECT_NEAR(m.density, 1.0, 2e-2) << "species " << s;
    // Each species is well resolved on its own scaled grid: (m/2)(3/2)theta.
    EXPECT_NEAR(m.energy, 0.75 * op.species()[s].mass * op.species()[s].theta(), 2e-2)
        << "species " << s;
  }
}

TEST(MultiGrid, MatrixIsBlockDiagonalPerSpecies) {
  MultiGridLandauOperator op(two_cluster_species(), mg_opts());
  la::Vec f = op.maxwellian_state();
  op.pack(f);
  la::CsrMatrix j = op.new_matrix();
  op.add_collision(j);
  // Row/col of each entry must belong to the same species block.
  const std::size_t n0 = op.n_dofs(0);
  auto rowptr = j.row_offsets();
  auto colind = j.col_indices();
  for (std::size_t i = 0; i < j.rows(); ++i)
    for (std::int32_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      const bool row_e = i < n0;
      const bool col_e = static_cast<std::size_t>(colind[k]) < n0;
      EXPECT_EQ(row_e, col_e);
    }
}

TEST(MultiGrid, CrossGridCollisionsCoupleSpecies) {
  // The e-i friction must act across grids: drifting electrons on grid A
  // must exchange momentum with ions on grid B.
  MultiGridLandauOperator op(two_cluster_species(), mg_opts());
  NewtonOptions loose;
  loose.rtol = 1e-8;
  ImplicitIntegrator integrator(op, loose);
  la::Vec f(op.n_total());
  {
    la::Vec init = op.maxwellian_state();
    f = init;
    // Give the electrons a z-drift.
    const auto& fes = op.grid(op.grid_of_species(0)).fes;
    la::Vec drifting = fes->interpolate([&](double r, double z) {
      return op.species()[0].maxwellian(r, z, 0.4);
    });
    std::copy(drifting.begin(), drifting.end(), op.block(f, 0).begin());
  }
  const double pe0 = op.moments(f, 0).momentum_z;
  const double pi0 = op.moments(f, 1).momentum_z;
  integrator.step(f, 1.0);
  integrator.step(f, 1.0);
  const double pe1 = op.moments(f, 0).momentum_z;
  const double pi1 = op.moments(f, 1).momentum_z;
  EXPECT_LT(pe1, 0.95 * pe0);        // electrons lose momentum
  EXPECT_GT(pi1, pi0 + 1e-6);        // ions gain it
}

TEST(MultiGrid, ConservationAcrossGrids) {
  // Density per species, total z-momentum and total energy are conserved to
  // solver tolerance even though the species live on different grids — the
  // tensor identities pair (i in A, j in B) with (i in B, j in A).
  MultiGridLandauOperator op(two_cluster_species(), mg_opts());
  NewtonOptions tight;
  tight.rtol = 1e-10;
  ImplicitIntegrator integrator(op, tight);
  la::Vec f(op.n_total());
  {
    f = op.maxwellian_state();
    const auto& fes = op.grid(op.grid_of_species(0)).fes;
    la::Vec drifting = fes->interpolate([&](double r, double z) {
      return op.species()[0].maxwellian(r, z, 0.5);
    });
    std::copy(drifting.begin(), drifting.end(), op.block(f, 0).begin());
  }
  const auto me0 = op.moments(f, 0);
  const auto mi0 = op.moments(f, 1);
  for (int s = 0; s < 3; ++s) integrator.step(f, 0.8);
  const auto me1 = op.moments(f, 0);
  const auto mi1 = op.moments(f, 1);

  EXPECT_NEAR(me1.density, me0.density, 1e-9);
  EXPECT_NEAR(mi1.density, mi0.density, 1e-9);
  EXPECT_NEAR(me1.momentum_z + mi1.momentum_z, me0.momentum_z + mi0.momentum_z,
              1e-8 * std::abs(me0.momentum_z));
  EXPECT_NEAR(me1.energy + mi1.energy, me0.energy + mi0.energy,
              1e-7 * (me0.energy + mi0.energy));
}

TEST(MultiGrid, FewerEquationsThanSharedGrid) {
  // The Table I trade-off realized: the multi-grid operator solves far fewer
  // equations than a single shared grid resolving both scales.
  auto species = two_cluster_species();
  auto opts = mg_opts();
  opts.max_levels = 6;
  MultiGridLandauOperator mg(species, opts);
  LandauOperator shared(species, opts);
  EXPECT_LT(mg.n_total(), shared.n_total());
  // And each species is still resolved: its grid's smallest cell fits vth.
  for (int s = 0; s < 2; ++s) {
    const auto& g = mg.grid(mg.grid_of_species(s));
    double hmin = 1e30;
    for (const auto& lf : g.forest.leaves()) hmin = std::min(hmin, lf.box.dx());
    EXPECT_LE(hmin, species[s].thermal_speed() / 0.5);
  }
}
