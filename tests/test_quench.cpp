// End-to-end thermal quench model on a reduced problem: verifies the
// dynamics the paper's Fig. 5 shows qualitatively — density ramp from the
// source, temperature collapse, resistivity/E rise.

#include <gtest/gtest.h>

#include <cmath>

#include "quench/model.h"
#include "quench/spitzer.h"

using namespace landau;
using namespace landau::quench;

namespace {

LandauOperator make_op() {
  auto species = SpeciesSet::electron_deuterium();
  // Reduced mass ratio for test speed. The ion thermal speed (~0.18 v0) must
  // stay resolvable by the AMR depth below, or the e-i friction aliases away
  // and the current never equilibrates.
  species[1].mass = 25.0;
  LandauOptions opts;
  opts.order = 2;
  opts.radius = 4.5;
  opts.base_levels = 1;
  opts.cells_per_thermal = 0.8;
  opts.max_levels = 5;
  opts.n_workers = 2;
  return LandauOperator(species, opts);
}

QuenchOptions quench_opts() {
  QuenchOptions q;
  q.dt = 0.5;
  q.max_steps = 30;
  q.e_initial_over_ec = 0.5;
  q.te_ev = 3000.0;
  q.equilibrium_tol = 5e-3;
  q.min_equilibrium_steps = 2;
  q.source.total_injected = 3.0;
  q.source.t_start = 0.5;
  q.source.duration = 5.0;
  q.source.cold_temperature = 0.05;
  q.newton.rtol = 1e-6;
  return q;
}

} // namespace

TEST(Quench, SourcePulseEnvelopeIntegrates) {
  LandauOperator op = make_op();
  SourceSpec spec;
  spec.total_injected = 5.0;
  spec.t_start = 1.0;
  spec.duration = 4.0;
  ColdPulseSource src(op, spec);
  EXPECT_EQ(src.rate(0.5), 0.0);
  EXPECT_EQ(src.rate(5.5), 0.0);
  // Midpoint-rule integral of the rate over the pulse = total_injected.
  double total = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) total += src.rate(1.0 + (i + 0.5) * 4.0 / n) * 4.0 / n;
  EXPECT_NEAR(total, 5.0, 1e-4);
}

TEST(Quench, SourceIsQuasiNeutral) {
  LandauOperator op = make_op();
  SourceSpec spec;
  ColdPulseSource src(op, spec);
  la::Vec s(op.n_total());
  ASSERT_TRUE(src.evaluate(spec.t_start + 0.5 * spec.duration, &s));
  double charge_rate = 0.0;
  for (int sp = 0; sp < op.n_species(); ++sp) {
    const double n_rate = op.space().moment(op.block(s, sp), [](double, double) { return 1.0; });
    charge_rate += op.species()[sp].charge * n_rate;
  }
  EXPECT_NEAR(charge_rate, 0.0, 1e-8);
}

TEST(Quench, FullScenarioProducesExpectedDynamics) {
  LandauOperator op = make_op();
  auto qopts = quench_opts();
  QuenchModel model(op, qopts);
  const auto result = model.run();

  ASSERT_GT(result.history.size(), 10u);
  ASSERT_GE(result.switchover_step, 0) << "current never reached quasi-equilibrium";

  const auto& first = result.history.front();
  const auto& last = result.history.back();

  // Density grows by roughly the injected mass (conservative source).
  EXPECT_GT(last.n_e, first.n_e + 0.5 * result.mass_injected);
  EXPECT_NEAR(last.n_e - first.n_e, result.mass_injected, 0.2 * result.mass_injected);

  // Temperature collapses during the quench.
  EXPECT_LT(last.t_e, 0.85 * first.t_e);

  // In the quench phase E follows eta J and rises above the initial field.
  double max_e_quench = 0.0, e0 = first.e_z;
  for (const auto& s : result.history)
    if (s.quench_phase) max_e_quench = std::max(max_e_quench, std::abs(s.e_z));
  EXPECT_GT(max_e_quench, std::abs(e0));
}

TEST(Runaway, TailPopulationGrowsUnderStrongField) {
  // With a field well above the quasi-equilibrium value, fast electrons see
  // decreasing friction and the tail population grows — the seed-runaway
  // mechanism of §IV. The bulk, held by e-i friction, drifts only modestly.
  LandauOperator op = make_op();
  NewtonOptions loose;
  loose.rtol = 1e-6;
  ImplicitIntegrator integrator(op, loose);
  la::Vec f = op.maxwellian_state();

  const double vc = 2.0;
  auto tail_fraction = [&](const la::Vec& state) {
    auto b = op.block(state, 0);
    const double n = op.space().moment(b, [](double, double) { return 1.0; });
    const double tail = op.space().moment(
        b, [&](double r, double z) { return r * r + z * z > vc * vc ? 1.0 : 0.0; });
    return tail / n;
  };
  // Control: identical steps with no field (tail relaxes toward Maxwellian).
  la::Vec f_ctl = f;
  for (int s = 0; s < 6; ++s) integrator.step(f_ctl, 0.5, /*e_z=*/0.0);
  const double tail_ctl = tail_fraction(f_ctl);
  // Driven: the field feeds the weakly collisional tail.
  for (int s = 0; s < 6; ++s) integrator.step(f, 0.5, /*e_z=*/0.15);
  const double tail_drv = tail_fraction(f);
  EXPECT_GT(tail_drv, 1.15 * tail_ctl); // clear excess over the no-field control
  // Bulk drift bounded by friction (far below free acceleration E*t = 0.45).
  auto b = op.block(f, 0);
  const double n = op.space().moment(b, [](double, double) { return 1.0; });
  const double uz = op.space().moment(b, [](double, double z) { return z; }) / n;
  EXPECT_LT(std::abs(uz), 0.25);
}

TEST(Quench, ResistivityPhaseCurrentGrowsTowardSteadyState) {
  LandauOperator op = make_op();
  NewtonOptions loose;
  loose.rtol = 1e-6;
  auto res = measure_resistivity(op, 1e-3, 0.5, 40, 5e-3, LinearSolverKind::BandLU, loose);
  EXPECT_TRUE(res.converged);
  // Electrons drift against E (charge -1): J = -q_e n u ... sign works out
  // positive for E > 0.
  EXPECT_GT(res.j_z, 0.0);
  EXPECT_GT(res.eta, 0.0);
}
